"""Shared configuration objects for the fingerprinting reproduction.

All free parameters of the method (Section 5 of DESIGN.md) live here so that
experiments can vary them explicitly instead of reaching into module globals.
Every config is a frozen dataclass: configurations are values, and two runs
with equal configs must behave identically given equal seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

#: Number of minutes in one aggregation epoch (established practice in the
#: paper's datacenter; Section 4.1).
EPOCH_MINUTES = 15

#: Number of epochs per day at 15-minute aggregation.
EPOCHS_PER_DAY = 24 * 60 // EPOCH_MINUTES


@dataclass(frozen=True)
class QuantileConfig:
    """Which quantiles summarize each metric across the datacenter.

    The paper tracks the 25th, 50th and 95th quantile of every metric
    (Section 3.2); tracking fewer loses the "quantiles move in different
    directions" signal used for identification.
    """

    quantiles: Tuple[float, ...] = (0.25, 0.50, 0.95)

    def __post_init__(self) -> None:
        if not self.quantiles:
            raise ValueError("at least one quantile is required")
        for q in self.quantiles:
            if not 0.0 <= q <= 1.0:
                raise ValueError(f"quantile {q!r} outside [0, 1]")
        if list(self.quantiles) != sorted(self.quantiles):
            raise ValueError("quantiles must be sorted ascending")

    @property
    def count(self) -> int:
        return len(self.quantiles)


@dataclass(frozen=True)
class ThresholdConfig:
    """Hot/cold discretization of quantile values (Section 3.3).

    A quantile value is *normal* when it lies between the ``cold_percentile``
    and ``hot_percentile`` of its values over a trailing crisis-free window of
    ``window_days``; outside that range it is cold (-1) or hot (+1).  The
    paper uses the 2nd/98th percentiles over 240 days and shows wider settings
    (1/99, 5/95, 10/90) discriminate worse (Section 6.2).
    """

    cold_percentile: float = 2.0
    hot_percentile: float = 98.0
    window_days: int = 240

    def __post_init__(self) -> None:
        if not 0.0 <= self.cold_percentile < self.hot_percentile <= 100.0:
            raise ValueError(
                "need 0 <= cold_percentile < hot_percentile <= 100, got "
                f"({self.cold_percentile}, {self.hot_percentile})"
            )
        if self.window_days <= 0:
            raise ValueError("window_days must be positive")

    @property
    def window_epochs(self) -> int:
        """Window length at the paper's epoch cadence.

        Consumers with a non-default :class:`~repro.telemetry.epochs.EpochClock`
        derive the window with ``clock.span_epochs(window_days)`` instead.
        """
        return self.window_days * EPOCHS_PER_DAY


@dataclass(frozen=True)
class SelectionConfig:
    """Relevant-metric selection (Section 3.4).

    For each crisis, L1-regularized logistic regression on per-machine
    (metrics -> SLA-violation) data picks ``per_crisis_top_k`` metrics; the
    ``n_relevant`` most frequently selected metrics over the last
    ``crisis_pool`` crises become the fingerprint columns.  The paper uses
    top-10 per crisis, a pool of 20 crises, and 15 (offline) or 30 (online)
    relevant metrics.
    """

    per_crisis_top_k: int = 10
    n_relevant: int = 30
    crisis_pool: int = 20

    def __post_init__(self) -> None:
        if self.per_crisis_top_k <= 0:
            raise ValueError("per_crisis_top_k must be positive")
        if self.n_relevant <= 0:
            raise ValueError("n_relevant must be positive")
        if self.crisis_pool <= 0:
            raise ValueError("crisis_pool must be positive")


@dataclass(frozen=True)
class FingerprintConfig:
    """Crisis-fingerprint summarization window (Sections 3.5 and 6.1).

    Epoch fingerprints from ``pre_epochs`` epochs before the crisis start
    through ``post_epochs`` epochs after it are averaged column-wise into the
    crisis fingerprint.  The paper averages -30 min ... +60 min, i.e. 2 epochs
    before through 4 after (7 epochs total).
    """

    pre_epochs: int = 2
    post_epochs: int = 4

    def __post_init__(self) -> None:
        if self.pre_epochs < 0 or self.post_epochs < 0:
            raise ValueError("window extents must be non-negative")

    @property
    def n_epochs(self) -> int:
        return self.pre_epochs + self.post_epochs + 1


@dataclass(frozen=True)
class IdentificationConfig:
    """Online identification policy (Sections 4.3 and 5.3).

    Identification is attempted once per epoch for ``n_epochs`` epochs
    starting at detection.  ``alpha`` is the target false-alarm rate used to
    pick the identification threshold from a distance ROC (offline) or from
    the adaptive rules of Section 5.3 (online).
    """

    n_epochs: int = 5
    alpha: float = 0.05

    def __post_init__(self) -> None:
        if self.n_epochs <= 0:
            raise ValueError("n_epochs must be positive")
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must lie in [0, 1]")


@dataclass(frozen=True)
class ReliabilityConfig:
    """Operational fault-tolerance policy for the live path.

    The method's inputs degrade exactly when crises happen, so the live
    path quarantines untrustworthy epochs instead of letting them poison
    thresholds or force a misidentification.  ``coverage_floor`` is the
    minimum fleet-coverage fraction for an epoch summary to be trusted;
    ``validate_summaries`` runs :func:`repro.telemetry.validation.validate_epoch_summary`
    on every ingested epoch; ``dead_after_epochs`` is the collector-side
    circuit breaker (consecutive missed epochs before an agent is declared
    dead); ``checkpoint_every_epochs`` is the cadence of crash-safe
    snapshots (:mod:`repro.core.checkpoint`) — ``None`` means one day of
    epochs under the deployment's epoch clock (resolve it with
    :meth:`checkpoint_cadence`).
    """

    coverage_floor: float = 0.5
    validate_summaries: bool = True
    dead_after_epochs: int = 4
    checkpoint_every_epochs: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.coverage_floor <= 1.0:
            raise ValueError("coverage_floor must lie in [0, 1]")
        if self.dead_after_epochs < 1:
            raise ValueError("dead_after_epochs must be positive")
        if (
            self.checkpoint_every_epochs is not None
            and self.checkpoint_every_epochs < 1
        ):
            raise ValueError("checkpoint_every_epochs must be positive")

    def checkpoint_cadence(self, epochs_per_day: int) -> int:
        """Epochs between checkpoints, defaulting to one day."""
        if self.checkpoint_every_epochs is not None:
            return self.checkpoint_every_epochs
        return epochs_per_day


@dataclass(frozen=True)
class FleetConfig:
    """Sharded fleet-aggregation policy (:mod:`repro.fleet`).

    ``n_shards`` worker processes each fold a hash-partitioned slice of
    the fleet's reports; ``batch_size`` reports are stacked into one
    chunk before crossing the process boundary, and each worker's task
    queue holds at most ``queue_depth`` chunks (submission blocks beyond
    that — backpressure instead of unbounded memory).  ``mode`` selects
    exact per-shard partials (bit-identical to the single-process
    aggregator) or mergeable Greenwald-Khanna sketches with per-shard
    error ``sketch_eps``.  An epoch close waits at most
    ``close_deadline_s`` seconds for shard partials; stragglers and dead
    workers beyond the deadline leave the epoch degraded (shard-level
    coverage accounting) instead of blocking the monitor.
    """

    n_shards: int = 4
    batch_size: int = 512
    queue_depth: int = 8
    mode: str = "exact"
    sketch_eps: float = 0.01
    close_deadline_s: float = 10.0
    start_method: Optional[str] = None  # None = platform default

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("n_shards must be positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be positive")
        if self.mode not in ("exact", "sketch"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if not 0.0 < self.sketch_eps < 1.0:
            raise ValueError("sketch_eps must lie in (0, 1)")
        if self.close_deadline_s <= 0:
            raise ValueError("close_deadline_s must be positive")
        if self.start_method not in (None, "fork", "spawn", "forkserver"):
            raise ValueError(f"unknown start method {self.start_method!r}")


@dataclass(frozen=True)
class IndexConfig:
    """Fingerprint-index policy for the identification step.

    ``backend`` selects the :mod:`repro.index` implementation used for
    nearest-neighbor matching: ``"brute"`` (exact, the default — results
    are bit-identical to a linear scan), ``"kdtree"`` (exact, sub-linear
    for mid-size libraries) or ``"lsh"`` (approximate, sub-linear at
    scale; see ``docs/index.md`` for the measured recall contract).  The
    LSH parameters mirror :class:`repro.index.LSHIndex`; ``lsh_width``
    of ``None`` freezes the bucket width automatically from the data
    scale.
    """

    backend: str = "brute"
    lsh_tables: int = 16
    lsh_hashes: int = 6
    lsh_width: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.backend not in ("brute", "kdtree", "lsh"):
            raise ValueError(f"unknown index backend {self.backend!r}")
        if self.lsh_tables <= 0 or self.lsh_hashes <= 0:
            raise ValueError("lsh_tables and lsh_hashes must be positive")
        if self.lsh_width is not None and self.lsh_width <= 0:
            raise ValueError("lsh_width must be positive")

    def backend_kwargs(self) -> dict:
        """Constructor kwargs for :func:`repro.index.create_index`."""
        if self.backend == "lsh":
            return {
                "n_tables": self.lsh_tables,
                "n_hashes": self.lsh_hashes,
                "width": self.lsh_width,
                "seed": self.seed,
            }
        return {}


@dataclass(frozen=True)
class DiscoveryConfig:
    """Policy for unsupervised crisis discovery (:mod:`repro.discovery`).

    Unidentified crisis fingerprints stream into an online medoid
    clusterer.  A fingerprint within ``assign_radius`` of a cluster
    medoid joins that cluster; otherwise it seeds a new one.  When
    ``assign_radius`` is ``None`` the radius is auto-calibrated from the
    first ``calibration_size`` fingerprints (largest gap in their sorted
    pairwise distances, scaled by ``radius_scale``) — the unlabeled
    analogue of the paper's Section 5.3 threshold rules, which need
    labels this setting does not have.

    Lifecycle knobs are expressed as fractions of the assignment radius
    and deliberately leave a hysteresis band between them: two clusters
    merge when their medoids drift within ``merge_fraction * radius``
    (and the merged cluster would satisfy the split bound), and a
    cluster splits when a member strays beyond
    ``split_fraction * radius`` of the medoid (and the two new medoids
    would sit farther apart than the merge bound).  Because each
    transition commits only when it cannot immediately re-trigger the
    opposite one, merge/split cannot oscillate on static evidence
    (property-tested in ``tests/test_discovery_properties.py``).

    A cluster is *promoted* into a catalog entry once its stability
    score (evidence count, summed across merges) reaches
    ``promote_stability`` with at least ``min_promote_size`` members;
    promoted entries get labels ``{label_prefix}{cluster_id}`` and join
    the supervised identification path.  ``history_limit`` bounds the
    retained cluster-event history (the checkpointed audit trail).
    """

    assign_radius: Optional[float] = None  # None = auto-calibrate
    radius_scale: float = 1.0
    calibration_size: int = 12
    merge_fraction: float = 0.5
    split_fraction: float = 3.0
    promote_stability: int = 4
    min_promote_size: int = 3
    history_limit: int = 4096
    backend: str = "brute"
    label_prefix: str = "discovered-"
    auto_promote: bool = True

    def __post_init__(self) -> None:
        if self.assign_radius is not None and self.assign_radius <= 0:
            raise ValueError("assign_radius must be positive")
        if self.radius_scale <= 0:
            raise ValueError("radius_scale must be positive")
        if self.calibration_size < 2:
            raise ValueError("calibration_size must be at least 2")
        if not 0.0 < self.merge_fraction <= 1.0:
            raise ValueError("merge_fraction must lie in (0, 1]")
        if self.split_fraction < 1.0:
            raise ValueError("split_fraction must be at least 1")
        if self.merge_fraction >= self.split_fraction:
            raise ValueError(
                "merge_fraction must be below split_fraction "
                "(the gap is the merge/split hysteresis band)"
            )
        if self.promote_stability < 1:
            raise ValueError("promote_stability must be positive")
        if self.min_promote_size < 1:
            raise ValueError("min_promote_size must be positive")
        if self.history_limit < 1:
            raise ValueError("history_limit must be positive")
        if self.backend not in ("brute", "kdtree", "lsh"):
            raise ValueError(f"unknown index backend {self.backend!r}")
        if not self.label_prefix:
            raise ValueError("label_prefix must be non-empty")

    def merge_radius(self, radius: float) -> float:
        """Medoid distance below which two clusters merge."""
        return self.merge_fraction * radius

    def split_dispersion(self, radius: float) -> float:
        """Member-to-medoid distance beyond which a cluster splits."""
        return self.split_fraction * radius


@dataclass(frozen=True)
class ForecastConfig:
    """Policy for predictive early warning (:mod:`repro.forecast`).

    The forecast engine scores every trusted epoch with a two-stage
    detector: stage 1 asks "will the SLA detector fire within
    ``horizon_epochs``?" from incrementally-derived features; stage 2
    names the most likely fingerprint from the incident catalog.

    Feature knobs: ``slope_window`` trailing epochs feed the per-cell
    quantile-trajectory slopes (and the violation-fraction slope);
    ``churn_window`` trailing epochs feed the don't-know /
    identification / untrusted churn rates.  Alarm knobs:
    ``false_alarm_budget`` is the target alarm rate on normal epochs
    (the ROC operating point picked at calibration), ``cooldown_epochs``
    silences the alarm after it fires (one actionable page per
    impending crisis, not one per epoch), and ``alarm_retain`` bounds
    the in-memory/checkpointed alarm log.  Training knobs: ``cv_folds``
    cross-validation folds select the stage-1 L1 penalty;
    ``match_alpha`` is the false-alarm budget of the stage-2
    identification threshold (Section 5.1.2 semantics).
    """

    horizon_epochs: int = 4
    slope_window: int = 8
    churn_window: int = 8
    false_alarm_budget: float = 0.02
    cooldown_epochs: int = 4
    alarm_retain: int = 1024
    cv_folds: int = 5
    match_alpha: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        if self.horizon_epochs < 1:
            raise ValueError("horizon_epochs must be positive")
        if self.slope_window < 2:
            raise ValueError("slope_window must be at least 2")
        if self.churn_window < 1:
            raise ValueError("churn_window must be positive")
        if not 0.0 < self.false_alarm_budget < 1.0:
            raise ValueError("false_alarm_budget must lie in (0, 1)")
        if self.cooldown_epochs < 0:
            raise ValueError("cooldown_epochs must be non-negative")
        if self.alarm_retain < 1:
            raise ValueError("alarm_retain must be positive")
        if self.cv_folds < 2:
            raise ValueError("cv_folds must be at least 2")
        if not 0.0 <= self.match_alpha <= 1.0:
            raise ValueError("match_alpha must lie in [0, 1]")


@dataclass(frozen=True)
class ServingConfig:
    """Policy for the durable ingestion front door (:mod:`repro.serving`).

    The serving tier runs one streaming monitor per tenant behind a
    JSON-lines TCP endpoint.  Durability knobs: every accepted report is
    journaled (fsync) before it is acked, and a full engine snapshot is
    cut every ``checkpoint_every_epochs`` closed epochs, after which the
    journal is compacted.  Admission knobs: at most ``max_inflight``
    reports may be accepted-but-unapplied at once (beyond that the
    server sheds load with an explicit retry-after instead of queueing
    unboundedly), frames longer than ``max_frame_bytes`` are rejected,
    and a connection idle for ``idle_timeout_s`` mid-frame is dropped
    (slow-loris defense).  Supervision knobs: a tenant engine that
    crashes is restarted with exponential backoff (``restart_base_delay``
    doubling per consecutive crash, jitter seeded by ``seed``) and
    quarantined after ``max_restarts`` consecutive crashes.

    The engine cadence fields mirror the paper's defaults but are
    configurable so tests can run short days (``epoch_minutes`` must
    divide 1440, the :class:`~repro.telemetry.epochs.EpochClock`
    contract).
    """

    # --- engine cadence ---
    n_metrics: int = 8
    n_relevant: int = 4
    quantiles: Tuple[float, ...] = (0.25, 0.50, 0.95)
    epoch_minutes: int = EPOCH_MINUTES
    window_days: int = 240
    threshold_refresh_epochs: Optional[int] = None  # None = daily
    min_history_epochs: Optional[int] = None  # None = 7 days
    coverage_floor: float = 0.5
    # --- durability ---
    checkpoint_every_epochs: int = 4
    #: Crisis events retained in memory (and in each checkpoint /
    #: ``state`` response).  Older events age out of the ring so a
    #: long-running daemon's checkpoints stay bounded.
    event_log_retain: int = 4096
    # --- admission control ---
    max_inflight: int = 1024
    max_frame_bytes: int = 1 << 20
    idle_timeout_s: float = 5.0
    # --- supervision ---
    max_restarts: int = 3
    restart_base_delay: float = 0.05
    restart_max_delay: float = 2.0
    # --- replication (journal shipping to a warm standby) ---
    #: Heartbeat cadence on an idle replication link, so a long-lived
    #: subscription is never mistaken for a slow-loris attack.
    heartbeat_interval_s: float = 1.0
    #: A subscriber that has not acked for this long is presumed dead
    #: and reaped (its journal-retention pin is released).  The standby
    #: uses the same bound for declaring its primary's link dead.
    repl_ack_timeout_s: float = 5.0
    #: Maximum journal records shipped per ``repl_frames`` push.
    repl_batch_records: int = 512
    # --- unsupervised discovery (opt-in) ---
    #: When true every tenant monitor gets a
    #: :class:`repro.discovery.DiscoveryEngine` attached, so don't-know
    #: crises grow the catalog automatically (see ``docs/discovery.md``);
    #: its state rides in the tenant checkpoint and recovery stays
    #: bit-identical.
    discovery_enabled: bool = False
    discovery: "DiscoveryConfig" = field(default_factory=lambda: DiscoveryConfig())
    # --- predictive early warning (opt-in) ---
    #: When true every tenant monitor gets a
    #: :class:`repro.forecast.ForecastEngine` attached (see
    #: ``docs/forecasting.md``); its state rides in the tenant
    #: checkpoint and recovery stays bit-identical.  Without a trained
    #: model (``forecast_model``) the engine streams features and
    #: reports ``fitted: false`` — alarms need a model.
    forecast_enabled: bool = False
    forecast: "ForecastConfig" = field(default_factory=lambda: ForecastConfig())
    #: Optional path to a trained forecast model archive
    #: (``repro forecast train``); loaded into every tenant engine.
    forecast_model: Optional[str] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_metrics < 1:
            raise ValueError("n_metrics must be positive")
        if not 1 <= self.n_relevant <= self.n_metrics:
            raise ValueError("n_relevant must lie in [1, n_metrics]")
        if not self.quantiles:
            raise ValueError("at least one quantile is required")
        if 1440 % self.epoch_minutes != 0:
            raise ValueError("epoch_minutes must divide 1440")
        if self.window_days < 1:
            raise ValueError("window_days must be positive")
        for name in ("threshold_refresh_epochs", "min_history_epochs"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be positive")
        if not 0.0 <= self.coverage_floor <= 1.0:
            raise ValueError("coverage_floor must lie in [0, 1]")
        if self.checkpoint_every_epochs < 1:
            raise ValueError("checkpoint_every_epochs must be positive")
        if self.event_log_retain < 1:
            raise ValueError("event_log_retain must be positive")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be positive")
        if self.max_frame_bytes < 64:
            raise ValueError("max_frame_bytes must be at least 64")
        if self.idle_timeout_s <= 0:
            raise ValueError("idle_timeout_s must be positive")
        if self.max_restarts < 1:
            raise ValueError("max_restarts must be positive")
        if self.restart_base_delay < 0 or self.restart_max_delay < 0:
            raise ValueError("restart delays must be non-negative")
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        if self.repl_ack_timeout_s <= self.heartbeat_interval_s:
            raise ValueError(
                "repl_ack_timeout_s must exceed heartbeat_interval_s "
                "(a live-but-quiet link heartbeats at that cadence)"
            )
        if self.repl_batch_records < 1:
            raise ValueError("repl_batch_records must be positive")

    @property
    def epochs_per_day(self) -> int:
        return 24 * 60 // self.epoch_minutes

    def resolved_refresh_epochs(self) -> int:
        """Threshold refresh cadence, defaulting to one day of epochs."""
        if self.threshold_refresh_epochs is not None:
            return self.threshold_refresh_epochs
        return self.epochs_per_day

    def resolved_min_history(self) -> int:
        """Minimum history before thresholds activate (default: 7 days)."""
        if self.min_history_epochs is not None:
            return self.min_history_epochs
        return 7 * self.epochs_per_day


@dataclass(frozen=True)
class FingerprintingConfig:
    """Bundle of all method parameters, defaulting to the paper's choices."""

    quantiles: QuantileConfig = field(default_factory=QuantileConfig)
    thresholds: ThresholdConfig = field(default_factory=ThresholdConfig)
    selection: SelectionConfig = field(default_factory=SelectionConfig)
    fingerprint: FingerprintConfig = field(default_factory=FingerprintConfig)
    identification: IdentificationConfig = field(
        default_factory=IdentificationConfig
    )
    index: IndexConfig = field(default_factory=IndexConfig)

    def with_(self, **kwargs) -> "FingerprintingConfig":
        """Return a copy with the given top-level sections replaced."""
        return replace(self, **kwargs)


__all__ = [
    "EPOCH_MINUTES",
    "EPOCHS_PER_DAY",
    "QuantileConfig",
    "ThresholdConfig",
    "SelectionConfig",
    "FingerprintConfig",
    "IdentificationConfig",
    "IndexConfig",
    "DiscoveryConfig",
    "FleetConfig",
    "ForecastConfig",
    "ReliabilityConfig",
    "ServingConfig",
    "FingerprintingConfig",
]
