"""Fingerprinting the Datacenter — reproduction library.

A full reimplementation of Bodik, Goldszmidt, Fox & Andersen,
*"Fingerprinting the Datacenter: Automated Classification of Performance
Crises"* (EuroSys 2010), including the telemetry substrate, a synthetic
datacenter standing in for the paper's proprietary production traces, the
fingerprinting method itself, the three comparison baselines, and the
complete evaluation harness.

Quick start::

    from repro import (
        DatacenterSimulator, SimulationConfig,
        FingerprintPipeline, FingerprintingConfig,
    )

    trace = DatacenterSimulator(SimulationConfig(seed=7)).run()
    pipeline = FingerprintPipeline(trace, FingerprintingConfig())
    for crisis in trace.detected_crises:
        pipeline.observe(crisis)
        pipeline.refresh(crisis.detected_epoch)
        pipeline.update_identification_threshold()
        if pipeline.identification_threshold is not None:
            print(crisis.label, pipeline.identify(crisis).sequence)
        pipeline.confirm(crisis)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.config import (
    FingerprintConfig,
    FingerprintingConfig,
    IdentificationConfig,
    QuantileConfig,
    SelectionConfig,
    ThresholdConfig,
)
from repro.core import FingerprintPipeline
from repro.datacenter import (
    CrisisSchedule,
    DatacenterSimulator,
    DatacenterTrace,
    SimulationConfig,
)

__version__ = "1.0.0"

__all__ = [
    "FingerprintConfig",
    "FingerprintingConfig",
    "IdentificationConfig",
    "QuantileConfig",
    "SelectionConfig",
    "ThresholdConfig",
    "FingerprintPipeline",
    "CrisisSchedule",
    "DatacenterSimulator",
    "DatacenterTrace",
    "SimulationConfig",
    "__version__",
]
