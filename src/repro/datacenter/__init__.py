"""Synthetic datacenter substrate.

The paper's dataset — a production enterprise application on hundreds of
machines with ~100 metrics per machine and 39 performance crises — is
proprietary.  This package substitutes a generative simulator that preserves
the structure the fingerprinting method exploits (see DESIGN.md section 2):

* :mod:`repro.datacenter.workload` — diurnal + weekly offered load;
* :mod:`repro.datacenter.machines` — per-machine latent state (stage
  utilizations, queues, latencies) under load and crisis effects;
* :mod:`repro.datacenter.metrics` — the ~100-metric catalog derived from the
  latents, including deliberately irrelevant noise and drift metrics;
* :mod:`repro.datacenter.crises` — the ten crisis types of Table 1, crisis
  instances, and chronological schedules;
* :mod:`repro.datacenter.sla` — KPI definitions, SLA violations, and the
  10 %-of-machines crisis detector;
* :mod:`repro.datacenter.simulator` — chunked trace generation;
* :mod:`repro.datacenter.trace` — the generated dataset container.
"""

from repro.datacenter.crises import (
    CRISIS_TYPES,
    CrisisInstance,
    CrisisSchedule,
    CrisisType,
    EffectFields,
)
from repro.datacenter.machines import Latents, MachineFleet
from repro.datacenter.metrics import MetricCatalog, MetricSpec, build_catalog
from repro.datacenter.scenarios import SCENARIOS
from repro.datacenter.simulator import DatacenterSimulator, SimulationConfig
from repro.datacenter.sla import KPIDefinition, SLAPolicy, detect_crises
from repro.datacenter.trace import CrisisRecord, DatacenterTrace, RawWindow
from repro.datacenter.workload import WorkloadConfig, WorkloadModel

__all__ = [
    "CRISIS_TYPES",
    "CrisisInstance",
    "CrisisSchedule",
    "CrisisType",
    "EffectFields",
    "Latents",
    "MachineFleet",
    "MetricCatalog",
    "MetricSpec",
    "build_catalog",
    "SCENARIOS",
    "DatacenterSimulator",
    "SimulationConfig",
    "KPIDefinition",
    "SLAPolicy",
    "detect_crises",
    "CrisisRecord",
    "DatacenterTrace",
    "RawWindow",
    "WorkloadConfig",
    "WorkloadModel",
]
