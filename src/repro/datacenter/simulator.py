"""Chunked datacenter trace generation.

The simulator never materializes the full ``epochs x machines x metrics``
telemetry cube (that is exactly the scaling problem the paper's quantile
representation solves).  It generates telemetry one multi-day chunk at a
time, immediately reduces each chunk to datacenter-wide quantiles and KPI
violation statistics, keeps raw per-machine data only in windows around
injected crises, and discards the rest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.config import QuantileConfig
from repro.datacenter.crises import (
    CrisisSchedule,
    build_effect_fields,
)
from repro.datacenter.machines import MachineFleet
from repro.datacenter.metrics import MetricCatalog, build_catalog
from repro.datacenter.sla import SLAPolicy, detect_crises
from repro.datacenter.trace import CrisisRecord, DatacenterTrace, RawWindow
from repro.datacenter.workload import WorkloadConfig, WorkloadModel
from repro.telemetry.epochs import EpochClock
from repro.telemetry.quantiles import summarize_chunk


@dataclass(frozen=True)
class SimulationConfig:
    """Everything that determines a trace, given a seed."""

    n_machines: int = 80
    seed: int = 42
    warmup_days: int = 30
    bootstrap_days: int = 210
    labeled_days: int = 120
    n_bootstrap_crises: int = 20
    n_noise_metrics: int = 20
    n_drift_metrics: int = 15
    n_periodic_metrics: int = 30
    chunk_days: int = 4
    calibration_days: int = 14
    quantiles: QuantileConfig = field(default_factory=QuantileConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    raw_pre_epochs: int = 12
    raw_post_epochs: int = 6
    sla_percentile: float = 99.9
    sla_margin: float = 1.45
    detection_fraction: float = 0.10
    #: Per-epoch log-scale step of the drift metrics' random walk.  A pure
    #: (nonstationary) walk makes these series spend long stretches outside
    #: any trailing window's 2/98 percentile band — the pollution that
    #: degrades fingerprints built without feature selection.
    drift_step: float = 0.015
    #: AR(1) pull-back toward the walk's origin; 1.0 is a pure random walk,
    #: slightly below 1.0 bounds excursions over very long traces.
    drift_rho: float = 0.99995

    def __post_init__(self) -> None:
        if self.n_machines <= 0:
            raise ValueError("n_machines must be positive")
        for name in ("warmup_days", "bootstrap_days", "labeled_days",
                     "chunk_days", "calibration_days"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def total_days(self) -> int:
        return self.warmup_days + self.bootstrap_days + self.labeled_days


class DatacenterSimulator:
    """Generates a :class:`DatacenterTrace` from a :class:`SimulationConfig`."""

    def __init__(self, config: SimulationConfig):
        self.config = config
        self.clock = EpochClock()
        self.catalog: MetricCatalog = build_catalog(
            n_noise=config.n_noise_metrics,
            n_drift=config.n_drift_metrics,
            n_periodic=config.n_periodic_metrics,
        )

    def _rng(self, stream: int) -> np.random.Generator:
        return np.random.default_rng([self.config.seed, stream])

    def default_schedule(self) -> CrisisSchedule:
        """The paper's timeline: 20 unlabeled then Table 1's 19 labeled."""
        cfg = self.config
        return CrisisSchedule.paper_timeline(
            n_machines=cfg.n_machines,
            clock=self.clock,
            rng=self._rng(1),
            warmup_days=cfg.warmup_days,
            bootstrap_days=cfg.bootstrap_days,
            labeled_days=cfg.labeled_days,
            n_bootstrap=cfg.n_bootstrap_crises,
        )

    def _drift_series(
        self, n_epochs: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Slowly wandering global series for the drift metrics."""
        cfg = self.config
        n = cfg.n_drift_metrics
        if n == 0:
            return np.zeros((n_epochs, 0))
        rho = cfg.drift_rho
        innov = rng.normal(0.0, cfg.drift_step, (n_epochs, n))
        out = np.empty((n_epochs, n))
        state = rng.normal(0.0, cfg.drift_step, n)
        for i in range(n_epochs):
            state = rho * state + innov[i]
            out[i] = state
        # Soft-bound the walk: tanh keeps extreme excursions moving (a hard
        # clip would pin the series at a constant rail, where a strict
        # threshold comparison never flags it hot/cold again).
        return 100.0 * np.exp(2.5 * np.tanh(out / 2.5))

    def _periodic_series(
        self, n_epochs: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Diurnal junk series: per-metric phase/amplitude, day-level swings.

        Each series peaks at a metric-specific time of day (batch jobs,
        backups, report runs) and scales by an i.i.d. per-day factor, so a
        "high day" pushes the series over its historical 98th percentile
        for hours at a time.
        """
        cfg = self.config
        n = cfg.n_periodic_metrics
        if n == 0:
            return np.zeros((n_epochs, 0))
        per_day = self.clock.per_day
        n_days = -(-n_epochs // per_day)
        phase_hours = rng.uniform(0.0, 24.0, n)
        amplitude = rng.uniform(0.4, 0.9, n)
        day_factor = np.exp(rng.normal(0.0, 0.25, (n_days, n)))
        epochs = np.arange(n_epochs)
        tod = (epochs % per_day) / per_day  # fraction of day
        cyc = 1.0 + amplitude[None, :] * np.cos(
            2.0 * np.pi * (tod[:, None] - phase_hours[None, :] / 24.0)
        )
        daily = day_factor[epochs // per_day, :]
        return 50.0 * cyc * daily

    def _calibrate_sla(self, fleet: MachineFleet) -> SLAPolicy:
        """Derive KPI SLA thresholds from a crisis-free reference period."""
        cfg = self.config
        rng = self._rng(3)
        n_epochs = self.clock.span_epochs(cfg.calibration_days)
        # Operators set SLA thresholds knowing traffic will grow; calibrate
        # against end-of-trace load so the growth trend alone never trips
        # the 10% detector.
        workload = WorkloadModel(cfg.workload, self.clock).generate(
            n_epochs, rng
        ) * (1.0 + cfg.workload.growth)
        drift = self._drift_series(n_epochs, rng)
        periodic = self._periodic_series(n_epochs, rng)
        fields = build_effect_fields([], 0, n_epochs, cfg.n_machines)
        latents = fleet.latents(workload, fields, drift, rng,
                                periodic=periodic)
        kpi_indices = self.catalog.kpi_indices
        kpi_values = np.empty((n_epochs, cfg.n_machines, len(kpi_indices)))
        for j, idx in enumerate(kpi_indices):
            spec = self.catalog.specs[idx]
            kpi_values[:, :, j] = spec.fn(latents, rng)
        return SLAPolicy.calibrate(
            kpi_names=self.catalog.kpi_names,
            kpi_indices=kpi_indices,
            reference_values=kpi_values,
            percentile=cfg.sla_percentile,
            margin=cfg.sla_margin,
            violation_fraction=cfg.detection_fraction,
        )

    def run(
        self, schedule: Optional[CrisisSchedule] = None
    ) -> DatacenterTrace:
        """Generate the full trace."""
        cfg = self.config
        if schedule is None:
            schedule = self.default_schedule()

        fleet = MachineFleet(cfg.n_machines, self._rng(2))
        sla = self._calibrate_sla(fleet)

        n_epochs = self.clock.span_epochs(cfg.total_days)
        workload_rng = self._rng(4)
        workload = WorkloadModel(cfg.workload, self.clock).generate(
            n_epochs, workload_rng
        )
        drift = self._drift_series(n_epochs, self._rng(5))
        periodic = self._periodic_series(n_epochs, self._rng(8))

        n_metrics = len(self.catalog)
        n_q = cfg.quantiles.count
        quantiles = np.empty((n_epochs, n_metrics, n_q))
        kpi_frac = np.empty((n_epochs, len(sla.kpis)))

        # Pre-allocate raw windows around every scheduled crisis.
        windows: List[RawWindow] = []
        for inst in schedule:
            w_start = max(inst.start_epoch - cfg.raw_pre_epochs, 0)
            w_stop = min(inst.end_epoch + cfg.raw_post_epochs, n_epochs)
            windows.append(
                RawWindow(
                    start_epoch=w_start,
                    values=np.zeros(
                        (w_stop - w_start, cfg.n_machines, n_metrics),
                        dtype=np.float32,
                    ),
                    violations=np.zeros(
                        (w_stop - w_start, cfg.n_machines), dtype=bool
                    ),
                )
            )

        chunk_epochs = self.clock.span_epochs(cfg.chunk_days)
        metric_rng = self._rng(6)
        latent_rng = self._rng(7)
        for start in range(0, n_epochs, chunk_epochs):
            stop = min(start + chunk_epochs, n_epochs)
            fields = build_effect_fields(
                schedule.instances, start, stop - start, cfg.n_machines
            )
            latents = fleet.latents(
                workload[start:stop], fields, drift[start:stop], latent_rng,
                periodic=periodic[start:stop],
            )
            values = self.catalog.evaluate(latents, metric_rng)
            quantiles[start:stop] = summarize_chunk(
                values, cfg.quantiles.quantiles
            )
            kpi_frac[start:stop] = sla.per_kpi_violation_fraction(values)
            violations = sla.machine_violations(values)

            for win in windows:
                lo = max(win.start_epoch, start)
                hi = min(win.end_epoch, stop)
                if lo >= hi:
                    continue
                win.values[lo - win.start_epoch : hi - win.start_epoch] = \
                    values[lo - start : hi - start]
                win.violations[lo - win.start_epoch : hi - win.start_epoch] = \
                    violations[lo - start : hi - start]

        anomalous = sla.epoch_anomalous(kpi_frac)

        spans = [(inst.start_epoch, inst.end_epoch) for inst in schedule]
        detections = detect_crises(anomalous, spans)
        detected_by_schedule = {}
        for det in detections:
            if det.schedule_index is not None:
                detected_by_schedule.setdefault(
                    det.schedule_index, det.detected_epoch
                )

        crises = []
        for i, inst in enumerate(schedule):
            crises.append(
                CrisisRecord(
                    index=i,
                    instance=inst,
                    detected_epoch=detected_by_schedule.get(i),
                    raw=windows[i],
                )
            )

        return DatacenterTrace(
            metric_names=self.catalog.names,
            quantile_levels=cfg.quantiles.quantiles,
            quantiles=quantiles,
            anomalous=anomalous,
            kpi_violation_fraction=kpi_frac,
            sla=sla,
            crises=crises,
            n_machines=cfg.n_machines,
            epochs_per_day=self.clock.per_day,
        )


__all__ = ["DatacenterSimulator", "SimulationConfig"]
