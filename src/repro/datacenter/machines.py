"""Per-machine latent state under load and crisis effects.

Every machine runs the same three-stage pipeline (Figure 2 of the paper):
light front-end processing, the heavy second stage, and post-processing that
hands results to clients or a peer datacenter.  The latent state — stage
utilizations, queue lengths, latencies, CPU and memory pressure — is what
the metric catalog observes through ~100 noisy sensors.

Queueing is modeled with an M/M/1-flavored law: queue length grows as
``rho / (1 - rho)`` and explodes smoothly past saturation.  This gives the
realistic nonlinearity that makes crises visible: moderate load changes move
latencies a little, capacity collapses move them a lot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datacenter.crises import EffectFields


@dataclass(frozen=True)
class StageParams:
    """Static parameters of one processing stage."""

    base_utilization: float  # utilization at global load 1.0
    base_latency_ms: float  # service latency at zero queueing


#: The three stages of Figure 2.  Base utilizations leave enough headroom
#: that normal load variation (diurnal peak x growth x noise) never
#: saturates a stage; crises do.
FRONTEND = StageParams(base_utilization=0.28, base_latency_ms=20.0)
HEAVY = StageParams(base_utilization=0.42, base_latency_ms=200.0)
POST = StageParams(base_utilization=0.35, base_latency_ms=100.0)


@dataclass
class Latents:
    """Latent state arrays, each of shape ``(n_epochs, n_machines)``.

    ``drift`` is the exception: a global ``(n_epochs, n_drift)`` matrix of
    slowly wandering series used by the deliberately irrelevant drift
    metrics (they exist to punish methods that skip feature selection).
    """

    load: np.ndarray
    rho_fe: np.ndarray
    rho_hv: np.ndarray
    rho_po: np.ndarray
    q_fe: np.ndarray
    q_hv: np.ndarray
    q_po: np.ndarray
    lat_fe_ms: np.ndarray
    lat_hv_ms: np.ndarray
    lat_po_ms: np.ndarray
    db_ms: np.ndarray
    cpu: np.ndarray
    mem: np.ndarray
    err_mult: np.ndarray
    db_err_mult: np.ndarray
    retry_mult: np.ndarray
    lock_mult: np.ndarray
    alert_add: np.ndarray
    config_alert_add: np.ndarray
    backpressure: np.ndarray
    drift: np.ndarray
    periodic: np.ndarray

    @property
    def shape(self):
        return self.load.shape


def queue_length(rho: np.ndarray, saturation: float = 0.97) -> np.ndarray:
    """Expected queue length as a function of utilization.

    ``rho / (1 - rho)`` below ``saturation``; past it, linear growth with the
    matching slope so the function stays continuous and monotonic (real
    queues keep growing during overload rather than diverging instantly).
    """
    rho = np.asarray(rho, dtype=float)
    rho = np.maximum(rho, 0.0)
    base = saturation / (1.0 - saturation)
    slope = 1.0 / (1.0 - saturation) ** 2
    return np.where(
        rho < saturation,
        rho / np.maximum(1.0 - rho, 1e-9),
        base + slope * (rho - saturation),
    )


class MachineFleet:
    """Static fleet description: per-machine balance and speed factors."""

    def __init__(self, n_machines: int, rng: np.random.Generator):
        if n_machines <= 0:
            raise ValueError("n_machines must be positive")
        self.n_machines = n_machines
        # Imperfect load balancing: each machine's share of traffic.
        self.balance = np.exp(rng.normal(0.0, 0.03, n_machines))
        self.balance /= self.balance.mean()
        # Hardware heterogeneity: relative capacity of each machine.
        self.speed = np.exp(rng.normal(0.0, 0.03, n_machines))
        self.speed /= self.speed.mean()

    def latents(
        self,
        workload: np.ndarray,
        fields: EffectFields,
        drift: np.ndarray,
        rng: np.random.Generator,
        periodic: np.ndarray = None,
    ) -> Latents:
        """Compute latent state for one chunk of epochs.

        Parameters
        ----------
        workload:
            Global offered load per epoch, shape ``(n_epochs,)``.
        fields:
            Crisis effect fields for the same epochs.
        drift:
            Global drift series for the same epochs ``(n_epochs, n_drift)``.
        periodic:
            Global diurnal-junk series ``(n_epochs, n_periodic)``; defaults
            to an empty matrix.
        """
        workload = np.asarray(workload, dtype=float)
        n_epochs = workload.shape[0]
        if (n_epochs, self.n_machines) != (fields.n_epochs,
                                           fields.n_machines):
            raise ValueError("workload/fields shape mismatch")
        if periodic is None:
            periodic = np.zeros((n_epochs, 0))
        shape = (n_epochs, self.n_machines)

        def lognoise(sigma: float) -> np.ndarray:
            return np.exp(rng.normal(0.0, sigma, shape))

        load = (
            workload[:, None]
            * self.balance[None, :]
            * fields.load_mult
            * lognoise(0.04)
        )

        speed = self.speed[None, :]

        rho_fe = (
            FRONTEND.base_utilization
            * load
            * fields.demand_fe
            / (speed * np.maximum(fields.cap_fe, 1e-3))
        )
        rho_hv = (
            HEAVY.base_utilization
            * load
            * fields.demand_hv
            / (speed * np.maximum(fields.cap_hv, 1e-3))
        )
        # Backpressure throttles the post stage's effective drain rate.
        po_capacity = np.maximum(
            fields.cap_po * (1.0 - np.clip(fields.backpressure, 0.0, 0.98)),
            1e-3,
        )
        rho_po = (
            POST.base_utilization * load * fields.demand_po
            / (speed * po_capacity)
        )

        q_fe = queue_length(rho_fe) * lognoise(0.12)
        q_hv = queue_length(rho_hv) * lognoise(0.12)
        q_po = queue_length(rho_po) * lognoise(0.12)

        db_ms = (40.0 + fields.db_add_ms) * lognoise(0.10)

        lat_fe = FRONTEND.base_latency_ms * (1.0 + q_fe) * lognoise(0.08)
        lat_hv = (
            HEAVY.base_latency_ms * (1.0 + q_hv) + db_ms
        ) * lognoise(0.08)
        lat_po = POST.base_latency_ms * (1.0 + q_po) * lognoise(0.08)

        cpu = np.clip(
            0.12
            + 0.55 * (0.25 * rho_fe + 0.55 * rho_hv + 0.20 * rho_po)
            + fields.cpu_add
            + rng.normal(0.0, 0.02, shape),
            0.005,
            1.0,
        )
        mem = np.clip(
            0.38
            + 0.25 * np.minimum(rho_hv, 2.0)
            + 0.05 * np.minimum(q_po / 10.0, 2.0)
            + fields.mem_add
            + rng.normal(0.0, 0.02, shape),
            0.02,
            1.0,
        )

        return Latents(
            load=load,
            rho_fe=rho_fe,
            rho_hv=rho_hv,
            rho_po=rho_po,
            q_fe=q_fe,
            q_hv=q_hv,
            q_po=q_po,
            lat_fe_ms=lat_fe,
            lat_hv_ms=lat_hv,
            lat_po_ms=lat_po,
            db_ms=db_ms,
            cpu=cpu,
            mem=mem,
            err_mult=fields.err_mult,
            db_err_mult=fields.db_err_mult,
            retry_mult=fields.retry_mult,
            lock_mult=fields.lock_mult,
            alert_add=fields.alert_add,
            config_alert_add=fields.config_alert_add,
            backpressure=np.clip(fields.backpressure, 0.0, 0.98),
            drift=drift,
            periodic=periodic,
        )


__all__ = [
    "FRONTEND",
    "HEAVY",
    "POST",
    "Latents",
    "MachineFleet",
    "StageParams",
    "queue_length",
]
