"""Offered-load model for the simulated datacenter.

The application under study is user-facing, so its workload has a strong
diurnal cycle, a weekly cycle (weekend dip), a slow growth trend, and
stochastic variation.  :class:`WorkloadModel` produces the *global* offered
load per epoch, normalized so that 1.0 is the long-run average; per-machine
load is derived from it by the fleet model (load balancing plus noise).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry.epochs import EpochClock


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of the global offered-load process."""

    #: Peak-to-trough amplitude of the diurnal cycle (0 disables it).
    diurnal_amplitude: float = 0.30
    #: Hour of day (0-24) at which load peaks.
    peak_hour: float = 15.0
    #: Multiplier applied on weekends (enterprise app with global
    #: customers: mild weekend dip).
    weekend_factor: float = 0.9
    #: Linear growth over the whole trace (0.1 = +10% from start to end).
    growth: float = 0.015
    #: Std-dev of multiplicative log-normal epoch noise.
    noise_sigma: float = 0.03
    #: Std-dev of a slow AR(1) modulation (captures campaign-level drift).
    slow_sigma: float = 0.015
    #: AR(1) coefficient of the slow modulation per epoch.
    slow_rho: float = 0.995

    def __post_init__(self) -> None:
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must lie in [0, 1)")
        if not 0.0 < self.weekend_factor <= 1.5:
            raise ValueError("weekend_factor out of range")
        if self.noise_sigma < 0 or self.slow_sigma < 0:
            raise ValueError("noise levels must be non-negative")
        if not 0.0 <= self.slow_rho < 1.0:
            raise ValueError("slow_rho must lie in [0, 1)")


class WorkloadModel:
    """Generates the global offered-load series for a whole trace."""

    def __init__(self, config: WorkloadConfig, clock: EpochClock):
        self.config = config
        self.clock = clock

    def generate(self, n_epochs: int, rng: np.random.Generator) -> np.ndarray:
        """Global load per epoch, shape ``(n_epochs,)``, mean ~1.0."""
        if n_epochs <= 0:
            raise ValueError("n_epochs must be positive")
        cfg = self.config
        epochs = np.arange(n_epochs)
        frac_of_day = (epochs % self.clock.per_day) / self.clock.per_day
        day = epochs // self.clock.per_day

        phase = 2.0 * np.pi * (frac_of_day - cfg.peak_hour / 24.0)
        diurnal = 1.0 + cfg.diurnal_amplitude * np.cos(phase)

        weekday = day % 7
        weekly = np.where(weekday >= 5, cfg.weekend_factor, 1.0)

        trend = 1.0 + cfg.growth * (epochs / max(n_epochs - 1, 1))

        noise = np.exp(rng.normal(0.0, cfg.noise_sigma, n_epochs))

        slow = np.empty(n_epochs)
        innov = rng.normal(
            0.0, cfg.slow_sigma * np.sqrt(1.0 - cfg.slow_rho**2), n_epochs
        )
        state = 0.0
        for i in range(n_epochs):
            state = cfg.slow_rho * state + innov[i]
            slow[i] = state
        slow = np.exp(slow)

        return diurnal * weekly * trend * noise * slow


__all__ = ["WorkloadConfig", "WorkloadModel"]
