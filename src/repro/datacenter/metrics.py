"""The per-machine metric catalog.

Roughly one hundred metrics per machine, mirroring the mix described in
Section 4.1 of the paper: operator alert counts, queue lengths, latencies of
intermediate processing steps, CPU summaries, and application-specific
counters.  Each metric is a noisy view of the latent machine state; a large
block of deliberately *irrelevant* metrics (stationary noise and slowly
drifting series) is included because the paper's central result — feature
selection is crucial (Figure 3/4, "fingerprints with all metrics") — only
reproduces when irrelevant metrics exist to pollute unselected fingerprints.

The three starred KPI metrics (front-end, heavy-stage, and post-processing
latency) are the ones whose SLAs define crises (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.datacenter.machines import Latents

MetricFn = Callable[[Latents, np.random.Generator], np.ndarray]


@dataclass(frozen=True)
class MetricSpec:
    """One metric: a named, noisy function of latent machine state."""

    name: str
    group: str
    fn: MetricFn
    is_kpi: bool = False


def _ln(rng: np.random.Generator, shape, sigma: float) -> np.ndarray:
    """Multiplicative log-normal noise."""
    return np.exp(rng.normal(0.0, sigma, shape))


def _n(rng: np.random.Generator, shape, sigma: float) -> np.ndarray:
    return rng.normal(0.0, sigma, shape)


def _cpu_metrics() -> List[MetricSpec]:
    def user(lt, rng):
        return np.clip(100.0 * lt.cpu * 0.72 + _n(rng, lt.shape, 1.5), 0, 100)

    def system(lt, rng):
        return np.clip(100.0 * lt.cpu * 0.18 + _n(rng, lt.shape, 0.8), 0, 100)

    def idle(lt, rng):
        return np.clip(100.0 * (1.0 - lt.cpu) + _n(rng, lt.shape, 1.5), 0, 100)

    def iowait(lt, rng):
        return (1.5 + 10.0 * lt.db_ms / 40.0) * _ln(rng, lt.shape, 0.15)

    def ctx_switches(lt, rng):
        return 4000.0 * lt.load * (1.0 + lt.q_hv / 6.0) * _ln(rng, lt.shape, 0.10)

    def run_queue(lt, rng):
        return (0.5 + 7.0 * lt.cpu**2) * _ln(rng, lt.shape, 0.20)

    g = "cpu"
    return [
        MetricSpec("cpu.user_pct", g, user),
        MetricSpec("cpu.system_pct", g, system),
        MetricSpec("cpu.idle_pct", g, idle),
        MetricSpec("cpu.iowait_pct", g, iowait),
        MetricSpec("cpu.context_switches", g, ctx_switches),
        MetricSpec("cpu.run_queue", g, run_queue),
    ]


def _memory_metrics() -> List[MetricSpec]:
    def used_pct(lt, rng):
        return np.clip(100.0 * lt.mem + _n(rng, lt.shape, 1.0), 0, 100)

    def free_mb(lt, rng):
        return np.clip(32768.0 * (1.0 - lt.mem) * _ln(rng, lt.shape, 0.03),
                       0, None)

    def cache_mb(lt, rng):
        return 8192.0 * (0.8 + 0.2 * np.minimum(lt.load, 3.0)) * _ln(
            rng, lt.shape, 0.05
        )

    def swap_used_mb(lt, rng):
        return np.maximum(lt.mem - 0.85, 0.0) * 4096.0 * _ln(
            rng, lt.shape, 0.3
        )

    def page_faults(lt, rng):
        return 800.0 * lt.load * (1.0 + 2.0 * np.maximum(lt.mem - 0.8, 0.0)) \
            * _ln(rng, lt.shape, 0.15)

    def heap_mb(lt, rng):
        return 4096.0 * lt.mem * (1.0 + 0.10 * np.minimum(lt.q_hv, 20.0)) \
            * _ln(rng, lt.shape, 0.05)

    def gc_time_ms(lt, rng):
        return 40.0 * lt.mem**2 * (1.0 + np.maximum(lt.mem - 0.7, 0.0) * 8.0) \
            * _ln(rng, lt.shape, 0.20)

    def gc_count(lt, rng):
        return (2.0 + 10.0 * lt.mem**2) * _ln(rng, lt.shape, 0.15)

    g = "memory"
    return [
        MetricSpec("mem.used_pct", g, used_pct),
        MetricSpec("mem.free_mb", g, free_mb),
        MetricSpec("mem.cache_mb", g, cache_mb),
        MetricSpec("mem.swap_used_mb", g, swap_used_mb),
        MetricSpec("mem.page_faults", g, page_faults),
        MetricSpec("mem.heap_mb", g, heap_mb),
        MetricSpec("mem.gc_time_ms", g, gc_time_ms),
        MetricSpec("mem.gc_count", g, gc_count),
    ]


def _disk_metrics() -> List[MetricSpec]:
    def read_ops(lt, rng):
        return 600.0 * lt.load * _ln(rng, lt.shape, 0.12)

    def write_ops(lt, rng):
        # The post stage writes results; pending archives force rewrites.
        return 450.0 * lt.load * (1.0 + 0.5 * lt.backpressure) * _ln(
            rng, lt.shape, 0.12
        )

    def read_mb(lt, rng):
        return 30.0 * lt.load * _ln(rng, lt.shape, 0.15)

    def write_mb(lt, rng):
        return 22.0 * lt.load * (1.0 + 0.5 * lt.backpressure) * _ln(
            rng, lt.shape, 0.15
        )

    def dqueue(lt, rng):
        return (0.4 + 1.5 * lt.load + 0.3 * np.minimum(lt.q_po, 30.0) / 10.0) \
            * _ln(rng, lt.shape, 0.18)

    def util_pct(lt, rng):
        return np.clip(
            100.0 * (0.15 + 0.25 * lt.load + 0.1 * lt.backpressure)
            + _n(rng, lt.shape, 2.0),
            0,
            100,
        )

    g = "disk"
    return [
        MetricSpec("disk.read_ops", g, read_ops),
        MetricSpec("disk.write_ops", g, write_ops),
        MetricSpec("disk.read_mb", g, read_mb),
        MetricSpec("disk.write_mb", g, write_mb),
        MetricSpec("disk.queue", g, dqueue),
        MetricSpec("disk.util_pct", g, util_pct),
    ]


def _network_metrics() -> List[MetricSpec]:
    def in_mbps(lt, rng):
        return 80.0 * lt.load * _ln(rng, lt.shape, 0.10)

    def out_mbps(lt, rng):
        # Output falls when post-processing is backed up.
        return 60.0 * lt.load / (1.0 + 0.15 * np.minimum(lt.q_po, 40.0)) \
            * _ln(rng, lt.shape, 0.10)

    def in_pps(lt, rng):
        return 9000.0 * lt.load * _ln(rng, lt.shape, 0.10)

    def out_pps(lt, rng):
        return 7000.0 * lt.load / (1.0 + 0.15 * np.minimum(lt.q_po, 40.0)) \
            * _ln(rng, lt.shape, 0.10)

    def retransmits(lt, rng):
        return 3.0 * lt.err_mult * (1.0 + 0.3 * lt.backpressure * 10.0) * _ln(
            rng, lt.shape, 0.3
        )

    def active_conns(lt, rng):
        return 200.0 * lt.load * (1.0 + 0.05 * np.minimum(lt.q_fe, 40.0)) \
            * _ln(rng, lt.shape, 0.08)

    g = "network"
    return [
        MetricSpec("net.in_mbps", g, in_mbps),
        MetricSpec("net.out_mbps", g, out_mbps),
        MetricSpec("net.in_pps", g, in_pps),
        MetricSpec("net.out_pps", g, out_pps),
        MetricSpec("net.tcp_retransmits", g, retransmits),
        MetricSpec("net.active_connections", g, active_conns),
    ]


def _frontend_metrics() -> List[MetricSpec]:
    def requests(lt, rng):
        return 1000.0 * lt.load * _ln(rng, lt.shape, 0.08)

    def queue(lt, rng):
        return lt.q_fe * _ln(rng, lt.shape, 0.10)

    def latency(lt, rng):
        return lt.lat_fe_ms

    def errors(lt, rng):
        return 2.0 * lt.err_mult * (1.0 + 0.1 * np.minimum(lt.q_fe, 50.0)) \
            * _ln(rng, lt.shape, 0.3)

    def threads(lt, rng):
        return (16.0 + 6.0 * np.minimum(lt.q_fe, 50.0)) * _ln(
            rng, lt.shape, 0.08
        )

    def rejected(lt, rng):
        return np.maximum(lt.q_fe - 8.0, 0.0) * 5.0 * _ln(rng, lt.shape, 0.4)

    g = "frontend"
    return [
        MetricSpec("frontend.requests", g, requests),
        MetricSpec("frontend.queue", g, queue),
        MetricSpec("frontend.latency_ms", g, latency, is_kpi=True),
        MetricSpec("frontend.errors", g, errors),
        MetricSpec("frontend.threads", g, threads),
        MetricSpec("frontend.rejected", g, rejected),
    ]


def _heavy_metrics() -> List[MetricSpec]:
    def requests(lt, rng):
        return 950.0 * lt.load / (1.0 + 0.02 * np.minimum(lt.q_hv, 50.0)) \
            * _ln(rng, lt.shape, 0.08)

    def queue(lt, rng):
        return lt.q_hv * _ln(rng, lt.shape, 0.10)

    def latency(lt, rng):
        return lt.lat_hv_ms

    def errors(lt, rng):
        return 1.5 * lt.err_mult * (1.0 + 0.1 * np.minimum(lt.q_hv, 50.0)) \
            * _ln(rng, lt.shape, 0.3)

    def threads(lt, rng):
        return (24.0 + 8.0 * np.minimum(lt.q_hv, 50.0)) * _ln(
            rng, lt.shape, 0.08
        )

    def db_time(lt, rng):
        return lt.db_ms * _ln(rng, lt.shape, 0.05)

    def db_errors(lt, rng):
        return 0.5 * lt.db_err_mult * _ln(rng, lt.shape, 0.4)

    def db_conns(lt, rng):
        return 18.0 * (1.0 + lt.db_ms / 80.0) * _ln(rng, lt.shape, 0.10)

    def cache_hit(lt, rng):
        return np.clip(
            92.0 - 10.0 * np.maximum(lt.load - 1.0, 0.0)
            + _n(rng, lt.shape, 1.5),
            0,
            100,
        )

    def lock_wait(lt, rng):
        return 4.0 * lt.lock_mult * (1.0 + 0.05 * np.minimum(lt.q_hv, 50.0)) \
            * _ln(rng, lt.shape, 0.3)

    g = "heavy"
    return [
        MetricSpec("heavy.requests", g, requests),
        MetricSpec("heavy.queue", g, queue),
        MetricSpec("heavy.latency_ms", g, latency, is_kpi=True),
        MetricSpec("heavy.errors", g, errors),
        MetricSpec("heavy.threads", g, threads),
        MetricSpec("heavy.db_time_ms", g, db_time),
        MetricSpec("heavy.db_errors", g, db_errors),
        MetricSpec("heavy.db_connections", g, db_conns),
        MetricSpec("heavy.cache_hit_pct", g, cache_hit),
        MetricSpec("heavy.lock_wait_ms", g, lock_wait),
    ]


def _post_metrics() -> List[MetricSpec]:
    def requests(lt, rng):
        return 900.0 * lt.load / (1.0 + 0.02 * np.minimum(lt.q_po, 50.0)) \
            * _ln(rng, lt.shape, 0.08)

    def queue(lt, rng):
        return lt.q_po * _ln(rng, lt.shape, 0.10)

    def latency(lt, rng):
        return lt.lat_po_ms

    def errors(lt, rng):
        return 1.2 * lt.err_mult * (1.0 + 0.1 * np.minimum(lt.q_po, 50.0)) \
            * _ln(rng, lt.shape, 0.3)

    def threads(lt, rng):
        return (20.0 + 7.0 * np.minimum(lt.q_po, 50.0)) * _ln(
            rng, lt.shape, 0.08
        )

    def pending_archive(lt, rng):
        # A backlog counter integrates any drain shortfall, so it reacts
        # steeply to even mild backpressure — the early sign that makes
        # type-B crises forecastable (Section 7).
        return 50.0 * (1.0 + 60.0 * lt.backpressure) \
            * (1.0 + 0.2 * np.minimum(lt.q_po, 50.0)) * _ln(rng, lt.shape, 0.2)

    def archive_throughput(lt, rng):
        return 850.0 * lt.load * (1.0 - lt.backpressure) * _ln(
            rng, lt.shape, 0.10
        )

    def retries(lt, rng):
        return 3.0 * lt.retry_mult * _ln(rng, lt.shape, 0.3)

    g = "post"
    return [
        MetricSpec("post.requests", g, requests),
        MetricSpec("post.queue", g, queue),
        MetricSpec("post.latency_ms", g, latency, is_kpi=True),
        MetricSpec("post.errors", g, errors),
        MetricSpec("post.threads", g, threads),
        MetricSpec("post.pending_archive", g, pending_archive),
        MetricSpec("post.archive_throughput", g, archive_throughput),
        MetricSpec("post.retries", g, retries),
    ]


def _app_metrics() -> List[MetricSpec]:
    def alerts_minor(lt, rng):
        lam = 1.0 + lt.alert_add
        return rng.poisson(np.maximum(lam, 0.0)).astype(float)

    def alerts_major(lt, rng):
        lam = 0.05 + 0.6 * lt.alert_add
        return rng.poisson(np.maximum(lam, 0.0)).astype(float)

    def error_log_rate(lt, rng):
        return 5.0 * lt.err_mult * _ln(rng, lt.shape, 0.25)

    def config_reloads(lt, rng):
        lam = 0.02 + lt.config_alert_add
        return rng.poisson(np.maximum(lam, 0.0)).astype(float)

    def retry_counter(lt, rng):
        return 8.0 * lt.retry_mult * _ln(rng, lt.shape, 0.2)

    def sessions(lt, rng):
        return 400.0 * lt.load * _ln(rng, lt.shape, 0.06)

    def auth_latency(lt, rng):
        return (12.0 + 0.2 * lt.lat_fe_ms) * _ln(rng, lt.shape, 0.12)

    def request_size(lt, rng):
        return 14.0 * _ln(rng, lt.shape, 0.10) * (1.0 + 0.05 * lt.load)

    def response_size(lt, rng):
        return 48.0 * _ln(rng, lt.shape, 0.10) * (1.0 + 0.05 * lt.load)

    def workers_busy(lt, rng):
        return np.clip(
            64.0 * (0.3 + 0.6 * lt.cpu) * _ln(rng, lt.shape, 0.08), 0, 64
        )

    g = "app"
    return [
        MetricSpec("app.alerts_minor", g, alerts_minor),
        MetricSpec("app.alerts_major", g, alerts_major),
        MetricSpec("app.error_log_rate", g, error_log_rate),
        MetricSpec("app.config_reloads", g, config_reloads),
        MetricSpec("app.retry_counter", g, retry_counter),
        MetricSpec("app.sessions", g, sessions),
        MetricSpec("app.auth_latency_ms", g, auth_latency),
        MetricSpec("app.request_size_kb", g, request_size),
        MetricSpec("app.response_size_kb", g, response_size),
        MetricSpec("app.workers_busy", g, workers_busy),
    ]


def _noise_metric(index: int) -> MetricSpec:
    """Stationary irrelevant metric; distribution family varies by index."""
    family = index % 3
    scale = 10.0 * (1 + index % 5)

    if family == 0:
        def fn(lt, rng, scale=scale):
            return scale + rng.normal(0.0, scale * 0.15, lt.shape)
    elif family == 1:
        def fn(lt, rng, scale=scale):
            return scale * np.exp(rng.normal(0.0, 0.3, lt.shape))
    else:
        def fn(lt, rng, scale=scale):
            return rng.gamma(2.0, scale / 2.0, lt.shape)

    return MetricSpec(f"misc.noise_{index:02d}", "noise", fn)


def _periodic_metric(index: int) -> MetricSpec:
    """Irrelevant metric with its own diurnal cycle and day-level swings.

    Batch jobs, report generation, backup traffic: strongly time-of-day
    dependent series whose overall level varies from day to day.  Since
    crises occur during business hours, these metrics sit near their daily
    peak at crisis time and read hot whenever their *day* runs high —
    pollution that hits all-metrics fingerprints far above the 4% base
    rate, while per-machine feature selection (whose training windows span
    only a few hours) sees no contrast and ignores them.
    """

    def fn(lt, rng, index=index):
        if index >= lt.periodic.shape[1]:
            raise ValueError(
                f"periodic metric {index} needs series of width "
                f">= {index + 1}, got {lt.periodic.shape[1]}"
            )
        base = lt.periodic[:, index][:, None]
        return base * np.exp(rng.normal(0.0, 0.05, lt.shape))

    return MetricSpec(f"misc.periodic_{index:02d}", "periodic", fn)


def _drift_metric(index: int) -> MetricSpec:
    """Irrelevant metric tied to a global random-walk series.

    These wander in and out of their historical range for long stretches,
    so their hot/cold summaries flip in patterns uncorrelated with crises —
    exactly the pollution that degrades the all-metrics baseline.
    """

    def fn(lt, rng, index=index):
        if index >= lt.drift.shape[1]:
            raise ValueError(
                f"drift metric {index} needs drift series of width "
                f">= {index + 1}, got {lt.drift.shape[1]}"
            )
        base = lt.drift[:, index][:, None]
        return base * np.exp(rng.normal(0.0, 0.05, lt.shape))

    return MetricSpec(f"misc.drift_{index:02d}", "drift", fn)


def build_catalog(
    n_noise: int = 20, n_drift: int = 15, n_periodic: int = 30
) -> "MetricCatalog":
    """Assemble the catalog: 60 structural + noise/drift/periodic junk."""
    specs: List[MetricSpec] = []
    specs += _cpu_metrics()
    specs += _memory_metrics()
    specs += _disk_metrics()
    specs += _network_metrics()
    specs += _frontend_metrics()
    specs += _heavy_metrics()
    specs += _post_metrics()
    specs += _app_metrics()
    specs += [_noise_metric(i) for i in range(n_noise)]
    specs += [_drift_metric(i) for i in range(n_drift)]
    specs += [_periodic_metric(i) for i in range(n_periodic)]
    return MetricCatalog(specs, n_drift=n_drift)


@dataclass
class MetricCatalog:
    """Ordered collection of metric specs with name/KPI lookups."""

    specs: List[MetricSpec]
    n_drift: int = 0
    _index: Dict[str, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        names = [s.name for s in self.specs]
        if len(set(names)) != len(names):
            raise ValueError("duplicate metric names in catalog")
        self._index = {name: i for i, name in enumerate(names)}

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    @property
    def names(self) -> List[str]:
        return [s.name for s in self.specs]

    @property
    def kpi_indices(self) -> List[int]:
        return [i for i, s in enumerate(self.specs) if s.is_kpi]

    @property
    def kpi_names(self) -> List[str]:
        return [s.name for s in self.specs if s.is_kpi]

    def index_of(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(f"unknown metric {name!r}") from None

    def evaluate(
        self, latents: Latents, rng: np.random.Generator
    ) -> np.ndarray:
        """Evaluate every metric: returns ``(n_epochs, n_machines, n_metrics)``."""
        n_epochs, n_machines = latents.shape
        out = np.empty((n_epochs, n_machines, len(self.specs)))
        for k, spec in enumerate(self.specs):
            values = spec.fn(latents, rng)
            if values.shape != (n_epochs, n_machines):
                raise ValueError(
                    f"metric {spec.name} produced shape {values.shape}"
                )
            out[:, :, k] = values
        return out


__all__ = ["MetricCatalog", "MetricSpec", "build_catalog"]
