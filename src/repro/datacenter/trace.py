"""Generated-trace container.

A :class:`DatacenterTrace` is everything the fingerprinting pipeline is
allowed to see, in the same shape the paper's monitoring system provides:

* per-epoch datacenter-wide metric quantiles (never the full raw telemetry —
  that is the whole point of the representation),
* per-epoch KPI violation fractions and the resulting anomaly mask,
* raw per-machine metric windows *around crises only* (the paper's operators
  kept raw data near incidents; feature selection needs it), and
* the crisis records themselves with ground-truth labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.datacenter.crises import CrisisInstance
from repro.datacenter.sla import SLAPolicy


@dataclass
class RawWindow:
    """Raw per-machine telemetry around one crisis.

    ``values`` has shape ``(n_window_epochs, n_machines, n_metrics)`` and
    ``violations`` is the per-machine any-KPI SLA violation flag for the same
    epochs; ``start_epoch`` anchors the window on the trace timeline.
    """

    start_epoch: int
    values: np.ndarray
    violations: np.ndarray

    def __post_init__(self) -> None:
        if self.values.ndim != 3:
            raise ValueError("values must be 3-D")
        if self.violations.shape != self.values.shape[:2]:
            raise ValueError("violations shape mismatch")

    @property
    def n_epochs(self) -> int:
        return self.values.shape[0]

    @property
    def end_epoch(self) -> int:
        return self.start_epoch + self.n_epochs

    def epoch_rows(self, epochs: Sequence[int]) -> np.ndarray:
        """Window-local row indices of the given absolute epochs."""
        rows = np.asarray(epochs, dtype=int) - self.start_epoch
        if np.any(rows < 0) or np.any(rows >= self.n_epochs):
            raise IndexError("epoch outside raw window")
        return rows


@dataclass
class CrisisRecord:
    """One crisis: injected ground truth plus its detection outcome."""

    index: int
    instance: CrisisInstance
    detected_epoch: Optional[int]
    raw: Optional[RawWindow] = None

    @property
    def label(self) -> str:
        """Ground-truth type code (operators' post-hoc diagnosis)."""
        return self.instance.type_code

    @property
    def labeled(self) -> bool:
        return self.instance.labeled

    @property
    def detected(self) -> bool:
        return self.detected_epoch is not None


@dataclass
class DatacenterTrace:
    """Complete simulated dataset for one run of the datacenter."""

    metric_names: List[str]
    quantile_levels: Tuple[float, ...]
    quantiles: np.ndarray  # (n_epochs, n_metrics, n_quantiles)
    anomalous: np.ndarray  # (n_epochs,) epoch-level crisis condition
    kpi_violation_fraction: np.ndarray  # (n_epochs, n_kpis)
    sla: SLAPolicy
    crises: List[CrisisRecord] = field(default_factory=list)
    n_machines: int = 0
    epochs_per_day: int = 96

    def __post_init__(self) -> None:
        n_epochs = self.quantiles.shape[0]
        if self.quantiles.ndim != 3:
            raise ValueError("quantiles must be 3-D")
        if self.quantiles.shape[1] != len(self.metric_names):
            raise ValueError("metric name count mismatch")
        if self.quantiles.shape[2] != len(self.quantile_levels):
            raise ValueError("quantile level count mismatch")
        if self.anomalous.shape != (n_epochs,):
            raise ValueError("anomalous mask shape mismatch")
        if self.kpi_violation_fraction.shape[0] != n_epochs:
            raise ValueError("KPI fraction shape mismatch")

    @property
    def n_epochs(self) -> int:
        return self.quantiles.shape[0]

    @property
    def n_metrics(self) -> int:
        return self.quantiles.shape[1]

    @property
    def n_quantiles(self) -> int:
        return self.quantiles.shape[2]

    @property
    def kpi_names(self) -> List[str]:
        return [k.name for k in self.sla.kpis]

    @property
    def kpi_metric_indices(self) -> List[int]:
        return list(self.sla.metric_indices)

    @property
    def labeled_crises(self) -> List[CrisisRecord]:
        return [c for c in self.crises if c.labeled and c.detected]

    @property
    def bootstrap_crises(self) -> List[CrisisRecord]:
        return [c for c in self.crises if not c.labeled and c.detected]

    @property
    def detected_crises(self) -> List[CrisisRecord]:
        return [c for c in self.crises if c.detected]

    def crisis_free_mask(self, margin: int = 0) -> np.ndarray:
        """Epochs with no crisis in progress (optionally with a margin)."""
        mask = ~self.anomalous.copy()
        if margin > 0:
            bad = np.flatnonzero(self.anomalous)
            for e in bad:
                lo = max(e - margin, 0)
                hi = min(e + margin + 1, self.n_epochs)
                mask[lo:hi] = False
        return mask

    def quantile_window(self, start: int, stop: int) -> np.ndarray:
        """Quantile summaries for epochs ``[start, stop)`` (clipped)."""
        start = max(start, 0)
        stop = min(stop, self.n_epochs)
        if start >= stop:
            raise IndexError("empty quantile window")
        return self.quantiles[start:stop]

    def threshold_history(
        self, end_epoch: int, window_epochs: int
    ) -> np.ndarray:
        """Crisis-free quantile history in the trailing window before
        ``end_epoch`` — the input to hot/cold threshold estimation."""
        start = max(end_epoch - window_epochs, 0)
        sel = ~self.anomalous[start:end_epoch]
        return self.quantiles[start:end_epoch][sel]


__all__ = ["CrisisRecord", "DatacenterTrace", "RawWindow"]
