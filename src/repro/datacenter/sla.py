"""Key performance indicators, SLAs, and crisis detection.

The datacenter's operators designate three KPIs — the average processing
time of the front-end, the heavy second stage, and one post-processing stage
— and declare a performance crisis when 10% of machines violate any KPI's
SLA (Section 4.1).  We keep that definition verbatim.

SLA thresholds are "a matter of business policy" in the paper; here they are
calibrated from a crisis-free reference period as a high percentile of
per-machine KPI values with a safety margin, which yields the same
operational property: normal operation essentially never trips the 10%
detector, crises reliably do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class KPIDefinition:
    """One KPI: a metric index plus its SLA threshold (violate if above)."""

    name: str
    metric_index: int
    threshold: float

    def __post_init__(self) -> None:
        if self.metric_index < 0:
            raise ValueError("metric_index must be non-negative")
        if not np.isfinite(self.threshold) or self.threshold <= 0:
            raise ValueError("threshold must be positive and finite")


@dataclass(frozen=True)
class SLAPolicy:
    """The KPI set plus the fleet-fraction rule that declares a crisis."""

    kpis: Tuple[KPIDefinition, ...]
    violation_fraction: float = 0.10

    def __post_init__(self) -> None:
        if not self.kpis:
            raise ValueError("at least one KPI required")
        if not 0.0 < self.violation_fraction <= 1.0:
            raise ValueError("violation_fraction must lie in (0, 1]")

    @property
    def metric_indices(self) -> List[int]:
        return [k.metric_index for k in self.kpis]

    @property
    def thresholds(self) -> np.ndarray:
        return np.array([k.threshold for k in self.kpis])

    def machine_violations(self, values: np.ndarray) -> np.ndarray:
        """Per-machine any-KPI violation flags.

        Parameters
        ----------
        values:
            Raw metric values, shape ``(n_epochs, n_machines, n_metrics)``.

        Returns
        -------
        Boolean array ``(n_epochs, n_machines)``.
        """
        values = np.asarray(values)
        kpi_vals = values[:, :, self.metric_indices]
        return np.any(kpi_vals > self.thresholds[None, None, :], axis=2)

    def per_kpi_violation_fraction(self, values: np.ndarray) -> np.ndarray:
        """Fraction of machines violating each KPI: ``(n_epochs, n_kpis)``."""
        values = np.asarray(values)
        kpi_vals = values[:, :, self.metric_indices]
        return np.mean(kpi_vals > self.thresholds[None, None, :], axis=1)

    def epoch_anomalous(self, per_kpi_fraction: np.ndarray) -> np.ndarray:
        """Epoch-level crisis condition: any KPI violated on >=10% of machines."""
        per_kpi_fraction = np.asarray(per_kpi_fraction)
        return np.any(per_kpi_fraction >= self.violation_fraction, axis=-1)

    @staticmethod
    def calibrate(
        kpi_names: Sequence[str],
        kpi_indices: Sequence[int],
        reference_values: np.ndarray,
        percentile: float = 99.9,
        margin: float = 1.3,
        violation_fraction: float = 0.10,
    ) -> "SLAPolicy":
        """Set SLA thresholds from crisis-free reference telemetry.

        ``reference_values`` is ``(n_epochs, n_machines, n_kpis)`` of raw KPI
        values observed during normal operation.  The threshold for each KPI
        is its ``percentile`` across all machine-epochs times ``margin``.
        """
        reference_values = np.asarray(reference_values)
        if reference_values.ndim != 3:
            raise ValueError("reference_values must be 3-D")
        if reference_values.shape[2] != len(kpi_names):
            raise ValueError("KPI count mismatch")
        kpis = []
        for j, (name, idx) in enumerate(zip(kpi_names, kpi_indices)):
            flat = reference_values[:, :, j].ravel()
            threshold = float(np.percentile(flat, percentile)) * margin
            kpis.append(KPIDefinition(name, idx, threshold))
        return SLAPolicy(tuple(kpis), violation_fraction)


@dataclass(frozen=True)
class DetectedCrisis:
    """A maximal run of anomalous epochs, matched to its injected cause."""

    detected_epoch: int
    last_epoch: int  # final anomalous epoch of the run (inclusive)
    schedule_index: Optional[int]  # index into the injected schedule, if any

    @property
    def duration_epochs(self) -> int:
        return self.last_epoch - self.detected_epoch + 1


def detect_crises(
    anomalous: np.ndarray,
    injected_spans: Sequence[Tuple[int, int]],
    merge_gap: int = 2,
    match_slack: int = 4,
) -> List[DetectedCrisis]:
    """Turn the epoch-level anomaly mask into detected crisis events.

    Maximal anomalous runs separated by at most ``merge_gap`` normal epochs
    are merged (a crisis briefly dipping under the 10% line is still one
    crisis).  Each run is matched to the injected crisis whose span
    (extended by ``match_slack`` epochs) overlaps it; unmatched runs get
    ``schedule_index=None`` (spurious detections, which the operators would
    triage as noise).
    """
    anomalous = np.asarray(anomalous, dtype=bool)
    runs: List[List[int]] = []
    start = None
    for e, flag in enumerate(anomalous):
        if flag and start is None:
            start = e
        elif not flag and start is not None:
            runs.append([start, e - 1])
            start = None
    if start is not None:
        runs.append([start, len(anomalous) - 1])

    merged: List[List[int]] = []
    for run in runs:
        if merged and run[0] - merged[-1][1] - 1 <= merge_gap:
            merged[-1][1] = run[1]
        else:
            merged.append(run)

    detected: List[DetectedCrisis] = []
    for lo, hi in merged:
        match = None
        for idx, (s, e) in enumerate(injected_spans):
            if lo < e + match_slack and hi >= s - match_slack:
                match = idx
                break
        detected.append(DetectedCrisis(lo, hi, match))
    return detected


__all__ = [
    "KPIDefinition",
    "SLAPolicy",
    "DetectedCrisis",
    "detect_crises",
]
