"""Named simulation scenarios.

Factory functions for the configurations used throughout the tests,
benchmarks, and examples, so every entry point agrees on what "paper
scale" means.  All scenarios only differ in scale and junk composition;
the generative model is identical.
"""

from __future__ import annotations

from repro.datacenter.simulator import SimulationConfig


def paper_scale(seed: int = 7, n_machines: int = 40) -> SimulationConfig:
    """The benchmark configuration: 240 days of history before a 120-day
    labeled period — enough for the paper's 240-day threshold window —
    with 20 undiagnosed bootstrap crises and Table 1's 19 labeled ones."""
    return SimulationConfig(
        n_machines=n_machines,
        seed=seed,
        warmup_days=30,
        bootstrap_days=210,
        labeled_days=120,
        n_bootstrap_crises=20,
        chunk_days=5,
    )


def quick(seed: int = 7, n_machines: int = 40) -> SimulationConfig:
    """A few-minute configuration for examples and exploration: shorter
    history (use threshold windows <= 60 days) but the full crisis
    catalog."""
    return SimulationConfig(
        n_machines=n_machines,
        seed=seed,
        warmup_days=35,
        bootstrap_days=60,
        labeled_days=90,
        n_bootstrap_crises=10,
    )


def tiny(seed: int = 1234) -> SimulationConfig:
    """The unit-test configuration: small fleet, reduced junk families,
    still covering warmup + bootstrap + all 19 labeled crises."""
    return SimulationConfig(
        n_machines=24,
        seed=seed,
        warmup_days=20,
        bootstrap_days=45,
        labeled_days=60,
        n_bootstrap_crises=5,
        n_noise_metrics=12,
        n_drift_metrics=8,
        chunk_days=5,
    )


def clean_metrics(seed: int = 7, n_machines: int = 40) -> SimulationConfig:
    """Ablation: no junk metrics at all.  Feature selection should barely
    matter on this configuration — comparing it against :func:`quick`
    isolates how much of the all-metrics baseline's deficit comes from
    irrelevant-metric pollution."""
    return SimulationConfig(
        n_machines=n_machines,
        seed=seed,
        warmup_days=35,
        bootstrap_days=60,
        labeled_days=90,
        n_bootstrap_crises=10,
        n_noise_metrics=0,
        n_drift_metrics=0,
        n_periodic_metrics=0,
    )


def junk_heavy(seed: int = 7, n_machines: int = 40) -> SimulationConfig:
    """Ablation: twice the junk.  Stresses relevant-metric selection and
    widens the fingerprints-vs-all-metrics gap."""
    return SimulationConfig(
        n_machines=n_machines,
        seed=seed,
        warmup_days=35,
        bootstrap_days=60,
        labeled_days=90,
        n_bootstrap_crises=10,
        n_noise_metrics=40,
        n_drift_metrics=30,
        n_periodic_metrics=60,
    )


def large_fleet(seed: int = 7) -> SimulationConfig:
    """A 200-machine fleet: the representation (and accuracy) should be
    unchanged, per the paper's scaling argument — only generation cost
    grows."""
    return SimulationConfig(
        n_machines=200,
        seed=seed,
        warmup_days=35,
        bootstrap_days=60,
        labeled_days=90,
        n_bootstrap_crises=10,
    )


SCENARIOS = {
    "paper-scale": paper_scale,
    "quick": quick,
    "tiny": tiny,
    "clean-metrics": clean_metrics,
    "junk-heavy": junk_heavy,
    "large-fleet": large_fleet,
}


__all__ = [
    "SCENARIOS",
    "clean_metrics",
    "junk_heavy",
    "large_fleet",
    "paper_scale",
    "quick",
    "tiny",
]
