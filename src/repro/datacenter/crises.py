"""Crisis types, instances, effect fields, and schedules.

Table 1 of the paper lists ten crisis types observed in the production
datacenter.  Each type here perturbs a characteristic subset of *effect
channels* (stage demand/capacity multipliers, database latency, downstream
backpressure, error rates, ...).  The machine model turns effect channels
into latent state, and the metric catalog turns latents into the ~100 metrics
the fingerprinting method consumes — so each crisis type produces a
distinctive but noisy metric pattern, with per-instance jitter making two
instances of the same type similar yet never identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.telemetry.epochs import EpochClock

#: Effect channels and their neutral values.  Multiplicative channels are
#: neutral at 1.0, additive ones at 0.0.
_MULTIPLICATIVE = (
    "load_mult",
    "demand_fe",
    "demand_hv",
    "demand_po",
    "cap_fe",
    "cap_hv",
    "cap_po",
    "err_mult",
    "db_err_mult",
    "retry_mult",
    "lock_mult",
)
_ADDITIVE = (
    "db_add_ms",
    "backpressure",
    "cpu_add",
    "mem_add",
    "alert_add",
    "config_alert_add",
)

CHANNELS: Tuple[str, ...] = _MULTIPLICATIVE + _ADDITIVE


class EffectFields:
    """Per-(epoch, machine) crisis effect channels for one chunk of epochs.

    All channels are dense float arrays of shape ``(n_epochs, n_machines)``;
    crisis applications compose multiplicatively or additively so overlapping
    effects (rare but legal) combine sensibly.
    """

    def __init__(self, n_epochs: int, n_machines: int):
        if n_epochs <= 0 or n_machines <= 0:
            raise ValueError("dimensions must be positive")
        self.n_epochs = n_epochs
        self.n_machines = n_machines
        shape = (n_epochs, n_machines)
        for name in _MULTIPLICATIVE:
            setattr(self, name, np.ones(shape))
        for name in _ADDITIVE:
            setattr(self, name, np.zeros(shape))

    def is_neutral(self) -> bool:
        """True when no effect has been applied anywhere."""
        return all(
            np.all(getattr(self, name) == 1.0) for name in _MULTIPLICATIVE
        ) and all(np.all(getattr(self, name) == 0.0) for name in _ADDITIVE)


@dataclass(frozen=True)
class CrisisInstance:
    """One occurrence of a crisis type in the trace timeline.

    All stochastic per-instance choices (duration, intensity, affected
    machines) are fixed at schedule-construction time so chunked generation
    is deterministic and order-independent.
    """

    type_code: str
    start_epoch: int
    duration_epochs: int
    intensity: float
    machines: np.ndarray  # indices of affected machines
    labeled: bool = True
    seed: int = 0  # per-instance stream for secondary-effect jitter

    def __post_init__(self) -> None:
        if self.start_epoch < 0:
            raise ValueError("start_epoch must be non-negative")
        if self.duration_epochs <= 0:
            raise ValueError("duration_epochs must be positive")
        if self.intensity <= 0:
            raise ValueError("intensity must be positive")

    @property
    def end_epoch(self) -> int:
        """First epoch after the crisis."""
        return self.start_epoch + self.duration_epochs

    def overlaps(self, start: int, stop: int) -> bool:
        return self.start_epoch < stop and self.end_epoch > start

    def jitter(self) -> "EffectJitter":
        """Deterministic per-instance secondary-effect variation.

        Apply functions draw from this in a fixed order, so chunked
        generation applies identical effects however the timeline is split.
        """
        return EffectJitter(np.random.default_rng([0xC415, self.seed]))


class EffectJitter:
    """Per-instance variation of a crisis type's side effects.

    Real crises sharing one root cause differ in their secondary symptoms:
    an overload may or may not trip operator alerts, a config error's
    error-log flood varies in volume.  ``primary()`` mildly scales a core
    effect; ``secondary()`` scales a marker effect and occasionally drops it
    entirely.  This within-type variation keeps identification from being
    trivially easy for methods that latch onto a handful of features.
    """

    def __init__(self, rng: np.random.Generator, dropout: float = 0.05):
        self._rng = rng
        self.dropout = dropout

    def primary(self) -> float:
        return float(self._rng.lognormal(0.0, 0.10))

    def secondary(self) -> float:
        scale = float(self._rng.lognormal(0.0, 0.4))
        present = bool(self._rng.uniform() >= self.dropout)
        return scale if present else 0.0


def _ramp(rel: np.ndarray, ramp_epochs: int = 2) -> np.ndarray:
    """Effect ramp: reaches full intensity after ``ramp_epochs`` epochs.

    A two-epoch ramp (half strength in the first 15 minutes) also aligns
    detection consistently: the half-strength epoch rarely trips the 10%
    rule, so the detection epoch lands on the first fully-expressed epoch
    for almost every crisis, which keeps partial fingerprints of same-type
    crises comparable.
    """
    return np.minimum(1.0, (rel + 1.0) / float(ramp_epochs))


ApplyFn = Callable[[EffectFields, np.ndarray, np.ndarray, CrisisInstance], None]


@dataclass(frozen=True)
class CrisisType:
    """A parameterized failure mode (one row of Table 1)."""

    code: str
    description: str
    affected_fraction: float
    duration_range: Tuple[int, int]
    apply_fn: ApplyFn

    def apply(
        self,
        fields: EffectFields,
        rows: np.ndarray,
        rel: np.ndarray,
        instance: CrisisInstance,
    ) -> None:
        """Apply this type's effects to chunk rows ``rows``.

        ``rel`` holds each row's epoch offset from the crisis start.
        """
        if rows.size:
            self.apply_fn(fields, rows, rel, instance)


def _scale(
    arr: np.ndarray,
    rows: np.ndarray,
    machines: np.ndarray,
    factor: float,
    ramp: np.ndarray,
) -> None:
    """Multiply arr[rows, machines] by a ramped factor."""
    delta = (factor - 1.0) * ramp
    arr[np.ix_(rows, machines)] *= 1.0 + delta[:, None]


def _add(
    arr: np.ndarray,
    rows: np.ndarray,
    machines: np.ndarray,
    amount: float,
    ramp: np.ndarray,
) -> None:
    arr[np.ix_(rows, machines)] += amount * ramp[:, None]


def _apply_overloaded_frontend(fields, rows, rel, inst):
    """Type A: front-end demand surge — FE queue/latency hot, CPU up."""
    i, jt = inst.intensity, inst.jitter()
    r = _ramp(rel)
    _scale(fields.demand_fe, rows, inst.machines,
           1.0 + 3.2 * i * jt.primary(), r)
    _scale(fields.err_mult, rows, inst.machines,
           1.0 + 1.5 * i * jt.secondary(), r)
    _add(fields.alert_add, rows, inst.machines, 5.0 * i * jt.secondary(), r)


def _apply_overloaded_backend(fields, rows, rel, inst):
    """Type B: downstream datacenter backs up the post-processing stage.

    Unlike the step-change failure modes, a downstream backlog *builds*:
    backpressure ramps over ten epochs (2.5 h), so the epochs before the
    SLA detector fires already carry early signs — the behaviour behind
    the paper's encouraging type-B forecasting results (Section 7).
    """
    i, jt = inst.intensity, inst.jitter()
    r = _ramp(rel, ramp_epochs=10)
    _add(fields.backpressure, rows, inst.machines,
         min(0.85 * i * jt.primary(), 0.95), r)
    _scale(fields.demand_po, rows, inst.machines,
           1.0 + 0.4 * i * jt.secondary(), r)
    _scale(fields.retry_mult, rows, inst.machines,
           1.0 + 3.0 * i * jt.secondary(), r)
    _add(fields.alert_add, rows, inst.machines, 5.0 * i * jt.secondary(), r)


def _apply_db_config_error(fields, rows, rel, inst):
    """Type C: database misconfiguration — DB waits dominate, CPU idles."""
    i, jt = inst.intensity, inst.jitter()
    r = _ramp(rel)
    _add(fields.db_add_ms, rows, inst.machines,
         3500.0 * i * jt.primary(), r)
    _scale(fields.db_err_mult, rows, inst.machines,
           1.0 + 6.0 * i * jt.secondary(), r)
    _add(fields.cpu_add, rows, inst.machines, -0.12 * i * jt.secondary(), r)
    _add(fields.config_alert_add, rows, inst.machines,
         2.0 * i * jt.secondary(), r)


def _apply_config_error_1(fields, rows, rel, inst):
    """Type D: bad front-end config collapses capacity, floods error logs."""
    i, jt = inst.intensity, inst.jitter()
    r = _ramp(rel)
    _scale(fields.cap_fe, rows, inst.machines,
           max(1.0 - 0.88 * i * min(jt.primary(), 1.1), 0.08), r)
    _scale(fields.err_mult, rows, inst.machines,
           1.0 + 2.2 * i * jt.secondary(), r)
    _add(fields.config_alert_add, rows, inst.machines,
         3.0 * i * jt.secondary(), r)


def _apply_config_error_2(fields, rows, rel, inst):
    """Type E: bad post-processing config — retries and PO saturation."""
    i, jt = inst.intensity, inst.jitter()
    r = _ramp(rel)
    _scale(fields.cap_po, rows, inst.machines,
           max(1.0 - 0.85 * i * min(jt.primary(), 1.1), 0.08), r)
    _scale(fields.retry_mult, rows, inst.machines,
           1.0 + 5.0 * i * jt.secondary(), r)
    _scale(fields.err_mult, rows, inst.machines,
           1.0 + 1.5 * i * jt.secondary(), r)
    _add(fields.config_alert_add, rows, inst.machines,
         2.0 * i * jt.secondary(), r)


def _apply_performance_issue(fields, rows, rel, inst):
    """Type F: runtime regression — CPU and GC overhead, slower heavy stage."""
    i, jt = inst.intensity, inst.jitter()
    r = _ramp(rel)
    _add(fields.cpu_add, rows, inst.machines, 0.35 * i * jt.secondary(), r)
    _add(fields.mem_add, rows, inst.machines, 0.25 * i * jt.secondary(), r)
    _scale(fields.cap_hv, rows, inst.machines,
           max(1.0 - 0.70 * i * min(jt.primary(), 1.2), 0.12), r)


def _apply_middle_tier_issue(fields, rows, rel, inst):
    """Type G: heavy-stage (middle tier) capacity collapse, lock contention."""
    i, jt = inst.intensity, inst.jitter()
    r = _ramp(rel)
    _scale(fields.cap_hv, rows, inst.machines,
           max(1.0 - 0.70 * i * min(jt.primary(), 1.2), 0.1), r)
    _scale(fields.lock_mult, rows, inst.machines,
           1.0 + 5.0 * i * jt.secondary(), r)
    _add(fields.alert_add, rows, inst.machines, 3.0 * i * jt.secondary(), r)


def _apply_routing_error(fields, rows, rel, inst):
    """Type H: request routing error — a minority of machines gets flooded.

    Affected machines receive several times their share of traffic; the rest
    starve.  Distinctive quantile pattern: 95th percentiles go hot while 25th
    percentiles go cold for the same metrics.
    """
    i, jt = inst.intensity, inst.jitter()
    r = _ramp(rel)
    n = fields.n_machines
    others = np.setdiff1d(np.arange(n), inst.machines, assume_unique=False)
    _scale(fields.load_mult, rows, inst.machines,
           1.0 + 2.8 * i * jt.primary(), r)
    if others.size:
        _scale(fields.load_mult, rows, others, max(1.0 - 0.65 * i, 0.1), r)
    _scale(fields.err_mult, rows, inst.machines,
           1.0 + 2.0 * i * jt.secondary(), r)


def _apply_dc_power_cycle(fields, rows, rel, inst):
    """Type I: whole datacenter turned off and on.

    First ~40% of the crisis is an outage (load collapses everywhere), the
    remainder a recovery surge as buffered demand returns.
    """
    i = inst.intensity
    outage_end = max(int(round(inst.duration_epochs * 0.4)), 1)
    outage = rel < outage_end
    surge = ~outage
    all_machines = np.arange(fields.n_machines)
    if np.any(outage):
        _scale(
            fields.load_mult,
            rows[outage],
            all_machines,
            0.03,
            np.ones(int(outage.sum())),
        )
        _add(
            fields.alert_add,
            rows[outage],
            all_machines,
            3.0,
            np.ones(int(outage.sum())),
        )
    if np.any(surge):
        r = _ramp(rel[surge] - outage_end)
        _scale(fields.load_mult, rows[surge], all_machines, 1.0 + 1.9 * i, r)
        _add(fields.alert_add, rows[surge], all_machines, 2.0 * i, r)


def _apply_workload_spike(fields, rows, rel, inst):
    """Type J: global workload spike — all stages loaded proportionally."""
    i = inst.intensity
    r = _ramp(rel)
    all_machines = np.arange(fields.n_machines)
    _scale(fields.load_mult, rows, all_machines, 1.0 + 1.8 * i, r)


#: Registry of the ten crisis types of Table 1.
CRISIS_TYPES: Dict[str, CrisisType] = {
    t.code: t
    for t in (
        CrisisType("A", "overloaded front-end", 0.65, (5, 10),
                   _apply_overloaded_frontend),
        CrisisType("B", "overloaded back-end", 0.65, (6, 14),
                   _apply_overloaded_backend),
        CrisisType("C", "database configuration error", 0.65, (4, 9),
                   _apply_db_config_error),
        CrisisType("D", "configuration error 1", 0.65, (4, 9),
                   _apply_config_error_1),
        CrisisType("E", "configuration error 2", 0.65, (4, 9),
                   _apply_config_error_2),
        CrisisType("F", "performance issue", 0.65, (5, 10),
                   _apply_performance_issue),
        CrisisType("G", "middle-tier issue", 0.65, (5, 10),
                   _apply_middle_tier_issue),
        CrisisType("H", "request routing error", 0.25, (4, 9),
                   _apply_routing_error),
        CrisisType("I", "whole DC turned off and on", 1.0, (6, 10),
                   _apply_dc_power_cycle),
        CrisisType("J", "workload spike", 1.0, (5, 10),
                   _apply_workload_spike),
    )
}

#: Table 1 instance counts for the labeled (January-April) period.
TABLE1_LABELED_COUNTS: Dict[str, int] = {
    "A": 2, "B": 9, "C": 1, "D": 1, "E": 1,
    "F": 1, "G": 1, "H": 1, "I": 1, "J": 1,
}


@dataclass
class CrisisSchedule:
    """Chronologically sorted crisis instances for one trace."""

    instances: List[CrisisInstance] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.instances.sort(key=lambda c: c.start_epoch)
        for prev, nxt in zip(self.instances, self.instances[1:]):
            if nxt.start_epoch < prev.end_epoch:
                raise ValueError(
                    f"overlapping crises at epochs {prev.start_epoch} "
                    f"and {nxt.start_epoch}"
                )

    def __len__(self) -> int:
        return len(self.instances)

    def __iter__(self):
        return iter(self.instances)

    def in_range(self, start: int, stop: int) -> List[CrisisInstance]:
        """Instances overlapping epoch range ``[start, stop)``."""
        return [c for c in self.instances if c.overlaps(start, stop)]

    def crisis_epochs_mask(self, n_epochs: int, margin: int = 0) -> np.ndarray:
        """Boolean mask of epochs inside (or within ``margin`` of) a crisis."""
        mask = np.zeros(n_epochs, dtype=bool)
        for c in self.instances:
            lo = max(c.start_epoch - margin, 0)
            hi = min(c.end_epoch + margin, n_epochs)
            mask[lo:hi] = True
        return mask

    @staticmethod
    def _make_instance(
        type_code: str,
        start_epoch: int,
        n_machines: int,
        rng: np.random.Generator,
        labeled: bool,
    ) -> CrisisInstance:
        ctype = CRISIS_TYPES[type_code]
        lo, hi = ctype.duration_range
        duration = int(rng.integers(lo, hi + 1))
        intensity = float(rng.uniform(0.9, 1.1))
        # Which fraction of the fleet a failure touches varies a lot between
        # occurrences of the same root cause; this is what keeps the
        # KPI-only representation (violating-machine counts) from
        # identifying crises reliably.
        frac = np.clip(
            ctype.affected_fraction * rng.uniform(0.85, 1.15), 0.05, 1.0
        )
        n_affected = max(int(round(frac * n_machines)), 1)
        machines = np.sort(
            rng.choice(n_machines, size=min(n_affected, n_machines),
                       replace=False)
        )
        return CrisisInstance(
            type_code=type_code,
            start_epoch=start_epoch,
            duration_epochs=duration,
            intensity=intensity,
            machines=machines,
            labeled=labeled,
            seed=int(rng.integers(2**31)),
        )

    @classmethod
    def paper_timeline(
        cls,
        n_machines: int,
        clock: EpochClock,
        rng: np.random.Generator,
        warmup_days: int = 30,
        bootstrap_days: int = 210,
        labeled_days: int = 120,
        n_bootstrap: int = 20,
        labeled_counts: Dict[str, int] = None,
        min_gap_days: float = 2.0,
    ) -> "CrisisSchedule":
        """Build the paper's timeline: 20 unlabeled then 19 labeled crises.

        Days ``[0, warmup_days)`` are crisis-free (threshold warm-up);
        ``n_bootstrap`` unlabeled crises land in the bootstrap period
        (the paper's September-December), and the labeled crises with
        Table 1 type counts land in the final ``labeled_days`` (the paper's
        January-April).
        """
        if labeled_counts is None:
            labeled_counts = dict(TABLE1_LABELED_COUNTS)
        per_day = clock.per_day
        gap = int(round(min_gap_days * per_day))

        def _place(n_events: int, lo_day: int, hi_day: int) -> List[int]:
            lo = lo_day * per_day
            hi = hi_day * per_day
            span = hi - lo
            spacing = span / n_events
            if spacing <= gap:
                raise ValueError("period too short for requested crises")
            # One slot per event; jitter stays inside the slot minus the gap,
            # so consecutive starts (including across period boundaries) are
            # always at least ``gap`` epochs apart.  Starts are then snapped
            # into business hours (09:00-17:00): every crisis in the paper's
            # dataset was, by definition, detected through SLA violations,
            # and load-dependent failure modes only violate SLAs under load.
            starts = []
            for i in range(n_events):
                slot_lo = lo + i * spacing
                start = int(slot_lo + rng.uniform(0, spacing - gap))
                day_start = (start // per_day) * per_day
                tod = int(rng.integers(9 * per_day // 24, 17 * per_day // 24))
                starts.append(day_start + tod)
            return starts

        instances: List[CrisisInstance] = []

        # Bootstrap (unlabeled) crises: the paper does not report their
        # types; we draw them from the labeled-type distribution so the
        # relevant-metric pool sees realistic variety.
        type_pool = [
            code for code, cnt in labeled_counts.items() for _ in range(cnt)
        ]
        boot_starts = _place(
            n_bootstrap, warmup_days, warmup_days + bootstrap_days
        )
        for start in boot_starts:
            code = type_pool[int(rng.integers(len(type_pool)))]
            instances.append(
                cls._make_instance(code, start, n_machines, rng, labeled=False)
            )

        labeled_codes = [
            code for code, cnt in labeled_counts.items() for _ in range(cnt)
        ]
        rng.shuffle(labeled_codes)
        lab_lo = warmup_days + bootstrap_days
        lab_starts = _place(len(labeled_codes), lab_lo, lab_lo + labeled_days)
        for code, start in zip(labeled_codes, lab_starts):
            instances.append(
                cls._make_instance(code, start, n_machines, rng, labeled=True)
            )

        return cls(instances=instances)


def build_effect_fields(
    schedule: Sequence[CrisisInstance],
    chunk_start: int,
    n_epochs: int,
    n_machines: int,
) -> EffectFields:
    """Materialize effect fields for epochs ``[chunk_start, chunk_start+n)``."""
    fields = EffectFields(n_epochs, n_machines)
    chunk_stop = chunk_start + n_epochs
    for inst in schedule:
        if not inst.overlaps(chunk_start, chunk_stop):
            continue
        lo = max(inst.start_epoch, chunk_start)
        hi = min(inst.end_epoch, chunk_stop)
        rows = np.arange(lo - chunk_start, hi - chunk_start)
        rel = np.arange(lo, hi) - inst.start_epoch
        CRISIS_TYPES[inst.type_code].apply(fields, rows, rel.astype(float),
                                           inst)
    return fields


__all__ = [
    "CHANNELS",
    "CRISIS_TYPES",
    "TABLE1_LABELED_COUNTS",
    "CrisisInstance",
    "CrisisSchedule",
    "CrisisType",
    "EffectFields",
    "build_effect_fields",
]
