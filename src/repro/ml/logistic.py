"""L1-regularized logistic regression via proximal gradient descent.

This is the feature-selection engine of Section 3.4: fitting
``P(machine anomalous | metrics)`` with an L1 constraint forces irrelevant
metric coefficients to exactly zero.  The paper cites Koh/Kim/Boyd's
interior-point solver; we implement FISTA (accelerated proximal gradient
with soft-thresholding), which reaches the same optimum of the same convex
objective and needs only matrix-vector products.

The objective (intercept unpenalized) is::

    min_{w,b}  (1/n) * sum_i log(1 + exp(-z_i * (x_i . w + b)))  +  lam * ||w||_1

with z_i in {-1, +1}.  ``lambda_max`` — the smallest penalty that zeroes
every coefficient — anchors the regularization path used by
:func:`select_top_k_features`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def _soft_threshold(w: np.ndarray, t: float) -> np.ndarray:
    return np.sign(w) * np.maximum(np.abs(w) - t, 0.0)


@dataclass
class LogisticModel:
    """A fitted logistic model: ``P(y=1|x) = sigmoid(x . weights + intercept)``."""

    weights: np.ndarray
    intercept: float
    lam: float
    n_iter: int
    converged: bool

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        return X @ self.weights + self.intercept

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return _sigmoid(self.decision_function(X))

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(X) >= threshold).astype(int)

    @property
    def nonzero_indices(self) -> np.ndarray:
        return np.flatnonzero(self.weights != 0.0)

    @property
    def n_nonzero(self) -> int:
        return int(np.count_nonzero(self.weights))


def lambda_max(X: np.ndarray, y: np.ndarray) -> float:
    """Smallest L1 penalty at which the all-zero weight vector is optimal."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    n = X.shape[0]
    p_bar = y.mean()
    # Gradient of the loss at w=0 with the optimal intercept logit(p_bar).
    grad0 = X.T @ (p_bar - y) / n
    return float(np.max(np.abs(grad0))) if grad0.size else 0.0


class L1LogisticRegression:
    """FISTA solver for L1-regularized logistic regression.

    Parameters
    ----------
    lam:
        L1 penalty strength.
    max_iter, tol:
        Iteration budget and convergence tolerance on the iterate change.
    """

    def __init__(self, lam: float = 0.01, max_iter: int = 1000,
                 tol: float = 1e-7):
        if lam < 0:
            raise ValueError("lam must be non-negative")
        if max_iter <= 0:
            raise ValueError("max_iter must be positive")
        self.lam = lam
        self.max_iter = max_iter
        self.tol = tol

    @staticmethod
    def _lipschitz(X: np.ndarray) -> float:
        """Upper bound on the gradient Lipschitz constant via power iteration.

        For logistic loss, ``L <= ||[X 1]||_2^2 / (4 n)``; the constant
        column accounts for the (unpenalized) intercept direction.
        """
        n = X.shape[0]
        v = np.ones(X.shape[1] + 1)
        v /= np.linalg.norm(v)
        norm = 1.0
        for _ in range(30):
            xv = X @ v[:-1] + v[-1]
            u = np.concatenate([X.T @ xv, [xv.sum()]])
            norm = np.linalg.norm(u)
            if norm < 1e-30:
                break
            v = u / norm
        return max(norm / (4.0 * n), 1e-12)

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        w0: Optional[np.ndarray] = None,
        b0: float = 0.0,
    ) -> LogisticModel:
        """Fit the model; ``w0``/``b0`` allow warm starts along a path."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        n, d = X.shape
        if y.shape != (n,):
            raise ValueError("y length mismatch")
        if n == 0:
            raise ValueError("cannot fit on empty data")
        uniq = np.unique(y)
        if not np.all(np.isin(uniq, (0.0, 1.0))):
            raise ValueError("y must be binary 0/1")

        L = self._lipschitz(X)
        step = 1.0 / L

        w = np.zeros(d) if w0 is None else np.array(w0, dtype=float)
        b = float(b0)
        vw, vb = w.copy(), b  # FISTA momentum point
        t_prev = 1.0
        converged = False
        it = 0
        for it in range(1, self.max_iter + 1):
            p = _sigmoid(X @ vw + vb)
            resid = (p - y) / n
            grad_w = X.T @ resid
            grad_b = resid.sum()

            w_new = _soft_threshold(vw - step * grad_w, step * self.lam)
            b_new = vb - step * grad_b

            t_new = 0.5 * (1.0 + np.sqrt(1.0 + 4.0 * t_prev**2))
            beta = (t_prev - 1.0) / t_new
            vw = w_new + beta * (w_new - w)
            vb = b_new + beta * (b_new - b)

            delta = np.abs(w_new - w).max(initial=0.0) + abs(b_new - b)
            w, b, t_prev = w_new, b_new, t_new
            if delta < self.tol:
                converged = True
                break

        return LogisticModel(
            weights=w, intercept=b, lam=self.lam, n_iter=it,
            converged=converged,
        )

    def path(
        self,
        X: np.ndarray,
        y: np.ndarray,
        lambdas: Sequence[float],
    ) -> List[LogisticModel]:
        """Fit models along a (descending) sequence of penalties, warm-started."""
        models: List[LogisticModel] = []
        w, b = None, 0.0
        original_lam = self.lam
        try:
            for lam in lambdas:
                self.lam = float(lam)
                model = self.fit(X, y, w0=w, b0=b)
                models.append(model)
                w, b = model.weights.copy(), model.intercept
        finally:
            self.lam = original_lam
        return models


def select_top_k_features(
    X: np.ndarray,
    y: np.ndarray,
    k: int,
    n_lambdas: int = 20,
    lambda_min_ratio: float = 1e-3,
    max_iter: int = 400,
) -> np.ndarray:
    """Top-k feature indices by walking down the L1 regularization path.

    Starting from ``lambda_max`` (all weights zero), the penalty is relaxed
    geometrically; the first model whose support reaches ``k`` features
    supplies the ranking (by absolute coefficient).  If the support never
    reaches ``k``, the densest model's features are returned ranked, padded
    with none — callers get at most ``k`` indices.

    This realizes the paper's "select the top ten metrics for each crisis"
    step with the regularization knob tuned automatically per crisis.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if k <= 0:
        raise ValueError("k must be positive")
    if len(np.unique(y)) < 2:
        return np.array([], dtype=int)

    lmax = lambda_max(X, y)
    if lmax <= 0:
        return np.array([], dtype=int)
    lambdas = np.geomspace(lmax * 0.95, lmax * lambda_min_ratio, n_lambdas)

    solver = L1LogisticRegression(max_iter=max_iter, tol=1e-6)
    best: Optional[LogisticModel] = None
    w, b = None, 0.0
    for lam in lambdas:
        solver.lam = float(lam)
        model = solver.fit(X, y, w0=w, b0=b)
        w, b = model.weights.copy(), model.intercept
        if best is None or model.n_nonzero > best.n_nonzero:
            best = model
        if model.n_nonzero >= k:
            best = model
            break
    assert best is not None
    support = best.nonzero_indices
    order = np.argsort(-np.abs(best.weights[support]), kind="stable")
    return support[order][:k]


__all__ = [
    "L1LogisticRegression",
    "LogisticModel",
    "lambda_max",
    "select_top_k_features",
]
