"""Statistical machine-learning substrate.

Everything the fingerprinting method and the signatures baseline need,
implemented from scratch on numpy/scipy:

* :mod:`repro.ml.preprocessing` — feature standardization;
* :mod:`repro.ml.logistic` — L1-regularized logistic regression solved by
  proximal gradient descent (FISTA), plus a regularization-path helper used
  for top-k feature selection (Section 3.4 of the paper);
* :mod:`repro.ml.naive_bayes` — Gaussian naive Bayes, the classifier family
  used by the original signatures work (Cohen et al., SOSP'05);
* :mod:`repro.ml.roc` — ROC curves, AUC, and threshold selection at a target
  false-alarm rate;
* :mod:`repro.ml.crossval` — k-fold utilities for validating classifiers.
"""

from repro.ml.coordinate import CoordinateDescentL1Logistic, l1_objective
from repro.ml.crossval import cross_val_score, kfold_indices
from repro.ml.logistic import (
    L1LogisticRegression,
    LogisticModel,
    select_top_k_features,
)
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.preprocessing import StandardScaler
from repro.ml.roc import ROCCurve, auc_score, roc_curve, threshold_at_alpha

__all__ = [
    "CoordinateDescentL1Logistic",
    "l1_objective",
    "cross_val_score",
    "kfold_indices",
    "L1LogisticRegression",
    "LogisticModel",
    "select_top_k_features",
    "GaussianNaiveBayes",
    "StandardScaler",
    "ROCCurve",
    "auc_score",
    "roc_curve",
    "threshold_at_alpha",
]
