"""Coordinate-descent solver for L1-regularized logistic regression.

A second, independent solver for the same convex objective as
:class:`repro.ml.logistic.L1LogisticRegression` (FISTA).  Two solvers that
agree pin down the optimum: the test suite cross-checks them, which guards
against subtle solver bugs corrupting feature selection — the step the
whole method leans on.

The algorithm cycles coordinates, minimizing a quadratic upper bound of
the logistic loss in each (the classic GLMNET-style update with the 1/4
curvature bound), applying soft-thresholding per coordinate.
"""

from __future__ import annotations

import numpy as np

from repro.ml.logistic import LogisticModel, _sigmoid, _soft_threshold


class CoordinateDescentL1Logistic:
    """Cyclic coordinate descent with the 1/4 curvature bound."""

    def __init__(self, lam: float = 0.01, max_sweeps: int = 200,
                 tol: float = 1e-7):
        if lam < 0:
            raise ValueError("lam must be non-negative")
        if max_sweeps <= 0:
            raise ValueError("max_sweeps must be positive")
        self.lam = lam
        self.max_sweeps = max_sweeps
        self.tol = tol

    def fit(self, X: np.ndarray, y: np.ndarray) -> LogisticModel:
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        n, d = X.shape
        if y.shape != (n,):
            raise ValueError("y length mismatch")
        if n == 0:
            raise ValueError("cannot fit on empty data")
        if not np.all(np.isin(np.unique(y), (0.0, 1.0))):
            raise ValueError("y must be binary 0/1")

        w = np.zeros(d)
        b = 0.0
        z = X @ w + b  # cached linear predictor
        col_sq = (X**2).sum(axis=0)
        converged = False
        sweep = 0
        for sweep in range(1, self.max_sweeps + 1):
            max_delta = 0.0
            # Intercept (unpenalized) first.
            p = _sigmoid(z)
            grad_b = (p - y).mean()
            step_b = 4.0 * grad_b  # curvature bound: hessian <= 1/4
            b_new = b - step_b
            z += b_new - b
            max_delta = max(max_delta, abs(b_new - b))
            b = b_new

            for j in range(d):
                if col_sq[j] == 0.0:
                    continue
                p = _sigmoid(z)
                grad_j = X[:, j] @ (p - y) / n
                hess_j = col_sq[j] / (4.0 * n)
                w_j_new = _soft_threshold(
                    np.array([w[j] - grad_j / hess_j]),
                    self.lam / hess_j,
                )[0]
                if w_j_new != w[j]:
                    z += X[:, j] * (w_j_new - w[j])
                    max_delta = max(max_delta, abs(w_j_new - w[j]))
                    w[j] = w_j_new
            if max_delta < self.tol:
                converged = True
                break

        return LogisticModel(
            weights=w, intercept=b, lam=self.lam, n_iter=sweep,
            converged=converged,
        )


def l1_objective(
    X: np.ndarray, y: np.ndarray, model: LogisticModel
) -> float:
    """The shared objective both solvers minimize (for cross-checking)."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    z = model.decision_function(X)
    # Numerically stable log(1 + exp(-s*z)) with s in {-1, +1}.
    s = 2.0 * y - 1.0
    m = np.maximum(-s * z, 0.0)
    loss = np.mean(m + np.log(np.exp(-m) + np.exp(-s * z - m)))
    return float(loss + model.lam * np.abs(model.weights).sum())


__all__ = ["CoordinateDescentL1Logistic", "l1_objective"]
