"""Feature standardization.

L1-regularized models penalize all coefficients with one knob, so features
must be on a common scale for the penalty to be meaningful; raw datacenter
metrics span six orders of magnitude (queue lengths vs. byte counters).
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class StandardScaler:
    """Zero-mean, unit-variance standardization with constant-column care.

    Columns with (near-)zero variance are scaled by 1.0 instead of their
    standard deviation, so constant metrics pass through centered without
    producing NaNs — they then carry no information and L1 drops them.
    """

    def __init__(self, eps: float = 1e-12):
        self.eps = eps
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on empty data")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        self.scale_ = np.where(std > self.eps, std, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler is not fitted")
        X = np.asarray(X, dtype=float)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler is not fitted")
        X = np.asarray(X, dtype=float)
        return X * self.scale_ + self.mean_


__all__ = ["StandardScaler"]
