"""Gaussian naive Bayes classifier.

The original signatures work (Cohen et al., SOSP'05) attributes metrics to a
crisis with per-metric Bayesian classifiers; our signatures baseline
(:mod:`repro.baselines.signatures`) uses this implementation both as the
attribution mechanism and as a reference point for the robustness comparison
against L1 logistic regression reported in the paper's related work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class GaussianNaiveBayes:
    """Two-class Gaussian naive Bayes with per-class diagonal covariance."""

    var_smoothing: float = 1e-9
    class_prior_: Optional[np.ndarray] = field(default=None, repr=False)
    theta_: Optional[np.ndarray] = field(default=None, repr=False)
    var_: Optional[np.ndarray] = field(default=None, repr=False)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianNaiveBayes":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y).astype(int).ravel()
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if X.shape[0] != y.shape[0]:
            raise ValueError("X/y length mismatch")
        classes = np.unique(y)
        if not np.array_equal(classes, np.array([0, 1])):
            raise ValueError("need both classes 0 and 1 in y")
        n, d = X.shape
        self.theta_ = np.empty((2, d))
        self.var_ = np.empty((2, d))
        self.class_prior_ = np.empty(2)
        overall_var = X.var(axis=0).max() if n else 1.0
        smoothing = self.var_smoothing * max(overall_var, 1.0)
        for c in (0, 1):
            Xc = X[y == c]
            self.theta_[c] = Xc.mean(axis=0)
            self.var_[c] = Xc.var(axis=0) + smoothing
            self.class_prior_[c] = Xc.shape[0] / n
        return self

    def _check_fitted(self) -> None:
        if self.theta_ is None:
            raise RuntimeError("classifier is not fitted")

    def joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        """Per-class unnormalized log posterior, shape ``(n, 2)``."""
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        out = np.empty((X.shape[0], 2))
        for c in (0, 1):
            log_prior = np.log(self.class_prior_[c])
            ll = -0.5 * np.sum(
                np.log(2.0 * np.pi * self.var_[c])
                + (X - self.theta_[c]) ** 2 / self.var_[c],
                axis=1,
            )
            out[:, c] = log_prior + ll
        return out

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """``P(y=1|x)`` for each row."""
        jll = self.joint_log_likelihood(X)
        m = jll.max(axis=1, keepdims=True)
        norm = np.exp(jll - m)
        return norm[:, 1] / norm.sum(axis=1)

    def predict(self, X: np.ndarray) -> np.ndarray:
        jll = self.joint_log_likelihood(X)
        return (jll[:, 1] > jll[:, 0]).astype(int)

    def brier_score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean squared error of predicted probabilities.

        The signatures approach uses the Brier score as its model fitness
        criterion when choosing which per-crisis model to apply.
        """
        y = np.asarray(y, dtype=float).ravel()
        p = self.predict_proba(X)
        return float(np.mean((p - y) ** 2))


__all__ = ["GaussianNaiveBayes"]
