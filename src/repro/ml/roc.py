"""ROC curves, AUC, and threshold selection.

The paper evaluates discrimination with a *distance ROC* (Section 5.1.1):
sweep the identification threshold T, and for each T compute recall (the
fraction of same-type crisis pairs whose fingerprint distance is below T)
and the false-alarm rate (the fraction of different-type pairs below T).
The identification threshold itself is chosen as the largest T whose
false-alarm rate stays under the operator-chosen parameter alpha.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ROCCurve:
    """An ROC curve over a swept threshold.

    ``thresholds[i]`` is the largest score grouped into operating point
    ``i``; ``fpr``/``tpr`` are cumulative rates when classifying
    "positive" every sample whose score is <= the threshold (scores are
    distances: small means "same").
    """

    thresholds: np.ndarray
    fpr: np.ndarray
    tpr: np.ndarray

    @property
    def auc(self) -> float:
        """Area under the curve (trapezoidal)."""
        return float(np.trapezoid(self.tpr, self.fpr))

    def threshold_at_alpha(self, alpha: float) -> float:
        """Largest distance threshold whose false-alarm rate is <= alpha."""
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must lie in [0, 1]")
        ok = np.flatnonzero(self.fpr <= alpha)
        if ok.size == 0:
            # Even the tightest threshold exceeds alpha; return something
            # below the smallest distance so nothing matches.
            return float(self.thresholds[0]) * 0.5 if len(self.thresholds) \
                else 0.0
        return float(self.thresholds[ok[-1]])


def roc_curve(distances: np.ndarray, is_same: np.ndarray) -> ROCCurve:
    """Distance ROC: positives are pairs labeled "same".

    Parameters
    ----------
    distances:
        Pairwise distance for each evaluated pair.
    is_same:
        Boolean; True when the pair is of the same crisis type.
    """
    distances = np.asarray(distances, dtype=float).ravel()
    is_same = np.asarray(is_same, dtype=bool).ravel()
    if distances.shape != is_same.shape:
        raise ValueError("distances/is_same length mismatch")
    n_pos = int(is_same.sum())
    n_neg = int((~is_same).sum())
    if n_pos == 0 or n_neg == 0:
        raise ValueError("need at least one same pair and one distinct pair")

    order = np.argsort(distances, kind="stable")
    d_sorted = distances[order]
    same_sorted = is_same[order]

    # Collapse tied distances into single operating points.
    boundaries = np.flatnonzero(np.diff(d_sorted) > 0)
    ends = np.concatenate([boundaries, [len(d_sorted) - 1]])

    tp = np.cumsum(same_sorted)[ends]
    fp = np.cumsum(~same_sorted)[ends]
    thresholds = d_sorted[ends]

    tpr = np.concatenate([[0.0], tp / n_pos])
    fpr = np.concatenate([[0.0], fp / n_neg])
    thresholds = np.concatenate([[min(0.0, thresholds[0])], thresholds])
    return ROCCurve(thresholds=thresholds, fpr=fpr, tpr=tpr)


def auc_score(distances: np.ndarray, is_same: np.ndarray) -> float:
    """AUC of the distance ROC."""
    return roc_curve(distances, is_same).auc


def threshold_at_alpha(
    distances: np.ndarray, is_same: np.ndarray, alpha: float
) -> float:
    """Identification threshold at false-alarm budget alpha (Section 5.1.2)."""
    return roc_curve(distances, is_same).threshold_at_alpha(alpha)


__all__ = ["ROCCurve", "roc_curve", "auc_score", "threshold_at_alpha"]
