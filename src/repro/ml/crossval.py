"""Cross-validation utilities.

Used in tests and in the sensitivity analyses to check that classifiers in
the pipeline generalize rather than memorize the crisis windows they were
fit on.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Tuple

import numpy as np


def kfold_indices(
    n: int, k: int, rng: np.random.Generator = None
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield ``(train_idx, test_idx)`` pairs for k-fold cross-validation."""
    if k < 2:
        raise ValueError("k must be at least 2")
    if n < k:
        raise ValueError("not enough samples for the requested folds")
    idx = np.arange(n)
    if rng is not None:
        rng.shuffle(idx)
    folds = np.array_split(idx, k)
    for i in range(k):
        test = folds[i]
        train = np.concatenate([folds[j] for j in range(k) if j != i])
        yield train, test


def cross_val_score(
    fit_predict: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
    X: np.ndarray,
    y: np.ndarray,
    k: int = 5,
    rng: np.random.Generator = None,
) -> List[float]:
    """Accuracy of ``fit_predict(X_train, y_train, X_test)`` across folds."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y).ravel()
    scores: List[float] = []
    for train, test in kfold_indices(len(y), k, rng):
        pred = np.asarray(fit_predict(X[train], y[train], X[test])).ravel()
        scores.append(float(np.mean(pred == y[test])))
    return scores


__all__ = ["kfold_indices", "cross_val_score"]
