"""Epoch and crisis fingerprints (Sections 3.4-3.5).

An *epoch fingerprint* is the summary vector restricted to the relevant
metrics.  A *crisis fingerprint* averages the epoch fingerprints over a
window anchored at the crisis detection epoch (-30 min ... +60 min in the
paper), giving a vector in ``[-1, 1]^(3R)`` for R relevant metrics.  During
online identification the window grows epoch by epoch, so partial crisis
fingerprints use however many epochs are available so far.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config import FingerprintConfig
from repro.core.summary import summary_vectors
from repro.core.thresholds import QuantileThresholds


@dataclass(frozen=True)
class CrisisFingerprint:
    """A crisis fingerprint plus its provenance."""

    vector: np.ndarray  # (n_relevant * n_quantiles,)
    metric_indices: np.ndarray  # the relevant metrics used
    label: Optional[str] = None  # operator label; None when undiagnosed
    crisis_id: Optional[int] = None
    n_epochs: int = 0  # epochs averaged into the vector

    def __post_init__(self) -> None:
        if self.vector.ndim != 1:
            raise ValueError("fingerprint vector must be 1-D")
        if np.any(np.abs(self.vector) > 1.0 + 1e-9):
            raise ValueError("fingerprint entries must lie in [-1, 1]")


def epoch_fingerprints(
    quantiles: np.ndarray,
    thresholds: QuantileThresholds,
    metric_indices: np.ndarray,
) -> np.ndarray:
    """Summary vectors restricted to the relevant metrics.

    Parameters
    ----------
    quantiles:
        ``(n_epochs, n_metrics, n_quantiles)`` raw quantile values.
    thresholds:
        Hot/cold cutoffs over *all* metrics.
    metric_indices:
        Relevant metric indices (fingerprint columns).

    Returns
    -------
    ``(n_epochs, n_relevant * n_quantiles)`` int8 array.
    """
    quantiles = np.asarray(quantiles, dtype=float)
    if quantiles.ndim != 3:
        raise ValueError("quantiles must be 3-D")
    metric_indices = np.asarray(metric_indices, dtype=int)
    if (
        metric_indices.size == quantiles.shape[1]
        and np.array_equal(
            metric_indices, np.arange(quantiles.shape[1])
        )
    ):
        # Every metric is relevant: skip the gather copy and discretize
        # the (block-backed) window directly — it is only ever read.
        sub = quantiles
        restricted = thresholds
    else:
        sub = quantiles[:, metric_indices, :]
        restricted = thresholds.restrict(metric_indices)
    summaries = summary_vectors(sub, restricted)
    return summaries.reshape(summaries.shape[0], -1)


def crisis_fingerprint(
    quantiles: np.ndarray,
    thresholds: QuantileThresholds,
    metric_indices: np.ndarray,
    detection_epoch: int,
    config: FingerprintConfig = FingerprintConfig(),
    end_epoch: Optional[int] = None,
    label: Optional[str] = None,
    crisis_id: Optional[int] = None,
) -> CrisisFingerprint:
    """Average epoch fingerprints over the crisis summary window.

    The window is ``[detection - pre_epochs, detection + post_epochs]``
    inclusive, clipped to the trace and, for online partial fingerprints,
    to ``end_epoch`` (the most recent epoch whose data has arrived).
    """
    n_epochs = quantiles.shape[0]
    lo = max(detection_epoch - config.pre_epochs, 0)
    hi = min(detection_epoch + config.post_epochs, n_epochs - 1)
    if end_epoch is not None:
        hi = min(hi, end_epoch)
    if hi < lo:
        raise ValueError("empty fingerprint window")
    window = epoch_fingerprints(
        quantiles[lo : hi + 1], thresholds, metric_indices
    )
    vector = window.astype(float).mean(axis=0)
    return CrisisFingerprint(
        vector=vector,
        metric_indices=np.asarray(metric_indices, dtype=int),
        label=label,
        crisis_id=crisis_id,
        n_epochs=window.shape[0],
    )


__all__ = ["CrisisFingerprint", "crisis_fingerprint", "epoch_fingerprints"]
