"""Crash-safe checkpoint/restore for the live fingerprinting service.

A process restart must not lose streaming state: hot/cold thresholds take
days of history to rebuild, the crisis library *is* the method's knowledge,
and a crisis in progress must resume its identification protocol where it
left off.  This module snapshots a
:class:`~repro.core.streaming.StreamingCrisisMonitor` or a
:class:`~repro.core.pipeline.FingerprintPipeline` to a single ``.npz``
archive (array payloads plus a JSON header, the
:mod:`repro.persistence` idiom) and restores it to a bit-identical state:
replaying the same epochs after a restore emits exactly the events an
uninterrupted run would.

Writes are atomic — the archive is written to a temporary file in the
destination directory, fsynced, and renamed over the target — so a crash
mid-checkpoint leaves the previous snapshot intact, never a torn file.

Method configuration (:class:`~repro.config.FingerprintingConfig`) is
code, not state: the caller passes the same config to ``load_*`` that the
original object was built with.
"""

from __future__ import annotations

import json
import pathlib
import struct
import zipfile
import zlib
from typing import Dict, Optional

import numpy as np

from repro.config import EPOCH_MINUTES, FingerprintingConfig, ReliabilityConfig
from repro.core.atomicio import atomic_write_npz, pack_header, unpack_header
from repro.core.columnar import WindowBlock
from repro.telemetry.epochs import EpochClock
from repro.core.pipeline import FingerprintPipeline, KnownCrisis
from repro.core.streaming import StreamingCrisisMonitor, _LiveCrisis, _StoredCrisis
from repro.core.thresholds import QuantileThresholds
from repro.index.snapshot import index_from_arrays, index_to_arrays

#: Format version embedded in every checkpoint archive.
CHECKPOINT_FORMAT_VERSION = 1

# Shared with repro.index.snapshot; kept under their historical names so
# existing callers (and tests) of the private helpers keep working.
_atomic_write_npz = atomic_write_npz
_pack_header = pack_header


class CheckpointError(ValueError):
    """Base class for checkpoint load failures.

    Subclasses ``ValueError`` so pre-existing callers that catch
    ``ValueError`` around a restore keep working.
    """


class CheckpointCorruptError(CheckpointError):
    """The archive is damaged: torn write, truncation, or garbage.

    Raised instead of the raw ``zipfile``/``KeyError``/``struct`` errors a
    damaged ``.npz`` would otherwise surface, so callers can distinguish
    "restore from an older snapshot" from a programming error.
    """


class CheckpointFormatError(CheckpointError):
    """The archive is intact but not a checkpoint this code can read."""


#: Exceptions that mean "this file is not a readable .npz archive".
_CORRUPT_ARCHIVE_ERRORS = (
    zipfile.BadZipFile,
    struct.error,
    OSError,
    EOFError,
    ValueError,
)


def open_checkpoint(path):
    """``np.load`` a checkpoint with corruption mapped to typed errors.

    A missing file still raises ``FileNotFoundError`` (the caller may
    treat that as "no checkpoint yet"); anything unreadable *inside* the
    file becomes :class:`CheckpointCorruptError`.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    try:
        return np.load(path, allow_pickle=False)
    except _CORRUPT_ARCHIVE_ERRORS as exc:
        raise CheckpointCorruptError(
            f"checkpoint {path} is not a readable archive: {exc}"
        ) from exc


def _read_header(data, expected_kind: str) -> dict:
    try:
        header = unpack_header(data)
    except KeyError as exc:
        raise CheckpointCorruptError(
            "checkpoint has no header array"
        ) from exc
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CheckpointCorruptError(
            f"checkpoint header is not valid JSON: {exc}"
        ) from exc
    if not isinstance(header, dict):
        raise CheckpointCorruptError(
            f"checkpoint header is a {type(header).__name__}, not an object"
        )
    version = header.get("format_version")
    if version != CHECKPOINT_FORMAT_VERSION:
        raise CheckpointFormatError(
            f"unsupported checkpoint format {version!r} "
            f"(expected {CHECKPOINT_FORMAT_VERSION})"
        )
    kind = header.get("kind")
    if kind != expected_kind:
        raise CheckpointFormatError(
            f"checkpoint holds a {kind!r}, expected {expected_kind!r}"
        )
    return header


def read_checkpoint_extra(path, expected_kind: str = "monitor") -> dict:
    """The caller-supplied ``extra`` header of a checkpoint archive.

    The serving tier stores its journal cursor (applied sequence number,
    next epoch, agent health) here so a tenant snapshot stays one
    atomic file.  Archives written without ``extra`` return ``{}``.
    """
    with open_checkpoint(path) as data:
        header = _read_header(data, expected_kind)
    return header.get("extra") or {}


# ---------------------------------------------------------------------------
# Streaming monitor
# ---------------------------------------------------------------------------


def save_monitor(
    monitor: StreamingCrisisMonitor, path, extra: Optional[dict] = None
) -> None:
    """Snapshot a streaming monitor's full state atomically.

    ``extra`` is an optional JSON-serializable dict stored verbatim in the
    header and returned by :func:`read_checkpoint_extra` — the serving
    tier keeps its journal cursor there so snapshot + cursor are one
    atomic write.
    """
    live = monitor._live
    header = {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "kind": "monitor",
        "extra": extra or {},
        "n_metrics": monitor.n_metrics,
        "n_quantiles": monitor.store.n_quantiles,
        "epoch_minutes": monitor.clock.epoch_minutes,
        "threshold_refresh_epochs": monitor.threshold_refresh_epochs,
        "min_history_epochs": monitor.min_history_epochs,
        "epochs_since_refresh": monitor._epochs_since_refresh,
        "crisis_counter": monitor._crisis_counter,
        "untrusted_epochs": monitor.untrusted_epochs,
        "has_thresholds": monitor.thresholds is not None,
        "live": None if live is None else {
            "number": live.number,
            "detected_epoch": live.detected_epoch,
            "identifications": live.identifications,
        },
        "library": [
            {"number": s.number, "label": s.label}
            for s in monitor._library
        ],
        "n_pre_buffer": len(monitor._pre_buffer),
        "index_slots": sorted(monitor._index_cache),
    }
    arrays: Dict[str, np.ndarray] = {
        "header": _pack_header(header),
        "relevant": np.asarray(monitor.relevant, dtype=int),
        "store_values": np.asarray(monitor.store.values()),
        "store_anomalous": np.asarray(monitor.store.anomalous_mask()),
    }
    # Opt-in discovery state rides inside the monitor archive so monitor
    # + engine stay one atomic snapshot.  Checkpoints written without an
    # engine (including every pre-discovery archive) omit the key.
    if monitor._discovery is not None:
        disc_header, disc_arrays = monitor._discovery.snapshot(
            prefix="discovery_"
        )
        header["discovery"] = disc_header
        arrays["header"] = _pack_header(header)
        arrays.update(disc_arrays)
    # Forecast state follows the same embedding contract: absent key for
    # every checkpoint written without an engine (pre-forecast archives
    # load unchanged), atomic with the monitor otherwise.
    if monitor._forecast is not None:
        fc_header, fc_arrays = monitor._forecast.snapshot(
            prefix="forecast_"
        )
        header["forecast"] = fc_header
        arrays["header"] = _pack_header(header)
        arrays.update(fc_arrays)
    # Identification indexes are derived state, but re-deriving them means
    # re-fingerprinting the whole library per protocol slot — snapshot them
    # so a restored monitor resumes with warm indexes.
    for k, index in monitor._index_cache.items():
        arrays.update(index_to_arrays(index, prefix=f"index_slot{k}_"))
    if monitor.thresholds is not None:
        arrays["thresholds_cold"] = monitor.thresholds.cold
        arrays["thresholds_hot"] = monitor.thresholds.hot
    if monitor._pre_buffer:
        arrays["pre_buffer"] = np.stack(monitor._pre_buffer)
    if live is not None and live.summaries is not None and len(live.summaries):
        arrays["live_summaries"] = live.summaries.snapshot()
    for i, stored in enumerate(monitor._library):
        arrays[f"library_window_{i}"] = stored.quantile_window
    _atomic_write_npz(path, arrays)


def load_monitor(
    path,
    config: FingerprintingConfig = FingerprintingConfig(),
    reliability: ReliabilityConfig = ReliabilityConfig(),
) -> StreamingCrisisMonitor:
    """Restore a monitor saved by :func:`save_monitor`.

    ``config`` and ``reliability`` must match the original monitor's; they
    are code-side parameters and are not serialized.

    A damaged archive raises :class:`CheckpointCorruptError` (never a raw
    ``KeyError``/``zipfile`` error), so a caller holding older snapshots
    can fall back instead of crashing.
    """
    try:
        with open_checkpoint(path) as data:
            header = _read_header(data, "monitor")
            monitor = StreamingCrisisMonitor(
                n_metrics=header["n_metrics"],
                relevant_metrics=data["relevant"],
                config=config,
                threshold_refresh_epochs=header["threshold_refresh_epochs"],
                min_history_epochs=header["min_history_epochs"],
                reliability=reliability,
                # Pre-engine checkpoints carry no clock; they were written
                # at the paper's 15-minute epochs.
                clock=EpochClock(
                    epoch_minutes=header.get("epoch_minutes", EPOCH_MINUTES)
                ),
            )
            values = data["store_values"]
            if values.shape[0]:
                monitor.store.extend(values, data["store_anomalous"])
            # The engine's rolling threshold tracker is derived state:
            # rebuild it from the restored store rather than serializing
            # its internals.
            monitor.engine.rebuild_tracker()
            if header["has_thresholds"]:
                monitor.thresholds = QuantileThresholds(
                    cold=data["thresholds_cold"], hot=data["thresholds_hot"]
                )
            monitor._epochs_since_refresh = header["epochs_since_refresh"]
            monitor._crisis_counter = header["crisis_counter"]
            monitor.untrusted_epochs = header["untrusted_epochs"]
            if header["n_pre_buffer"]:
                monitor._pre_buffer = list(data["pre_buffer"])
            live_meta = header["live"]
            if live_meta is not None:
                live = _LiveCrisis(
                    number=live_meta["number"],
                    detected_epoch=live_meta["detected_epoch"],
                )
                if "live_summaries" in data:
                    live.summaries = WindowBlock.from_array(
                        data["live_summaries"]
                    )
                live.identifications = live_meta["identifications"]
                monitor._live = live
            monitor._library = [
                _StoredCrisis(
                    number=meta["number"],
                    label=meta["label"],
                    quantile_window=data[f"library_window_{i}"],
                )
                for i, meta in enumerate(header["library"])
            ]
            # Pre-PR-2 checkpoints carry no index snapshots; the monitor
            # then rebuilds its identification indexes lazily on the next
            # crisis.
            for k in header.get("index_slots", []):
                index = index_from_arrays(data, prefix=f"index_slot{k}_")
                monitor._index_cache[k] = index
                monitor._index_labels[k] = {
                    i: index.payload(i) for i in index.ids()
                }
            disc_header = header.get("discovery")
            if disc_header is not None:
                # Lazy import: repro.discovery depends on this module's
                # siblings, so the package import stays one-directional.
                from repro.discovery.engine import DiscoveryEngine

                engine = DiscoveryEngine.from_snapshot(
                    disc_header, data, prefix="discovery_"
                )
                engine.attach(monitor)
            fc_header = header.get("forecast")
            if fc_header is not None:
                from repro.forecast.engine import ForecastEngine

                forecast = ForecastEngine.from_snapshot(
                    fc_header, data, prefix="forecast_"
                )
                forecast.attach(monitor)
    except CheckpointError:
        raise
    except KeyError as exc:
        raise CheckpointCorruptError(
            f"checkpoint is missing required entry {exc}"
        ) from exc
    except (zipfile.BadZipFile, zlib.error, struct.error, EOFError) as exc:
        raise CheckpointCorruptError(
            f"checkpoint member is damaged: {exc}"
        ) from exc
    return monitor


# ---------------------------------------------------------------------------
# Replay pipeline
# ---------------------------------------------------------------------------


def save_pipeline(pipeline: FingerprintPipeline, path) -> None:
    """Snapshot a replay pipeline's parameter and library state.

    The trace itself is not serialized (it has its own persistence,
    :mod:`repro.persistence`); :func:`load_pipeline` reattaches one.
    """
    header = {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "kind": "pipeline",
        "recompute_past_fingerprints": pipeline.recompute_past_fingerprints,
        "exclude_kpis_from_selection": bool(pipeline._selection_exclude),
        "identification_threshold": pipeline.identification_threshold,
        "has_thresholds": pipeline.thresholds is not None,
        "has_relevant": pipeline.relevant is not None,
        "n_selections": len(pipeline._selections),
        "known": [
            {
                "crisis_id": k.crisis_id,
                "label": k.label,
                "detection_epoch": k.detection_epoch,
                "has_fingerprint": k.fingerprint is not None,
            }
            for k in pipeline.known
        ],
    }
    arrays: Dict[str, np.ndarray] = {"header": _pack_header(header)}
    if pipeline.thresholds is not None:
        arrays["thresholds_cold"] = pipeline.thresholds.cold
        arrays["thresholds_hot"] = pipeline.thresholds.hot
    if pipeline.relevant is not None:
        arrays["relevant"] = np.asarray(pipeline.relevant, dtype=int)
    for i, sel in enumerate(pipeline._selections):
        arrays[f"selection_{i}"] = np.asarray(sel, dtype=int)
    for i, k in enumerate(pipeline.known):
        arrays[f"known_window_{i}"] = k.quantile_window
        arrays[f"known_stale_{i}"] = k.stale_summary
        if k.fingerprint is not None:
            arrays[f"known_fingerprint_{i}"] = k.fingerprint
    _atomic_write_npz(path, arrays)


def load_pipeline(
    path,
    trace,
    config: FingerprintingConfig = FingerprintingConfig(),
) -> FingerprintPipeline:
    """Restore a pipeline saved by :func:`save_pipeline` onto ``trace``."""
    try:
        with open_checkpoint(path) as data:
            header = _read_header(data, "pipeline")
            pipeline = FingerprintPipeline(
                trace,
                config,
                recompute_past_fingerprints=header[
                    "recompute_past_fingerprints"
                ],
                exclude_kpis_from_selection=header[
                    "exclude_kpis_from_selection"
                ],
            )
            if header["has_thresholds"]:
                pipeline.thresholds = QuantileThresholds(
                    cold=data["thresholds_cold"], hot=data["thresholds_hot"]
                )
            if header["has_relevant"]:
                pipeline.relevant = data["relevant"]
            pipeline.identification_threshold = header[
                "identification_threshold"
            ]
            pipeline._selections = [
                data[f"selection_{i}"] for i in range(header["n_selections"])
            ]
            for i, meta in enumerate(header["known"]):
                known = KnownCrisis(
                    crisis_id=meta["crisis_id"],
                    label=meta["label"],
                    detection_epoch=meta["detection_epoch"],
                    quantile_window=data[f"known_window_{i}"],
                    stale_summary=data[f"known_stale_{i}"],
                )
                if meta["has_fingerprint"]:
                    known.fingerprint = data[f"known_fingerprint_{i}"]
                pipeline.known.append(known)
    except CheckpointError:
        raise
    except KeyError as exc:
        raise CheckpointCorruptError(
            f"checkpoint is missing required entry {exc}"
        ) from exc
    except (zipfile.BadZipFile, zlib.error, struct.error, EOFError) as exc:
        raise CheckpointCorruptError(
            f"checkpoint member is damaged: {exc}"
        ) from exc
    return pipeline


__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointFormatError",
    "load_monitor",
    "load_pipeline",
    "open_checkpoint",
    "read_checkpoint_extra",
    "save_monitor",
    "save_pipeline",
]
