"""End-to-end online fingerprinting engine.

:class:`FingerprintPipeline` is the deployable form of the method: it sits
on a trace (live or recorded), maintains the three parameter sets of
Section 4.4 — relevant metrics, hot/cold quantile thresholds, and the
identification threshold — and processes crises as they are detected:

1. ``observe(crisis)`` runs per-crisis feature selection (the crisis only
   needs to be *detected*, not diagnosed — Section 3.4);
2. ``refresh(epoch)`` recomputes thresholds from the trailing crisis-free
   window and the relevant-metric set from the trailing crisis pool, and
   re-fingerprints all known crises (the bookkeeping of Section 6.3);
3. ``identify(crisis)`` emits one label (or unknown) per epoch for the
   five-epoch identification window;
4. ``confirm(crisis, label)`` stores the operator's diagnosis so future
   occurrences can be recognized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.config import FingerprintingConfig
from repro.core.engine import (
    fingerprint_from_summaries,
    threshold_series_for,
)
from repro.core.fingerprint import crisis_fingerprint
from repro.core.identification import (
    IdentificationResult,
    Identifier,
    estimate_threshold_online,
)
from repro.core.selection import (
    select_crisis_metrics,
    select_relevant_metrics,
)
from repro.core.summary import summary_vectors
from repro.core.thresholds import QuantileThresholds
from repro.datacenter.trace import CrisisRecord, DatacenterTrace


@dataclass
class KnownCrisis:
    """A past crisis kept in the identification library.

    Stores the *raw* quantile values of the fingerprint window (so the
    fingerprint can be recomputed whenever thresholds or relevant metrics
    change — Section 6.3) and, for the stale-threshold ablation of Figure 8,
    the summary discretized with the thresholds in force when the crisis
    occurred.
    """

    crisis_id: int
    label: Optional[str]
    detection_epoch: int
    quantile_window: np.ndarray  # (w, n_metrics, n_quantiles) raw values
    stale_summary: np.ndarray  # (w, n_metrics, n_quantiles) in {-1,0,1}
    fingerprint: Optional[np.ndarray] = None  # under current parameters


@dataclass
class CrisisIdentification:
    """The five-epoch identification outcome for one crisis."""

    crisis_id: int
    results: List[IdentificationResult] = field(default_factory=list)

    @property
    def sequence(self) -> List[str]:
        return [r.label for r in self.results]


class FingerprintPipeline:
    """Online fingerprinting over a :class:`DatacenterTrace`.

    Parameters
    ----------
    trace:
        The telemetry source.
    config:
        Method parameters (paper defaults).
    recompute_past_fingerprints:
        When False, known-crisis fingerprints keep the hot/cold
        discretization computed when each crisis occurred (Figure 8's
        ablation); relevant-metric columns still follow the current set so
        distances stay comparable.
    exclude_kpis_from_selection:
        Drop the KPI metrics themselves from feature selection (they define
        the label, so they are trivially predictive of it).
    """

    def __init__(
        self,
        trace: DatacenterTrace,
        config: FingerprintingConfig = FingerprintingConfig(),
        recompute_past_fingerprints: bool = True,
        exclude_kpis_from_selection: bool = False,
    ):
        self.trace = trace
        self.config = config
        self.recompute_past_fingerprints = recompute_past_fingerprints
        self._selection_exclude = (
            tuple(trace.kpi_metric_indices)
            if exclude_kpis_from_selection
            else ()
        )
        self._selections: List[np.ndarray] = []
        self.known: List[KnownCrisis] = []
        self.thresholds: Optional[QuantileThresholds] = None
        self.relevant: Optional[np.ndarray] = None
        self.identification_threshold: Optional[float] = None

    # ------------------------------------------------------------------
    # Parameter maintenance
    # ------------------------------------------------------------------

    def update_thresholds(self, as_of_epoch: int) -> QuantileThresholds:
        """Hot/cold thresholds from the trailing crisis-free window.

        Served by the trace's shared incremental
        :class:`~repro.core.engine.ThresholdSeries` — identical values to
        a full-window recompute, without rescanning W epochs per refresh.
        """
        cfg = self.config.thresholds
        window_epochs = cfg.window_days * self.trace.epochs_per_day
        series = threshold_series_for(
            self.trace, window_epochs,
            cfg.cold_percentile, cfg.hot_percentile,
        )
        self.thresholds = series.at(as_of_epoch)
        return self.thresholds

    def observe(self, crisis: CrisisRecord) -> np.ndarray:
        """Run per-crisis feature selection (step 1 of Section 3.4)."""
        if crisis.raw is None:
            raise ValueError(f"crisis {crisis.index} has no raw window")
        selection = select_crisis_metrics(
            crisis.raw.values,
            crisis.raw.violations,
            top_k=self.config.selection.per_crisis_top_k,
            exclude=self._selection_exclude,
        )
        self._selections.append(selection)
        return selection

    def update_relevant_metrics(self) -> np.ndarray:
        """Most frequent metrics over the trailing crisis pool (step 2)."""
        cfg = self.config.selection
        self.relevant = select_relevant_metrics(
            self._selections, cfg.n_relevant, pool=cfg.crisis_pool
        )
        return self.relevant

    def refresh(self, as_of_epoch: int) -> None:
        """Bring thresholds, relevant metrics, and the library up to date."""
        self.update_thresholds(as_of_epoch)
        if self._selections:
            self.update_relevant_metrics()
        self._refingerprint_known()

    def _require_ready(self) -> None:
        if self.thresholds is None or self.relevant is None:
            raise RuntimeError(
                "pipeline not ready: call observe()/refresh() first"
            )

    def _fingerprint_of(
        self, known: KnownCrisis, n_window_epochs: Optional[int] = None
    ) -> np.ndarray:
        """(Re)compute a library fingerprint under current parameters.

        ``n_window_epochs`` truncates the summary window (counted from its
        first epoch); online identification at epoch k compares the new
        crisis's partial fingerprint against library fingerprints averaged
        over the *same* partial range, so early comparisons are not biased
        toward low-magnitude fingerprints.
        """
        self._require_ready()
        if self.recompute_past_fingerprints:
            summaries = summary_vectors(known.quantile_window, self.thresholds)
        else:
            summaries = known.stale_summary
        return fingerprint_from_summaries(
            summaries, self.relevant, n_window_epochs
        )

    def _refingerprint_known(self) -> None:
        if self.thresholds is None or self.relevant is None:
            return
        for known in self.known:
            known.fingerprint = self._fingerprint_of(known)

    def update_identification_threshold(self) -> Optional[float]:
        """Online threshold estimate from the current library (Section 5.3)."""
        usable = [k for k in self.known if k.label is not None]
        if len(usable) < 2:
            return self.identification_threshold
        self.identification_threshold = estimate_threshold_online(
            [k.fingerprint for k in usable],
            [k.label for k in usable],
            self.config.identification.alpha,
        )
        return self.identification_threshold

    def set_identification_threshold(self, value: float) -> None:
        """Fix the threshold externally (offline / quasi-online settings)."""
        if value < 0:
            raise ValueError("threshold must be non-negative")
        self.identification_threshold = value

    # ------------------------------------------------------------------
    # Crisis handling
    # ------------------------------------------------------------------

    def _crisis_window(self, detection_epoch: int) -> np.ndarray:
        fp_cfg = self.config.fingerprint
        lo = max(detection_epoch - fp_cfg.pre_epochs, 0)
        hi = min(detection_epoch + fp_cfg.post_epochs, self.trace.n_epochs - 1)
        return self.trace.quantiles[lo : hi + 1]

    def identify(self, crisis: CrisisRecord) -> CrisisIdentification:
        """Run the five-epoch identification protocol for one crisis.

        Library fingerprints are truncated to the same window as the new
        crisis's partial fingerprint, and the identification threshold is
        re-estimated per epoch from the library at the same truncation —
        partial-window distances live on a smaller scale than full-window
        ones, so a single threshold would over-match in the first epochs.
        """
        self._require_ready()
        if self.identification_threshold is None:
            raise RuntimeError("identification threshold not set")
        if crisis.detected_epoch is None:
            raise ValueError(f"crisis {crisis.index} was never detected")
        diagnosed = [k for k in self.known if k.label is not None]
        outcome = CrisisIdentification(crisis_id=crisis.index)
        det = crisis.detected_epoch
        pre = self.config.fingerprint.pre_epochs
        alpha = self.config.identification.alpha
        for k in range(self.config.identification.n_epochs):
            fp = crisis_fingerprint(
                self.trace.quantiles,
                self.thresholds,
                self.relevant,
                detection_epoch=det,
                config=self.config.fingerprint,
                end_epoch=det + k,
            )
            library = [
                (self._fingerprint_of(kn, n_window_epochs=pre + k + 1),
                 kn.label)
                for kn in diagnosed
            ]
            threshold = self.identification_threshold
            if len(library) >= 2:
                try:
                    threshold = estimate_threshold_online(
                        [vec for vec, _ in library],
                        [label for _, label in library],
                        alpha,
                    )
                except ValueError:
                    pass
            outcome.results.append(
                Identifier(threshold).identify(fp.vector, library)
            )
        return outcome

    def confirm(
        self, crisis: CrisisRecord, label: Optional[str] = None
    ) -> KnownCrisis:
        """Store a crisis in the library (with the operator's diagnosis)."""
        self._require_ready()
        if crisis.detected_epoch is None:
            raise ValueError(f"crisis {crisis.index} was never detected")
        window = self._crisis_window(crisis.detected_epoch)
        known = KnownCrisis(
            crisis_id=crisis.index,
            label=label if label is not None else crisis.label,
            detection_epoch=crisis.detected_epoch,
            quantile_window=np.array(window, dtype=float),
            stale_summary=summary_vectors(window, self.thresholds),
        )
        known.fingerprint = self._fingerprint_of(known)
        self.known.append(known)
        return known


__all__ = ["CrisisIdentification", "FingerprintPipeline", "KnownCrisis"]
