"""Relevant-metric selection (Section 3.4).

Two steps, exactly as in the paper:

1. Per crisis: fit L1-regularized logistic regression on per-machine data
   surrounding the crisis — features are the raw metric values ``X[m, t]``,
   the label is whether machine ``m`` violated an SLA at epoch ``t`` — and
   keep the top-k metrics (k=10 in the paper).
2. Across the most recent pool of crises (20 in the paper): count how often
   each metric was selected and keep the ``n_relevant`` most frequent ones
   (15 offline / 30 online).
"""

from __future__ import annotations

from collections import Counter
from typing import List, Sequence, Tuple

import numpy as np

from repro.ml.logistic import select_top_k_features
from repro.ml.preprocessing import StandardScaler


def stabilize(X: np.ndarray) -> np.ndarray:
    """Variance-stabilize raw monitoring metrics.

    Datacenter metrics are non-negative and heavy-tailed (queue lengths and
    latencies explode by orders of magnitude during crises), which wrecks the
    conditioning of a linear classifier on standardized raw values: the
    crisis samples dominate each feature's variance and compress the very
    separation being fit.  ``log1p`` on magnitudes fixes the conditioning
    while preserving ordering; negative values (not produced by our catalog,
    but legal input) are mirrored.
    """
    X = np.asarray(X, dtype=float)
    return np.sign(X) * np.log1p(np.abs(X))


def crisis_training_set(
    values: np.ndarray, violations: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten a raw crisis window into (X, y) machine-epoch samples.

    ``values`` is ``(n_epochs, n_machines, n_metrics)`` raw telemetry around
    one crisis (including pre-crisis normal epochs); ``violations`` the
    matching per-machine SLA flags.  Rows are machine-epochs, as in the
    paper's formulation ``Y_{m,t} = f(X_{m,t})``.
    """
    values = np.asarray(values, dtype=float)
    violations = np.asarray(violations, dtype=bool)
    if values.ndim != 3:
        raise ValueError("values must be 3-D")
    if violations.shape != values.shape[:2]:
        raise ValueError("violations shape mismatch")
    n_epochs, n_machines, n_metrics = values.shape
    X = values.reshape(n_epochs * n_machines, n_metrics)
    y = violations.reshape(n_epochs * n_machines).astype(float)
    return X, y


def select_crisis_metrics(
    values: np.ndarray,
    violations: np.ndarray,
    top_k: int = 10,
    exclude: Sequence[int] = (),
) -> np.ndarray:
    """Step 1: top-k metrics correlated with one crisis.

    ``exclude`` removes metrics from consideration (the KPI metrics
    themselves are trivially correlated with their own SLA violations; the
    paper's fingerprints capture the *why*, not the symptom definition).
    """
    X, y = crisis_training_set(values, violations)
    if y.sum() == 0 or y.sum() == len(y):
        return np.array([], dtype=int)

    keep = np.setdiff1d(np.arange(X.shape[1]), np.asarray(exclude, dtype=int))
    Xs = StandardScaler().fit_transform(stabilize(X[:, keep]))
    picked = select_top_k_features(Xs, y, k=top_k)
    return keep[picked]


def select_relevant_metrics(
    per_crisis_selections: Sequence[np.ndarray],
    n_relevant: int,
    pool: int = 20,
    min_count: int = 2,
) -> np.ndarray:
    """Step 2: most frequent metrics over the trailing crisis pool.

    ``per_crisis_selections`` are the step-1 outputs in chronological order;
    only the last ``pool`` entries participate.  Ties are broken toward the
    metric ranked higher (closer to front) in its selections, then by index
    for determinism.  Returns sorted metric indices.

    "Most frequently selected" implies recurrence: with a reasonable pool,
    metrics selected only once are usually per-crisis selection noise
    (spuriously correlated junk), so they are excluded by ``min_count``
    unless too few recurring metrics exist to fill half the fingerprint.
    """
    if n_relevant <= 0:
        raise ValueError("n_relevant must be positive")
    window: List[np.ndarray] = list(per_crisis_selections)[-pool:]
    if not window:
        raise ValueError("no crisis selections available")
    counts: Counter = Counter()
    rank_sum: Counter = Counter()
    for sel in window:
        for rank, idx in enumerate(np.asarray(sel, dtype=int)):
            counts[int(idx)] += 1
            rank_sum[int(idx)] += rank
    if not counts:
        raise ValueError("all per-crisis selections were empty")

    def sort_key(idx: int):
        return (-counts[idx], rank_sum[idx] / counts[idx], idx)

    if min_count > 1 and len(window) >= min_count:
        recurring = [idx for idx in counts if counts[idx] >= min_count]
        if len(recurring) >= max(n_relevant // 2, 1):
            ordered = sorted(recurring, key=sort_key)
            return np.array(sorted(ordered[:n_relevant]), dtype=int)

    ordered = sorted(counts, key=sort_key)
    return np.array(sorted(ordered[:n_relevant]), dtype=int)


__all__ = [
    "crisis_training_set",
    "select_crisis_metrics",
    "select_relevant_metrics",
]
