"""The epoch-state engine: one owner of the method's always-on bookkeeping.

The paper's method is a single data plane — quantile stream → hot/cold
thresholds over a trailing crisis-free window → summary vectors →
fingerprint → identify — but the repo grew four consumers of it: the
offline :class:`~repro.methods.fingerprints.FingerprintMethod`, the replay
:class:`~repro.core.pipeline.FingerprintPipeline`, the live
:class:`~repro.core.streaming.StreamingCrisisMonitor`, and the evaluation
harness's ``OnlineIdentificationExperiment``.  This module is the one
implementation all four share (see ``docs/engine.md``):

* :class:`RollingThresholdTracker` — an incremental order-statistic
  structure that maintains the trailing crisis-free threshold window and
  answers cold/hot percentile queries **bit-identically** to
  :func:`~repro.core.thresholds.percentile_thresholds` over the same
  window, without re-scanning W epochs per refresh (the Section 6.3
  bookkeeping cost);
* :class:`ThresholdSeries` — thresholds "as of epoch e" over a recorded
  trace, served incrementally (replay, evaluation);
* :class:`EpochStateEngine` — the live path: owns the quantile store, the
  tracker, the current thresholds, and the refresh cadence, with every
  epoch length derived from an :class:`~repro.telemetry.epochs.EpochClock`
  instead of a hardcoded epochs-per-day constant;
* :func:`fingerprint_from_window` / :func:`fingerprint_from_summaries` —
  the single fingerprint-recomputation kernel (recompute-on-parameter-
  change, Section 6.3), shared so every plane averages summary vectors in
  exactly the same floating-point order;
* :func:`compute_thresholds` — the one-shot (offline) threshold path.

Incremental tracker design
--------------------------
Only two extreme order statistics per (metric, quantile) series are ever
queried — the cold (2nd) and hot (98th) percentile — so the tracker does
not keep each series fully sorted.  Per series it maintains a sorted
*head* (the smallest ~cold-fraction values plus slack) and a sorted
*tail* (the largest ~(100-hot)-fraction values plus slack) over the
values currently in the window, alongside a ring buffer of the raw
admitted epochs.  Admitting an epoch touches a head/tail only when the
value lands inside it (a ~4% event in steady state at 2/98), eviction
removes by binary search, and the percentile query interpolates directly
between the two neighboring order statistics using numpy's own
linear-method arithmetic, so the result is the same IEEE-754 value
``np.percentile``/``np.nanpercentile`` would produce.  When evictions
erode a head/tail below what the query needs (a bounded-random-walk
event made rare by the slack), that one series is rebuilt from the ring
in O(W log W).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.config import FingerprintingConfig
from repro.core.summary import summary_vectors
from repro.core.thresholds import QuantileThresholds, percentile_thresholds
from repro.telemetry.epochs import EpochClock
from repro.telemetry.store import QuantileStore

#: Extra sorted slots kept beyond what the percentile query strictly
#: needs.  Evictions shrink a head/tail by at most one slot each, so a
#: rebuild happens at most once per ``_SLACK`` net evictions per series.
_SLACK = 64


def _lerp(a: np.ndarray, b: np.ndarray, t: np.ndarray) -> np.ndarray:
    """numpy's linear-interpolation kernel, replicated operation-for-
    operation (``numpy.lib._function_base_impl._lerp``) so interpolated
    percentiles match ``np.percentile`` bit-for-bit."""
    diff_b_a = np.subtract(b, a)
    lerp = np.asarray(np.add(a, diff_b_a * t))
    np.subtract(b, diff_b_a * (1 - t), out=lerp, where=t >= 0.5)
    return lerp


def _virtual_indexes(
    counts: np.ndarray, percentile: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-series (previous, next, gamma) for numpy's linear method.

    ``counts`` holds the number of non-NaN values in each series.  The
    virtual index is ``(n - 1) * q``; indexes at or above ``n - 1`` clamp
    to the last element (then ``previous == next`` and gamma is moot).
    """
    q = np.true_divide(percentile, 100)
    virt = (counts - 1) * q
    prev = np.floor(virt)
    gamma = virt - prev
    above = virt >= counts - 1
    prev = np.where(above, counts - 1, prev).astype(np.intp)
    nxt = np.minimum(prev + 1, counts - 1).astype(np.intp)
    return prev, nxt, gamma


class RollingThresholdTracker:
    """Incremental cold/hot percentiles over a trailing epoch window.

    Time advances one epoch per :meth:`append`; the window is the last
    ``window_epochs`` appended epochs, restricted to those admitted as
    crisis-free (``anomalous=False``).  :meth:`thresholds` returns exactly
    what :func:`percentile_thresholds` would over the same window — same
    interpolation, same NaN semantics, same loud failure when a series
    has no reported history.
    """

    def __init__(
        self,
        n_metrics: int,
        n_quantiles: int,
        window_epochs: int,
        cold_percentile: float = 2.0,
        hot_percentile: float = 98.0,
    ):
        if window_epochs < 1:
            raise ValueError("window_epochs must be positive")
        if not 0.0 <= cold_percentile < hot_percentile <= 100.0:
            raise ValueError("invalid percentile pair")
        self.n_metrics = int(n_metrics)
        self.n_quantiles = int(n_quantiles)
        self.window_epochs = int(window_epochs)
        self.cold_percentile = float(cold_percentile)
        self.hot_percentile = float(hot_percentile)

        W = self.window_epochs
        S = self.n_metrics * self.n_quantiles
        self._S = S
        # Largest sorted-prefix length the cold query can touch is
        # floor(q*(n-1)) + 2 at n == W; symmetrically for the suffix.
        need_head = int(np.floor(W * (self.cold_percentile / 100))) + 2
        need_tail = W - int(np.floor((W - 1) * (self.hot_percentile / 100)))
        self._h_target = min(W, need_head + _SLACK)
        self._h_cap = min(W, self._h_target + _SLACK)
        self._t_target = min(W, need_tail + _SLACK)
        self._t_cap = min(W, self._t_target + _SLACK)

        self._ring = np.empty((W, S), dtype=float)  # raw admitted epochs
        self._alive = np.zeros(W, dtype=bool)  # slot admitted & in window
        self._head = np.empty((S, self._h_cap), dtype=float)
        self._tail = np.empty((S, self._t_cap), dtype=float)
        self._h = np.zeros(S, dtype=np.intp)  # valid head lengths
        self._tl = np.zeros(S, dtype=np.intp)  # valid tail lengths
        self._n_valid = np.zeros(S, dtype=np.intp)  # non-NaN per series
        self._n_win = 0  # admitted epochs in window
        self._t = 0  # epochs appended (time)

    def __len__(self) -> int:
        return self._t

    @property
    def window_count(self) -> int:
        """Admitted (crisis-free) epochs currently in the window."""
        return self._n_win

    # -- maintenance -------------------------------------------------------

    def append(self, values: np.ndarray, anomalous: bool = False) -> None:
        """Advance one epoch; admit ``values`` unless ``anomalous``.

        Anomalous (or quarantined) epochs still advance time — they age
        older epochs out of the trailing window — but never contribute to
        the percentile state, mirroring the crisis-free filter of the
        window query they replace.
        """
        v = np.asarray(values, dtype=float).reshape(self._S)
        slot = self._t % self.window_epochs
        if self._alive[slot]:
            self._evict(self._ring[slot])
            self._alive[slot] = False
            self._n_win -= 1
        if not anomalous:
            self._ring[slot] = v
            self._alive[slot] = True
            self._n_win += 1
            self._admit(self._ring[slot])
        self._t += 1

    def _admit(self, v: np.ndarray) -> None:
        finite = ~np.isnan(v)
        ar = np.arange(self._S)
        # The head invariant — head[:h] is the h smallest finite values of
        # the window — admits v in exactly two cases: v lands inside the
        # current prefix, or the head covers the whole series (h == number
        # of finite values) so any v extends the prefix.  A v above an
        # eroded, non-covering head must NOT be inserted: its rank among
        # the untracked values is unknown.
        h = self._h
        head_max = self._head[ar, np.maximum(h - 1, 0)]
        covers = self._n_valid == h
        into_head = finite & (
            (covers & (h < self._h_target)) | ((h > 0) & (v <= head_max))
        )
        t = self._tl
        tail_min = self._tail[ar, 0]
        covers_t = self._n_valid == t
        into_tail = finite & (
            (covers_t & (t < self._t_target)) | ((t > 0) & (v >= tail_min))
        )
        self._n_valid[finite] += 1
        for s in np.flatnonzero(into_head):
            n = self._h[s]
            row = self._head[s]
            pos = np.searchsorted(row[:n], v[s])
            if n == self._h_cap:
                # Full: inserting the new value evicts the current
                # maximum, keeping head[:n] the n smallest.
                if pos < n:
                    row[pos + 1 : n] = row[pos : n - 1]
                    row[pos] = v[s]
            else:
                row[pos + 1 : n + 1] = row[pos:n]
                row[pos] = v[s]
                self._h[s] = n + 1
        for s in np.flatnonzero(into_tail):
            n = self._tl[s]
            row = self._tail[s]
            pos = np.searchsorted(row[:n], v[s])
            if n == self._t_cap:
                # Full: inserting evicts the current minimum.
                if pos > 0:
                    row[: pos - 1] = row[1:pos]
                    row[pos - 1] = v[s]
            else:
                row[pos + 1 : n + 1] = row[pos:n]
                row[pos] = v[s]
                self._tl[s] = n + 1

    def _evict(self, v: np.ndarray) -> None:
        finite = ~np.isnan(v)
        self._n_valid[finite] -= 1
        ar = np.arange(self._S)
        h = self._h
        head_max = self._head[ar, np.maximum(h - 1, 0)]
        # A value at most the head's maximum is *in* the head (the head is
        # the h smallest values of the window multiset; ties included).
        in_head = finite & (h > 0) & (v <= head_max)
        for s in np.flatnonzero(in_head):
            n = self._h[s]
            row = self._head[s]
            pos = np.searchsorted(row[:n], v[s])
            row[pos : n - 1] = row[pos + 1 : n]
            self._h[s] = n - 1
        t = self._tl
        tail_min = self._tail[ar, 0]
        in_tail = finite & (t > 0) & (v >= tail_min)
        for s in np.flatnonzero(in_tail):
            n = self._tl[s]
            row = self._tail[s]
            pos = np.searchsorted(row[:n], v[s])
            row[pos : n - 1] = row[pos + 1 : n]
            self._tl[s] = n - 1

    def _rebuild(self, s: int) -> None:
        """Re-sort one series from the ring (rare: slack exhausted)."""
        col = self._ring[self._alive, s]
        col = np.sort(col[~np.isnan(col)])
        n = col.size
        self._n_valid[s] = n
        h = min(n, self._h_target)
        self._head[s, :h] = col[:h]
        self._h[s] = h
        t = min(n, self._t_target)
        self._tail[s, :t] = col[n - t :]
        self._tl[s] = t

    def prime(self, values: np.ndarray, anomalous: np.ndarray) -> None:
        """Bulk-load a history, as if each epoch had been appended.

        Used on checkpoint restore: the tracker is derived state, rebuilt
        from the persisted store in one vectorized pass rather than
        replayed epoch by epoch.
        """
        values = np.asarray(values, dtype=float)
        anomalous = np.asarray(anomalous, dtype=bool)
        n = values.shape[0]
        W = self.window_epochs
        start = max(n - W, 0)
        self._t = n
        self._alive[:] = False
        window = values[start:].reshape(n - start, self._S)
        keep = ~anomalous[start:]
        slots = np.arange(start, n) % W
        self._ring[slots] = window
        self._alive[slots] = keep
        admitted = window[keep]
        self._n_win = admitted.shape[0]
        self._h[:] = 0
        self._tl[:] = 0
        self._n_valid[:] = 0
        if not self._n_win:
            return
        srt = np.sort(admitted, axis=0)  # NaNs sort to the end
        self._n_valid[:] = np.count_nonzero(~np.isnan(admitted), axis=0)
        h = np.minimum(self._n_valid, self._h_target)
        rows = min(self._n_win, self._h_target)
        self._head[:, :rows] = srt[:rows].T
        self._h[:] = h
        t = np.minimum(self._n_valid, self._t_target)
        rows = min(self._n_win, self._t_target)
        idx = np.maximum(self._n_valid - t, 0)[None, :] + np.arange(rows)[:, None]
        np.clip(idx, 0, self._n_win - 1, out=idx)
        self._tail[:, :rows] = np.take_along_axis(srt, idx, axis=0).T
        self._tl[:] = t

    # -- query -------------------------------------------------------------

    def thresholds(self) -> QuantileThresholds:
        """Cold/hot percentiles of the current window.

        Raises the same errors :func:`percentile_thresholds` would: fewer
        than two epochs in the window, or a series with no reported
        (non-NaN) history.
        """
        if self._n_win < 2:
            raise ValueError("need at least two epochs of history")
        counts = self._n_valid
        if (counts == 0).any():
            raise ValueError("a metric quantile has no reported history")
        prev_c, nxt_c, gamma_c = _virtual_indexes(counts, self.cold_percentile)
        prev_h, nxt_h, gamma_h = _virtual_indexes(counts, self.hot_percentile)
        short_head = self._h <= nxt_c
        short_tail = self._tl < counts - prev_h
        for s in np.flatnonzero(short_head | short_tail):
            self._rebuild(s)
        ar = np.arange(self._S)
        cold = _lerp(
            self._head[ar, prev_c], self._head[ar, nxt_c], gamma_c
        )
        off = counts - self._tl  # sorted index of each tail's first slot
        hot = _lerp(
            self._tail[ar, prev_h - off], self._tail[ar, nxt_h - off], gamma_h
        )
        shape = (self.n_metrics, self.n_quantiles)
        return QuantileThresholds(
            cold=cold.reshape(shape), hot=hot.reshape(shape)
        )

    def window_values(self) -> np.ndarray:
        """The admitted window in chronological order (test support)."""
        lo = max(self._t - self.window_epochs, 0)
        ks = np.arange(lo, self._t)
        slots = ks % self.window_epochs
        keep = self._alive[slots]
        return self._ring[slots[keep]].reshape(
            -1, self.n_metrics, self.n_quantiles
        )


def compute_thresholds(
    history: np.ndarray,
    cold_percentile: float = 2.0,
    hot_percentile: float = 98.0,
) -> QuantileThresholds:
    """One-shot thresholds over a fixed history (the offline path).

    Thin front door over :func:`percentile_thresholds` so offline
    consumers route through the engine like the incremental planes do.
    """
    return percentile_thresholds(history, cold_percentile, hot_percentile)


def fingerprint_from_summaries(
    summaries: np.ndarray,
    relevant: np.ndarray,
    n_epochs: Optional[int] = None,
) -> np.ndarray:
    """Average already-discretized summary vectors into a fingerprint.

    ``n_epochs`` truncates the window (counted from its first epoch) for
    the partial fingerprints of the online protocol.  Every data plane
    uses this one kernel so the mean is taken in the same floating-point
    order everywhere — identification distances are compared bitwise in
    the parity tests.
    """
    summaries = np.asarray(summaries)
    if n_epochs is not None:
        summaries = summaries[: max(n_epochs, 1)]
    sub = summaries[:, relevant, :].astype(float)
    return sub.reshape(sub.shape[0], -1).mean(axis=0)


def fingerprint_from_window(
    window: np.ndarray,
    thresholds: QuantileThresholds,
    relevant: np.ndarray,
    n_epochs: Optional[int] = None,
) -> np.ndarray:
    """Discretize a raw quantile window and average it into a fingerprint.

    The recompute-on-parameter-change path of Section 6.3: whenever
    thresholds or the relevant-metric set move, library fingerprints are
    re-derived from the stored raw windows through this function.
    """
    summaries = summary_vectors(np.asarray(window), thresholds)
    return fingerprint_from_summaries(summaries, relevant, n_epochs)


class ThresholdSeries:
    """Thresholds "as of epoch e" over a recorded quantile history.

    Replay and evaluation both ask for thresholds at a sequence of
    (mostly increasing) epochs; this serves those queries from one
    :class:`RollingThresholdTracker` advanced monotonically through the
    recording, falling back to a direct window recompute for
    out-of-order queries.  Results are identical to
    ``percentile_thresholds(trace.threshold_history(e, window))``.
    """

    def __init__(
        self,
        quantiles: np.ndarray,
        anomalous: np.ndarray,
        window_epochs: int,
        cold_percentile: float = 2.0,
        hot_percentile: float = 98.0,
    ):
        self._quantiles = np.asarray(quantiles, dtype=float)
        self._anomalous = np.asarray(anomalous, dtype=bool)
        if self._quantiles.ndim != 3:
            raise ValueError("quantiles must be 3-D")
        if self._anomalous.shape != (self._quantiles.shape[0],):
            raise ValueError("anomalous mask length mismatch")
        self.window_epochs = int(window_epochs)
        self.cold_percentile = float(cold_percentile)
        self.hot_percentile = float(hot_percentile)
        self._tracker = RollingThresholdTracker(
            self._quantiles.shape[1],
            self._quantiles.shape[2],
            self.window_epochs,
            self.cold_percentile,
            self.hot_percentile,
        )
        self._cursor = 0  # epochs fed to the tracker so far

    def _direct(self, epoch: int) -> QuantileThresholds:
        lo = max(epoch - self.window_epochs, 0)
        sel = ~self._anomalous[lo:epoch]
        history = self._quantiles[lo:epoch][sel]
        if history.shape[0] < 2:
            raise ValueError(
                f"not enough crisis-free history before epoch {epoch}"
            )
        return percentile_thresholds(
            history, self.cold_percentile, self.hot_percentile
        )

    def at(self, epoch: int) -> QuantileThresholds:
        """Thresholds over the trailing window ending just before ``epoch``."""
        if epoch < self._cursor or epoch > self._quantiles.shape[0]:
            return self._direct(epoch)
        for e in range(self._cursor, epoch):
            self._tracker.append(
                self._quantiles[e], bool(self._anomalous[e])
            )
        self._cursor = epoch
        if self._tracker.window_count < 2:
            raise ValueError(
                f"not enough crisis-free history before epoch {epoch}"
            )
        return self._tracker.thresholds()


def threshold_series_for(
    trace,
    window_epochs: int,
    cold_percentile: float = 2.0,
    hot_percentile: float = 98.0,
) -> ThresholdSeries:
    """The shared :class:`ThresholdSeries` for a trace.

    Cached on the trace object (alongside the evaluation harness's other
    per-trace caches) so the replay pipeline and every experiment over
    the same trace advance one tracker instead of each rescanning the
    240-day window.
    """
    cache = trace.__dict__.setdefault("_threshold_engines", {})
    key = (int(window_epochs), float(cold_percentile), float(hot_percentile))
    series = cache.get(key)
    if series is None:
        series = cache[key] = ThresholdSeries(
            trace.quantiles, trace.anomalous, window_epochs,
            cold_percentile, hot_percentile,
        )
    return series


class EpochStateEngine:
    """Live epoch state: store, trailing window, thresholds, cadence.

    The streaming monitor delegates all method state here and keeps only
    protocol logic (detection, identification, the crisis library).  All
    epoch counts — refresh cadence, minimum history, the threshold
    window — derive from the :class:`EpochClock`, never from a hardcoded
    epochs-per-day constant.
    """

    def __init__(
        self,
        n_metrics: int,
        n_quantiles: int,
        config: FingerprintingConfig = FingerprintingConfig(),
        clock: Optional[EpochClock] = None,
        threshold_refresh_epochs: Optional[int] = None,
        min_history_epochs: Optional[int] = None,
    ):
        self.config = config
        self.clock = clock if clock is not None else EpochClock()
        cfg_t = config.thresholds
        self.window_epochs = self.clock.span_epochs(cfg_t.window_days)
        # Paper cadence: refresh daily, start after a week of history.
        self.threshold_refresh_epochs = (
            threshold_refresh_epochs
            if threshold_refresh_epochs is not None
            else self.clock.per_day
        )
        self.min_history_epochs = (
            min_history_epochs
            if min_history_epochs is not None
            else 7 * self.clock.per_day
        )
        self.store = QuantileStore(n_metrics, n_quantiles)
        self.tracker = RollingThresholdTracker(
            n_metrics, n_quantiles, self.window_epochs,
            cfg_t.cold_percentile, cfg_t.hot_percentile,
        )
        self.thresholds: Optional[QuantileThresholds] = None
        self.epochs_since_refresh = 0
        #: Bumped whenever thresholds change; consumers key derived state
        #: (e.g. re-discretized library fingerprints) off this.
        self.version = 0

    @property
    def ready(self) -> bool:
        return self.thresholds is not None

    def observe(
        self, values: np.ndarray, anomalous: bool, frozen: bool = False
    ) -> Tuple[int, bool]:
        """Ingest one epoch; returns ``(epoch_index, thresholds_refreshed)``.

        ``frozen`` quarantines the epoch (quality gate): it is stored
        flagged anomalous so it can never enter a threshold window, and
        the refresh countdown does not advance.
        """
        epoch = self.store.append(values, anomalous or frozen)
        self.tracker.append(values, anomalous or frozen)
        if frozen:
            return epoch, False
        self.epochs_since_refresh += 1
        refreshed = False
        if (
            self.thresholds is None
            and len(self.store) >= self.min_history_epochs
        ) or self.epochs_since_refresh >= self.threshold_refresh_epochs:
            refreshed = self.refresh_thresholds()
            self.epochs_since_refresh = 0
        return epoch, refreshed

    def refresh_thresholds(self) -> bool:
        """Recompute thresholds from the trailing window (if populated)."""
        if self.tracker.window_count < 2:
            return False
        self.thresholds = self.tracker.thresholds()
        self.version += 1
        return True

    def rebuild_tracker(self) -> None:
        """Re-derive the tracker from the store (checkpoint restore)."""
        self.tracker.prime(self.store.values(), self.store.anomalous_mask())


__all__ = [
    "EpochStateEngine",
    "RollingThresholdTracker",
    "ThresholdSeries",
    "compute_thresholds",
    "fingerprint_from_summaries",
    "fingerprint_from_window",
    "threshold_series_for",
]
