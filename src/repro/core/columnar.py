"""Columnar epoch blocks: the preallocated ndarray ingestion core.

Every ingestion layer used to funnel per-machine reports through Python
dicts and lists (``List[np.ndarray]`` in the collector, ``Dict[str,
Tuple[List[float], bool]]`` in the serving tenant, per-metric list
comprehensions in the fleet folder) before anything was vectorized.  At
millions of samples per epoch that interpreted bookkeeping *is* the hot
path — the fleet tier merely parallelized it.  This module provides the
shared columnar core those layers now fill and consume:

* :class:`EpochBlock` — a preallocated ``(machine, metric)`` float64
  value matrix plus an SLA-violation bitmap and a machine-id interning
  table.  The block is reused across epochs (``reset()`` clears the
  occupancy bookkeeping without touching the buffers), grows by
  doubling, and supports two filling styles:

  - *anonymous rows* (:meth:`EpochBlock.append` /
    :meth:`EpochBlock.append_batch`) for aggregation paths that never
    see machine identities — the collector and the fleet shard folder.
    Non-finite entries are NaN-masked and counted exactly like the
    scalar submit path, and per-metric finite counts accumulate as a
    side effect of the same vectorized pass.
  - *keyed rows* (:meth:`EpochBlock.put` / :meth:`EpochBlock.put_batch`)
    for the serving tenant's pending-epoch buffer, where a re-delivered
    report must overwrite its machine's row idempotently.  Machine ids
    are interned once; rows are reused for the machine's reports in
    every later epoch.  Values are stored verbatim (the serving summary
    path defines the NaN semantics downstream).  The keyed surface is a
    read-only mapping (``len`` / ``in`` / iteration over present
    machine ids / ``block[machine]``), so call sites that treated the
    pending buffer as a dict keep working unchanged.

* :class:`WindowBlock` — a preallocated ``(epoch, metric, quantile)``
  rolling window whose :meth:`WindowBlock.view` hands the fingerprint
  kernels a *view* over the filled prefix instead of re-stacking a list
  of per-epoch arrays every identification epoch.

The columnar paths are pinned bit-identical to the per-machine paths
they replace by ``tests/test_columnar_parity.py`` (including NaN
semantics, quorum gating, and idempotent duplicate reports); the
speedup is measured by ``benchmarks/test_columnar_ingest.py``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

#: Rows a fresh block preallocates; grows by doubling beyond this.
DEFAULT_CAPACITY = 64


class EpochBlock:
    """Preallocated ``(machine, metric)`` report block, reused per epoch.

    One block instance serves one filling style at a time — anonymous
    rows (aggregators) or keyed rows (the tenant's pending buffer); the
    two styles share the buffers but not their row bookkeeping.
    """

    def __init__(self, n_metrics: int, capacity: int = DEFAULT_CAPACITY):
        if n_metrics < 1:
            raise ValueError("need at least one metric")
        self.n_metrics = int(n_metrics)
        capacity = max(int(capacity), 1)
        # Column-major: the close-path kernels sort each metric's
        # column, and sorting a contiguous column is ~2x faster than a
        # strided one at fleet scale (per-row writes on ingest pay a
        # negligible strided-copy cost in exchange).
        self._values = np.empty(
            (capacity, self.n_metrics), dtype=np.float64, order="F"
        )
        self._violations = np.zeros(capacity, dtype=bool)
        self._present = np.zeros(capacity, dtype=bool)
        self._ids: List[str] = []  # row -> machine id (interning table)
        self._rows: Dict[str, int] = {}  # machine id -> row
        self._n_rows = 0  # anonymous rows filled this epoch
        self._n_present = 0  # keyed rows present this epoch
        self._col_counts = np.zeros(self.n_metrics, dtype=np.int64)

    # -- capacity ----------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._values.shape[0]

    def _ensure(self, n_rows: int) -> None:
        cap = self.capacity
        if n_rows <= cap:
            return
        while cap < n_rows:
            cap *= 2
        values = np.empty(
            (cap, self.n_metrics), dtype=np.float64, order="F"
        )
        values[: self._values.shape[0]] = self._values
        violations = np.zeros(cap, dtype=bool)
        violations[: self._violations.shape[0]] = self._violations
        present = np.zeros(cap, dtype=bool)
        present[: self._present.shape[0]] = self._present
        self._values = values
        self._violations = violations
        self._present = present

    # -- anonymous rows (aggregation paths) --------------------------------

    def append(self, report: np.ndarray) -> int:
        """Fill one anonymous row; returns the non-finite entries dropped.

        Non-finite values are stored as NaN and counted, mirroring the
        scalar ``EpochAggregator.submit`` contract (``inf`` is dropped
        and counted, never summarized).
        """
        report = np.asarray(report, dtype=np.float64)
        if report.shape != (self.n_metrics,):
            raise ValueError("report length mismatch")
        self._ensure(self._n_rows + 1)
        finite = np.isfinite(report)
        row = self._values[self._n_rows]
        np.copyto(row, report)
        dropped = int(report.size - int(finite.sum()))
        if dropped:
            row[~finite] = np.nan
        self._col_counts += finite
        self._n_rows += 1
        return dropped

    def append_batch(self, matrix: np.ndarray) -> int:
        """Fill many anonymous rows in one vectorized pass.

        Returns the total non-finite entries dropped (NaN-masked in
        place), identical to calling :meth:`append` per row.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self.n_metrics:
            raise ValueError(
                f"batch must be (n, {self.n_metrics}), got {matrix.shape}"
            )
        n = matrix.shape[0]
        if n == 0:
            return 0
        self._ensure(self._n_rows + n)
        finite = np.isfinite(matrix)
        dest = self._values[self._n_rows : self._n_rows + n]
        np.copyto(dest, matrix)
        per_metric = finite.sum(axis=0)
        dropped = int(matrix.size - int(per_metric.sum()))
        if dropped:
            dest[~finite] = np.nan
        self._col_counts += per_metric
        self._n_rows += n
        return dropped

    def matrix(self) -> np.ndarray:
        """View of the filled anonymous rows — no copy."""
        return self._values[: self._n_rows]

    def column_counts(self) -> np.ndarray:
        """Finite observations per metric across the anonymous rows."""
        return self._col_counts.copy()

    # -- keyed rows (the tenant's pending-epoch buffer) ---------------------

    def _row_for(self, machine: str) -> int:
        row = self._rows.get(machine)
        if row is None:
            row = len(self._ids)
            self._ensure(row + 1)
            self._ids.append(machine)
            self._rows[machine] = row
        return row

    def put(
        self, machine: str, values: Sequence[float], violation: bool = False
    ) -> None:
        """Set one machine's row for this epoch (idempotent overwrite).

        Values are stored verbatim — the serving close path owns the
        NaN semantics, exactly as the dict buffer it replaces did.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.n_metrics,):
            raise ValueError("report length mismatch")
        row = self._row_for(machine)
        np.copyto(self._values[row], values)
        self._violations[row] = bool(violation)
        if not self._present[row]:
            self._present[row] = True
            self._n_present += 1

    def put_batch(
        self,
        machines: Sequence[str],
        matrix: np.ndarray,
        violations: Sequence[bool],
    ) -> None:
        """Set many machines' rows in one vectorized pass.

        ``machines`` must not repeat within one batch (the wire layer
        enforces this), so the fancy-index assignment is well defined.
        Only the id-interning lookups remain per-machine Python work;
        the value and violation stores are single ndarray writes.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        n = len(machines)
        if matrix.shape != (n, self.n_metrics):
            raise ValueError(
                f"batch must be ({n}, {self.n_metrics}), got {matrix.shape}"
            )
        if len(violations) != n:
            raise ValueError("violation count mismatch")
        rows = np.empty(n, dtype=np.intp)
        row_for = self._row_for
        for i, machine in enumerate(machines):
            rows[i] = row_for(machine)
        self._values[rows] = matrix
        self._violations[rows] = np.asarray(violations, dtype=bool)
        newly = int(n - int(self._present[rows].sum()))
        if newly:
            self._present[rows] = True
            self._n_present += newly

    def machines(self) -> List[str]:
        """Present machine ids, in interning (first-ever-seen) order."""
        ids = self._ids
        return [ids[r] for r in np.flatnonzero(self._present[: len(ids)])]

    def gather(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(values, violations)`` of the present rows, one gather each."""
        rows = np.flatnonzero(self._present[: len(self._ids)])
        return self._values[rows], self._violations[rows]

    def items(self) -> Iterator[Tuple[str, Tuple[List[float], bool]]]:
        """``(machine, (values, violation))`` pairs of the present rows."""
        for machine in self.machines():
            yield machine, self[machine]

    # -- mapping facade (keyed style) ---------------------------------------

    def __len__(self) -> int:
        return self._n_rows + self._n_present

    def __contains__(self, machine: object) -> bool:
        row = self._rows.get(machine)  # type: ignore[arg-type]
        return row is not None and bool(self._present[row])

    def __iter__(self) -> Iterator[str]:
        return iter(self.machines())

    def __getitem__(self, machine: str) -> Tuple[List[float], bool]:
        row = self._rows.get(machine)
        if row is None or not self._present[row]:
            raise KeyError(machine)
        return self._values[row].tolist(), bool(self._violations[row])

    # -- per-epoch lifecycle ------------------------------------------------

    def reset(self) -> None:
        """Start a new epoch: clear occupancy, keep buffers + interning."""
        if self._n_present:
            self._present[: len(self._ids)] = False
            self._n_present = 0
        self._n_rows = 0
        self._col_counts[:] = 0

    #: Dict-compatible alias so ``pending.clear()`` call sites survive.
    clear = reset


class WindowBlock:
    """Preallocated ``(epoch, metric, quantile)`` rolling window.

    Replaces the ``List[np.ndarray]`` + ``np.stack`` pattern on the
    streaming monitor's live-crisis window: epochs are appended into a
    preallocated buffer and the fingerprint kernels consume
    :meth:`view` — a slice of the buffer, not a fresh stack — every
    identification epoch.
    """

    def __init__(self, n_metrics: int, n_quantiles: int, capacity: int = 8):
        if n_metrics < 1 or n_quantiles < 1:
            raise ValueError("need at least one metric and one quantile")
        self.n_metrics = int(n_metrics)
        self.n_quantiles = int(n_quantiles)
        capacity = max(int(capacity), 1)
        self._buf = np.empty(
            (capacity, self.n_metrics, self.n_quantiles), dtype=np.float64
        )
        self._n = 0

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[np.ndarray],
        capacity: Optional[int] = None,
    ) -> "WindowBlock":
        """Build a window from per-epoch ``(metric, quantile)`` arrays."""
        if not rows:
            raise ValueError("need at least one epoch")
        first = np.asarray(rows[0], dtype=np.float64)
        if first.ndim != 2:
            raise ValueError("epochs must be (n_metrics, n_quantiles)")
        block = cls(
            first.shape[0], first.shape[1],
            capacity=max(len(rows), capacity or 0, 1),
        )
        for row in rows:
            block.append(row)
        return block

    @classmethod
    def from_array(
        cls, window: np.ndarray, capacity: Optional[int] = None
    ) -> "WindowBlock":
        """Build a window from a stacked ``(w, metric, quantile)`` array."""
        window = np.asarray(window, dtype=np.float64)
        if window.ndim != 3:
            raise ValueError("window must be (w, n_metrics, n_quantiles)")
        block = cls(
            window.shape[1], window.shape[2],
            capacity=max(window.shape[0], capacity or 0, 1),
        )
        block._buf[: window.shape[0]] = window
        block._n = window.shape[0]
        return block

    def append(self, epoch_quantiles: np.ndarray) -> None:
        epoch_quantiles = np.asarray(epoch_quantiles, dtype=np.float64)
        if epoch_quantiles.shape != (self.n_metrics, self.n_quantiles):
            raise ValueError(
                f"epoch must be ({self.n_metrics}, {self.n_quantiles}), "
                f"got {epoch_quantiles.shape}"
            )
        if self._n == self._buf.shape[0]:
            grown = np.empty(
                (self._buf.shape[0] * 2, self.n_metrics, self.n_quantiles),
                dtype=np.float64,
            )
            grown[: self._n] = self._buf[: self._n]
            self._buf = grown
        self._buf[self._n] = epoch_quantiles
        self._n += 1

    def view(self) -> np.ndarray:
        """The filled window as a view — no copy, do not mutate."""
        return self._buf[: self._n]

    def snapshot(self) -> np.ndarray:
        """The filled window as an owned copy (for long-term storage)."""
        return self._buf[: self._n].copy()

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[np.ndarray]:
        """Per-epoch ``(n_metrics, n_quantiles)`` views, oldest first."""
        return iter(self._buf[: self._n])

    def __getitem__(self, index):
        """Sequence-style access to the filled epochs (views)."""
        return self._buf[: self._n][index]


__all__ = ["DEFAULT_CAPACITY", "EpochBlock", "WindowBlock"]
