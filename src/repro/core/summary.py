"""Summary vectors: discretized quantile state per epoch (Section 3.3).

Each (metric, quantile) element becomes -1 (cold), 0 (normal) or +1 (hot)
by comparison against the hot/cold thresholds.  A summary vector has
``3 * M`` elements for M tracked metrics — its size is independent of the
number of machines, which is the representation's key scaling property.
"""

from __future__ import annotations

import numpy as np

from repro.core.thresholds import QuantileThresholds


def summary_vectors(
    quantiles: np.ndarray, thresholds: QuantileThresholds
) -> np.ndarray:
    """Discretize quantile values into {-1, 0, +1} summaries.

    Parameters
    ----------
    quantiles:
        Either one epoch ``(n_metrics, n_quantiles)`` or a window
        ``(n_epochs, n_metrics, n_quantiles)``.
    thresholds:
        Hot/cold cutoffs of matching metric dimension.

    Returns
    -------
    ``int8`` array of the same shape as ``quantiles``.

    NaN quantile values (epochs where a metric was not reported) compare
    false against both cutoffs and therefore read as normal (0) — a
    missing metric contributes nothing to a fingerprint rather than a
    spurious hot/cold flag.
    """
    q = np.asarray(quantiles, dtype=float)
    squeeze = False
    if q.ndim == 2:
        q = q[None]
        squeeze = True
    if q.ndim != 3:
        raise ValueError("quantiles must be 2-D or 3-D")
    if q.shape[1:] != thresholds.cold.shape:
        raise ValueError(
            f"quantiles shape {q.shape[1:]} does not match thresholds "
            f"{thresholds.cold.shape}"
        )
    out = np.zeros(q.shape, dtype=np.int8)
    out[q > thresholds.hot[None]] = 1
    out[q < thresholds.cold[None]] = -1
    return out[0] if squeeze else out


def flatten_summary(summary: np.ndarray) -> np.ndarray:
    """Flatten (..., n_metrics, n_quantiles) summaries to vectors."""
    summary = np.asarray(summary)
    if summary.ndim < 2:
        raise ValueError("summary must have metric and quantile axes")
    return summary.reshape(*summary.shape[:-2], -1)


__all__ = ["summary_vectors", "flatten_summary"]
