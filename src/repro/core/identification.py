"""Crisis identification: thresholds, matching, and stability (Sections 4.3, 5.3).

Identification runs once per epoch for five epochs after detection.  Each
attempt either emits the label of the nearest known crisis (when its
fingerprint distance is under the identification threshold) or the special
``UNKNOWN`` symbol.  A sequence is *stable* when it consists of zero or more
``UNKNOWN``s followed by zero or more repetitions of one label; unstable
sequences are operationally useless and count as identification failures.

The identification threshold is estimated from past crises:

* offline — the largest threshold whose false-alarm rate on the full
  distance ROC stays under alpha (:meth:`repro.ml.roc.ROCCurve.threshold_at_alpha`);
* online — the adaptive rules of Section 5.3, handling the cold-start cases
  where only same-type or only distinct-type pairs have been seen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.similarity import l2_distance, pair_arrays, pairwise_distances
from repro.ml.roc import roc_curve

#: The "don't know" identification output (the paper's ``x``).
UNKNOWN = "x"


def threshold_from_pairs(
    pair_d: np.ndarray, is_same: np.ndarray, alpha: float
) -> float:
    """Section 5.3's rules, given precomputed pair distances.

    * only same-type pairs seen: ``T = max_d * (1 + alpha)``;
    * only distinct-type pairs seen: ``T = min_d * (1 - alpha)``;
    * both, separable (``max_same < min_diff``):
      ``T = max_same + alpha * (min_diff - max_same)``;
    * both, not separable: the ROC-based threshold at false-alarm rate
      alpha, as in the offline setting.
    """
    pair_d = np.asarray(pair_d, dtype=float).ravel()
    is_same = np.asarray(is_same, dtype=bool).ravel()
    if pair_d.shape != is_same.shape or pair_d.size == 0:
        raise ValueError("invalid pair arrays")
    has_same = bool(is_same.any())
    has_diff = bool((~is_same).any())
    if has_same and not has_diff:
        return float(pair_d.max() * (1.0 + alpha))
    if has_diff and not has_same:
        return float(pair_d.min() * (1.0 - alpha))

    max_same = float(pair_d[is_same].max())
    min_diff = float(pair_d[~is_same].min())
    if max_same < min_diff:
        return max_same + alpha * (min_diff - max_same)
    return roc_curve(pair_d, is_same).threshold_at_alpha(alpha)


def estimate_threshold_online(
    vectors: Sequence[np.ndarray],
    labels: Sequence[str],
    alpha: float,
) -> float:
    """Section 5.3's rules from the fingerprints of all past crises."""
    if len(vectors) != len(labels):
        raise ValueError("vectors/labels length mismatch")
    if len(vectors) < 2:
        raise ValueError("need at least two past crises")
    dist = pairwise_distances(list(vectors))
    pair_d, is_same = pair_arrays(dist, list(labels))
    return threshold_from_pairs(pair_d, is_same, alpha)


@dataclass(frozen=True)
class IdentificationResult:
    """One identification attempt."""

    label: str  # a crisis label, or UNKNOWN
    nearest_label: Optional[str]
    distance: Optional[float]
    threshold: float

    @property
    def matched(self) -> bool:
        return self.label != UNKNOWN


class Identifier:
    """Matches a (partial) crisis fingerprint against known crises."""

    def __init__(self, threshold: float):
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = threshold

    def identify(
        self,
        vector: np.ndarray,
        library: Sequence[Tuple[np.ndarray, str]],
    ) -> IdentificationResult:
        """Nearest-neighbor identification with an unknown cutoff.

        ``library`` holds ``(fingerprint_vector, label)`` pairs of past
        diagnosed crises.
        """
        if not library:
            return IdentificationResult(
                label=UNKNOWN, nearest_label=None, distance=None,
                threshold=self.threshold,
            )
        distances = np.array(
            [l2_distance(vector, fp) for fp, _ in library]
        )
        best = int(np.argmin(distances))
        nearest_label = library[best][1]
        best_d = float(distances[best])
        label = nearest_label if best_d < self.threshold else UNKNOWN
        return IdentificationResult(
            label=label,
            nearest_label=nearest_label,
            distance=best_d,
            threshold=self.threshold,
        )


def is_stable(sequence: Sequence[str]) -> bool:
    """True for sequences of the form ``x* L*`` (one consistent label)."""
    seen_label: Optional[str] = None
    for s in sequence:
        if s == UNKNOWN:
            if seen_label is not None:
                return False  # label followed by an x
        else:
            if seen_label is None:
                seen_label = s
            elif s != seen_label:
                return False  # two different labels
    return True


def sequence_label(sequence: Sequence[str]) -> Optional[str]:
    """The label a stable sequence settles on (None if all-unknown).

    Raises ValueError on unstable sequences — callers must check
    :func:`is_stable` first, since an unstable sequence has no meaningful
    label.
    """
    if not is_stable(sequence):
        raise ValueError("sequence is unstable")
    for s in sequence:
        if s != UNKNOWN:
            return s
    return None


def first_correct_epoch(
    sequence: Sequence[str], true_label: str
) -> Optional[int]:
    """Index of the first epoch emitting the correct label, else None."""
    for i, s in enumerate(sequence):
        if s == true_label:
            return i
    return None


__all__ = [
    "UNKNOWN",
    "IdentificationResult",
    "Identifier",
    "estimate_threshold_online",
    "threshold_from_pairs",
    "is_stable",
    "sequence_label",
    "first_correct_epoch",
]
