"""Atomic ``.npz`` archives with a JSON header.

The persistence idiom shared by :mod:`repro.core.checkpoint` and
:mod:`repro.index.snapshot`: array payloads plus a JSON header packed
into a ``uint8`` array under the key ``"header"``, written to a
temporary file in the destination directory, fsynced, and renamed over
the target.  A crash mid-write leaves the previous archive intact,
never a torn file.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from typing import Dict

import numpy as np


def fsync_dir(path) -> None:
    """fsync a directory so a rename within it is itself durable.

    A rename is atomic the moment it happens, but only survives a power
    loss once the directory entry reaches disk.  Filesystems that do not
    support opening directories (or exotic mounts) are ignored — the
    rename still happened, durability is merely best-effort there.
    """
    try:
        fd = os.open(pathlib.Path(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_npz(path, arrays: Dict[str, np.ndarray]) -> None:
    """Write an ``.npz`` atomically: tmp file + fsync + rename + dir fsync."""
    path = pathlib.Path(path)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent or pathlib.Path("."), suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez_compressed(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        fsync_dir(path.parent or pathlib.Path("."))
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def pack_header(header: dict) -> np.ndarray:
    """JSON-encode a header dict into a ``uint8`` array payload."""
    # numpy scalars (e.g. a threshold held as np.float64) serialize via .item()
    payload = json.dumps(header, default=lambda o: o.item())
    return np.frombuffer(payload.encode("utf-8"), dtype=np.uint8)


def unpack_header(data) -> dict:
    """Decode the ``"header"`` array of a loaded archive."""
    return json.loads(bytes(data["header"]).decode("utf-8"))


__all__ = ["atomic_write_npz", "fsync_dir", "pack_header", "unpack_header"]
