"""Streaming crisis monitor: the method as a long-running service.

:class:`~repro.core.pipeline.FingerprintPipeline` replays a recorded
trace; this module runs the same logic over a *live* stream of epoch
summaries (e.g. from :class:`repro.telemetry.collector.EpochAggregator`).
Each ingested epoch can emit events:

* :class:`CrisisDetected` — the KPI-violation fraction crossed the SLA
  rule (10% of machines in the paper);
* :class:`IdentificationUpdate` — one entry of the five-epoch
  identification sequence for the crisis in progress;
* :class:`CrisisEnded` — the violation fraction dropped back to normal;
* :class:`EpochUntrusted` — the epoch failed the quality gate and was
  quarantined (see below).

Hot/cold thresholds are maintained from the monitor's own
:class:`~repro.telemetry.store.QuantileStore` over a trailing crisis-free
window.  Relevant metrics come from offline analysis (feature selection
needs per-machine data the stream does not carry) and can be swapped at
any time; the library re-fingerprints automatically.

**Quality gating.**  Telemetry degrades exactly when crises happen, so
every epoch passes a trust gate before it can influence the method's
state: summaries are validated (:mod:`repro.telemetry.validation` — any
``error``-severity issue marks the epoch untrusted) and, when the caller
supplies an :class:`~repro.telemetry.collector.EpochQuality` record,
fleet coverage below ``reliability.coverage_floor`` or a failed quorum
does too.  An untrusted epoch is quarantined: it is stored flagged
anomalous (so it can never enter a threshold window — the Figure 8
stale-threshold result shows mildly stale thresholds are far cheaper than
poisoned ones), threshold refresh is frozen, it cannot start or end a
crisis, and if an identification is due the monitor emits the paper's
don't-know label rather than risk a misidentification, preserving the
``x*L*`` stability semantics of identification sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.config import FingerprintingConfig, ReliabilityConfig
from repro.core.columnar import WindowBlock
from repro.core.engine import EpochStateEngine, fingerprint_from_window
from repro.core.identification import (
    UNKNOWN,
    estimate_threshold_online,
)
from repro.index import FingerprintIndex, create_index
from repro.core.thresholds import QuantileThresholds
from repro.telemetry.collector import EpochQuality
from repro.telemetry.epochs import EpochClock
from repro.telemetry.store import QuantileStore
from repro.telemetry.validation import validate_epoch_summary


@dataclass(frozen=True)
class CrisisDetected:
    epoch: int
    crisis_number: int


@dataclass(frozen=True)
class IdentificationUpdate:
    epoch: int
    crisis_number: int
    identification_epoch: int  # 0-based within the five-epoch protocol
    label: str  # crisis label or UNKNOWN
    distance: Optional[float]


@dataclass(frozen=True)
class CrisisEnded:
    epoch: int
    crisis_number: int
    duration_epochs: int


@dataclass(frozen=True)
class EpochUntrusted:
    """The epoch failed the quality gate and was quarantined."""

    epoch: int
    reasons: Tuple[str, ...]


MonitorEvent = Union[
    CrisisDetected, CrisisEnded, EpochUntrusted, IdentificationUpdate
]


@dataclass
class _LiveCrisis:
    number: int
    detected_epoch: int
    #: Raw quantile window: a preallocated columnar block whose
    #: ``view()`` the fingerprint kernels consume directly — no
    #: re-stacking per identification epoch.
    summaries: Optional[WindowBlock] = None
    identifications: int = 0
    ended: bool = False


@dataclass
class _StoredCrisis:
    number: int
    label: Optional[str]
    quantile_window: np.ndarray  # (w, n_metrics, n_quantiles)


class StreamingCrisisMonitor:
    """Online detection + identification over an epoch-summary stream."""

    def __init__(
        self,
        n_metrics: int,
        relevant_metrics: Sequence[int],
        config: FingerprintingConfig = FingerprintingConfig(),
        threshold_refresh_epochs: Optional[int] = None,
        min_history_epochs: Optional[int] = None,
        reliability: ReliabilityConfig = ReliabilityConfig(),
        clock: Optional[EpochClock] = None,
    ):
        cfg_q = config.quantiles
        self.config = config
        self.reliability = reliability
        self.n_metrics = n_metrics
        self.relevant = np.asarray(relevant_metrics, dtype=int)
        if self.relevant.size == 0:
            raise ValueError("need at least one relevant metric")
        if np.any((self.relevant < 0) | (self.relevant >= n_metrics)):
            raise ValueError("relevant metric index out of range")
        # All epoch state — the quantile store, the trailing threshold
        # window, the refresh cadence (default: daily, after a week of
        # history, per the clock) — lives in the engine.
        self._engine = EpochStateEngine(
            n_metrics,
            cfg_q.count,
            config=config,
            clock=clock,
            threshold_refresh_epochs=threshold_refresh_epochs,
            min_history_epochs=min_history_epochs,
        )
        self._crisis_counter = 0
        self._live: Optional[_LiveCrisis] = None
        self._library: List[_StoredCrisis] = []
        self._pre_buffer: List[np.ndarray] = []  # last pre_epochs summaries
        self.untrusted_epochs = 0  # lifetime count of quarantined epochs
        # Identification indexes, one per protocol slot k (the library is
        # re-fingerprinted at depth pre+k+1 for slot k).  Derived state:
        # rebuilt incrementally as crises are diagnosed and invalidated
        # when thresholds or the relevant-metric set change.
        self._index_cache: Dict[int, FingerprintIndex] = {}
        self._index_labels: Dict[int, Dict[int, str]] = {}
        # Opt-in unsupervised discovery (repro.discovery): observes the
        # event stream so don't-know crises grow the catalog.
        self._discovery = None
        # Opt-in predictive early warning (repro.forecast): observes each
        # ingested epoch to score crisis imminence before the SLA breaks.
        self._forecast = None

    # -- engine delegation -----------------------------------------------------

    @property
    def engine(self) -> EpochStateEngine:
        """The shared epoch-state engine backing this monitor."""
        return self._engine

    @property
    def clock(self) -> EpochClock:
        return self._engine.clock

    @property
    def store(self) -> QuantileStore:
        return self._engine.store

    @property
    def thresholds(self) -> Optional[QuantileThresholds]:
        return self._engine.thresholds

    @thresholds.setter
    def thresholds(self, value: Optional[QuantileThresholds]) -> None:
        self._engine.thresholds = value

    @property
    def threshold_refresh_epochs(self) -> int:
        return self._engine.threshold_refresh_epochs

    @property
    def min_history_epochs(self) -> int:
        return self._engine.min_history_epochs

    @property
    def _epochs_since_refresh(self) -> int:
        return self._engine.epochs_since_refresh

    @_epochs_since_refresh.setter
    def _epochs_since_refresh(self, value: int) -> None:
        self._engine.epochs_since_refresh = value

    # -- parameter management ------------------------------------------------

    def set_relevant_metrics(self, relevant: Sequence[int]) -> None:
        """Swap the fingerprint columns (from fresh offline selection)."""
        relevant = np.asarray(relevant, dtype=int)
        if relevant.size == 0:
            raise ValueError("need at least one relevant metric")
        self.relevant = relevant
        self._invalidate_indexes()

    @property
    def ready(self) -> bool:
        """True once enough crisis-free history exists to discretize."""
        return self.thresholds is not None

    # -- unsupervised discovery ------------------------------------------------

    @property
    def discovery(self):
        """The attached :class:`repro.discovery.DiscoveryEngine`, if any."""
        return self._discovery

    def attach_discovery(self, engine) -> None:
        """Opt in to unsupervised discovery: feed don't-know crises to
        ``engine`` (a :class:`repro.discovery.DiscoveryEngine`) so they
        cluster into automatic catalog entries instead of being dropped.
        """
        engine.attach(self)

    def _notify(self, events: List[MonitorEvent]) -> List[MonitorEvent]:
        if self._discovery is not None and events:
            self._discovery.observe(events)
        return events

    # -- predictive early warning ----------------------------------------------

    @property
    def forecast(self):
        """The attached :class:`repro.forecast.ForecastEngine`, if any."""
        return self._forecast

    def attach_forecast(self, engine) -> None:
        """Opt in to predictive early warning: ``engine`` (a
        :class:`repro.forecast.ForecastEngine`) observes every ingested
        epoch and raises calibrated pre-SLA alarms.
        """
        engine.attach(self)

    def _emit(
        self,
        events: List[MonitorEvent],
        epoch: int,
        epoch_quantiles: np.ndarray,
        violation_fraction: float,
        untrusted: bool,
    ) -> List[MonitorEvent]:
        """Per-epoch fan-out: discovery sees events, forecast sees epochs."""
        self._notify(events)
        if self._forecast is not None:
            self._forecast.observe_epoch(
                epoch=epoch,
                epoch_quantiles=epoch_quantiles,
                violation_fraction=violation_fraction,
                events=events,
                untrusted=untrusted,
            )
        return events

    # -- fingerprints ----------------------------------------------------------

    def _fingerprint(self, window: np.ndarray,
                     n_epochs: Optional[int] = None) -> np.ndarray:
        return fingerprint_from_window(
            window, self.thresholds, self.relevant, n_epochs
        )

    def _invalidate_indexes(self) -> None:
        self._index_cache.clear()
        self._index_labels.clear()

    def _library_index(self, k: int) -> FingerprintIndex:
        """The identification index for protocol slot ``k``, synced lazily.

        Newly diagnosed crises are *added* to an existing index (the
        incremental path); a relabeled crisis or invalidated cache
        triggers a rebuild.  Exact backends store float64 so matching is
        bit-identical to the historical direct scan over the library.
        """
        pre = self.config.fingerprint.pre_epochs
        cfg = self.config.index
        index = self._index_cache.get(k)
        if index is None:
            dim = int(self.relevant.size) * self.config.quantiles.count
            kwargs = cfg.backend_kwargs()
            if cfg.backend in ("brute", "kdtree"):
                kwargs["dtype"] = np.float64
            index = create_index(cfg.backend, dim, **kwargs)
            self._index_cache[k] = index
            self._index_labels[k] = {}
        labels = self._index_labels[k]
        for stored in self._library:
            if stored.label is None:
                continue
            seen = labels.get(stored.number)
            if seen is None:
                index.add(
                    self._fingerprint(
                        stored.quantile_window, n_epochs=pre + k + 1
                    ),
                    id=stored.number,
                    payload=stored.label,
                )
                labels[stored.number] = stored.label
            elif seen != stored.label:
                self._invalidate_indexes()
                return self._library_index(k)
        return index

    def _identify(self, live: _LiveCrisis, epoch: int) -> IdentificationUpdate:
        k = live.identifications
        window = live.summaries.view()
        new_vec = self._fingerprint(window)
        index = self._library_index(k)
        threshold = None
        if len(index) >= 2:
            ids = index.ids()
            try:
                threshold = estimate_threshold_online(
                    [index.vector(i) for i in ids],
                    [index.payload(i) for i in ids],
                    self.config.identification.alpha,
                )
            except ValueError:
                threshold = None
        if threshold is None or len(index) == 0:
            result_label, distance = UNKNOWN, None
        else:
            hits = index.query(new_vec, k=1)
            if not hits:
                # Approximate backends may return nothing when no bucket
                # holds the query; that is a don't-know, not a crash.
                result_label, distance = UNKNOWN, None
            else:
                hit = hits[0]
                distance = hit.distance
                result_label = hit.payload if distance < threshold else UNKNOWN
        live.identifications += 1
        return IdentificationUpdate(
            epoch=epoch,
            crisis_number=live.number,
            identification_epoch=k,
            label=result_label,
            distance=distance,
        )

    def _dont_know(self, live: _LiveCrisis, epoch: int) -> IdentificationUpdate:
        """One protocol slot spent on an untrusted epoch: emit don't-know."""
        k = live.identifications
        live.identifications += 1
        return IdentificationUpdate(
            epoch=epoch,
            crisis_number=live.number,
            identification_epoch=k,
            label=UNKNOWN,
            distance=None,
        )

    # -- quality gate ----------------------------------------------------------

    def _gate(
        self,
        epoch_quantiles: np.ndarray,
        quality: Optional[EpochQuality],
    ) -> Tuple[str, ...]:
        """Reasons the epoch cannot be trusted (empty tuple = trusted)."""
        rel = self.reliability
        reasons: List[str] = []
        if rel.validate_summaries:
            report = validate_epoch_summary(epoch_quantiles)
            if not report.ok:
                reasons.extend(sorted({i.code for i in report.errors}))
        if quality is not None:
            if not quality.quorum_met:
                reasons.append("quorum-failed")
            if quality.coverage < rel.coverage_floor:
                reasons.append("low-coverage")
        return tuple(reasons)

    # -- stream ingestion ------------------------------------------------------

    def ingest(
        self,
        epoch_quantiles: np.ndarray,
        violation_fraction: float,
        quality: Optional[EpochQuality] = None,
    ) -> List[MonitorEvent]:
        """Feed one epoch's datacenter summary; returns emitted events.

        ``violation_fraction`` is the largest per-KPI fraction of machines
        violating their SLA this epoch (the detection statistic).
        ``quality``, when available (the collector emits one per epoch),
        feeds the quality gate; see the module docstring for what happens
        to untrusted epochs.
        """
        epoch_quantiles = np.asarray(epoch_quantiles, dtype=float)
        reasons = self._gate(epoch_quantiles, quality)
        untrusted = bool(reasons)
        anomalous = bool(
            violation_fraction >= 0.10 - 1e-12
        ) if violation_fraction is not None else False
        # Untrusted epochs are quarantined by the engine: stored flagged
        # anomalous (so they can never enter a crisis-free threshold
        # window) with the refresh countdown frozen.
        epoch, refreshed = self._engine.observe(
            epoch_quantiles, anomalous=anomalous, frozen=untrusted
        )
        if refreshed:
            # New thresholds re-discretize every library fingerprint.
            self._invalidate_indexes()

        events: List[MonitorEvent] = []
        if untrusted:
            self.untrusted_epochs += 1
            events.append(EpochUntrusted(epoch=epoch, reasons=reasons))
            # Detection/crisis-end decisions are deferred: the violation
            # statistic itself comes from the bad epoch.
            if self._live is not None and (
                self._live.identifications
                < self.config.identification.n_epochs
            ):
                events.append(self._dont_know(self._live, epoch))
            return self._emit(
                events, epoch, epoch_quantiles, violation_fraction,
                untrusted=True,
            )

        pre = self.config.fingerprint.pre_epochs
        if self._live is None:
            if anomalous and self.ready:
                self._crisis_counter += 1
                live = _LiveCrisis(
                    number=self._crisis_counter, detected_epoch=epoch
                )
                max_window = pre + self.config.fingerprint.post_epochs + 1
                live.summaries = WindowBlock.from_rows(
                    list(self._pre_buffer) + [epoch_quantiles],
                    capacity=max_window,
                )
                self._live = live
                events.append(
                    CrisisDetected(epoch=epoch, crisis_number=live.number)
                )
                events.append(self._identify(live, epoch))
            else:
                self._pre_buffer.append(epoch_quantiles)
                if len(self._pre_buffer) > pre:
                    self._pre_buffer.pop(0)
        else:
            live = self._live
            max_window = pre + self.config.fingerprint.post_epochs + 1
            if len(live.summaries) < max_window:
                live.summaries.append(epoch_quantiles)
            if (
                live.identifications < self.config.identification.n_epochs
            ):
                events.append(self._identify(live, epoch))
            if not anomalous:
                events.append(
                    CrisisEnded(
                        epoch=epoch,
                        crisis_number=live.number,
                        duration_epochs=epoch - live.detected_epoch,
                    )
                )
                self._store_live()
                self._pre_buffer = [epoch_quantiles]
        return self._emit(
            events, epoch, epoch_quantiles, violation_fraction,
            untrusted=False,
        )

    def _store_live(self) -> None:
        live = self._live
        self._library.append(
            _StoredCrisis(
                number=live.number,
                label=None,
                quantile_window=live.summaries.snapshot(),
            )
        )
        self._live = None

    # -- operator interaction ----------------------------------------------------

    def diagnose(self, crisis_number: int, label: str) -> None:
        """Attach the operators' diagnosis to a past crisis."""
        if not label:
            raise ValueError("label must be non-empty")
        for stored in self._library:
            if stored.number == crisis_number:
                stored.label = label
                if self._discovery is not None:
                    self._discovery.on_diagnose(crisis_number, label)
                return
        raise KeyError(f"no stored crisis {crisis_number}")

    @property
    def library_labels(self) -> List[Optional[str]]:
        return [s.label for s in self._library]


__all__ = [
    "CrisisDetected",
    "CrisisEnded",
    "EpochUntrusted",
    "IdentificationUpdate",
    "MonitorEvent",
    "StreamingCrisisMonitor",
]
