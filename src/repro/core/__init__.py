"""The paper's primary contribution: datacenter fingerprints.

Pipeline (Section 3):

1. :mod:`repro.core.thresholds` — hot/cold thresholds on metric quantiles
   from a crisis-free trailing window (plus the two alternative methods the
   appendix evaluates and rejects);
2. :mod:`repro.core.summary` — {-1, 0, +1} summary vectors per epoch;
3. :mod:`repro.core.selection` — relevant-metric selection with
   L1-regularized logistic regression;
4. :mod:`repro.core.fingerprint` — epoch and crisis fingerprints;
5. :mod:`repro.core.similarity` — L2 distances between crisis fingerprints;
6. :mod:`repro.core.identification` — identification thresholds (offline ROC
   and the online rules of Section 5.3), the five-epoch identification
   protocol, and stability scoring;
7. :mod:`repro.core.engine` — the shared epoch-state engine: incremental
   trailing-window thresholds (:class:`RollingThresholdTracker`), the
   fingerprint-recomputation kernel, and the live :class:`EpochStateEngine`
   every data plane consumes;
8. :mod:`repro.core.pipeline` — an operator-facing online engine that ties
   the steps together over a live trace.
"""

from repro.core.engine import (
    EpochStateEngine,
    RollingThresholdTracker,
    ThresholdSeries,
    compute_thresholds,
    fingerprint_from_summaries,
    fingerprint_from_window,
    threshold_series_for,
)
from repro.core.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    load_monitor,
    load_pipeline,
    save_monitor,
    save_pipeline,
)
from repro.core.fingerprint import (
    CrisisFingerprint,
    crisis_fingerprint,
    epoch_fingerprints,
)
from repro.core.identification import (
    IdentificationResult,
    Identifier,
    UNKNOWN,
    estimate_threshold_online,
    is_stable,
    sequence_label,
)
from repro.core.pipeline import FingerprintPipeline, KnownCrisis
from repro.core.selection import (
    select_crisis_metrics,
    select_relevant_metrics,
)
from repro.core.similarity import l2_distance, pairwise_distances
from repro.core.summary import summary_vectors
from repro.core.thresholds import (
    QuantileThresholds,
    kpi_correlation_thresholds,
    percentile_thresholds,
    timeseries_thresholds,
)

__all__ = [
    "EpochStateEngine",
    "RollingThresholdTracker",
    "ThresholdSeries",
    "compute_thresholds",
    "fingerprint_from_summaries",
    "fingerprint_from_window",
    "threshold_series_for",
    "CHECKPOINT_FORMAT_VERSION",
    "load_monitor",
    "load_pipeline",
    "save_monitor",
    "save_pipeline",
    "CrisisFingerprint",
    "crisis_fingerprint",
    "epoch_fingerprints",
    "IdentificationResult",
    "Identifier",
    "UNKNOWN",
    "estimate_threshold_online",
    "is_stable",
    "sequence_label",
    "FingerprintPipeline",
    "KnownCrisis",
    "select_crisis_metrics",
    "select_relevant_metrics",
    "l2_distance",
    "pairwise_distances",
    "summary_vectors",
    "QuantileThresholds",
    "kpi_correlation_thresholds",
    "percentile_thresholds",
    "timeseries_thresholds",
]
