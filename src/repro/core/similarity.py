"""Fingerprint similarity (Section 3.5).

Two crises are considered identical when the L2 distance between their
crisis fingerprints is below the identification threshold.  The paper notes
this step is orthogonal to the rest of the method; distances here accept
plain vectors so alternative representations (signatures, KPI vectors) can
reuse them.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def l2_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between two fingerprint vectors."""
    a = np.asarray(a, dtype=float).ravel()
    b = np.asarray(b, dtype=float).ravel()
    if a.shape != b.shape:
        raise ValueError(
            f"fingerprint dimension mismatch: {a.shape} vs {b.shape}"
        )
    return float(np.linalg.norm(a - b))


def pairwise_distances(vectors: Sequence[np.ndarray]) -> np.ndarray:
    """Full pairwise L2 distance matrix."""
    if len(vectors) == 0:
        return np.zeros((0, 0))
    stacked = np.stack([np.asarray(v, dtype=float).ravel() for v in vectors])
    diff = stacked[:, None, :] - stacked[None, :, :]
    return np.sqrt((diff**2).sum(axis=2))


def pair_arrays(
    distances: np.ndarray, labels: Sequence[str]
) -> Tuple[np.ndarray, np.ndarray]:
    """Upper-triangle pair distances and same-type flags for a distance ROC.

    Returns ``(pair_distances, is_same)`` over all unordered pairs.
    """
    distances = np.asarray(distances, dtype=float)
    n = distances.shape[0]
    if distances.shape != (n, n):
        raise ValueError("distances must be square")
    if len(labels) != n:
        raise ValueError("labels length mismatch")
    iu = np.triu_indices(n, k=1)
    labels_arr = np.asarray(labels, dtype=object)
    is_same = labels_arr[iu[0]] == labels_arr[iu[1]]
    return distances[iu], is_same.astype(bool)


__all__ = ["l2_distance", "pairwise_distances", "pair_arrays"]
