"""Fingerprint similarity (Section 3.5).

Two crises are considered identical when the L2 distance between their
crisis fingerprints is below the identification threshold.  The paper notes
this step is orthogonal to the rest of the method; distances here accept
plain vectors so alternative representations (signatures, KPI vectors) can
reuse them.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def l2_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between two fingerprint vectors."""
    a = np.asarray(a, dtype=float).ravel()
    b = np.asarray(b, dtype=float).ravel()
    if a.shape != b.shape:
        raise ValueError(
            f"fingerprint dimension mismatch: {a.shape} vs {b.shape}"
        )
    return float(np.linalg.norm(a - b))


#: Rows per block of the Gram-trick pairwise kernel: peak scratch is
#: ``O(block * n)`` instead of the ``O(n^2 * d)`` tensor a naive broadcast
#: materializes.
PAIRWISE_BLOCK_ROWS = 2048


def pairwise_distances(
    vectors: Sequence[np.ndarray], block_rows: int = PAIRWISE_BLOCK_ROWS
) -> np.ndarray:
    """Full pairwise L2 distance matrix.

    Computed blockwise with the Gram identity
    ``||a - b||^2 = ||a||^2 - 2 a.b + ||b||^2`` (negatives from floating-
    point cancellation clamped to zero before the square root), so memory
    never exceeds ``O(block_rows * n)`` scratch plus the n x n result.
    The result is symmetrized and its diagonal zeroed exactly.
    """
    if block_rows <= 0:
        raise ValueError("block_rows must be positive")
    if len(vectors) == 0:
        return np.zeros((0, 0))
    stacked = np.stack([np.asarray(v, dtype=float).ravel() for v in vectors])
    n = stacked.shape[0]
    sq_norms = np.einsum("ij,ij->i", stacked, stacked)
    out = np.empty((n, n), dtype=float)
    for start in range(0, n, block_rows):
        stop = min(start + block_rows, n)
        sq = (
            sq_norms[start:stop, None]
            - 2.0 * (stacked[start:stop] @ stacked.T)
            + sq_norms[None, :]
        )
        np.maximum(sq, 0.0, out=sq)
        out[start:stop] = np.sqrt(sq)
    # Cancellation can leave the two triangles a few ulp apart; downstream
    # consumers (pair extraction, ROC thresholds) assume exact symmetry.
    out = np.minimum(out, out.T)
    np.fill_diagonal(out, 0.0)
    # The Gram expansion's absolute error in d^2 is ~ dim * eps * |a||b|,
    # which the square root turns into a large *relative* error exactly
    # when a ~= b.  Flag pairs whose computed d^2 sits within a generous
    # multiple of that error bound — the square root of a pure-noise d^2
    # lands well above any threshold stated in distance units — and
    # recompute them (near-duplicate fingerprints) with the direct
    # difference.
    scale = np.sqrt(sq_norms[:, None] * sq_norms[None, :])
    eps = np.finfo(float).eps
    suspect = out ** 2 <= 1e4 * stacked.shape[1] * eps * scale
    np.fill_diagonal(suspect, False)
    for i, j in np.argwhere(suspect):
        out[i, j] = np.linalg.norm(stacked[i] - stacked[j])
    return out


def pair_arrays(
    distances: np.ndarray, labels: Sequence[str]
) -> Tuple[np.ndarray, np.ndarray]:
    """Upper-triangle pair distances and same-type flags for a distance ROC.

    Returns ``(pair_distances, is_same)`` over all unordered pairs.
    """
    distances = np.asarray(distances, dtype=float)
    n = distances.shape[0]
    if distances.shape != (n, n):
        raise ValueError("distances must be square")
    if len(labels) != n:
        raise ValueError("labels length mismatch")
    iu = np.triu_indices(n, k=1)
    labels_arr = np.asarray(labels, dtype=object)
    is_same = labels_arr[iu[0]] == labels_arr[iu[1]]
    return distances[iu], is_same.astype(bool)


__all__ = [
    "PAIRWISE_BLOCK_ROWS",
    "l2_distance",
    "pairwise_distances",
    "pair_arrays",
]
