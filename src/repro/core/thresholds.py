"""Hot and cold thresholds on metric quantiles (Section 3.3).

A metric quantile is *hot* when its value exceeds what was seen during
normal operation, *cold* when it falls below.  The paper's chosen method is
deliberately simple: over a trailing crisis-free window, take the 2nd and
98th percentiles of each quantile's values — i.e. accept a 4% baseline rate
of spurious hot/cold flags.

The appendix describes two alternatives that were tried and rejected
(discriminative power 0.95 vs 0.99 for the percentile method); both are
implemented here so the ablation benchmark (experiment E9) can reproduce
that comparison:

* :func:`timeseries_thresholds` — fit a non-parametric (moving-average)
  prediction to each quantile series and set thresholds three prediction
  standard deviations away;
* :func:`kpi_correlation_thresholds` — pick, per quantile, the threshold
  pair that best separates KPI-violating epochs from normal ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QuantileThresholds:
    """Per-(metric, quantile) cold and hot cutoffs."""

    cold: np.ndarray  # (n_metrics, n_quantiles)
    hot: np.ndarray  # (n_metrics, n_quantiles)

    def __post_init__(self) -> None:
        if self.cold.shape != self.hot.shape:
            raise ValueError("cold/hot shape mismatch")
        if self.cold.ndim != 2:
            raise ValueError("thresholds must be (n_metrics, n_quantiles)")
        if np.any(self.cold > self.hot):
            raise ValueError("cold threshold above hot threshold")

    @property
    def n_metrics(self) -> int:
        return self.cold.shape[0]

    @property
    def n_quantiles(self) -> int:
        return self.cold.shape[1]

    def restrict(self, metric_indices: np.ndarray) -> "QuantileThresholds":
        """Thresholds for a subset of metrics (fingerprint columns)."""
        return QuantileThresholds(
            cold=self.cold[metric_indices], hot=self.hot[metric_indices]
        )


def _validate_history(history: np.ndarray) -> np.ndarray:
    history = np.asarray(history, dtype=float)
    if history.ndim != 3:
        raise ValueError(
            "history must be (n_epochs, n_metrics, n_quantiles)"
        )
    if history.shape[0] < 2:
        raise ValueError("need at least two epochs of history")
    return history


def percentile_thresholds(
    history: np.ndarray,
    cold_percentile: float = 2.0,
    hot_percentile: float = 98.0,
) -> QuantileThresholds:
    """The paper's method: fixed percentiles of the crisis-free history.

    ``history`` holds quantile values of crisis-free epochs only (the caller
    filters anomalous epochs out — Section 3.3 step 1).
    """
    history = _validate_history(history)
    if not 0.0 <= cold_percentile < hot_percentile <= 100.0:
        raise ValueError("invalid percentile pair")
    if np.isnan(history).any():
        # Real telemetry has gaps (machines rebooting, collectors down);
        # thresholds are computed over the epochs that did report.  An
        # all-NaN series has no history at all and must fail loudly.
        if np.all(np.isnan(history), axis=0).any():
            raise ValueError("a metric quantile has no reported history")
        cold = np.nanpercentile(history, cold_percentile, axis=0)
        hot = np.nanpercentile(history, hot_percentile, axis=0)
    else:
        cold = np.percentile(history, cold_percentile, axis=0)
        hot = np.percentile(history, hot_percentile, axis=0)
    return QuantileThresholds(cold=cold, hot=hot)


def timeseries_thresholds(
    history: np.ndarray,
    smoothing_epochs: int = 96,
    n_sigma: float = 3.0,
) -> QuantileThresholds:
    """Rejected alternative 1: moving-average prediction +/- 3 sigma.

    Fits a non-parametric trailing moving average to each quantile series,
    measures the prediction-residual standard deviation, and sets thresholds
    ``n_sigma`` residual deviations from the latest prediction.  Sensitive
    to the smoothing horizon and to heteroscedastic metrics, which is why
    the paper found it inferior.
    """
    history = _validate_history(history)
    n = history.shape[0]
    w = int(min(max(smoothing_epochs, 2), n))
    flat = history.reshape(n, -1)
    # Trailing moving average, aligned so prediction at t uses <= t: the
    # trailing-window sum is a difference of cumulative sums (O(n) per
    # series, replacing a per-column convolution).  The first w-1 rows
    # average over however many points exist so far.
    csum = np.cumsum(flat, axis=0)
    sums = csum.copy()
    sums[w:] -= csum[:-w]
    counts = np.minimum(np.arange(1, n + 1), w)[:, None]
    smoothed = sums / counts
    resid = flat - smoothed
    sigma = resid.std(axis=0)
    center = smoothed[-1]
    cold = (center - n_sigma * sigma).reshape(history.shape[1:])
    hot = (center + n_sigma * sigma).reshape(history.shape[1:])
    return QuantileThresholds(cold=np.minimum(cold, hot), hot=np.maximum(cold, hot))


def kpi_correlation_thresholds(
    history: np.ndarray,
    anomalous: np.ndarray,
    n_candidates: int = 25,
    max_normal_epochs: int = 4000,
    seed: int = 0,
) -> QuantileThresholds:
    """Rejected alternative 2: thresholds fit against KPI violations.

    For each (metric, quantile) series, candidate hot (cold) cutoffs are
    drawn from the upper (lower) percentiles of *all* history (including
    anomalous epochs) and the pair maximizing the F1 score of predicting
    epoch-level KPI violation from "value outside [cold, hot]" is kept.
    When a series never correlates with violations, the percentile-method
    fallback (2/98 of normal epochs) is used.
    """
    history = _validate_history(history)
    anomalous = np.asarray(anomalous, dtype=bool).ravel()
    n = history.shape[0]
    if anomalous.shape != (n,):
        raise ValueError("anomalous mask length mismatch")
    if not anomalous.any() or anomalous.all():
        raise ValueError("need both anomalous and normal epochs")

    normal_hist = history[~anomalous]
    fallback = percentile_thresholds(normal_hist)

    # The F1 search over candidate pairs is quadratic in candidates and
    # linear in epochs; anomalous epochs are few, so subsampling the
    # normal epochs preserves the fit while bounding the cost on
    # year-scale traces.
    if (~anomalous).sum() > max_normal_epochs:
        rng = np.random.default_rng(seed)
        normal_idx = np.flatnonzero(~anomalous)
        keep = rng.choice(normal_idx, size=max_normal_epochs, replace=False)
        idx = np.sort(np.concatenate([np.flatnonzero(anomalous), keep]))
        history_fit = history[idx]
        anomalous_fit = anomalous[idx]
    else:
        history_fit = history
        anomalous_fit = anomalous

    flat = history_fit.reshape(history_fit.shape[0], -1)
    n_series = flat.shape[1]
    cold = fallback.cold.reshape(-1).copy()
    hot = fallback.hot.reshape(-1).copy()

    hot_cands = np.percentile(flat, np.linspace(75, 99.9, n_candidates),
                              axis=0)
    cold_cands = np.percentile(flat, np.linspace(25, 0.1, n_candidates),
                               axis=0)
    n_pos = anomalous_fit.sum()
    for j in range(n_series):
        best_f1 = 0.0
        series = flat[:, j]
        for hi in hot_cands[:, j]:
            for lo in cold_cands[:, j]:
                pred = (series > hi) | (series < lo)
                tp = np.sum(pred & anomalous_fit)
                if tp == 0:
                    continue
                precision = tp / pred.sum()
                recall = tp / n_pos
                f1 = 2 * precision * recall / (precision + recall)
                if f1 > best_f1:
                    best_f1 = f1
                    cold[j], hot[j] = lo, hi
    shape = history.shape[1:]
    return QuantileThresholds(
        cold=np.minimum(cold, hot).reshape(shape),
        hot=np.maximum(cold, hot).reshape(shape),
    )


__all__ = [
    "QuantileThresholds",
    "percentile_thresholds",
    "timeseries_thresholds",
    "kpi_correlation_thresholds",
]
