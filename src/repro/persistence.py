"""Trace persistence.

Generating a paper-scale trace takes tens of seconds; experiments want to
reuse one.  Traces serialize to a single ``.npz`` archive: array payloads
(quantiles, masks, raw crisis windows) plus a JSON header for everything
structured (metric names, SLA policy, crisis records).
"""

from __future__ import annotations

import json
import pathlib
from typing import List

import numpy as np

from repro.datacenter.crises import CrisisInstance
from repro.datacenter.sla import KPIDefinition, SLAPolicy
from repro.datacenter.trace import CrisisRecord, DatacenterTrace, RawWindow

#: Format version embedded in every archive.
TRACE_FORMAT_VERSION = 1


def save_trace(trace: DatacenterTrace, path) -> None:
    """Write a trace to ``path`` (a ``.npz`` archive)."""
    header = {
        "format_version": TRACE_FORMAT_VERSION,
        "metric_names": trace.metric_names,
        "quantile_levels": list(trace.quantile_levels),
        "n_machines": trace.n_machines,
        "epochs_per_day": trace.epochs_per_day,
        "sla": {
            "violation_fraction": trace.sla.violation_fraction,
            "kpis": [
                {
                    "name": k.name,
                    "metric_index": k.metric_index,
                    "threshold": k.threshold,
                }
                for k in trace.sla.kpis
            ],
        },
        "crises": [
            {
                "index": c.index,
                "detected_epoch": c.detected_epoch,
                "instance": {
                    "type_code": c.instance.type_code,
                    "start_epoch": c.instance.start_epoch,
                    "duration_epochs": c.instance.duration_epochs,
                    "intensity": c.instance.intensity,
                    "machines": c.instance.machines.tolist(),
                    "labeled": c.instance.labeled,
                    "seed": c.instance.seed,
                },
                "raw_start_epoch": (
                    None if c.raw is None else c.raw.start_epoch
                ),
            }
            for c in trace.crises
        ],
    }
    arrays = {
        "quantiles": trace.quantiles,
        "anomalous": trace.anomalous,
        "kpi_violation_fraction": trace.kpi_violation_fraction,
        "header": np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        ),
    }
    for c in trace.crises:
        if c.raw is not None:
            arrays[f"raw_values_{c.index}"] = c.raw.values
            arrays[f"raw_violations_{c.index}"] = c.raw.violations
    np.savez_compressed(pathlib.Path(path), **arrays)


def load_trace(path) -> DatacenterTrace:
    """Read a trace written by :func:`save_trace`."""
    with np.load(pathlib.Path(path), allow_pickle=False) as data:
        header = json.loads(bytes(data["header"]).decode("utf-8"))
        version = header.get("format_version")
        if version != TRACE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format {version!r} "
                f"(expected {TRACE_FORMAT_VERSION})"
            )
        sla = SLAPolicy(
            kpis=tuple(
                KPIDefinition(k["name"], k["metric_index"], k["threshold"])
                for k in header["sla"]["kpis"]
            ),
            violation_fraction=header["sla"]["violation_fraction"],
        )
        crises: List[CrisisRecord] = []
        for c in header["crises"]:
            inst = c["instance"]
            raw = None
            if c["raw_start_epoch"] is not None:
                raw = RawWindow(
                    start_epoch=c["raw_start_epoch"],
                    values=data[f"raw_values_{c['index']}"],
                    violations=data[f"raw_violations_{c['index']}"],
                )
            crises.append(
                CrisisRecord(
                    index=c["index"],
                    instance=CrisisInstance(
                        type_code=inst["type_code"],
                        start_epoch=inst["start_epoch"],
                        duration_epochs=inst["duration_epochs"],
                        intensity=inst["intensity"],
                        machines=np.asarray(inst["machines"], dtype=int),
                        labeled=inst["labeled"],
                        seed=inst["seed"],
                    ),
                    detected_epoch=c["detected_epoch"],
                    raw=raw,
                )
            )
        return DatacenterTrace(
            metric_names=list(header["metric_names"]),
            quantile_levels=tuple(header["quantile_levels"]),
            quantiles=data["quantiles"],
            anomalous=data["anomalous"],
            kpi_violation_fraction=data["kpi_violation_fraction"],
            sla=sla,
            crises=crises,
            n_machines=header["n_machines"],
            epochs_per_day=header["epochs_per_day"],
        )


__all__ = ["save_trace", "load_trace", "TRACE_FORMAT_VERSION"]
