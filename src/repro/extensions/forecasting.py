"""Crisis forecasting from early fingerprint signs (Section 7, direction 1).

The implementation now lives in :mod:`repro.forecast.offline` — the
forecast subsystem's whole-trace baseline — and this module is a thin
backwards-compatible shim over it.  ``CrisisForecaster`` keeps its
historical constructor and methods; ``ForecastResult`` is an alias of
:class:`repro.forecast.offline.OfflineForecastResult`.

One deliberate signature change rides along: ``calibrate_threshold`` no
longer takes a leading ``crises`` argument (it was accepted "for
signature symmetry" and immediately discarded — calibration only ever
used crisis-free epochs).  Passing it still works but emits a
:class:`DeprecationWarning`; new code should call
``calibrate_threshold(false_alarm_budget=...)`` directly.
"""

from __future__ import annotations

import warnings
from typing import Sequence

from repro.datacenter.trace import CrisisRecord
from repro.forecast.offline import (
    OfflineCrisisForecaster,
    OfflineForecastResult,
)

#: Historical name for the evaluation record.
ForecastResult = OfflineForecastResult

_UNSET = object()


class CrisisForecaster(OfflineCrisisForecaster):
    """Logistic early-warning model over epoch fingerprints.

    Back-compat wrapper around
    :class:`repro.forecast.offline.OfflineCrisisForecaster`.
    """

    def calibrate_threshold(
        self,
        crises=_UNSET,
        false_alarm_budget: float = 0.02,
        n_normal: int = 2000,
        seed: int = 2,
    ) -> float:
        """Alarm threshold at a false-alarm budget, from normal epochs.

        The historical leading ``crises`` argument is deprecated and
        ignored; calibration only needs crisis-free epochs.
        """
        if crises is not _UNSET:
            # Callers migrating to the new signature may pass the budget
            # positionally; a sequence of crises in that slot is the old
            # calling convention.
            if isinstance(crises, (int, float)) and not isinstance(
                crises, bool
            ):
                false_alarm_budget = float(crises)
            else:
                warnings.warn(
                    "CrisisForecaster.calibrate_threshold no longer "
                    "takes a 'crises' argument; it was never used. "
                    "Call calibrate_threshold(false_alarm_budget=...).",
                    DeprecationWarning,
                    stacklevel=2,
                )
        return super().calibrate_threshold(
            false_alarm_budget=false_alarm_budget,
            n_normal=n_normal,
            seed=seed,
        )

    def evaluate(
        self,
        crises: Sequence[CrisisRecord],
        threshold: float = 0.5,
        n_normal: int = 2000,
        seed: int = 1,
    ) -> OfflineForecastResult:
        """Recall on held-out crises and false alarms on normal epochs.

        Raises :class:`ValueError` when no test crisis has a detection
        epoch (historically this silently returned ``recall=nan``).
        """
        return super().evaluate(
            crises, threshold=threshold, n_normal=n_normal, seed=seed
        )


__all__ = ["CrisisForecaster", "ForecastResult"]
