"""Unsupervised crisis-catalog discovery.

The paper's bootstrap period contains twenty crises nobody diagnosed.  An
operations team adopting fingerprints can still mine that history:
agglomerative clustering over pairwise fingerprint distances groups
recurring problems so operators label *clusters* instead of individual
incidents.  The same identification threshold that separates same-type
from different-type crises (Section 5.3) makes a natural linkage cutoff.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.similarity import pairwise_distances


@dataclass(frozen=True)
class CrisisCluster:
    """One proposed group of recurring crises."""

    cluster_id: int
    members: tuple  # indices into the clustered crisis list
    medoid: int  # member minimizing total distance to the others

    @property
    def size(self) -> int:
        return len(self.members)


def _linkage_distance(
    distances: np.ndarray,
    a: Sequence[int],
    b: Sequence[int],
    linkage: str,
) -> float:
    block = distances[np.ix_(list(a), list(b))]
    if linkage == "single":
        return float(block.min())
    if linkage == "complete":
        return float(block.max())
    if linkage == "average":
        return float(block.mean())
    raise ValueError(f"unknown linkage {linkage!r}")


def cluster_crises(
    vectors: Sequence[np.ndarray],
    threshold: float,
    linkage: str = "complete",
) -> List[CrisisCluster]:
    """Agglomerative clustering with a distance cutoff.

    Merging stops when no pair of clusters is within ``threshold`` under
    the chosen linkage.  With complete linkage and the identification
    threshold as the cutoff, every pair inside a cluster would also have
    been identified as "same crisis" by the online identifier.
    """
    n = len(vectors)
    if n == 0:
        return []
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    distances = pairwise_distances(list(vectors))
    clusters: List[List[int]] = [[i] for i in range(n)]

    while len(clusters) > 1:
        best: Optional[tuple] = None
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                d = _linkage_distance(
                    distances, clusters[i], clusters[j], linkage
                )
                if d < threshold and (best is None or d < best[0]):
                    best = (d, i, j)
        if best is None:
            break
        _, i, j = best
        clusters[i] = clusters[i] + clusters[j]
        del clusters[j]

    out: List[CrisisCluster] = []
    for cid, members in enumerate(sorted(clusters, key=lambda m: m[0])):
        sub = distances[np.ix_(members, members)]
        medoid = members[int(np.argmin(sub.sum(axis=1)))]
        out.append(
            CrisisCluster(
                cluster_id=cid, members=tuple(members), medoid=medoid
            )
        )
    return out


def cluster_purity(
    clusters: Sequence[CrisisCluster], labels: Sequence[str]
) -> float:
    """Weighted purity of clusters against ground-truth labels.

    For each cluster, the fraction of members sharing its majority label,
    weighted by cluster size.  1.0 means every cluster is label-pure.
    """
    total = 0
    agree = 0
    for cluster in clusters:
        member_labels = [labels[i] for i in cluster.members]
        counts: Dict[str, int] = {}
        for lab in member_labels:
            counts[lab] = counts.get(lab, 0) + 1
        agree += max(counts.values())
        total += len(member_labels)
    if total == 0:
        raise ValueError("no cluster members")
    return agree / total


def _contingency(
    labels_a: Sequence[object], labels_b: Sequence[object]
) -> np.ndarray:
    """Contingency table of two partitions over the same items."""
    if len(labels_a) != len(labels_b):
        raise ValueError("partitions must label the same items")
    if len(labels_a) == 0:
        raise ValueError("partitions are empty")
    cats_a = {lab: i for i, lab in enumerate(dict.fromkeys(labels_a))}
    cats_b = {lab: i for i, lab in enumerate(dict.fromkeys(labels_b))}
    table = np.zeros((len(cats_a), len(cats_b)), dtype=np.int64)
    for a, b in zip(labels_a, labels_b):
        table[cats_a[a], cats_b[b]] += 1
    return table


def _comb2(x: np.ndarray) -> np.ndarray:
    return x * (x - 1) / 2.0


def adjusted_rand_index(
    labels_a: Sequence[object], labels_b: Sequence[object]
) -> float:
    """Adjusted Rand index between two partitions (Hubert & Arabie).

    1.0 for identical partitions (up to relabeling), ~0 for independent
    ones, negative for worse-than-chance agreement.  The degenerate
    cases (both partitions trivial — one cluster, or all singletons)
    have zero chance-adjustment mass; they score 1.0 when the
    partitions agree and 0.0 otherwise.
    """
    table = _contingency(labels_a, labels_b)
    n = table.sum()
    sum_cells = _comb2(table.astype(float)).sum()
    sum_a = _comb2(table.sum(axis=1).astype(float)).sum()
    sum_b = _comb2(table.sum(axis=0).astype(float)).sum()
    total = _comb2(float(n))
    expected = sum_a * sum_b / total if total else 0.0
    max_index = (sum_a + sum_b) / 2.0
    if max_index == expected:
        return 1.0 if sum_cells == max_index else 0.0
    return float((sum_cells - expected) / (max_index - expected))


def normalized_mutual_information(
    labels_a: Sequence[object], labels_b: Sequence[object]
) -> float:
    """NMI between two partitions (arithmetic-mean normalization).

    1.0 when the partitions determine each other, 0.0 when independent.
    Two identical trivial partitions (zero entropy on both sides) score
    1.0; one trivial side against a non-trivial one scores 0.0.
    """
    table = _contingency(labels_a, labels_b).astype(float)
    n = table.sum()
    p = table / n
    pa = p.sum(axis=1)
    pb = p.sum(axis=0)
    ha = float(-np.sum(pa[pa > 0] * np.log(pa[pa > 0])))
    hb = float(-np.sum(pb[pb > 0] * np.log(pb[pb > 0])))
    if ha == 0.0 and hb == 0.0:
        return 1.0
    if ha == 0.0 or hb == 0.0:
        return 0.0
    outer = np.outer(pa, pb)
    mask = p > 0
    mi = float(np.sum(p[mask] * np.log(p[mask] / outer[mask])))
    return max(0.0, min(1.0, mi / ((ha + hb) / 2.0)))


def catalog_summary(
    clusters: Sequence[CrisisCluster],
    labels: Optional[Sequence[str]] = None,
) -> List[Dict[str, object]]:
    """Rows describing each proposed catalog entry (for operator review)."""
    rows: List[Dict[str, object]] = []
    for cluster in clusters:
        row: Dict[str, object] = {
            "cluster": cluster.cluster_id,
            "size": cluster.size,
            "medoid": cluster.medoid,
        }
        if labels is not None:
            member_labels = sorted({labels[i] for i in cluster.members})
            row["true_labels"] = "/".join(member_labels)
        rows.append(row)
    return rows


__all__ = [
    "CrisisCluster",
    "adjusted_rand_index",
    "catalog_summary",
    "cluster_crises",
    "cluster_purity",
    "normalized_mutual_information",
]
