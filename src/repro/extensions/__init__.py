"""Extensions sketched in the paper's future-work section (Section 7).

* :mod:`repro.extensions.forecasting` — finding early signs of crises in
  pre-crisis fingerprints so they can be forecast (the paper reports
  encouraging early results for type-B crises);
* :mod:`repro.extensions.evolution` — modeling the evolution of a crisis in
  fingerprint space to estimate progress and time to resolution.
"""

from repro.extensions.catalog import (
    CrisisCluster,
    adjusted_rand_index,
    catalog_summary,
    cluster_crises,
    cluster_purity,
    normalized_mutual_information,
)
from repro.extensions.evolution import CrisisEvolutionModel, EvolutionProfile
from repro.extensions.forecasting import CrisisForecaster, ForecastResult

__all__ = [
    "CrisisCluster",
    "adjusted_rand_index",
    "catalog_summary",
    "cluster_crises",
    "cluster_purity",
    "normalized_mutual_information",
    "CrisisEvolutionModel",
    "EvolutionProfile",
    "CrisisForecaster",
    "ForecastResult",
]
