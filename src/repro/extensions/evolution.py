"""Crisis-evolution modeling (Section 7, direction 2).

Operators applying a repair want to monitor progress and estimate how long
until the crisis resolves.  We model a crisis's *evolution profile*: the
L2 magnitude of its epoch fingerprints (distance from the all-normal state)
as a function of epochs since detection.  Profiles of past crises of the
same type are averaged; a live crisis's remaining time is estimated by
aligning its observed profile with the historical one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.summary import summary_vectors
from repro.core.thresholds import QuantileThresholds
from repro.datacenter.trace import CrisisRecord, DatacenterTrace


@dataclass(frozen=True)
class EvolutionProfile:
    """Mean fingerprint magnitude per epoch since detection, for one type."""

    label: str
    magnitudes: np.ndarray  # (max_epochs,) NaN-padded mean profile
    mean_duration_epochs: float
    n_crises: int

    def remaining_epochs(self, elapsed: int) -> float:
        """Expected epochs until resolution given elapsed epochs."""
        if elapsed < 0:
            raise ValueError("elapsed must be non-negative")
        return max(self.mean_duration_epochs - elapsed, 0.0)


class CrisisEvolutionModel:
    """Builds per-type evolution profiles and tracks live progress."""

    def __init__(
        self,
        trace: DatacenterTrace,
        thresholds: QuantileThresholds,
        relevant: np.ndarray,
        max_epochs: int = 24,
    ):
        self.trace = trace
        self.thresholds = thresholds
        self.relevant = np.asarray(relevant, dtype=int)
        self.max_epochs = max_epochs
        self.profiles: Dict[str, EvolutionProfile] = {}

    def _magnitude_series(self, crisis: CrisisRecord) -> np.ndarray:
        """Fingerprint magnitude per epoch from detection, NaN-padded."""
        det = crisis.detected_epoch
        if det is None:
            raise ValueError("crisis was never detected")
        hi = min(det + self.max_epochs, self.trace.n_epochs)
        window = self.trace.quantiles[det:hi]
        summaries = summary_vectors(window, self.thresholds)
        sub = summaries[:, self.relevant, :].astype(float)
        flat = sub.reshape(sub.shape[0], -1)
        mags = np.linalg.norm(flat, axis=1)
        out = np.full(self.max_epochs, np.nan)
        out[: len(mags)] = mags
        return out

    def fit(self, crises: Sequence[CrisisRecord]) -> "CrisisEvolutionModel":
        """Build profiles from diagnosed past crises, grouped by label."""
        by_label: Dict[str, List[CrisisRecord]] = {}
        for crisis in crises:
            if crisis.detected_epoch is not None:
                by_label.setdefault(crisis.label, []).append(crisis)
        for label, group in by_label.items():
            series = np.stack([self._magnitude_series(c) for c in group])
            durations = [
                c.instance.end_epoch - c.detected_epoch for c in group
            ]
            self.profiles[label] = EvolutionProfile(
                label=label,
                magnitudes=np.nanmean(series, axis=0),
                mean_duration_epochs=float(np.mean(durations)),
                n_crises=len(group),
            )
        return self

    def progress(
        self, crisis: CrisisRecord, label: str, elapsed_epochs: int
    ) -> Dict[str, float]:
        """Progress report for a live crisis identified as ``label``.

        Returns the fraction of the expected duration elapsed, the expected
        remaining epochs, and the current-versus-peak magnitude ratio
        (a falling ratio means the repair is taking hold).
        """
        profile = self.profiles.get(label)
        if profile is None:
            raise KeyError(f"no evolution profile for label {label!r}")
        series = self._magnitude_series(crisis)
        observed = series[: elapsed_epochs + 1]
        observed = observed[~np.isnan(observed)]
        if observed.size == 0:
            raise ValueError("no observed epochs yet")
        peak = float(np.nanmax(observed))
        current = float(observed[-1])
        return {
            "elapsed_epochs": float(elapsed_epochs),
            "expected_total_epochs": profile.mean_duration_epochs,
            "expected_remaining_epochs": profile.remaining_epochs(
                elapsed_epochs
            ),
            "fraction_elapsed": min(
                elapsed_epochs / max(profile.mean_duration_epochs, 1e-9), 1.0
            ),
            "magnitude_ratio": current / peak if peak > 0 else 0.0,
        }


__all__ = ["CrisisEvolutionModel", "EvolutionProfile"]
