"""Persistent incident knowledge base.

Each diagnosed crisis becomes an :class:`IncidentRecord` carrying the
operator's diagnosis and remedy alongside the crisis fingerprint.  The
database retrieves candidate matches for a live fingerprint by L2 distance
and serializes to JSON so the knowledge survives process restarts (the
paper's motivation: capture previous analysis for future personnel).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.index import BruteForceIndex

#: Schema version written into every serialized database.
SCHEMA_VERSION = 1


@dataclass
class IncidentRecord:
    """One diagnosed performance crisis and what fixed it."""

    incident_id: int
    label: str
    detected_epoch: int
    fingerprint: np.ndarray
    diagnosis: str = ""
    remedy: str = ""
    metric_indices: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.fingerprint = np.asarray(self.fingerprint, dtype=float).ravel()
        if not self.label:
            raise ValueError("label must be non-empty")
        if self.detected_epoch < 0:
            raise ValueError("detected_epoch must be non-negative")

    def to_dict(self) -> dict:
        return {
            "incident_id": self.incident_id,
            "label": self.label,
            "detected_epoch": self.detected_epoch,
            "fingerprint": self.fingerprint.tolist(),
            "diagnosis": self.diagnosis,
            "remedy": self.remedy,
            "metric_indices": (
                None
                if self.metric_indices is None
                else np.asarray(self.metric_indices).tolist()
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "IncidentRecord":
        return cls(
            incident_id=int(data["incident_id"]),
            label=str(data["label"]),
            detected_epoch=int(data["detected_epoch"]),
            fingerprint=np.asarray(data["fingerprint"], dtype=float),
            diagnosis=str(data.get("diagnosis", "")),
            remedy=str(data.get("remedy", "")),
            metric_indices=(
                None
                if data.get("metric_indices") is None
                else np.asarray(data["metric_indices"], dtype=int)
            ),
        )


@dataclass
class IncidentDatabase:
    """Append-only store of incidents with fingerprint retrieval.

    Retrieval goes through a :class:`repro.index.BruteForceIndex` per
    fingerprint dimensionality (records stored under older relevant-metric
    sets have different dimensions), built lazily and kept in sync by the
    mutating methods.  Mutating ``records`` directly bypasses that cache;
    use :meth:`add` / :meth:`update_fingerprints`.
    """

    records: List[IncidentRecord] = field(default_factory=list)
    #: dim -> (index, record count when built); cache, not state.
    _indexes: Dict[int, Tuple[BruteForceIndex, int]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def next_id(self) -> int:
        return max((r.incident_id for r in self.records), default=-1) + 1

    def add(
        self,
        label: str,
        detected_epoch: int,
        fingerprint: np.ndarray,
        diagnosis: str = "",
        remedy: str = "",
        metric_indices: Optional[np.ndarray] = None,
    ) -> IncidentRecord:
        record = IncidentRecord(
            incident_id=self.next_id(),
            label=label,
            detected_epoch=detected_epoch,
            fingerprint=fingerprint,
            diagnosis=diagnosis,
            remedy=remedy,
            metric_indices=metric_indices,
        )
        self.records.append(record)
        return record

    def get(self, incident_id: int) -> IncidentRecord:
        for record in self.records:
            if record.incident_id == incident_id:
                return record
        raise KeyError(f"no incident {incident_id}")

    def by_label(self, label: str) -> List[IncidentRecord]:
        return [r for r in self.records if r.label == label]

    def relabel(self, old_label: str, new_label: str) -> int:
        """Rename every record under ``old_label``; returns the count.

        The discovery layer uses this when an operator diagnosis arrives
        for an auto-promoted entry: the synthetic ``discovered-<k>``
        label is replaced in place, never duplicated.
        """
        if not new_label:
            raise ValueError("new_label must be non-empty")
        count = 0
        for record in self.records:
            if record.label == old_label:
                record.label = new_label
                count += 1
        if count:
            self._invalidate_indexes()
        return count

    def _index_for(self, dim: int) -> BruteForceIndex:
        """The retrieval index over all records of dimensionality ``dim``."""
        cached = self._indexes.get(dim)
        if cached is not None and cached[1] == len(self.records):
            return cached[0]
        # float64 storage keeps retrieval bit-identical to a direct
        # l2_distance scan; incident libraries are small relative to the
        # fleet-scale indexes, so exactness wins over the float32 footprint.
        index = BruteForceIndex(dim, dtype=np.float64)
        for record in self.records:
            if record.fingerprint.shape == (dim,):
                index.add(
                    record.fingerprint,
                    id=record.incident_id,
                    payload=record.label,
                )
        self._indexes[dim] = (index, len(self.records))
        return index

    def _invalidate_indexes(self) -> None:
        self._indexes.clear()

    def nearest(
        self, fingerprint: np.ndarray, k: int = 3
    ) -> List[Tuple[IncidentRecord, float]]:
        """The k nearest incidents to a live fingerprint, with distances.

        Equal distances break deterministically toward the lowest
        incident id.  Records whose fingerprints have a different
        dimensionality (stored under an older relevant-metric set) are
        skipped — callers that re-fingerprint their library (Section 6.3)
        never hit this case.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        fingerprint = np.asarray(fingerprint, dtype=float).ravel()
        index = self._index_for(fingerprint.shape[0])
        return [
            (self.get(hit.id), hit.distance)
            for hit in index.query(fingerprint, k=k)
        ]

    def update_fingerprints(
        self,
        fingerprints: Sequence[np.ndarray],
        metric_indices: Optional[np.ndarray] = None,
    ) -> None:
        """Replace every record's fingerprint (re-fingerprinting pass)."""
        if len(fingerprints) != len(self.records):
            raise ValueError("fingerprint count mismatch")
        for record, fp in zip(self.records, fingerprints):
            record.fingerprint = np.asarray(fp, dtype=float).ravel()
            if metric_indices is not None:
                record.metric_indices = np.asarray(metric_indices, dtype=int)
        self._invalidate_indexes()

    # -- persistence ---------------------------------------------------------

    def save(self, path) -> None:
        payload = {
            "schema_version": SCHEMA_VERSION,
            "records": [r.to_dict() for r in self.records],
        }
        pathlib.Path(path).write_text(json.dumps(payload, indent=2))

    @classmethod
    def load(cls, path) -> "IncidentDatabase":
        payload = json.loads(pathlib.Path(path).read_text())
        version = payload.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported incident-db schema {version!r} "
                f"(expected {SCHEMA_VERSION})"
            )
        return cls(
            records=[
                IncidentRecord.from_dict(d) for d in payload["records"]
            ]
        )


__all__ = ["IncidentDatabase", "IncidentRecord", "SCHEMA_VERSION"]
