"""Incident knowledge base and advisory workflow.

The point of recognizing a recurring crisis (Section 1) is to retrieve the
*remedy* that worked last time, avoid repeating manual diagnosis, and keep
tier-0/1 operators effective.  This package provides that operational
layer on top of the fingerprinting pipeline:

* :mod:`repro.incidents.database` — a persistent store of diagnosed
  incidents (label, diagnosis, remedy, fingerprints) with
  nearest-fingerprint retrieval;
* :mod:`repro.incidents.advisor` — the advisory-mode workflow the paper's
  pilot program describes: on each detected crisis, either surface the
  matching incident and its remedy, or open a new incident for diagnosis.
"""

from repro.incidents.advisor import Advice, CrisisAdvisor
from repro.incidents.database import IncidentDatabase, IncidentRecord

__all__ = ["Advice", "CrisisAdvisor", "IncidentDatabase", "IncidentRecord"]
