"""Advisory-mode crisis handling.

The paper closes by describing a pilot program running the approach "in
advisory mode with live data": when a crisis is detected, the system tells
operators whether it matches a known incident (and what fixed it last
time) or is new (skip the archive search, go straight to diagnosis).
:class:`CrisisAdvisor` implements that loop on top of
:class:`~repro.core.pipeline.FingerprintPipeline` and
:class:`~repro.incidents.database.IncidentDatabase`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.identification import UNKNOWN, is_stable, sequence_label
from repro.core.pipeline import FingerprintPipeline
from repro.datacenter.trace import CrisisRecord
from repro.incidents.database import IncidentDatabase, IncidentRecord


@dataclass(frozen=True)
class Advice:
    """What the advisor tells the operators about a live crisis."""

    crisis_id: int
    matched: bool
    label: Optional[str]
    remedy: Optional[str]
    diagnosis: Optional[str]
    sequence: Tuple[str, ...]
    stable: bool
    candidates: Tuple[Tuple[int, float], ...]  # (incident_id, distance)

    @property
    def is_new_incident(self) -> bool:
        return not self.matched


class CrisisAdvisor:
    """Runs the identify-then-retrieve loop for each detected crisis."""

    def __init__(
        self,
        pipeline: FingerprintPipeline,
        database: Optional[IncidentDatabase] = None,
    ):
        self.pipeline = pipeline
        self.database = database if database is not None else IncidentDatabase()

    def advise(self, crisis: CrisisRecord) -> Advice:
        """Identify a detected crisis and retrieve the matching incident.

        The pipeline must already be observed/refreshed for this crisis.
        A match requires a *stable* identification sequence settling on a
        label (Section 4.3) — unstable output is operationally useless and
        reported as no-match.
        """
        outcome = self.pipeline.identify(crisis)
        seq = tuple(outcome.sequence)
        stable = is_stable(seq)
        settled = sequence_label(seq) if stable else None

        fp = self._current_fingerprint(crisis)
        candidates = tuple(
            (rec.incident_id, round(dist, 6))
            for rec, dist in self.database.nearest(fp, k=3)
        )

        if settled is None:
            return Advice(
                crisis_id=crisis.index,
                matched=False,
                label=None,
                remedy=None,
                diagnosis=None,
                sequence=seq,
                stable=stable,
                candidates=candidates,
            )

        matches = self.database.by_label(settled)
        latest = matches[-1] if matches else None
        return Advice(
            crisis_id=crisis.index,
            matched=True,
            label=settled,
            remedy=latest.remedy if latest else None,
            diagnosis=latest.diagnosis if latest else None,
            sequence=seq,
            stable=stable,
            candidates=candidates,
        )

    def _current_fingerprint(self, crisis: CrisisRecord):
        from repro.core.fingerprint import crisis_fingerprint

        return crisis_fingerprint(
            self.pipeline.trace.quantiles,
            self.pipeline.thresholds,
            self.pipeline.relevant,
            detection_epoch=crisis.detected_epoch,
            config=self.pipeline.config.fingerprint,
        ).vector

    def record_diagnosis(
        self,
        crisis: CrisisRecord,
        label: str,
        diagnosis: str = "",
        remedy: str = "",
    ) -> IncidentRecord:
        """Store the operators' post-hoc diagnosis for future retrieval."""
        self.pipeline.confirm(crisis, label=label)
        fp = self._current_fingerprint(crisis)
        return self.database.add(
            label=label,
            detected_epoch=crisis.detected_epoch,
            fingerprint=fp,
            diagnosis=diagnosis,
            remedy=remedy,
            metric_indices=self.pipeline.relevant,
        )

    def refingerprint_database(self) -> None:
        """Refresh stored fingerprints under the pipeline's current
        parameters (the Section 6.3 bookkeeping), keeping retrieval
        comparable as thresholds and relevant metrics move."""
        if len(self.database) != len(self.pipeline.known):
            raise ValueError(
                "database and pipeline library are out of sync"
            )
        fps = [
            self.pipeline._fingerprint_of(kn) for kn in self.pipeline.known
        ]
        self.database.update_fingerprints(
            fps, metric_indices=self.pipeline.relevant
        )


__all__ = ["Advice", "CrisisAdvisor"]
