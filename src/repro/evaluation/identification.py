"""Identification scoring (Sections 4.3 and 5.1.2).

One *outcome* records the five-epoch label sequence for one crisis plus
whether the crisis was known (its label already in the library when it
arrived).  Scoring follows the paper's stringent criteria:

* known crisis — correct iff the sequence is stable and settles on exactly
  the right label (an all-unknown sequence for a known crisis is a miss);
* unknown crisis — correct iff every epoch emits unknown;
* time to identification — minutes from detection to the first epoch
  emitting the correct label, averaged over accurately identified known
  crises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config import EPOCH_MINUTES
from repro.core.identification import (
    UNKNOWN,
    first_correct_epoch,
    is_stable,
    sequence_label,
)


@dataclass(frozen=True)
class CrisisOutcome:
    """Identification result for one crisis in one run."""

    crisis_id: int
    true_label: str
    known: bool  # was this label in the library when the crisis arrived?
    sequence: tuple  # the five emitted labels

    @property
    def stable(self) -> bool:
        return is_stable(self.sequence)

    @property
    def settled_label(self) -> Optional[str]:
        return sequence_label(self.sequence) if self.stable else None

    @property
    def accurate(self) -> bool:
        if self.known:
            return self.stable and self.settled_label == self.true_label
        return all(s == UNKNOWN for s in self.sequence)

    @property
    def time_to_identification_minutes(self) -> Optional[float]:
        """Minutes from detection to the first correct label emission."""
        if not (self.known and self.accurate):
            return None
        k = first_correct_epoch(self.sequence, self.true_label)
        return None if k is None else float(k * EPOCH_MINUTES)


@dataclass(frozen=True)
class IdentificationScore:
    """Aggregate accuracy over a set of outcomes (one alpha)."""

    known_accuracy: float
    unknown_accuracy: float
    mean_time_minutes: float
    n_known: int
    n_unknown: int
    stability_rate: float

    @property
    def balanced_gap(self) -> float:
        return abs(self.known_accuracy - self.unknown_accuracy)


def score_outcomes(outcomes: Sequence[CrisisOutcome]) -> IdentificationScore:
    """Aggregate known/unknown accuracy, stability, and identification time."""
    known = [o for o in outcomes if o.known]
    unknown = [o for o in outcomes if not o.known]
    times = [
        o.time_to_identification_minutes
        for o in known
        if o.time_to_identification_minutes is not None
    ]
    return IdentificationScore(
        known_accuracy=(
            float(np.mean([o.accurate for o in known])) if known else np.nan
        ),
        unknown_accuracy=(
            float(np.mean([o.accurate for o in unknown]))
            if unknown
            else np.nan
        ),
        mean_time_minutes=float(np.mean(times)) if times else np.nan,
        n_known=len(known),
        n_unknown=len(unknown),
        stability_rate=(
            float(np.mean([o.stable for o in outcomes]))
            if outcomes
            else np.nan
        ),
    )


@dataclass
class IdentificationCurves:
    """Known/unknown accuracy and time as functions of alpha (Figures 4-6).

    Populated by the experiment drivers; alphas are sorted ascending.
    """

    alphas: np.ndarray
    scores: List[IdentificationScore] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.alphas = np.asarray(self.alphas, dtype=float)

    @property
    def known_accuracy(self) -> np.ndarray:
        return np.array([s.known_accuracy for s in self.scores])

    @property
    def unknown_accuracy(self) -> np.ndarray:
        return np.array([s.unknown_accuracy for s in self.scores])

    @property
    def mean_time_minutes(self) -> np.ndarray:
        return np.array([s.mean_time_minutes for s in self.scores])

    def operating_point(self) -> Dict[str, float]:
        """The paper's reporting convention (footnote 4): the alpha where
        known and unknown accuracy cross or are closest."""
        gaps = np.array([s.balanced_gap for s in self.scores])
        if np.all(np.isnan(gaps)):
            raise ValueError("no valid scores")
        # Among near-minimal gaps, prefer the higher combined accuracy.
        finite = np.where(np.isnan(gaps), np.inf, gaps)
        tol = 1e-9
        candidates = np.flatnonzero(finite <= finite.min() + tol)
        combined = np.array(
            [
                self.scores[i].known_accuracy + self.scores[i].unknown_accuracy
                for i in candidates
            ]
        )
        best = candidates[int(np.argmax(combined))]
        s = self.scores[best]
        return {
            "alpha": float(self.alphas[best]),
            "known_accuracy": s.known_accuracy,
            "unknown_accuracy": s.unknown_accuracy,
            "mean_time_minutes": s.mean_time_minutes,
        }


__all__ = [
    "CrisisOutcome",
    "IdentificationScore",
    "IdentificationCurves",
    "score_outcomes",
]
