"""Uncertainty quantification for identification accuracies.

Nineteen crises is a small sample: a single identification flipping moves
the reported accuracy by five points.  The paper addresses this with
repeated runs and permutations; this module adds bootstrap confidence
intervals so reported accuracies carry honest error bars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.evaluation.identification import CrisisOutcome


@dataclass(frozen=True)
class ConfidenceInterval:
    """A bootstrap percentile interval for one statistic."""

    point: float
    lower: float
    upper: float
    confidence: float

    @property
    def width(self) -> float:
        return self.upper - self.lower

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.point:.3f} "
            f"[{self.lower:.3f}, {self.upper:.3f}]@{self.confidence:.0%}"
        )


def bootstrap_ci(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    n_resamples: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile-bootstrap interval of ``statistic`` over ``values``."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("need at least one value")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie in (0, 1)")
    rng = np.random.default_rng(seed)
    stats = np.empty(n_resamples)
    n = values.size
    for b in range(n_resamples):
        sample = values[rng.integers(0, n, n)]
        stats[b] = statistic(sample)
    alpha = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        point=float(statistic(values)),
        lower=float(np.quantile(stats, alpha)),
        upper=float(np.quantile(stats, 1.0 - alpha)),
        confidence=confidence,
    )


def accuracy_intervals(
    outcomes: Sequence[CrisisOutcome],
    n_resamples: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> dict:
    """Bootstrap CIs for known and unknown accuracy over outcomes.

    Resampling is at the *crisis outcome* level, respecting the paper's
    unit of analysis (one identification sequence per crisis per run).
    """
    known = [float(o.accurate) for o in outcomes if o.known]
    unknown = [float(o.accurate) for o in outcomes if not o.known]
    out = {}
    if known:
        out["known_accuracy"] = bootstrap_ci(
            known, n_resamples=n_resamples, confidence=confidence, seed=seed
        )
    if unknown:
        out["unknown_accuracy"] = bootstrap_ci(
            unknown, n_resamples=n_resamples, confidence=confidence,
            seed=seed + 1,
        )
    if not out:
        raise ValueError("no outcomes to analyze")
    return out


def mcnemar_exact(
    accurate_a: Sequence[bool], accurate_b: Sequence[bool]
) -> float:
    """Exact McNemar p-value for paired method comparison.

    ``accurate_a[i]``/``accurate_b[i]`` are two methods' correctness on the
    same crisis.  Small p means the methods' accuracies genuinely differ.
    """
    a = np.asarray(accurate_a, dtype=bool)
    b = np.asarray(accurate_b, dtype=bool)
    if a.shape != b.shape:
        raise ValueError("paired sequences must align")
    only_a = int(np.sum(a & ~b))
    only_b = int(np.sum(~a & b))
    n = only_a + only_b
    if n == 0:
        return 1.0
    from scipy.stats import binom

    k = min(only_a, only_b)
    # Two-sided exact binomial test at p=0.5.
    p = 2.0 * binom.cdf(k, n, 0.5)
    return float(min(p, 1.0))


__all__ = ["ConfidenceInterval", "accuracy_intervals", "bootstrap_ci",
           "mcnemar_exact"]
