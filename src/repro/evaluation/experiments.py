"""Experiment drivers for the offline, quasi-online, and online settings.

Offline (Section 5.1.2)
    Every parameter is estimated with perfect future knowledge.  Five runs
    start from different initial sets of five labeled crises (two random
    B's, one A, two others); the remaining crises are identified against
    that fixed library.  Works with any :class:`OfflineMethod`, so the four
    representations of Figure 4 are compared under one protocol.

Quasi-online and online (Sections 5.2-5.3)
    Fingerprints only.  Relevant metrics and hot/cold thresholds are
    estimated chronologically from data available *before* each crisis; the
    identification threshold comes either from the full-knowledge ROC
    (quasi-online) or from the Section 5.3 rules over crises seen so far
    (online).  Crises are presented chronologically and in random
    permutations, with each crisis always fingerprinted under the
    parameters of its chronological moment (as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import FingerprintingConfig
from repro.core.engine import (
    fingerprint_from_summaries,
    threshold_series_for,
)
from repro.core.identification import UNKNOWN, threshold_from_pairs
from repro.core.selection import select_crisis_metrics, select_relevant_metrics
from repro.core.similarity import pair_arrays
from repro.core.summary import summary_vectors
from repro.core.thresholds import QuantileThresholds
from repro.datacenter.trace import CrisisRecord, DatacenterTrace
from repro.evaluation.identification import (
    CrisisOutcome,
    IdentificationCurves,
    score_outcomes,
)
from repro.methods.base import OfflineMethod
from repro.ml.roc import roc_curve

DEFAULT_ALPHAS = np.round(np.linspace(0.0, 1.0, 41), 4)


def default_initial_set(
    crises: Sequence[CrisisRecord], rng: np.random.Generator, size: int = 5
) -> List[int]:
    """The paper's initial library: two random B's, one A, two others."""
    by_label: Dict[str, List[int]] = {}
    for i, c in enumerate(crises):
        by_label.setdefault(c.label, []).append(i)
    picked: List[int] = []
    if "B" in by_label and len(by_label["B"]) >= 2:
        picked += list(rng.choice(by_label["B"], size=2, replace=False))
    if "A" in by_label:
        picked.append(int(rng.choice(by_label["A"])))
    rest = [i for i in range(len(crises)) if i not in picked]
    rng.shuffle(rest)
    picked += rest[: max(size - len(picked), 0)]
    return [int(i) for i in picked[:size]]


class OfflineIdentificationExperiment:
    """Figure 4's protocol for one fitted :class:`OfflineMethod`."""

    def __init__(
        self,
        method: OfflineMethod,
        crises: Sequence[CrisisRecord],
        config: FingerprintingConfig = FingerprintingConfig(),
        n_runs: int = 5,
        alphas: np.ndarray = DEFAULT_ALPHAS,
        seed: int = 0,
        per_epoch_thresholds: bool = True,
    ):
        """``per_epoch_thresholds=False`` reproduces the naive protocol
        that calibrates one identification threshold on full-window pair
        distances and applies it to partial-window comparisons (an
        ablation; early comparisons then over-match)."""
        if len(crises) < 6:
            raise ValueError("need more crises than the initial set")
        self.method = method
        self.crises = list(crises)
        self.config = config
        self.n_runs = n_runs
        self.alphas = np.asarray(alphas, dtype=float)
        self.seed = seed
        self.per_epoch_thresholds = per_epoch_thresholds
        self._partial: Optional[np.ndarray] = None
        self._full: Optional[np.ndarray] = None

    def _precompute_distances(self) -> None:
        """Cache partial-window distances and the full pairwise matrix."""
        n = len(self.crises)
        k_max = self.config.identification.n_epochs
        pre = self.config.fingerprint.pre_epochs
        partial = np.full((n, n, k_max), np.nan)
        for i, new in enumerate(self.crises):
            for j, known in enumerate(self.crises):
                if i == j:
                    continue
                for k in range(k_max):
                    partial[i, j, k] = self.method.pair_distance(
                        new, known, n_epochs=pre + k + 1
                    )
        self._partial = partial
        self._full = self.method.distance_matrix(self.crises)
        # Distances at truncation k live on a smaller scale than full-window
        # distances (fewer epochs averaged in), so the identification
        # threshold is calibrated per identification epoch from pairs at
        # the same truncation.
        labels = [c.label for c in self.crises]
        self._rocs = []
        for k in range(k_max):
            sym = 0.5 * (partial[:, :, k] + partial[:, :, k].T)
            np.fill_diagonal(sym, 0.0)
            pair_d, is_same = pair_arrays(sym, labels)
            self._rocs.append(roc_curve(pair_d, is_same))

    def _thresholds(self, alpha: float) -> np.ndarray:
        """Identification threshold per identification epoch."""
        if not self.per_epoch_thresholds:
            labels = [c.label for c in self.crises]
            pair_d, is_same = pair_arrays(self._full, labels)
            t = roc_curve(pair_d, is_same).threshold_at_alpha(alpha)
            return np.full(len(self._rocs), t)
        return np.array(
            [roc.threshold_at_alpha(alpha) for roc in self._rocs]
        )

    def outcomes_at(self, alpha: float) -> List[CrisisOutcome]:
        """All crisis outcomes at one alpha (for confusion analysis)."""
        self.run(alphas=np.array([alpha]))
        return self._last_outcomes[float(alpha)]

    def run(self, alphas: Optional[np.ndarray] = None) -> IdentificationCurves:
        if self._partial is None:
            self._precompute_distances()
        if alphas is None:
            alphas = self.alphas
        alphas = np.asarray(alphas, dtype=float)
        rng = np.random.default_rng(self.seed)
        initial_sets = [
            default_initial_set(self.crises, rng) for _ in range(self.n_runs)
        ]
        thresholds = {a: self._thresholds(a) for a in alphas}

        curves = IdentificationCurves(alphas=alphas)
        k_max = self.config.identification.n_epochs
        self._last_outcomes: Dict[float, List[CrisisOutcome]] = {}
        for alpha in alphas:
            t = thresholds[alpha]
            outcomes: List[CrisisOutcome] = []
            for initial in initial_sets:
                known_labels = {self.crises[i].label for i in initial}
                for i, c in enumerate(self.crises):
                    if i in initial:
                        continue
                    seq = []
                    for k in range(k_max):
                        d = self._partial[i, initial, k]
                        best = int(np.argmin(d))
                        if d[best] < t[k]:
                            seq.append(self.crises[initial[best]].label)
                        else:
                            seq.append(UNKNOWN)
                    outcomes.append(
                        CrisisOutcome(
                            crisis_id=c.index,
                            true_label=c.label,
                            known=c.label in known_labels,
                            sequence=tuple(seq),
                        )
                    )
            curves.scores.append(score_outcomes(outcomes))
            self._last_outcomes[float(alpha)] = outcomes
        return curves


@dataclass
class _CrisisParameters:
    """Chronologically estimated parameters in force at one crisis."""

    relevant: np.ndarray
    thresholds: QuantileThresholds
    # Fingerprints *under these parameters* of every labeled crisis:
    full: np.ndarray  # (n_labeled, dim) full 7-epoch window
    truncated: np.ndarray  # (n_labeled, k_max, dim) partial windows
    full_distances: np.ndarray  # (n_labeled, n_labeled) pairwise L2
    trunc_distances: np.ndarray  # (k_max, n_labeled, n_labeled)


class OnlineIdentificationExperiment:
    """Quasi-online and online settings for the fingerprint method.

    Parameters
    ----------
    trace:
        The dataset; bootstrap (unlabeled) crises feed the selection pool.
    config:
        Method parameters; the paper's online setting uses 30 relevant
        metrics and a 240-day threshold window.
    recompute_past_fingerprints:
        False reproduces Figure 8's ablation: each past crisis keeps the
        hot/cold discretization computed when it occurred.
    """

    def __init__(
        self,
        trace: DatacenterTrace,
        config: FingerprintingConfig = FingerprintingConfig(),
        recompute_past_fingerprints: bool = True,
        exclude_kpis_from_selection: bool = False,
    ):
        self.trace = trace
        self.config = config
        self.recompute = recompute_past_fingerprints
        self._selection_exclude = (
            tuple(trace.kpi_metric_indices)
            if exclude_kpis_from_selection
            else ()
        )
        self.labeled = trace.labeled_crises
        if len(self.labeled) < 3:
            raise ValueError("need at least three labeled crises")
        self._params: Optional[List[_CrisisParameters]] = None
        self._quasi_rocs: Dict[int, "object"] = {}

    # -- chronological parameter estimation ---------------------------------

    def _window(self, crisis: CrisisRecord) -> np.ndarray:
        fp = self.config.fingerprint
        det = crisis.detected_epoch
        lo = max(det - fp.pre_epochs, 0)
        hi = min(det + fp.post_epochs, self.trace.n_epochs - 1)
        return self.trace.quantiles[lo : hi + 1]

    def _fingerprints_under(
        self,
        thresholds: QuantileThresholds,
        relevant: np.ndarray,
        stale_summaries: List[np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Full and truncated fingerprints of every labeled crisis."""
        k_max = self.config.identification.n_epochs
        pre = self.config.fingerprint.pre_epochs
        dim = len(relevant) * self.trace.n_quantiles
        n = len(self.labeled)
        full = np.empty((n, dim))
        truncated = np.empty((n, k_max, dim))
        for j, crisis in enumerate(self.labeled):
            if self.recompute:
                summaries = summary_vectors(self._window(crisis), thresholds)
            else:
                summaries = stale_summaries[j]
            full[j] = fingerprint_from_summaries(summaries, relevant)
            for k in range(k_max):
                truncated[j, k] = fingerprint_from_summaries(
                    summaries, relevant, n_epochs=pre + k + 1
                )
        return full, truncated

    def precompute(self) -> List[_CrisisParameters]:
        """Chronological pass: selections, thresholds, fingerprints."""
        if self._params is not None:
            return self._params
        cfg = self.config
        window_epochs = cfg.thresholds.window_days * self.trace.epochs_per_day

        # Per-crisis metric selections for every detected crisis, in
        # chronological order (bootstrap crises included — selection only
        # needs detection, not diagnosis; Section 3.4).  Selections depend
        # only on (crisis, top_k, exclusions), so they are cached on the
        # trace across experiment instances (the sensitivity sweeps build
        # many experiments over one trace).
        detected = self.trace.detected_crises
        cache = self.trace.__dict__.setdefault("_selection_cache", {})
        selections = []
        for c in detected:
            key = (c.index, cfg.selection.per_crisis_top_k,
                   self._selection_exclude)
            if key not in cache:
                cache[key] = select_crisis_metrics(
                    c.raw.values,
                    c.raw.violations,
                    top_k=cfg.selection.per_crisis_top_k,
                    exclude=self._selection_exclude,
                )
            selections.append(cache[key])
        order = {c.index: i for i, c in enumerate(detected)}

        # Threshold estimates are cached on the trace: the same
        # (epoch, window, percentiles) triple recurs across experiment
        # instances in the sensitivity sweeps.  Cache misses are served by
        # the trace's shared incremental ThresholdSeries instead of a
        # full-window percentile recompute per crisis.
        thr_cache = self.trace.__dict__.setdefault("_threshold_cache", {})
        series = threshold_series_for(
            self.trace, window_epochs,
            cfg.thresholds.cold_percentile, cfg.thresholds.hot_percentile,
        )

        def thresholds_at(epoch: int) -> QuantileThresholds:
            key = (epoch, window_epochs, cfg.thresholds.cold_percentile,
                   cfg.thresholds.hot_percentile)
            if key not in thr_cache:
                thr_cache[key] = series.at(epoch)
            return thr_cache[key]

        # Stale summaries (Figure 8): discretization frozen at crisis time.
        stale: List[np.ndarray] = []
        for crisis in self.labeled:
            thr = thresholds_at(crisis.detected_epoch)
            stale.append(summary_vectors(self._window(crisis), thr))

        params: List[_CrisisParameters] = []
        for crisis in self.labeled:
            prior = selections[: order[crisis.index]]
            if not prior:
                prior = selections[:1]  # degenerate cold start
            relevant = select_relevant_metrics(
                prior, cfg.selection.n_relevant, pool=cfg.selection.crisis_pool
            )
            thresholds = thresholds_at(crisis.detected_epoch)
            full, truncated = self._fingerprints_under(
                thresholds, relevant, stale
            )
            diff = full[:, None, :] - full[None, :, :]
            k_max = truncated.shape[1]
            trunc_d = np.empty((k_max, full.shape[0], full.shape[0]))
            for k in range(k_max):
                tdiff = truncated[:, k, None, :] - truncated[None, :, k, :]
                trunc_d[k] = np.sqrt((tdiff**2).sum(axis=2))
            params.append(
                _CrisisParameters(
                    relevant=relevant,
                    thresholds=thresholds,
                    full=full,
                    truncated=truncated,
                    full_distances=np.sqrt((diff**2).sum(axis=2)),
                    trunc_distances=trunc_d,
                )
            )
        self._params = params
        return params

    # -- identification runs -------------------------------------------------

    def _quasi_threshold(self, c_idx: int, k: int, alpha: float) -> float:
        """Full-knowledge ROC threshold under crisis c's parameters.

        Thresholds are calibrated per identification epoch ``k`` from pair
        distances at the same truncation, keeping the distance scale of the
        threshold and of the comparisons consistent.
        """
        roc = self._quasi_rocs.get((c_idx, k))
        if roc is None:
            p = self._params[c_idx]
            pair_d, is_same = pair_arrays(
                p.trunc_distances[k], [c.label for c in self.labeled]
            )
            roc = self._quasi_rocs[(c_idx, k)] = roc_curve(pair_d, is_same)
        return roc.threshold_at_alpha(alpha)

    def _online_threshold(
        self, c_idx: int, k: int, library: Sequence[int], alpha: float
    ) -> Optional[float]:
        if len(library) < 2:
            return None
        p = self._params[c_idx]
        lib = np.asarray(library, dtype=int)
        sub = p.trunc_distances[k][np.ix_(lib, lib)]
        labels = [self.labeled[j].label for j in lib]
        pair_d, is_same = pair_arrays(sub, labels)
        return threshold_from_pairs(pair_d, is_same, alpha)

    def run(
        self,
        mode: str = "online",
        bootstrap: int = 2,
        n_runs: int = 21,
        alphas: np.ndarray = DEFAULT_ALPHAS,
        seed: int = 0,
        orders: Optional[List[np.ndarray]] = None,
    ) -> IdentificationCurves:
        """Run the experiment.

        ``mode`` is ``"quasi-online"`` (identification threshold from the
        full-knowledge ROC) or ``"online"`` (Section 5.3 rules).  The first
        run presents crises chronologically; the rest use random
        permutations (the paper uses 20 permutations for quasi-online and
        41 runs for online-with-ten).  Pass ``orders`` to control the
        presentation orders explicitly (overrides ``n_runs``/``seed``).
        """
        if mode not in ("quasi-online", "online"):
            raise ValueError(f"unknown mode {mode!r}")
        params = self.precompute()
        n = len(self.labeled)
        if not 1 <= bootstrap < n:
            raise ValueError("bootstrap size out of range")
        if orders is None:
            rng = np.random.default_rng(seed)
            orders = [np.arange(n)]
            for _ in range(n_runs - 1):
                orders.append(rng.permutation(n))
        else:
            orders = [np.asarray(o, dtype=int) for o in orders]
            for o in orders:
                if sorted(o.tolist()) != list(range(n)):
                    raise ValueError("each order must permute all crises")

        alphas = np.asarray(alphas, dtype=float)
        k_max = self.config.identification.n_epochs
        labels = [c.label for c in self.labeled]

        curves = IdentificationCurves(alphas=alphas)
        all_outcomes: Dict[float, List[CrisisOutcome]] = {
            a: [] for a in alphas
        }
        for order in orders:
            for pos in range(bootstrap, n):
                c_idx = int(order[pos])
                library = [int(j) for j in order[:pos]]
                p = params[c_idx]
                known = labels[c_idx] in {labels[j] for j in library}
                # Distances are alpha-independent; thresholds are not.
                dists = np.empty((k_max, len(library)))
                for k in range(k_max):
                    new_vec = p.truncated[c_idx, k]
                    lib_vecs = p.truncated[library, k, :]
                    dists[k] = np.sqrt(
                        ((lib_vecs - new_vec[None, :]) ** 2).sum(axis=1)
                    )
                for alpha in alphas:
                    seq = []
                    for k in range(k_max):
                        if mode == "quasi-online":
                            t = self._quasi_threshold(c_idx, k, alpha)
                        else:
                            t = self._online_threshold(
                                c_idx, k, library, alpha
                            )
                        best = int(np.argmin(dists[k]))
                        if t is not None and dists[k, best] < t:
                            seq.append(labels[library[best]])
                        else:
                            seq.append(UNKNOWN)
                    all_outcomes[alpha].append(
                        CrisisOutcome(
                            crisis_id=self.labeled[c_idx].index,
                            true_label=labels[c_idx],
                            known=known,
                            sequence=tuple(seq),
                        )
                    )
        for alpha in alphas:
            curves.scores.append(score_outcomes(all_outcomes[alpha]))
        return curves


__all__ = [
    "DEFAULT_ALPHAS",
    "OfflineIdentificationExperiment",
    "OnlineIdentificationExperiment",
    "default_initial_set",
]
