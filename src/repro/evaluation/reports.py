"""One-shot evaluation report.

:func:`full_report` runs the complete evaluation battery on a trace —
discrimination, offline/quasi/online identification, sensitivity sweeps,
confusion structure, forecasting — and renders a single plain-text report.
Used by ``scripts/run_full_evaluation.py``; the per-figure benchmarks in
``benchmarks/`` remain the canonical reproduction artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.config import (
    FingerprintingConfig,
    SelectionConfig,
    ThresholdConfig,
)
from repro.datacenter.trace import DatacenterTrace
from repro.evaluation.confusion import confusion_table, top_confusions
from repro.evaluation.discrimination import discrimination_roc
from repro.evaluation.experiments import (
    OfflineIdentificationExperiment,
    OnlineIdentificationExperiment,
)
from repro.evaluation.identification import IdentificationCurves
from repro.evaluation.results import format_percent, format_table
from repro.evaluation.uncertainty import accuracy_intervals
from repro.extensions import CrisisForecaster
from repro.methods import (
    AllMetricsFingerprintMethod,
    FingerprintMethod,
    KPIMethod,
    SignaturesMethod,
)

OFFLINE_CONFIG = FingerprintingConfig(
    selection=SelectionConfig(n_relevant=15)
)
ONLINE_CONFIG = FingerprintingConfig(
    selection=SelectionConfig(n_relevant=30),
    thresholds=ThresholdConfig(window_days=240),
)


@dataclass
class EvaluationReport:
    """Structured results plus the rendered text."""

    aucs: Dict[str, float] = field(default_factory=dict)
    offline: Dict[str, Dict[str, float]] = field(default_factory=dict)
    online: Dict[str, Dict[str, float]] = field(default_factory=dict)
    forecasting: Dict[str, float] = field(default_factory=dict)
    text: str = ""


def _op_with_ci(
    exp, curves: IdentificationCurves
) -> Dict[str, float]:
    op = curves.operating_point()
    try:
        outcomes = exp.outcomes_at(op["alpha"])
        cis = accuracy_intervals(outcomes, n_resamples=500)
        for key, ci in cis.items():
            op[f"{key}_lo"] = ci.lower
            op[f"{key}_hi"] = ci.upper
    except (AttributeError, ValueError):
        pass
    return op


def full_report(
    trace: DatacenterTrace,
    n_offline_runs: int = 5,
    n_online_runs: int = 21,
    seed: int = 7,
    include_baselines: bool = True,
) -> EvaluationReport:
    """Run the battery and render the report (expensive: minutes)."""
    report = EvaluationReport()
    crises = trace.labeled_crises
    sections: List[str] = []

    # --- discrimination + offline identification per method ---------------
    methods = [FingerprintMethod(OFFLINE_CONFIG)]
    if include_baselines:
        methods += [
            SignaturesMethod(),
            AllMetricsFingerprintMethod(),
            KPIMethod(),
        ]
    rows = []
    fingerprint_exp: Optional[OfflineIdentificationExperiment] = None
    for method in methods:
        method.fit(trace, crises)
        roc = discrimination_roc(method, crises)
        report.aucs[method.name] = roc.auc
        exp = OfflineIdentificationExperiment(
            method, crises, n_runs=n_offline_runs, seed=seed
        )
        op = _op_with_ci(exp, exp.run())
        report.offline[method.name] = op
        if method.name == "fingerprints":
            fingerprint_exp = exp
        known = format_percent(op["known_accuracy"])
        if "known_accuracy_lo" in op:
            known += (f" [{format_percent(op['known_accuracy_lo'])}-"
                      f"{format_percent(op['known_accuracy_hi'])}]")
        rows.append(
            [
                method.name,
                round(roc.auc, 3),
                known,
                format_percent(op["unknown_accuracy"]),
                f"{op['mean_time_minutes']:.0f}m",
            ]
        )
    sections.append(
        format_table(
            ["method", "AUC", "known acc. [95% CI]", "unknown acc.",
             "time"],
            rows,
            title="Discrimination + offline identification",
        )
    )

    # --- online settings -----------------------------------------------------
    online_exp = OnlineIdentificationExperiment(trace, ONLINE_CONFIG)
    online_rows = []
    for name, mode, bootstrap in (
        ("quasi-online", "quasi-online", 2),
        ("online, bootstrap 10", "online", 10),
        ("online, bootstrap 2", "online", 2),
    ):
        curves = online_exp.run(
            mode=mode, bootstrap=bootstrap, n_runs=n_online_runs, seed=seed
        )
        op = curves.operating_point()
        report.online[name] = op
        online_rows.append(
            [
                name,
                format_percent(op["known_accuracy"]),
                format_percent(op["unknown_accuracy"]),
                f"{op['mean_time_minutes']:.0f}m",
            ]
        )
    sections.append(
        format_table(
            ["setting", "known acc.", "unknown acc.", "time"],
            online_rows,
            title="Online identification",
        )
    )

    # --- confusion structure ------------------------------------------------
    if fingerprint_exp is not None:
        alpha = report.offline["fingerprints"]["alpha"]
        outcomes = fingerprint_exp.outcomes_at(alpha)
        sections.append("Confusion structure (offline fingerprints)")
        sections.append(confusion_table(outcomes))
        top = top_confusions(outcomes, k=4)
        if top:
            sections.append(
                "top confusions: "
                + ", ".join(f"{t}->{e} x{n}" for t, e, n in top)
            )

    # --- forecasting ---------------------------------------------------------
    fp = FingerprintMethod(OFFLINE_CONFIG)
    fp.fit(trace, crises)
    train, test = crises[: max(len(crises) * 2 // 3, 1)], \
        crises[max(len(crises) * 2 // 3, 1):]
    if any(c.detected_epoch is not None for c in test):
        forecaster = CrisisForecaster(
            trace, fp.thresholds, fp.relevant,
            lead_epochs=1, window_epochs=3,
        ).fit(train)
        threshold = forecaster.calibrate_threshold()
        result = forecaster.evaluate(test, threshold=threshold)
        report.forecasting = {
            "recall": result.recall,
            "false_alarm_rate": result.false_alarm_rate,
            "n_crises": float(result.n_crises),
        }
        sections.append(
            f"Forecasting: {result.recall:.0%} of {result.n_crises} "
            f"held-out crises flagged early "
            f"({result.false_alarm_rate:.1%} false alarms)"
        )

    report.text = "\n\n".join(sections)
    return report


__all__ = ["EvaluationReport", "full_report"]
