"""Confusion analysis of identification outcomes.

Beyond accuracy numbers, operators want to know *which* crisis types the
identifier mistakes for which — an E-for-B confusion (both back up the
post-processing stage) calls for a different fix than a D-for-A confusion
(both saturate the front end).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence, Tuple

from repro.core.identification import UNKNOWN
from repro.evaluation.identification import CrisisOutcome

#: Pseudo-labels used in confusion rows/columns.
UNSTABLE = "(unstable)"
NO_MATCH = "(unknown)"


def confusion_counts(
    outcomes: Sequence[CrisisOutcome],
) -> Dict[Tuple[str, str], int]:
    """Counts of (true label, emitted result) pairs.

    The emitted result is the settled label of a stable sequence,
    ``NO_MATCH`` for an all-unknown stable sequence, or ``UNSTABLE``.
    """
    counts: Counter = Counter()
    for outcome in outcomes:
        if not outcome.stable:
            emitted = UNSTABLE
        elif outcome.settled_label is None:
            emitted = NO_MATCH
        else:
            emitted = outcome.settled_label
        counts[(outcome.true_label, emitted)] += 1
    return dict(counts)


def confusion_table(outcomes: Sequence[CrisisOutcome]) -> str:
    """Monospace confusion matrix: rows true labels, columns emitted."""
    counts = confusion_counts(outcomes)
    if not counts:
        raise ValueError("no outcomes")
    trues = sorted({t for t, _ in counts})
    emitted_labels = sorted(
        {e for _, e in counts if e not in (UNSTABLE, NO_MATCH)}
    )
    columns = emitted_labels + [NO_MATCH, UNSTABLE]
    width = max(len(c) for c in columns + trues) + 2
    header = "true".ljust(6) + "".join(c.rjust(width) for c in columns)
    lines = [header, "-" * len(header)]
    for t in trues:
        row = t.ljust(6)
        for c in columns:
            row += str(counts.get((t, c), 0)).rjust(width)
        lines.append(row)
    return "\n".join(lines)


def top_confusions(
    outcomes: Sequence[CrisisOutcome], k: int = 5
) -> List[Tuple[str, str, int]]:
    """The k most frequent misidentifications (true != emitted label)."""
    counts = confusion_counts(outcomes)
    wrong = [
        (t, e, n)
        for (t, e), n in counts.items()
        if e not in (NO_MATCH, UNSTABLE) and e != t
    ]
    wrong.sort(key=lambda item: -item[2])
    return wrong[:k]


__all__ = [
    "NO_MATCH",
    "UNSTABLE",
    "confusion_counts",
    "confusion_table",
    "top_confusions",
]
