"""Discrimination experiment (Figure 3, Section 5.1.1).

How well does each representation classify two crises as identical or
different, independent of labeling?  All unordered pairs of labeled crises
are scored by representation distance; the distance ROC's area quantifies
discrimination.  Methods must already be fitted (offline setting: perfect
knowledge of the whole trace).
"""

from __future__ import annotations

from typing import List

from repro.datacenter.trace import CrisisRecord
from repro.methods.base import OfflineMethod
from repro.ml.roc import ROCCurve, roc_curve


def discrimination_roc(
    method: OfflineMethod, crises: List[CrisisRecord]
) -> ROCCurve:
    """Distance ROC of a fitted method over the labeled crises."""
    if len(crises) < 2:
        raise ValueError("need at least two crises")
    distances, is_same = method.discrimination_pairs(crises)
    return roc_curve(distances, is_same)


def discrimination_auc(
    method: OfflineMethod, crises: List[CrisisRecord]
) -> float:
    """AUC of :func:`discrimination_roc`."""
    return discrimination_roc(method, crises).auc


__all__ = ["discrimination_roc", "discrimination_auc"]
