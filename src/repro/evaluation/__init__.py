"""Evaluation harness reproducing the paper's experiments.

* :mod:`repro.evaluation.discrimination` — distance ROCs / AUC (Figure 3);
* :mod:`repro.evaluation.identification` — the five-epoch identification
  protocol, scoring (known/unknown accuracy, stability, time to
  identification), and alpha sweeps (Figures 4-6, 8; Table 2);
* :mod:`repro.evaluation.experiments` — the offline, quasi-online, and
  online experiment drivers;
* :mod:`repro.evaluation.sensitivity` — free-parameter sweeps (Figure 7,
  Sections 6.1-6.2);
* :mod:`repro.evaluation.results` — result containers and table rendering.
"""

from repro.evaluation.confusion import (
    confusion_counts,
    confusion_table,
    top_confusions,
)
from repro.evaluation.discrimination import discrimination_auc, discrimination_roc
from repro.evaluation.experiments import (
    OfflineIdentificationExperiment,
    OnlineIdentificationExperiment,
)
from repro.evaluation.identification import (
    CrisisOutcome,
    IdentificationCurves,
    IdentificationScore,
    score_outcomes,
)
from repro.evaluation.permutations import (
    PermutationDistribution,
    permutation_distribution,
)
from repro.evaluation.reports import EvaluationReport, full_report
from repro.evaluation.results import format_table
from repro.evaluation.uncertainty import (
    accuracy_intervals,
    bootstrap_ci,
    mcnemar_exact,
)

__all__ = [
    "discrimination_auc",
    "discrimination_roc",
    "OfflineIdentificationExperiment",
    "OnlineIdentificationExperiment",
    "CrisisOutcome",
    "IdentificationCurves",
    "IdentificationScore",
    "score_outcomes",
    "format_table",
    "confusion_counts",
    "confusion_table",
    "top_confusions",
    "EvaluationReport",
    "full_report",
    "accuracy_intervals",
    "bootstrap_ci",
    "mcnemar_exact",
    "PermutationDistribution",
    "permutation_distribution",
]
