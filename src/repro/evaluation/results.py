"""Result containers and plain-text table rendering.

The benchmarks print the same rows the paper reports; this module keeps the
formatting in one place so every table looks alike.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Monospace table with a separator under the header."""
    str_rows: List[List[str]] = [
        [_fmt(cell) for cell in row] for row in rows
    ]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float) or isinstance(cell, np.floating):
        if np.isnan(cell):
            return "-"
        return f"{cell:.3f}" if abs(cell) < 10 else f"{cell:.1f}"
    return str(cell)


def format_percent(value: float) -> str:
    return "-" if np.isnan(value) else f"{100.0 * value:.0f}%"


__all__ = ["format_table", "format_percent"]
