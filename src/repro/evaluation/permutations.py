"""Order-sensitivity analysis of online identification.

The paper "repeatedly simulated permutations of the actual sequence of
crises in order to ensure that our results were not due to one lucky
series of events".  This module makes that robustness claim measurable:
run the online experiment once per presentation order and report the
distribution of balanced accuracies across orders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.evaluation.experiments import OnlineIdentificationExperiment


@dataclass(frozen=True)
class PermutationDistribution:
    """Per-order balanced accuracies at a fixed alpha.

    Entry 0 is the chronological (real-world) order.
    """

    alpha: float
    balanced_accuracies: np.ndarray

    @property
    def mean(self) -> float:
        return float(np.nanmean(self.balanced_accuracies))

    @property
    def std(self) -> float:
        return float(np.nanstd(self.balanced_accuracies))

    @property
    def worst(self) -> float:
        return float(np.nanmin(self.balanced_accuracies))

    @property
    def best(self) -> float:
        return float(np.nanmax(self.balanced_accuracies))

    def chronological_is_typical(self, z: float = 2.0) -> bool:
        """Is the chronological order (entry 0) within z std of the mean?

        A chronological result far outside the permutation distribution
        would mean headline numbers depend on the lucky real-world
        ordering — exactly what the paper's permutations guard against.
        """
        if self.std == 0:
            return True
        chron = self.balanced_accuracies[0]
        return bool(abs(chron - self.mean) <= z * self.std)


def _balanced(score) -> float:
    known = 0.0 if np.isnan(score.known_accuracy) else score.known_accuracy
    unknown = (
        0.0 if np.isnan(score.unknown_accuracy) else score.unknown_accuracy
    )
    return (known + unknown) / 2.0


def permutation_distribution(
    experiment: OnlineIdentificationExperiment,
    mode: str = "online",
    bootstrap: int = 10,
    n_orders: int = 20,
    alpha: Optional[float] = None,
    seed: int = 0,
) -> PermutationDistribution:
    """Balanced accuracy per presentation order, scored one order at a time.

    Order 0 is chronological; the rest are random permutations.  When
    ``alpha`` is None, it is chosen once at the pooled operating point so
    every order is scored at the same setting.
    """
    if n_orders < 2:
        raise ValueError("need at least two orders")
    experiment.precompute()
    n = len(experiment.labeled)
    rng = np.random.default_rng(seed)
    orders: List[np.ndarray] = [np.arange(n)]
    for _ in range(n_orders - 1):
        orders.append(rng.permutation(n))

    if alpha is None:
        pooled = experiment.run(
            mode=mode, bootstrap=bootstrap, orders=orders
        )
        alpha = pooled.operating_point()["alpha"]

    accuracies = []
    for order in orders:
        curves = experiment.run(
            mode=mode,
            bootstrap=bootstrap,
            alphas=np.array([alpha]),
            orders=[order],
        )
        accuracies.append(_balanced(curves.scores[0]))
    return PermutationDistribution(
        alpha=float(alpha),
        balanced_accuracies=np.array(accuracies),
    )


__all__ = ["PermutationDistribution", "permutation_distribution"]
