"""Free-parameter sensitivity analyses (Figure 7, Sections 6.1-6.2).

* :func:`summary_window_sweep` — discriminative power (AUC) of fingerprints
  summarized over different windows [t0, t1] relative to crisis detection
  (Figure 7);
* :func:`metric_window_sweep` — identification accuracy across fingerprint
  sizes and threshold-window lengths (Section 6.1);
* :func:`threshold_percentile_sweep` and :func:`threshold_method_sweep` —
  discriminative power of hot/cold percentile choices and of the two
  rejected threshold-setting methods (Section 6.2).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.config import (
    FingerprintConfig,
    FingerprintingConfig,
    SelectionConfig,
    ThresholdConfig,
)
from repro.core.similarity import pair_arrays
from repro.core.summary import summary_vectors
from repro.core.thresholds import (
    QuantileThresholds,
    kpi_correlation_thresholds,
    percentile_thresholds,
    timeseries_thresholds,
)
from repro.datacenter.trace import CrisisRecord, DatacenterTrace
from repro.evaluation.experiments import OnlineIdentificationExperiment
from repro.methods.fingerprints import FingerprintMethod
from repro.ml.roc import roc_curve


def _auc_for_thresholds(
    trace: DatacenterTrace,
    crises: Sequence[CrisisRecord],
    thresholds: QuantileThresholds,
    relevant: np.ndarray,
    window: Tuple[int, int] = (-2, 4),
) -> float:
    """Discrimination AUC of crisis fingerprints under given thresholds."""
    t0, t1 = window
    if t1 < t0:
        raise ValueError("window must satisfy t0 <= t1")
    vectors = []
    for crisis in crises:
        det = crisis.detected_epoch
        lo = max(det + t0, 0)
        hi = min(det + t1, trace.n_epochs - 1)
        summaries = summary_vectors(
            trace.quantiles[lo : hi + 1], thresholds
        )
        sub = summaries[:, relevant, :].astype(float)
        vectors.append(sub.reshape(sub.shape[0], -1).mean(axis=0))
    stacked = np.stack(vectors)
    diff = stacked[:, None, :] - stacked[None, :, :]
    dist = np.sqrt((diff**2).sum(axis=2))
    pair_d, is_same = pair_arrays(dist, [c.label for c in crises])
    return roc_curve(pair_d, is_same).auc


def summary_window_sweep(
    trace: DatacenterTrace,
    crises: Sequence[CrisisRecord],
    start_offsets: Sequence[int] = (-4, -3, -2, -1, 0),
    end_offsets: Sequence[int] = (0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
    method: FingerprintMethod = None,
) -> Dict[Tuple[int, int], float]:
    """Figure 7: AUC of fingerprints summarized over windows [t0, t1].

    Offsets are epochs relative to detection (the paper's x-axis is
    minutes; one epoch is 15 minutes).  Returns ``{(t0, t1): auc}`` for all
    valid combinations.
    """
    if method is None:
        method = FingerprintMethod()
        method.fit(trace, list(crises))
    out: Dict[Tuple[int, int], float] = {}
    for t0 in start_offsets:
        for t1 in end_offsets:
            if t1 <= t0:
                continue
            out[(t0, t1)] = _auc_for_thresholds(
                trace, crises, method.thresholds, method.relevant,
                window=(t0, t1),
            )
    return out


def threshold_percentile_sweep(
    trace: DatacenterTrace,
    crises: Sequence[CrisisRecord],
    pairs: Sequence[Tuple[float, float]] = (
        (1.0, 99.0),
        (2.0, 98.0),
        (5.0, 95.0),
        (10.0, 90.0),
    ),
) -> Dict[Tuple[float, float], float]:
    """Section 6.2: AUC under different hot/cold percentile choices."""
    method = FingerprintMethod()
    method.fit(trace, list(crises))
    history = trace.quantiles[trace.crisis_free_mask()]
    out: Dict[Tuple[float, float], float] = {}
    for cold, hot in pairs:
        thresholds = percentile_thresholds(history, cold, hot)
        out[(cold, hot)] = _auc_for_thresholds(
            trace, crises, thresholds, method.relevant
        )
    return out


def threshold_method_sweep(
    trace: DatacenterTrace, crises: Sequence[CrisisRecord]
) -> Dict[str, float]:
    """Section 6.2: percentile method vs the two rejected alternatives."""
    method = FingerprintMethod()
    method.fit(trace, list(crises))
    history = trace.quantiles[trace.crisis_free_mask()]
    candidates = {
        "percentile 2/98": percentile_thresholds(history),
        "time-series +/-3 sigma": timeseries_thresholds(history),
        "KPI-correlation fit": kpi_correlation_thresholds(
            trace.quantiles, trace.anomalous
        ),
    }
    return {
        name: _auc_for_thresholds(trace, crises, thr, method.relevant)
        for name, thr in candidates.items()
    }


def metric_window_sweep(
    trace: DatacenterTrace,
    n_metrics_grid: Sequence[int] = (5, 10, 20, 30),
    window_days_grid: Sequence[int] = (7, 30, 120, 240),
    mode: str = "online",
    bootstrap: int = 10,
    n_runs: int = 11,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Section 6.1: identification accuracy vs fingerprint size and window.

    Returns one record per grid point with the operating-point accuracies.
    """
    records: List[Dict[str, float]] = []
    for n_rel in n_metrics_grid:
        for days in window_days_grid:
            config = FingerprintingConfig(
                selection=SelectionConfig(n_relevant=n_rel),
                thresholds=ThresholdConfig(window_days=days),
                fingerprint=FingerprintConfig(),
            )
            exp = OnlineIdentificationExperiment(trace, config)
            curves = exp.run(
                mode=mode, bootstrap=bootstrap, n_runs=n_runs, seed=seed
            )
            op = curves.operating_point()
            records.append(
                {
                    "n_metrics": float(n_rel),
                    "window_days": float(days),
                    **op,
                }
            )
    return records


__all__ = [
    "summary_window_sweep",
    "threshold_percentile_sweep",
    "threshold_method_sweep",
    "metric_window_sweep",
]
