"""Predictive early warning: classify the crisis before the SLA breaks.

The paper's Section 7 reports encouraging early results on forecasting
crises from pre-detection fingerprint signs.  This package upgrades that
idea from an offline demo into a first-class online pipeline in the
spirit of DC-Prophet's two-stage failure predictor and streaming HPC
fault classification (see PAPERS.md):

* :mod:`repro.forecast.features` — incremental per-epoch feature
  vectors from the live planes (no full-trace access);
* :mod:`repro.forecast.detector` — the two-stage model: cross-validated
  L1-logistic imminence scoring with ROC-calibrated alarms, then
  catalog identification through the fingerprint index;
* :mod:`repro.forecast.engine` — the monitor-attached runtime with
  checkpoint-embedded state;
* :mod:`repro.forecast.trainer` / :mod:`repro.forecast.eval` — offline
  training on replayed traces and the lead-time-vs-precision harness;
* :mod:`repro.forecast.offline` — the Section 7 whole-trace forecaster
  (the historical demo, kept for parity and the offline benchmark).

See ``docs/forecasting.md`` for the full design.
"""

from repro.forecast.detector import TwoStageDetector
from repro.forecast.engine import (
    FORECAST_FORMAT_VERSION,
    ForecastAlarm,
    ForecastEngine,
    load_forecast,
    save_forecast,
)
from repro.forecast.eval import (
    CrisisOutcome,
    LeadTimeResult,
    evaluate_forecaster,
    format_report,
)
from repro.forecast.features import OnlineFeatureExtractor
from repro.forecast.offline import OfflineCrisisForecaster, OfflineForecastResult
from repro.forecast.trainer import (
    FORECAST_REPLAY_CONFIG,
    TrainingReport,
    replay_collect,
    train_forecaster,
)

__all__ = [
    "FORECAST_FORMAT_VERSION",
    "FORECAST_REPLAY_CONFIG",
    "CrisisOutcome",
    "ForecastAlarm",
    "ForecastEngine",
    "LeadTimeResult",
    "OfflineCrisisForecaster",
    "OfflineForecastResult",
    "OnlineFeatureExtractor",
    "TrainingReport",
    "TwoStageDetector",
    "evaluate_forecaster",
    "format_report",
    "load_forecast",
    "replay_collect",
    "save_forecast",
    "train_forecaster",
]
