"""Whole-trace crisis forecasting (the Section 7 demo, rehomed).

This is the historical offline forecaster: L1-logistic regression over
epoch fingerprints of a recorded trace, positives drawn from a lead
window before each crisis's detection.  It needs the full trace in
memory and is kept as (a) the parity baseline the online pipeline must
beat (``benchmarks/test_sec7_forecasting.py``) and (b) the
implementation behind the backwards-compatible
:class:`repro.extensions.forecasting.CrisisForecaster` wrapper.

Compared to its life under ``repro.extensions`` the forecaster grew
explicit failure modes: calibration and evaluation raise when the
exclusion mask leaves no crisis-free epochs (instead of sampling an
empty pool into NaN quantiles), and :meth:`evaluate` raises when no test
crisis carries a detection epoch (instead of silently reporting
``recall=nan``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.summary import summary_vectors
from repro.core.thresholds import QuantileThresholds
from repro.datacenter.trace import CrisisRecord, DatacenterTrace
from repro.ml.logistic import L1LogisticRegression, LogisticModel


@dataclass(frozen=True)
class OfflineForecastResult:
    """Forecast evaluation on held-out crises."""

    recall: float  # crises with an alarm inside the lead window
    false_alarm_rate: float  # alarm rate on crisis-free epochs
    threshold: float
    n_crises: int


class OfflineCrisisForecaster:
    """Logistic early-warning model over epoch fingerprints."""

    def __init__(
        self,
        trace: DatacenterTrace,
        thresholds: QuantileThresholds,
        relevant: np.ndarray,
        lead_epochs: int = 2,
        window_epochs: int = 4,
        lam: float = 0.002,
    ):
        """``window_epochs`` epochs ending ``lead_epochs`` before detection
        form each crisis's positive examples."""
        if lead_epochs < 1 or window_epochs < 1:
            raise ValueError("lead and window must be positive")
        self.trace = trace
        self.thresholds = thresholds
        self.relevant = np.asarray(relevant, dtype=int)
        self.lead_epochs = lead_epochs
        self.window_epochs = window_epochs
        self.lam = lam
        self.model: Optional[LogisticModel] = None

    def _epoch_vectors(self, epochs: np.ndarray) -> np.ndarray:
        window = self.trace.quantiles[epochs]
        summaries = summary_vectors(window, self.thresholds)
        sub = summaries[:, self.relevant, :].astype(float)
        return sub.reshape(len(epochs), -1)

    def _positive_epochs(self, crisis: CrisisRecord) -> np.ndarray:
        det = crisis.detected_epoch
        hi = det - self.lead_epochs
        lo = max(hi - self.window_epochs, 0)
        return np.arange(lo, hi)

    def _normal_pool(self) -> np.ndarray:
        pool = np.flatnonzero(~self._exclusion_mask())
        if pool.size == 0:
            raise ValueError(
                "no crisis-free epochs available: the exclusion mask "
                "(anomalous epochs plus widened crisis windows) covers "
                "the whole trace"
            )
        return pool

    def fit(
        self,
        crises: Sequence[CrisisRecord],
        n_negative: int = 600,
        seed: int = 0,
    ) -> "OfflineCrisisForecaster":
        """Train on the given (training) crises plus sampled normal epochs."""
        rng = np.random.default_rng(seed)
        pos_epochs: List[int] = []
        for crisis in crises:
            if crisis.detected_epoch is None:
                continue
            pos_epochs.extend(self._positive_epochs(crisis).tolist())
        if not pos_epochs:
            raise ValueError("no positive epochs available")

        normal_pool = self._normal_pool()
        neg_epochs = rng.choice(
            normal_pool, size=min(n_negative, len(normal_pool)),
            replace=False,
        )

        X = np.vstack(
            [
                self._epoch_vectors(np.asarray(pos_epochs)),
                self._epoch_vectors(neg_epochs),
            ]
        )
        y = np.concatenate(
            [np.ones(len(pos_epochs)), np.zeros(len(neg_epochs))]
        )
        self.model = L1LogisticRegression(lam=self.lam, max_iter=800).fit(
            X, y
        )
        return self

    def score_epochs(self, epochs: np.ndarray) -> np.ndarray:
        """P(crisis within the lead horizon) for the given epochs."""
        if self.model is None:
            raise RuntimeError("forecaster is not fitted")
        return self.model.predict_proba(self._epoch_vectors(epochs))

    def calibrate_threshold(
        self,
        false_alarm_budget: float = 0.02,
        n_normal: int = 2000,
        seed: int = 2,
    ) -> float:
        """Alarm threshold at a false-alarm budget, from normal epochs.

        The threshold is the (1 - budget) quantile of scores on crisis-free
        epochs — i.e. alarms fire on at most ``false_alarm_budget`` of
        normal epochs.  If no training crisis's lead window would alarm at
        that level, the forecaster honestly has no usable signal and the
        threshold stays strict (zero recall is reported rather than bought
        with wholesale false alarms).
        """
        rng = np.random.default_rng(seed)
        pool = self._normal_pool()
        sample = rng.choice(pool, size=min(n_normal, len(pool)),
                            replace=False)
        normal_scores = self.score_epochs(sample)
        return float(np.quantile(normal_scores, 1.0 - false_alarm_budget))

    def _exclusion_mask(self) -> np.ndarray:
        exclusion = np.zeros(self.trace.n_epochs, dtype=bool)
        exclusion |= self.trace.anomalous
        for crisis in self.trace.crises:
            lo = max(crisis.instance.start_epoch
                     - self.lead_epochs - self.window_epochs - 2, 0)
            exclusion[lo : crisis.instance.end_epoch + 4] = True
        return exclusion

    def evaluate(
        self,
        crises: Sequence[CrisisRecord],
        threshold: float = 0.5,
        n_normal: int = 2000,
        seed: int = 1,
    ) -> OfflineForecastResult:
        """Recall on held-out crises and false alarms on normal epochs.

        Raises :class:`ValueError` when no test crisis carries a
        detection epoch — there is nothing to measure recall over, and a
        silent ``recall=nan`` historically masked empty test splits.
        """
        rng = np.random.default_rng(seed)
        hits = 0
        total = 0
        for crisis in crises:
            if crisis.detected_epoch is None:
                continue
            total += 1
            pos = self._positive_epochs(crisis)
            if pos.size and np.any(self.score_epochs(pos) > threshold):
                hits += 1
        if total == 0:
            raise ValueError(
                "no test crisis has a detection epoch (n_crises=0): "
                "recall is undefined on this split"
            )
        pool = self._normal_pool()
        sample = rng.choice(pool, size=min(n_normal, len(pool)),
                            replace=False)
        false_alarms = float(
            np.mean(self.score_epochs(sample) > threshold)
        )
        return OfflineForecastResult(
            recall=hits / total,
            false_alarm_rate=false_alarms,
            threshold=threshold,
            n_crises=total,
        )


__all__ = ["OfflineCrisisForecaster", "OfflineForecastResult"]
