"""Online per-epoch feature extraction for crisis forecasting.

The extractor turns the live planes a :class:`StreamingCrisisMonitor`
already maintains — discretized summary vectors, the rolling hot/cold
thresholds, the SLA violation statistic, and the identification event
stream — into one fixed-width feature vector per epoch, **incrementally**:
state is a handful of small trailing rings, never the full trace.

Per epoch the vector concatenates, over the ``C = n_relevant x
n_quantiles`` fingerprint cells:

* ``summary`` — the current {-1, 0, +1} summary values;
* ``delta`` — element-wise change versus the previous trusted epoch
  (state *transitions*, the leading edge of a building crisis);
* ``slope`` — per-cell least-squares slope of the raw quantile value
  over the last ``slope_window`` epochs, normalized by the cell's
  hot-cold threshold span (scale-free trajectories; a cell climbing
  toward its hot cutoff scores high before it ever crosses);

plus ten scalars: hot/cold cell fractions, enter-hot / enter-cold /
leave-state transition rates, the violation fraction and its windowed
slope, and don't-know / identification / untrusted churn rates over the
last ``churn_window`` epochs.

Untrusted (quarantined) epochs advance time but contribute no values:
their raw row enters the slope ring as NaN (the nan-aware regression
skips it), the previous-summary register is left untouched, and no
feature vector is emitted — exactly mirroring the monitor's own
quarantine semantics.  The extractor emits ``None`` until its slope ring
has seen ``slope_window`` epochs.

State snapshots are verbatim array copies, so a restored extractor
replays bit-identically (the checkpoint contract of the live path).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

#: Scalar features appended after the three per-cell blocks.
SCALAR_FEATURES: Tuple[str, ...] = (
    "frac_hot",
    "frac_cold",
    "rate_enter_hot",
    "rate_enter_cold",
    "rate_leave",
    "violation",
    "violation_slope",
    "dont_know_rate",
    "identified_rate",
    "untrusted_rate",
)

#: Bound on normalized slopes so one wild cell cannot dominate the model.
_SLOPE_CLIP = 8.0


class OnlineFeatureExtractor:
    """Incremental epoch-feature derivation from live monitor planes."""

    def __init__(
        self,
        n_cells: int,
        slope_window: int = 8,
        churn_window: int = 8,
    ):
        if n_cells < 1:
            raise ValueError("n_cells must be positive")
        if slope_window < 2:
            raise ValueError("slope_window must be at least 2")
        if churn_window < 1:
            raise ValueError("churn_window must be positive")
        self.n_cells = int(n_cells)
        self.slope_window = int(slope_window)
        self.churn_window = int(churn_window)
        self.epochs_seen = 0
        # Trailing rings, chronological: row -1 is the newest epoch.
        self._raw = np.full((self.slope_window, self.n_cells), np.nan)
        self._viol = np.full(self.slope_window, np.nan)
        self._churn = np.zeros((self.churn_window, 3), dtype=np.int64)
        self._prev_summary = np.zeros(self.n_cells, dtype=np.int8)
        self._has_prev = False

    # -- schema ------------------------------------------------------------

    @property
    def dim(self) -> int:
        """Feature-vector width: three per-cell blocks plus the scalars."""
        return 3 * self.n_cells + len(SCALAR_FEATURES)

    def feature_names(self) -> List[str]:
        names = [f"summary[{i}]" for i in range(self.n_cells)]
        names += [f"delta[{i}]" for i in range(self.n_cells)]
        names += [f"slope[{i}]" for i in range(self.n_cells)]
        names += list(SCALAR_FEATURES)
        return names

    # -- ingestion ---------------------------------------------------------

    def observe(
        self,
        raw_row: Optional[np.ndarray],
        summary_row: Optional[np.ndarray],
        scale_row: Optional[np.ndarray],
        violation: float,
        dont_know: int = 0,
        identified: int = 0,
        untrusted: bool = False,
    ) -> Optional[np.ndarray]:
        """Feed one epoch; returns its feature vector, or ``None``.

        ``raw_row`` / ``summary_row`` / ``scale_row`` are the relevant
        fingerprint cells flattened to length ``n_cells``: raw quantile
        values, their {-1, 0, +1} discretization, and the hot-cold
        threshold span used to normalize slopes.  ``None`` is emitted
        for untrusted epochs and until the slope ring is full.
        """
        self.epochs_seen += 1
        self._churn[:-1] = self._churn[1:]
        self._churn[-1] = (int(dont_know), int(identified), int(untrusted))
        self._raw[:-1] = self._raw[1:]
        self._viol[:-1] = self._viol[1:]
        if untrusted:
            # Quarantined epoch: time advances, values do not.
            self._raw[-1] = np.nan
            self._viol[-1] = np.nan
            return None
        raw_row = np.asarray(raw_row, dtype=float).reshape(-1)
        summary_row = np.asarray(summary_row).reshape(-1)
        if raw_row.shape != (self.n_cells,) or summary_row.shape != (
            self.n_cells,
        ):
            raise ValueError(
                f"expected rows of {self.n_cells} cells, got "
                f"{raw_row.shape} / {summary_row.shape}"
            )
        self._raw[-1] = raw_row
        self._viol[-1] = float(violation)

        summary = summary_row.astype(float)
        if self._has_prev:
            prev = self._prev_summary.astype(float)
        else:
            prev = summary  # first trusted epoch: no transitions yet
        delta = summary - prev
        enter_hot = float(np.mean((summary == 1) & (prev != 1)))
        enter_cold = float(np.mean((summary == -1) & (prev != -1)))
        leave = float(np.mean((summary == 0) & (prev != 0)))
        self._prev_summary = summary_row.astype(np.int8)
        self._has_prev = True

        if self.epochs_seen < self.slope_window:
            return None

        scale = np.maximum(
            np.asarray(scale_row, dtype=float).reshape(-1), 1e-9
        )
        slope = self._slopes(self._raw) * self.slope_window / scale
        slope = np.clip(slope, -_SLOPE_CLIP, _SLOPE_CLIP)
        viol_slope = float(
            self._slopes(self._viol[:, None])[0] * self.slope_window
        )
        churn = self._churn.sum(axis=0) / float(self.churn_window)
        scalars = np.array(
            [
                float(np.mean(summary == 1)),
                float(np.mean(summary == -1)),
                enter_hot,
                enter_cold,
                leave,
                float(violation),
                viol_slope,
                float(churn[0]),
                float(churn[1]),
                float(churn[2]),
            ]
        )
        return np.concatenate([summary, delta, slope, scalars])

    @staticmethod
    def _slopes(ring: np.ndarray) -> np.ndarray:
        """NaN-aware per-column least-squares slope over the ring."""
        w = ring.shape[0]
        x = np.arange(w, dtype=float)[:, None]
        valid = np.isfinite(ring)
        n = valid.sum(axis=0)
        xv = np.where(valid, x, 0.0)
        yv = np.where(valid, ring, 0.0)
        sx = xv.sum(axis=0)
        sy = yv.sum(axis=0)
        sxx = np.where(valid, x * x, 0.0).sum(axis=0)
        sxy = (xv * yv).sum(axis=0)
        denom = n * sxx - sx * sx
        safe = (n >= 2) & (denom > 1e-12)
        return np.where(
            safe, (n * sxy - sx * sy) / np.where(safe, denom, 1.0), 0.0
        )

    # -- snapshot ----------------------------------------------------------

    def snapshot(self, prefix: str = "") -> Tuple[dict, Dict[str, np.ndarray]]:
        header = {
            "n_cells": self.n_cells,
            "slope_window": self.slope_window,
            "churn_window": self.churn_window,
            "epochs_seen": self.epochs_seen,
            "has_prev": self._has_prev,
        }
        arrays = {
            f"{prefix}raw": self._raw.copy(),
            f"{prefix}viol": self._viol.copy(),
            f"{prefix}churn": self._churn.copy(),
            f"{prefix}prev_summary": self._prev_summary.copy(),
        }
        return header, arrays

    @classmethod
    def from_snapshot(
        cls, header: dict, arrays, prefix: str = ""
    ) -> "OnlineFeatureExtractor":
        out = cls(
            n_cells=int(header["n_cells"]),
            slope_window=int(header["slope_window"]),
            churn_window=int(header["churn_window"]),
        )
        out.epochs_seen = int(header["epochs_seen"])
        out._has_prev = bool(header["has_prev"])
        out._raw = np.array(arrays[f"{prefix}raw"], dtype=float)
        out._viol = np.array(arrays[f"{prefix}viol"], dtype=float)
        out._churn = np.array(arrays[f"{prefix}churn"], dtype=np.int64)
        out._prev_summary = np.array(
            arrays[f"{prefix}prev_summary"], dtype=np.int8
        )
        return out


__all__ = ["OnlineFeatureExtractor", "SCALAR_FEATURES"]
