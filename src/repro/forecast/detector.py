"""Two-stage crisis forecasting detector.

Stage 1 — *is a crisis imminent?* — is L1-regularized logistic
regression (:mod:`repro.ml.logistic`) over the online feature vectors of
:mod:`repro.forecast.features`, with the penalty chosen by k-fold
cross-validated held-out log-loss (:func:`repro.ml.crossval.kfold_indices`)
and the alarm threshold picked from the training ROC
(:mod:`repro.ml.roc`) at an explicit false-alarm budget — the operating
point with the best recall whose normal-epoch alarm rate stays within
budget, replacing the quantile-only threshold of the offline demo.

Stage 2 — *which fingerprint?* — scores the current partial fingerprint
(the mean of the last ``pre_epochs + 1`` summary vectors) against the
incident catalog through the existing :class:`repro.index.FingerprintIndex`,
gated by the Section 5.1.2 identification threshold estimated over the
catalog; a match beyond the threshold reports the don't-know label
rather than guessing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.identification import UNKNOWN, estimate_threshold_online
from repro.index import create_index
from repro.ml.crossval import kfold_indices
from repro.ml.logistic import L1LogisticRegression, LogisticModel, lambda_max
from repro.ml.roc import roc_curve

#: Candidate L1 penalties as fractions of ``lambda_max`` (the smallest
#: penalty that zeroes every coefficient).
LAMBDA_FRACTIONS: Tuple[float, ...] = (0.5, 0.2, 0.1, 0.05, 0.02, 0.01)


def normalize_fingerprint(vec: np.ndarray, eps: float = 1e-9) -> np.ndarray:
    """Unit-norm direction of a summary fingerprint (zeros stay zero).

    Stage-2 queries are *partial* fingerprints: at alarm time the crisis
    is still ramping, so the summary cells carry the right sign pattern
    at a fraction of the catalog entries' magnitude.  Matching raw
    Euclidean distance would therefore prefer whichever catalog entry
    is weakest overall; matching directions identifies the *pattern*
    regardless of how far the ramp has progressed.
    """
    vec = np.asarray(vec, dtype=np.float64)
    norm = float(np.linalg.norm(vec))
    return vec if norm < eps else vec / norm


def _mean_nll(p: np.ndarray, y: np.ndarray) -> float:
    """Mean negative log-likelihood, clipped away from log(0)."""
    p = np.clip(p, 1e-12, 1.0 - 1e-12)
    return float(-np.mean(y * np.log(p) + (1.0 - y) * np.log(1.0 - p)))


class TwoStageDetector:
    """Imminence scoring plus catalog identification for early warning."""

    def __init__(
        self,
        horizon_epochs: int = 4,
        false_alarm_budget: float = 0.02,
    ):
        if horizon_epochs < 1:
            raise ValueError("horizon_epochs must be positive")
        if not 0.0 < false_alarm_budget < 1.0:
            raise ValueError("false_alarm_budget must lie in (0, 1)")
        self.horizon_epochs = int(horizon_epochs)
        self.false_alarm_budget = float(false_alarm_budget)
        # Stage 1
        self.model: Optional[LogisticModel] = None
        self.lam: Optional[float] = None
        self.cv_table: List[dict] = []
        self._mean: Optional[np.ndarray] = None
        self._scale: Optional[np.ndarray] = None
        self.alarm_threshold: Optional[float] = None
        self.calibration_recall: Optional[float] = None
        self.calibration_fpr: Optional[float] = None
        # Stage 2
        self._catalog_vectors: Optional[np.ndarray] = None
        self._catalog_labels: List[str] = []
        self.match_threshold: Optional[float] = None
        self._index = None  # lazily rebuilt FingerprintIndex

    # -- stage 1: imminence -----------------------------------------------

    @property
    def is_fitted(self) -> bool:
        """True once both the model and its alarm threshold exist."""
        return self.model is not None and self.alarm_threshold is not None

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        lams: Optional[Sequence[float]] = None,
        cv_folds: int = 5,
        seed: int = 0,
        max_iter: int = 600,
    ) -> "TwoStageDetector":
        """Fit stage 1 with the penalty cross-validated by held-out NLL."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be 2-D with one row per label")
        if X.shape[0] < cv_folds:
            raise ValueError("not enough samples for the requested folds")
        if not (np.any(y == 1.0) and np.any(y == 0.0)):
            raise ValueError("need both positive and negative examples")
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale < 1e-9] = 1.0
        self._scale = scale
        Xs = (X - self._mean) / self._scale

        if lams is None:
            lam_hi = lambda_max(Xs, y)
            if lam_hi <= 0:
                lam_hi = 1e-3
            lams = [lam_hi * f for f in LAMBDA_FRACTIONS]
        rng = np.random.default_rng(seed)
        folds = list(kfold_indices(len(y), cv_folds, rng))
        self.cv_table = []
        for lam in lams:
            solver = L1LogisticRegression(lam=float(lam), max_iter=max_iter)
            nlls = []
            for train, test in folds:
                model = solver.fit(Xs[train], y[train])
                nlls.append(_mean_nll(model.predict_proba(Xs[test]), y[test]))
            model = solver.fit(Xs, y)
            self.cv_table.append(
                {
                    "lam": float(lam),
                    "cv_nll": float(np.mean(nlls)),
                    "n_nonzero": model.n_nonzero,
                }
            )
        best = min(self.cv_table, key=lambda row: (row["cv_nll"], row["lam"]))
        self.lam = best["lam"]
        self.model = L1LogisticRegression(
            lam=self.lam, max_iter=2 * max_iter
        ).fit(Xs, y)
        return self

    def score(self, X: np.ndarray) -> np.ndarray:
        """P(crisis within the lead horizon) for feature rows ``X``."""
        if self.model is None:
            raise RuntimeError("detector stage 1 is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[None]
        return self.model.predict_proba((X - self._mean) / self._scale)

    def calibrate(
        self,
        scores: np.ndarray,
        is_positive: np.ndarray,
        false_alarm_budget: Optional[float] = None,
    ) -> float:
        """ROC-driven alarm threshold at the false-alarm budget.

        Scores are probabilities (high = alarming); the distance-oriented
        :func:`repro.ml.roc.roc_curve` is applied to their negation, so
        ``threshold_at_alpha`` returns the most permissive operating
        point whose false-positive rate stays within budget.  Alarms then
        fire on ``score >= alarm_threshold``.
        """
        if false_alarm_budget is None:
            false_alarm_budget = self.false_alarm_budget
        scores = np.asarray(scores, dtype=float).ravel()
        is_positive = np.asarray(is_positive).astype(bool).ravel()
        curve = roc_curve(-scores, is_positive)
        self.alarm_threshold = -curve.threshold_at_alpha(false_alarm_budget)
        pos = scores[is_positive]
        neg = scores[~is_positive]
        self.calibration_recall = float(
            np.mean(pos >= self.alarm_threshold)
        )
        self.calibration_fpr = float(np.mean(neg >= self.alarm_threshold))
        return self.alarm_threshold

    # -- stage 2: identification ------------------------------------------

    def set_catalog(
        self,
        vectors: np.ndarray,
        labels: Sequence[str],
        alpha: float = 0.05,
    ) -> None:
        """Install the incident catalog stage 2 matches against.

        The identification threshold comes from the Section 5.1.2
        estimator over the catalog itself; with too few same-label pairs
        to estimate one, the nearest entry is reported ungated (an early
        advisory guess beats a guaranteed don't-know).
        """
        vectors = np.asarray(vectors, dtype=np.float64)
        labels = [str(label) for label in labels]
        if vectors.ndim != 2 or vectors.shape[0] != len(labels):
            raise ValueError("need one catalog vector per label")
        if not labels:
            raise ValueError("catalog must not be empty")
        self._catalog_vectors = vectors
        self._catalog_labels = labels
        try:
            self.match_threshold = float(
                estimate_threshold_online(list(vectors), labels, alpha)
            )
        except ValueError:
            self.match_threshold = None  # ungated nearest-entry matching
        self._index = None

    @property
    def catalog_size(self) -> int:
        return 0 if self._catalog_vectors is None else len(
            self._catalog_labels
        )

    def _catalog_index(self):
        if self._index is None:
            if self._catalog_vectors is None:
                raise RuntimeError("detector stage 2 has no catalog")
            index = create_index(
                "brute", self._catalog_vectors.shape[1], dtype=np.float64
            )
            for i, vec in enumerate(self._catalog_vectors):
                index.add(vec, id=i, payload=self._catalog_labels[i])
            self._index = index
        return self._index

    def identify(
        self, fingerprint: np.ndarray
    ) -> Tuple[str, Optional[float]]:
        """Name the impending crisis from a partial fingerprint."""
        if self._catalog_vectors is None:
            return UNKNOWN, None
        hits = self._catalog_index().query(
            np.asarray(fingerprint, dtype=np.float64), k=1
        )
        if not hits:
            return UNKNOWN, None
        hit = hits[0]
        if (
            self.match_threshold is not None
            and hit.distance >= self.match_threshold
        ):
            return UNKNOWN, float(hit.distance)
        return str(hit.payload), float(hit.distance)

    # -- snapshot ----------------------------------------------------------

    def snapshot(self, prefix: str = "") -> Tuple[dict, Dict[str, np.ndarray]]:
        header = {
            "horizon_epochs": self.horizon_epochs,
            "false_alarm_budget": self.false_alarm_budget,
            "lam": self.lam,
            "cv_table": self.cv_table,
            "alarm_threshold": self.alarm_threshold,
            "calibration_recall": self.calibration_recall,
            "calibration_fpr": self.calibration_fpr,
            "match_threshold": self.match_threshold,
            "catalog_labels": list(self._catalog_labels),
            "has_model": self.model is not None,
            "has_catalog": self._catalog_vectors is not None,
        }
        arrays: Dict[str, np.ndarray] = {}
        if self.model is not None:
            header["model"] = {
                "intercept": float(self.model.intercept),
                "lam": float(self.model.lam),
                "n_iter": int(self.model.n_iter),
                "converged": bool(self.model.converged),
            }
            arrays[f"{prefix}weights"] = self.model.weights.copy()
            arrays[f"{prefix}mean"] = self._mean.copy()
            arrays[f"{prefix}scale"] = self._scale.copy()
        if self._catalog_vectors is not None:
            arrays[f"{prefix}catalog"] = self._catalog_vectors.copy()
        return header, arrays

    @classmethod
    def from_snapshot(
        cls, header: dict, arrays, prefix: str = ""
    ) -> "TwoStageDetector":
        out = cls(
            horizon_epochs=int(header["horizon_epochs"]),
            false_alarm_budget=float(header["false_alarm_budget"]),
        )
        out.lam = header.get("lam")
        out.cv_table = list(header.get("cv_table", []))
        threshold = header.get("alarm_threshold")
        out.alarm_threshold = None if threshold is None else float(threshold)
        out.calibration_recall = header.get("calibration_recall")
        out.calibration_fpr = header.get("calibration_fpr")
        match = header.get("match_threshold")
        out.match_threshold = None if match is None else float(match)
        if header.get("has_model"):
            meta = header["model"]
            out.model = LogisticModel(
                weights=np.array(arrays[f"{prefix}weights"], dtype=float),
                intercept=float(meta["intercept"]),
                lam=float(meta["lam"]),
                n_iter=int(meta["n_iter"]),
                converged=bool(meta["converged"]),
            )
            out._mean = np.array(arrays[f"{prefix}mean"], dtype=float)
            out._scale = np.array(arrays[f"{prefix}scale"], dtype=float)
        if header.get("has_catalog"):
            out._catalog_vectors = np.array(
                arrays[f"{prefix}catalog"], dtype=np.float64
            )
            out._catalog_labels = [
                str(label) for label in header.get("catalog_labels", [])
            ]
        return out


__all__ = ["LAMBDA_FRACTIONS", "TwoStageDetector", "normalize_fingerprint"]
