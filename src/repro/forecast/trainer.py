"""Offline training for the online forecast pipeline.

Training is the one place the forecast subsystem may touch a recorded
trace: the trace is *replayed through a live monitor* with a
collect-mode :class:`~repro.forecast.engine.ForecastEngine` attached, so
every feature row the model sees is exactly what the online extractor
would have produced at that epoch — no offline-only signals leak in.

Epoch labels follow the lead-horizon semantics: epoch ``t`` is positive
when the monitor's own SLA detector fires at some epoch ``d`` with
``1 <= d - t <= horizon_epochs``.  Negatives are sampled from epochs
well clear of any crisis (the widened exclusion window of the Section 7
demo).  The stage-1 penalty is chosen by cross-validated held-out
log-loss, the alarm threshold from the training ROC at the false-alarm
budget, and the stage-2 catalog is built from the labeled crises of the
training period fingerprinted at the monitor's end-of-training
thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.config import (
    FingerprintingConfig,
    ForecastConfig,
    SelectionConfig,
    ThresholdConfig,
)
from repro.core.streaming import (
    CrisisDetected,
    CrisisEnded,
    StreamingCrisisMonitor,
)
from repro.core.summary import summary_vectors
from repro.forecast.detector import TwoStageDetector, normalize_fingerprint
from repro.forecast.engine import ForecastEngine
from repro.forecast.features import OnlineFeatureExtractor

#: Method parameters for forecast replays on simulator traces: a short
#: threshold window keeps the rolling tracker cheap over year-long
#: traces (same trade-off as the discovery evaluation harness).
FORECAST_REPLAY_CONFIG = FingerprintingConfig(
    selection=SelectionConfig(n_relevant=10),
    thresholds=ThresholdConfig(window_days=30),
)

#: Epochs after a crisis end still excluded from the negative pool.
POST_CRISIS_MARGIN = 4


def make_monitor(
    trace,
    relevant: np.ndarray,
    config: FingerprintingConfig = FORECAST_REPLAY_CONFIG,
) -> StreamingCrisisMonitor:
    """A replay monitor with daily refresh after a week of history."""
    return StreamingCrisisMonitor(
        n_metrics=trace.n_metrics,
        relevant_metrics=relevant,
        config=config,
        threshold_refresh_epochs=trace.epochs_per_day,
        min_history_epochs=7 * trace.epochs_per_day,
    )


@dataclass
class ReplayResult:
    """One streamed pass over a trace with feature collection."""

    features: np.ndarray  # (n_epochs, dim); NaN rows where unavailable
    valid: np.ndarray  # (n_epochs,) feature row emitted this epoch
    detections: List[int]  # epochs where the monitor's SLA rule fired
    spans: List[Tuple[int, int]]  # (detection, end) epoch per crisis
    monitor: StreamingCrisisMonitor
    engine: ForecastEngine


def replay_collect(
    trace,
    relevant: np.ndarray,
    config: FingerprintingConfig = FORECAST_REPLAY_CONFIG,
    fcfg: ForecastConfig = ForecastConfig(),
    end_epoch: Optional[int] = None,
    engine: Optional[ForecastEngine] = None,
) -> ReplayResult:
    """Stream ``trace[:end_epoch]`` through a monitor + forecast engine."""
    n = trace.n_epochs if end_epoch is None else min(
        int(end_epoch), trace.n_epochs
    )
    monitor = make_monitor(trace, relevant, config)
    if engine is None:
        engine = ForecastEngine(fcfg)
    monitor.attach_forecast(engine)
    frac = trace.kpi_violation_fraction.max(axis=1)
    features = np.full((n, engine.extractor.dim), np.nan)
    valid = np.zeros(n, dtype=bool)
    detections: List[int] = []
    spans: List[Tuple[int, int]] = []
    open_detection: Optional[int] = None
    for epoch in range(n):
        events = monitor.ingest(trace.quantiles[epoch], float(frac[epoch]))
        for event in events:
            if isinstance(event, CrisisDetected):
                detections.append(epoch)
                open_detection = epoch
            elif isinstance(event, CrisisEnded):
                if open_detection is not None:
                    spans.append((open_detection, epoch))
                open_detection = None
        row = engine.last_features
        if row is not None:
            features[epoch] = row
            valid[epoch] = True
    if open_detection is not None:
        spans.append((open_detection, n))
    return ReplayResult(
        features=features,
        valid=valid,
        detections=detections,
        spans=spans,
        monitor=monitor,
        engine=engine,
    )


def lead_labels(
    n_epochs: int, detections: List[int], horizon_epochs: int
) -> np.ndarray:
    """Positive mask: a detection lands within the next ``horizon`` epochs."""
    y = np.zeros(n_epochs, dtype=bool)
    for det in detections:
        y[max(det - horizon_epochs, 0):det] = True
    return y


def exclusion_mask(
    n_epochs: int,
    spans: List[Tuple[int, int]],
    horizon_epochs: int,
    margin: int = POST_CRISIS_MARGIN,
) -> np.ndarray:
    """Epochs too close to a crisis to serve as negatives."""
    mask = np.zeros(n_epochs, dtype=bool)
    for det, end in spans:
        lo = max(det - horizon_epochs - 2, 0)
        mask[lo:min(end + margin, n_epochs)] = True
    return mask


@dataclass
class TrainingReport:
    """What the trainer saw and chose (for CLI output and benchmarks)."""

    n_positive: int
    n_negative: int
    feature_dim: int
    lam: float
    cv_table: List[dict] = field(default_factory=list)
    alarm_threshold: float = 0.0
    calibration_recall: float = 0.0
    calibration_fpr: float = 0.0
    catalog_size: int = 0
    match_threshold: Optional[float] = None
    train_epochs: int = 0
    n_detections: int = 0


def train_forecaster(
    trace,
    relevant: np.ndarray,
    config: FingerprintingConfig = FORECAST_REPLAY_CONFIG,
    fcfg: ForecastConfig = ForecastConfig(),
    train_epochs: Optional[int] = None,
    n_negative: int = 6000,
) -> Tuple[ForecastEngine, TrainingReport]:
    """Train a two-stage detector on the trace prefix; returns a fresh
    (unattached) engine carrying it plus a training report."""
    relevant = np.asarray(relevant, dtype=int)
    n = trace.n_epochs if train_epochs is None else min(
        int(train_epochs), trace.n_epochs
    )
    replay = replay_collect(
        trace, relevant, config=config, fcfg=fcfg, end_epoch=n
    )
    if replay.monitor.thresholds is None:
        raise ValueError(
            "training period too short: thresholds never activated"
        )
    y = lead_labels(n, replay.detections, fcfg.horizon_epochs)
    excluded = exclusion_mask(n, replay.spans, fcfg.horizon_epochs)
    pos_idx = np.flatnonzero(y & replay.valid)
    neg_pool = np.flatnonzero(~y & ~excluded & replay.valid)
    if pos_idx.size == 0:
        raise ValueError("no positive epochs available")
    if neg_pool.size == 0:
        raise ValueError("no crisis-free epochs available")
    rng = np.random.default_rng(fcfg.seed)
    neg_idx = np.sort(
        rng.choice(
            neg_pool, size=min(n_negative, neg_pool.size), replace=False
        )
    )
    X = np.vstack([replay.features[pos_idx], replay.features[neg_idx]])
    labels = np.concatenate(
        [np.ones(pos_idx.size), np.zeros(neg_idx.size)]
    )
    detector = TwoStageDetector(
        horizon_epochs=fcfg.horizon_epochs,
        false_alarm_budget=fcfg.false_alarm_budget,
    )
    detector.fit(X, labels, cv_folds=fcfg.cv_folds, seed=fcfg.seed)
    detector.calibrate(detector.score(X), labels)

    # Stage-2 catalog: labeled crises of the training period,
    # fingerprinted over their pre-detection window at the monitor's
    # end-of-training thresholds (the partial fingerprint an alarm sees).
    pre = config.fingerprint.pre_epochs
    thresholds = replay.monitor.thresholds
    vectors: List[np.ndarray] = []
    names: List[str] = []
    for crisis in trace.labeled_crises:
        det = crisis.detected_epoch
        if det is None or det >= n:
            continue
        # One catalog entry per alarm phase: an alarm at lead L queries
        # the mean summary of the pre+1 epochs ending at det-L, so the
        # catalog holds that window's *direction* for every lead in the
        # horizon plus the detection-time fingerprint itself.  Matching
        # directions (``normalize_fingerprint``) keeps ramp strength out
        # of the distance, and the per-phase entries give the don't-know
        # threshold estimator the real within-type spread.
        for lead in range(fcfg.horizon_epochs + 1):
            stop = det - lead
            window = trace.quantiles[max(stop - pre, 0):stop + 1]
            if window.shape[0] == 0:
                continue
            summary = summary_vectors(window, thresholds)
            vec = (
                summary[:, relevant, :].astype(float).mean(axis=0).reshape(-1)
            )
            unit = normalize_fingerprint(vec)
            if not unit.any():
                continue
            vectors.append(unit)
            names.append(crisis.label)
    if vectors:
        detector.set_catalog(
            np.stack(vectors), names, alpha=fcfg.match_alpha
        )

    engine = ForecastEngine(fcfg, detector=detector)
    engine.extractor = OnlineFeatureExtractor(
        n_cells=int(relevant.size) * config.quantiles.count,
        slope_window=fcfg.slope_window,
        churn_window=fcfg.churn_window,
    )
    report = TrainingReport(
        n_positive=int(pos_idx.size),
        n_negative=int(neg_idx.size),
        feature_dim=int(X.shape[1]),
        lam=float(detector.lam),
        cv_table=list(detector.cv_table),
        alarm_threshold=float(detector.alarm_threshold),
        calibration_recall=float(detector.calibration_recall),
        calibration_fpr=float(detector.calibration_fpr),
        catalog_size=detector.catalog_size,
        match_threshold=detector.match_threshold,
        train_epochs=n,
        n_detections=len(replay.detections),
    )
    return engine, report


__all__ = [
    "FORECAST_REPLAY_CONFIG",
    "POST_CRISIS_MARGIN",
    "ReplayResult",
    "TrainingReport",
    "exclusion_mask",
    "lead_labels",
    "make_monitor",
    "replay_collect",
    "train_forecaster",
]
