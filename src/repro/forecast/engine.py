"""Forecast engine: predictive early warning riding a streaming monitor.

:class:`ForecastEngine` attaches to a
:class:`~repro.core.streaming.StreamingCrisisMonitor` (opt-in via
:meth:`~repro.core.streaming.StreamingCrisisMonitor.attach_forecast`) and
observes every ingested epoch — quantile summary, violation statistic,
emitted events, quality verdict.  Each trusted epoch is folded into the
:class:`~repro.forecast.features.OnlineFeatureExtractor`; when a trained
:class:`~repro.forecast.detector.TwoStageDetector` is installed, the
epoch is scored and, above the calibrated alarm threshold, a
:class:`ForecastAlarm` is emitted naming the most likely incident-catalog
entry — N epochs *before* the 10%-violation rule fires.

Alarm hygiene: alarms are suppressed while a crisis is already live (the
SLA detector has spoken; forecasting it is noise), on untrusted epochs
(quarantine semantics), and for ``cooldown_epochs`` after an alarm fires
(one page per impending crisis).

Engine state is embedded in monitor checkpoints by
:mod:`repro.core.checkpoint` and restored bit-identically; standalone
:func:`save_forecast` / :func:`load_forecast` serve the CLI and the
``serve --forecast-model`` path.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import ForecastConfig
from repro.core.atomicio import atomic_write_npz, pack_header, unpack_header
from repro.core.summary import summary_vectors
from repro.forecast.detector import TwoStageDetector, normalize_fingerprint
from repro.forecast.features import OnlineFeatureExtractor

#: Format version of standalone forecast state archives.
FORECAST_FORMAT_VERSION = 1


@dataclass(frozen=True)
class ForecastAlarm:
    """One early-warning emission: a crisis looks imminent."""

    epoch: int
    score: float  # stage-1 P(crisis within horizon)
    label: str  # stage-2 catalog match, or the don't-know label
    distance: Optional[float]  # stage-2 fingerprint distance

    def to_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "score": self.score,
            "label": self.label,
            "distance": self.distance,
        }


class ForecastEngine:
    """Online two-stage early warning over a monitor's epoch stream."""

    def __init__(
        self,
        config: ForecastConfig = ForecastConfig(),
        detector: Optional[TwoStageDetector] = None,
    ):
        self.config = config
        self.detector = detector
        self.extractor: Optional[OnlineFeatureExtractor] = None
        self._monitor = None
        #: Last ``pre_epochs + 1`` summary rows: the stage-2 partial
        #: fingerprint at alarm time (mirrors the monitor's pre-buffer).
        self._summary_buffer: List[np.ndarray] = []
        self._pre_epochs = 2
        self._cooldown = 0
        self._alarms: List[ForecastAlarm] = []
        self.alarms_total = 0
        self.suppressed_live = 0
        self.epochs_observed = 0
        self.epochs_scored = 0
        self.last_score: Optional[float] = None
        self.last_features: Optional[np.ndarray] = None

    # -- attachment --------------------------------------------------------

    def attach(self, monitor) -> None:
        """Bind to a monitor (normally via ``attach_forecast``)."""
        n_cells = int(monitor.relevant.size) * monitor.config.quantiles.count
        if self.extractor is None:
            self.extractor = OnlineFeatureExtractor(
                n_cells,
                slope_window=self.config.slope_window,
                churn_window=self.config.churn_window,
            )
        elif self.extractor.n_cells != n_cells:
            raise ValueError(
                f"forecast state tracks {self.extractor.n_cells} fingerprint "
                f"cells but the monitor fingerprints {n_cells}"
            )
        self._pre_epochs = monitor.config.fingerprint.pre_epochs
        self._monitor = monitor
        monitor._forecast = self

    @property
    def monitor(self):
        return self._monitor

    @property
    def is_fitted(self) -> bool:
        return self.detector is not None and self.detector.is_fitted

    @property
    def alarms(self) -> List[ForecastAlarm]:
        """The retained alarm log, oldest first."""
        return list(self._alarms)

    # -- monitor hook ------------------------------------------------------

    def observe_epoch(
        self,
        epoch: int,
        epoch_quantiles: np.ndarray,
        violation_fraction: Optional[float],
        events,
        untrusted: bool,
    ) -> Optional[ForecastAlarm]:
        """Consume one ingested epoch (monitor hook); maybe alarm."""
        from repro.core.streaming import IdentificationUpdate
        from repro.core.identification import UNKNOWN

        self.epochs_observed += 1
        self.last_features = None
        monitor = self._monitor
        if monitor is None or monitor.thresholds is None:
            return None

        dont_know = identified = 0
        for event in events:
            if isinstance(event, IdentificationUpdate):
                if event.label == UNKNOWN:
                    dont_know += 1
                else:
                    identified += 1
        violation = 0.0 if violation_fraction is None else float(
            violation_fraction
        )
        rel = monitor.relevant
        if untrusted:
            feats = self.extractor.observe(
                None, None, None, violation,
                dont_know=dont_know, identified=identified, untrusted=True,
            )
        else:
            thresholds = monitor.thresholds
            quantiles = np.asarray(epoch_quantiles, dtype=float)
            summary = summary_vectors(quantiles, thresholds)[rel].reshape(-1)
            raw = quantiles[rel].reshape(-1)
            scale = (thresholds.hot - thresholds.cold)[rel].reshape(-1)
            feats = self.extractor.observe(
                raw, summary, scale, violation,
                dont_know=dont_know, identified=identified, untrusted=False,
            )
            self._summary_buffer.append(summary.astype(float))
            if len(self._summary_buffer) > self._pre_epochs + 1:
                self._summary_buffer.pop(0)
        self.last_features = feats
        if feats is None or not self.is_fitted:
            return None

        self.epochs_scored += 1
        score = float(self.detector.score(feats)[0])
        self.last_score = score
        if self._cooldown > 0:
            self._cooldown -= 1
            return None
        if score < self.detector.alarm_threshold:
            return None
        if monitor._live is not None:
            # The SLA detector already fired; forecasting now is noise.
            self.suppressed_live += 1
            return None
        partial = normalize_fingerprint(
            np.mean(np.stack(self._summary_buffer), axis=0)
        )
        if not partial.any():
            # No summary cell deviates yet: the partial fingerprint has
            # no direction to match, so stage 2 honestly says don't-know.
            label, distance = UNKNOWN, None
        else:
            label, distance = self.detector.identify(partial)
        alarm = ForecastAlarm(
            epoch=int(epoch), score=score, label=label, distance=distance
        )
        self._alarms.append(alarm)
        if len(self._alarms) > self.config.alarm_retain:
            self._alarms.pop(0)
        self.alarms_total += 1
        self._cooldown = self.config.cooldown_epochs
        return alarm

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "attached": self._monitor is not None,
            "fitted": self.is_fitted,
            "epochs_observed": self.epochs_observed,
            "epochs_scored": self.epochs_scored,
            "alarms_total": self.alarms_total,
            "suppressed_live": self.suppressed_live,
            "cooldown": self._cooldown,
            "last_score": self.last_score,
            "horizon_epochs": self.config.horizon_epochs,
            "false_alarm_budget": self.config.false_alarm_budget,
        }
        if self.detector is not None:
            out["alarm_threshold"] = self.detector.alarm_threshold
            out["stage1_lam"] = self.detector.lam
            out["catalog_size"] = self.detector.catalog_size
            out["match_threshold"] = self.detector.match_threshold
        if self.extractor is not None:
            out["feature_dim"] = self.extractor.dim
        return out

    def forecasts(self, limit: Optional[int] = None) -> List[dict]:
        """Recent alarms as wire-safe dicts, oldest first."""
        alarms = self._alarms if limit is None else self._alarms[-limit:]
        return [alarm.to_dict() for alarm in alarms]

    # -- snapshot ----------------------------------------------------------

    def snapshot(self, prefix: str = "") -> Tuple[dict, Dict[str, np.ndarray]]:
        """Engine state as ``(header, arrays)`` for embedding.

        ``prefix`` namespaces the array keys so the snapshot can ride
        inside a monitor checkpoint archive without collisions.
        """
        if self.extractor is None:
            raise ValueError("engine is not attached")
        fx_header, fx_arrays = self.extractor.snapshot(prefix=f"{prefix}fx_")
        header = {
            "config": asdict(self.config),
            "extractor": fx_header,
            "pre_epochs": self._pre_epochs,
            "cooldown": self._cooldown,
            "alarms_total": self.alarms_total,
            "suppressed_live": self.suppressed_live,
            "epochs_observed": self.epochs_observed,
            "epochs_scored": self.epochs_scored,
            "last_score": self.last_score,
            "alarm_labels": [alarm.label for alarm in self._alarms],
            "n_summary_buffer": len(self._summary_buffer),
            "has_detector": self.detector is not None,
        }
        arrays = dict(fx_arrays)
        if self._summary_buffer:
            arrays[f"{prefix}summary_buffer"] = np.stack(self._summary_buffer)
        if self._alarms:
            arrays[f"{prefix}alarm_epochs"] = np.array(
                [alarm.epoch for alarm in self._alarms], dtype=np.int64
            )
            arrays[f"{prefix}alarm_scores"] = np.array(
                [alarm.score for alarm in self._alarms], dtype=float
            )
            # Distances are finite when present; NaN encodes "no catalog".
            arrays[f"{prefix}alarm_distances"] = np.array(
                [
                    np.nan if alarm.distance is None else alarm.distance
                    for alarm in self._alarms
                ],
                dtype=float,
            )
        if self.detector is not None:
            det_header, det_arrays = self.detector.snapshot(
                prefix=f"{prefix}det_"
            )
            header["detector"] = det_header
            arrays.update(det_arrays)
        return header, arrays

    @classmethod
    def from_snapshot(
        cls, header: dict, arrays, prefix: str = ""
    ) -> "ForecastEngine":
        config = ForecastConfig(**header["config"])
        detector = None
        if header.get("has_detector"):
            detector = TwoStageDetector.from_snapshot(
                header["detector"], arrays, prefix=f"{prefix}det_"
            )
        engine = cls(config, detector=detector)
        engine.extractor = OnlineFeatureExtractor.from_snapshot(
            header["extractor"], arrays, prefix=f"{prefix}fx_"
        )
        engine._pre_epochs = int(header["pre_epochs"])
        engine._cooldown = int(header["cooldown"])
        engine.alarms_total = int(header["alarms_total"])
        engine.suppressed_live = int(header["suppressed_live"])
        engine.epochs_observed = int(header["epochs_observed"])
        engine.epochs_scored = int(header["epochs_scored"])
        score = header.get("last_score")
        engine.last_score = None if score is None else float(score)
        if header.get("n_summary_buffer"):
            engine._summary_buffer = [
                np.array(row, dtype=float)
                for row in arrays[f"{prefix}summary_buffer"]
            ]
        labels = header.get("alarm_labels", [])
        if labels:
            epochs = arrays[f"{prefix}alarm_epochs"]
            scores = arrays[f"{prefix}alarm_scores"]
            distances = arrays[f"{prefix}alarm_distances"]
            engine._alarms = [
                ForecastAlarm(
                    epoch=int(epochs[i]),
                    score=float(scores[i]),
                    label=str(labels[i]),
                    distance=(
                        None if np.isnan(distances[i])
                        else float(distances[i])
                    ),
                )
                for i in range(len(labels))
            ]
        return engine


# ---------------------------------------------------------------------------
# Standalone persistence (CLI, serving model distribution)
# ---------------------------------------------------------------------------


def save_forecast(engine: ForecastEngine, path) -> None:
    """Persist an engine's forecast state to a standalone archive."""
    header, arrays = engine.snapshot()
    header = {
        "format_version": FORECAST_FORMAT_VERSION,
        "kind": "forecast",
        **header,
    }
    arrays = dict(arrays)
    arrays["header"] = pack_header(header)
    atomic_write_npz(path, arrays)


def load_forecast(path) -> ForecastEngine:
    """Restore an engine saved by :func:`save_forecast` (unattached)."""
    path = pathlib.Path(path)
    with np.load(path, allow_pickle=False) as data:
        try:
            header = unpack_header(data)
        except (KeyError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ValueError(
                f"{path} is not a forecast state archive: {exc}"
            ) from exc
        version = header.get("format_version")
        if version != FORECAST_FORMAT_VERSION:
            raise ValueError(
                f"unsupported forecast state format {version!r} "
                f"(expected {FORECAST_FORMAT_VERSION})"
            )
        if header.get("kind") != "forecast":
            raise ValueError(
                f"{path} holds a {header.get('kind')!r}, not forecast state"
            )
        return ForecastEngine.from_snapshot(header, data)


__all__ = [
    "FORECAST_FORMAT_VERSION",
    "ForecastAlarm",
    "ForecastEngine",
    "load_forecast",
    "save_forecast",
]
