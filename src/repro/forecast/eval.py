"""Lead-time-vs-precision evaluation of a trained forecast engine.

The harness replays a full trace through a *fresh* monitor with the
trained engine attached, then scores every ground-truth crisis of the
evaluation period:

* a crisis is **forewarned** when an alarm fired inside its lead window
  ``[detection - horizon, detection)``;
* its **lead time** is ``detection - first_alarm_epoch`` (epochs of
  advance notice);
* its **stage-2 identification** is the label of the *last* alarm in
  the window (the most informed early guess), scored against the
  injected ground-truth type;
* alarms well clear of every crisis (outside the widened windows the
  trainer also excludes) are **false alarms**, rated against the count
  of clear scored epochs.

These are exactly the axes of the acceptance bar for the subsystem:
recall at a false-alarm budget, median lead, and early-identification
accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.config import FingerprintingConfig, ForecastConfig
from repro.forecast.engine import ForecastEngine
from repro.forecast.trainer import (
    FORECAST_REPLAY_CONFIG,
    POST_CRISIS_MARGIN,
    replay_collect,
)


@dataclass(frozen=True)
class CrisisOutcome:
    """Forecast outcome for one ground-truth crisis."""

    label: str
    detected_epoch: int
    forewarned: bool
    lead_epochs: Optional[int]
    alarm_label: Optional[str]
    alarm_distance: Optional[float]
    stage2_correct: Optional[bool]


@dataclass
class LeadTimeResult:
    """Aggregate lead-time-vs-precision numbers for one evaluation."""

    n_crises: int
    n_forewarned: int
    recall: float
    median_lead_epochs: float
    false_alarm_rate: float
    n_false_alarms: int
    n_normal_epochs: int
    stage2_accuracy: float
    n_stage2_scored: int
    n_alarms: int
    outcomes: List[CrisisOutcome] = field(default_factory=list)


def evaluate_forecaster(
    trace,
    relevant: np.ndarray,
    engine: ForecastEngine,
    eval_start: int,
    config: FingerprintingConfig = FORECAST_REPLAY_CONFIG,
    fcfg: Optional[ForecastConfig] = None,
) -> LeadTimeResult:
    """Replay ``trace`` online and score crises detected >= ``eval_start``.

    ``engine`` must be fresh (unattached) and carry a fitted detector —
    the trainer's output.  Alarms raised before ``eval_start`` (the
    training prefix of the replay) are ignored.
    """
    if not engine.is_fitted:
        raise ValueError("engine must carry a fitted detector")
    if fcfg is None:
        fcfg = engine.config
    relevant = np.asarray(relevant, dtype=int)
    replay = replay_collect(
        trace, relevant, config=config, fcfg=fcfg, engine=engine
    )
    horizon = fcfg.horizon_epochs
    alarms = engine.alarms

    outcomes: List[CrisisOutcome] = []
    for crisis in trace.crises:
        det = crisis.detected_epoch
        if det is None or det < eval_start:
            continue
        window = [a for a in alarms if det - horizon <= a.epoch < det]
        forewarned = bool(window)
        lead = det - window[0].epoch if forewarned else None
        alarm_label = window[-1].label if forewarned else None
        alarm_distance = window[-1].distance if forewarned else None
        stage2 = alarm_label == crisis.label if forewarned else None
        outcomes.append(
            CrisisOutcome(
                label=crisis.label,
                detected_epoch=det,
                forewarned=forewarned,
                lead_epochs=lead,
                alarm_label=alarm_label,
                alarm_distance=alarm_distance,
                stage2_correct=stage2,
            )
        )

    # Alarms landing outside every widened crisis window are false.
    near = np.zeros(trace.n_epochs, dtype=bool)
    for crisis in trace.crises:
        lo = max(crisis.instance.start_epoch - horizon - 2, 0)
        hi = min(
            crisis.instance.end_epoch + POST_CRISIS_MARGIN, trace.n_epochs
        )
        near[lo:hi] = True
    false_alarms = [
        a for a in alarms if a.epoch >= eval_start and not near[a.epoch]
    ]
    epochs = np.arange(trace.n_epochs)
    normal = (epochs >= eval_start) & ~near & replay.valid
    n_normal = int(normal.sum())

    leads = [o.lead_epochs for o in outcomes if o.forewarned]
    scored = [o for o in outcomes if o.stage2_correct is not None]
    n_correct = sum(1 for o in scored if o.stage2_correct)
    n_fore = sum(1 for o in outcomes if o.forewarned)
    return LeadTimeResult(
        n_crises=len(outcomes),
        n_forewarned=n_fore,
        recall=n_fore / len(outcomes) if outcomes else 0.0,
        median_lead_epochs=float(np.median(leads)) if leads else 0.0,
        false_alarm_rate=(
            len(false_alarms) / n_normal if n_normal else 0.0
        ),
        n_false_alarms=len(false_alarms),
        n_normal_epochs=n_normal,
        stage2_accuracy=n_correct / len(scored) if scored else 0.0,
        n_stage2_scored=len(scored),
        n_alarms=sum(1 for a in alarms if a.epoch >= eval_start),
        outcomes=outcomes,
    )


def format_report(result: LeadTimeResult, title: str = "forecast") -> str:
    """Human-readable evaluation summary (CLI + benchmark output)."""
    lines = [
        f"{title}: lead-time vs precision",
        "-" * 56,
        f"crises evaluated      {result.n_crises}",
        (
            f"forewarned            {result.n_forewarned}"
            f"  (recall {result.recall:.0%})"
        ),
        f"median lead           {result.median_lead_epochs:.1f} epochs",
        (
            f"false alarms          {result.n_false_alarms}"
            f" / {result.n_normal_epochs} normal epochs"
            f"  ({result.false_alarm_rate:.2%})"
        ),
        (
            f"stage-2 accuracy      {result.stage2_accuracy:.0%}"
            f"  over {result.n_stage2_scored} forewarned crises"
        ),
        "",
        "crisis  detected  forewarned  lead  alarm-label  correct",
    ]
    for o in result.outcomes:
        lead = "-" if o.lead_epochs is None else str(o.lead_epochs)
        alarm = o.alarm_label or "-"
        okay = "-" if o.stage2_correct is None else (
            "yes" if o.stage2_correct else "no"
        )
        lines.append(
            f"{o.label:<7} {o.detected_epoch:<9} "
            f"{'yes' if o.forewarned else 'no':<11} {lead:<5} "
            f"{alarm:<12} {okay}"
        )
    return "\n".join(lines)


__all__ = [
    "CrisisOutcome",
    "LeadTimeResult",
    "evaluate_forecaster",
    "format_report",
]
