"""The fingerprint-index API.

The paper's identification step (Section 3.5) is a nearest-neighbor
search over crisis fingerprints.  At 20 crises a linear scan is fine; at
fleet scale (every crisis across every cluster, plus synthetic variants)
identification must be sub-linear and incrementally updatable.  This
package provides that subsystem: a single :class:`FingerprintIndex`
interface with three interchangeable backends —

* :class:`~repro.index.brute.BruteForceIndex` — exact, vectorized,
  blocked Gram-matrix distances over a contiguous matrix.  The default:
  bit-identical to the historical Python-loop scan.
* :class:`~repro.index.kdtree.KDTreeIndex` — exact, sub-linear for
  mid-size libraries in the fingerprint's moderate dimensionality.
* :class:`~repro.index.lsh.LSHIndex` — approximate, seeded p-stable
  locality-sensitive hashing for sub-linear matching at scale, with a
  measured recall contract (see ``docs/index.md``).

All backends share tie-breaking semantics: neighbors sort by
``(distance, id)``, so equal distances resolve to the lowest id.  This
makes exact backends deterministic drop-ins for the old scans, whose
stable sorts preserved insertion order.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Neighbor:
    """One query hit: vector id, exact L2 distance, optional payload."""

    id: int
    distance: float
    payload: Optional[str] = None


class FingerprintIndex(ABC):
    """Mutable nearest-neighbor index over fingerprint vectors.

    Vectors are identified by a caller-chosen (or auto-assigned)
    non-negative integer id and may carry a string payload (typically a
    crisis label).  All distances returned to callers are *exact* L2
    distances recomputed against the stored vectors in float64 —
    approximate backends only approximate the candidate set, never the
    reported distance.
    """

    #: Registry name of the backend ("brute", "kdtree", "lsh").
    backend: str = ""

    def __init__(self, dim: int):
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = int(dim)

    # -- mutation ------------------------------------------------------------

    @abstractmethod
    def add(
        self,
        vector: np.ndarray,
        id: Optional[int] = None,
        payload: Optional[str] = None,
    ) -> int:
        """Insert a vector; returns its id (auto-assigned when omitted)."""

    @abstractmethod
    def update(self, id: int, vector: np.ndarray) -> None:
        """Replace the vector stored under ``id``."""

    @abstractmethod
    def remove(self, id: int) -> None:
        """Delete the vector stored under ``id``."""

    def add_batch(
        self,
        vectors: Sequence[np.ndarray],
        ids: Optional[Sequence[int]] = None,
        payloads: Optional[Sequence[Optional[str]]] = None,
    ) -> List[int]:
        """Insert many vectors; returns their ids."""
        if ids is not None and len(ids) != len(vectors):
            raise ValueError("ids length mismatch")
        if payloads is not None and len(payloads) != len(vectors):
            raise ValueError("payloads length mismatch")
        out = []
        for i, vec in enumerate(vectors):
            out.append(
                self.add(
                    vec,
                    id=None if ids is None else ids[i],
                    payload=None if payloads is None else payloads[i],
                )
            )
        return out

    # -- queries -------------------------------------------------------------

    @abstractmethod
    def query(self, vector: np.ndarray, k: int = 1) -> List[Neighbor]:
        """The up-to-``k`` nearest stored vectors, sorted by (distance, id)."""

    @abstractmethod
    def query_radius(
        self, vector: np.ndarray, radius: float
    ) -> List[Neighbor]:
        """All stored vectors within ``radius`` (inclusive), sorted."""

    def query_batch(
        self, vectors: Sequence[np.ndarray], k: int = 1
    ) -> List[List[Neighbor]]:
        """k-NN for many queries at once (backends may vectorize)."""
        return [self.query(v, k=k) for v in vectors]

    # -- introspection -------------------------------------------------------

    @abstractmethod
    def __len__(self) -> int:
        ...

    @abstractmethod
    def __contains__(self, id: int) -> bool:
        ...

    @abstractmethod
    def ids(self) -> List[int]:
        """All stored ids, ascending."""

    @abstractmethod
    def payload(self, id: int) -> Optional[str]:
        """The payload stored with ``id``."""

    @abstractmethod
    def vector(self, id: int) -> np.ndarray:
        """The stored vector for ``id`` as float64."""

    def stats(self) -> Dict[str, object]:
        """Operational counters (backends extend this)."""
        return {"backend": self.backend, "size": len(self), "dim": self.dim}

    # -- snapshot ------------------------------------------------------------

    @abstractmethod
    def snapshot(self) -> Tuple[dict, Dict[str, np.ndarray]]:
        """Serializable state as ``(header, arrays)``.

        ``header`` must be JSON-encodable and include every constructor
        parameter needed by :meth:`from_snapshot`; ``arrays`` holds the
        numeric payloads.  :mod:`repro.index.snapshot` wraps this in the
        atomic ``.npz`` format shared with :mod:`repro.core.checkpoint`.
        """

    @classmethod
    @abstractmethod
    def from_snapshot(
        cls, header: dict, arrays: Dict[str, np.ndarray]
    ) -> "FingerprintIndex":
        """Rebuild an index from :meth:`snapshot` output."""

    # -- shared validation ---------------------------------------------------

    def _check_vector(self, vector: np.ndarray) -> np.ndarray:
        vec = np.asarray(vector, dtype=float).ravel()
        if vec.shape != (self.dim,):
            raise ValueError(
                f"fingerprint dimension mismatch: got {vec.shape[0]}, "
                f"index holds {self.dim}-dimensional vectors"
            )
        if not np.all(np.isfinite(vec)):
            raise ValueError("fingerprint contains non-finite values")
        return vec

    @staticmethod
    def _check_k(k: int) -> int:
        if k <= 0:
            raise ValueError("k must be positive")
        return int(k)


_BACKENDS: Dict[str, type] = {}


def register_backend(cls):
    """Class decorator: register an index backend under ``cls.backend``."""
    if not cls.backend:
        raise ValueError("backend name must be set")
    _BACKENDS[cls.backend] = cls
    return cls


def backend_names() -> List[str]:
    return sorted(_BACKENDS)


def backend_class(name: str) -> type:
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown index backend {name!r} "
            f"(available: {', '.join(backend_names())})"
        ) from None


def create_index(backend: str, dim: int, **kwargs) -> FingerprintIndex:
    """Instantiate a backend by registry name."""
    return backend_class(backend)(dim, **kwargs)


__all__ = [
    "FingerprintIndex",
    "Neighbor",
    "backend_class",
    "backend_names",
    "create_index",
    "register_backend",
]
