"""Contiguous vector storage shared by the index backends.

:class:`VectorStore` keeps all fingerprints in one row-major matrix with
amortized-doubling growth, so the brute-force backend's blocked distance
kernel streams over cache-friendly memory and a 100k-vector index is one
allocation, not 100k small arrays.  Removal swaps the last row into the
hole (O(1), order not preserved — backends that care about order keep
their own id structures and all query results sort by ``(distance, id)``
anyway).

The squared row norms are maintained incrementally for the Gram trick:
``||q - x||^2 = ||q||^2 - 2 q.x + ||x||^2``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

#: Default number of index rows per distance block.  8192 rows of a
#: 90-dimensional float32 matrix is ~3 MB per block — comfortably cache-
#: resident scratch, versus O(n^2 * d) for the naive broadcast.
DEFAULT_BLOCK_ROWS = 8192


class VectorStore:
    """Growable ``(n, dim)`` matrix with id <-> row bookkeeping."""

    def __init__(self, dim: int, dtype=np.float32, capacity: int = 0):
        self.dim = int(dim)
        self.dtype = np.dtype(dtype)
        self._matrix = np.empty((max(capacity, 0), dim), dtype=self.dtype)
        self._sq_norms = np.empty(max(capacity, 0), dtype=np.float64)
        self._n = 0
        self._ids: List[int] = []  # row -> id
        self._payloads: List[Optional[str]] = []  # row -> payload
        self._row_of: Dict[int, int] = {}  # id -> row
        self._next_id = 0

    def __len__(self) -> int:
        return self._n

    def __contains__(self, id: int) -> bool:
        return id in self._row_of

    @property
    def matrix(self) -> np.ndarray:
        """View of the live rows (do not mutate)."""
        return self._matrix[: self._n]

    @property
    def sq_norms(self) -> np.ndarray:
        return self._sq_norms[: self._n]

    def ids(self) -> List[int]:
        return sorted(self._row_of)

    def row_ids(self) -> np.ndarray:
        """Ids in row order (parallel to :attr:`matrix`)."""
        return np.asarray(self._ids, dtype=np.int64)

    def row_of(self, id: int) -> int:
        try:
            return self._row_of[id]
        except KeyError:
            raise KeyError(f"no vector with id {id}") from None

    def vector(self, id: int) -> np.ndarray:
        return self._matrix[self.row_of(id)].astype(np.float64)

    def payload(self, id: int) -> Optional[str]:
        return self._payloads[self.row_of(id)]

    def _grow_to(self, capacity: int) -> None:
        if capacity <= self._matrix.shape[0]:
            return
        new_cap = max(4, self._matrix.shape[0])
        while new_cap < capacity:
            new_cap *= 2
        matrix = np.empty((new_cap, self.dim), dtype=self.dtype)
        matrix[: self._n] = self._matrix[: self._n]
        self._matrix = matrix
        sq = np.empty(new_cap, dtype=np.float64)
        sq[: self._n] = self._sq_norms[: self._n]
        self._sq_norms = sq

    def add(
        self,
        vector: np.ndarray,
        id: Optional[int] = None,
        payload: Optional[str] = None,
    ) -> int:
        if id is None:
            id = self._next_id
        else:
            id = int(id)
            if id < 0:
                raise ValueError("id must be non-negative")
            if id in self._row_of:
                raise ValueError(f"id {id} already present")
        self._grow_to(self._n + 1)
        row = self._n
        stored = np.asarray(vector, dtype=self.dtype)
        self._matrix[row] = stored
        self._sq_norms[row] = float(
            np.dot(stored.astype(np.float64), stored.astype(np.float64))
        )
        self._ids.append(id)
        self._payloads.append(payload)
        self._row_of[id] = row
        self._n += 1
        self._next_id = max(self._next_id, id + 1)
        return id

    def update(self, id: int, vector: np.ndarray) -> None:
        row = self.row_of(id)
        stored = np.asarray(vector, dtype=self.dtype)
        self._matrix[row] = stored
        self._sq_norms[row] = float(
            np.dot(stored.astype(np.float64), stored.astype(np.float64))
        )

    def remove(self, id: int) -> None:
        row = self.row_of(id)
        last = self._n - 1
        if row != last:
            self._matrix[row] = self._matrix[last]
            self._sq_norms[row] = self._sq_norms[last]
            moved = self._ids[last]
            self._ids[row] = moved
            self._payloads[row] = self._payloads[last]
            self._row_of[moved] = row
        del self._row_of[id]
        self._ids.pop()
        self._payloads.pop()
        self._n = last

    # -- blocked distance kernel --------------------------------------------

    def block_sq_distances(
        self, queries: np.ndarray, block_rows: int = DEFAULT_BLOCK_ROWS
    ):
        """Yield ``(row_start, sq_dists)`` blocks for a query batch.

        ``queries`` is ``(q, dim)`` float64; each yielded ``sq_dists`` is
        ``(q, block)`` squared L2 distances computed with the Gram trick
        (negatives from cancellation are clamped to zero).  Peak scratch
        is ``O(q * block_rows)`` — never ``O(q * n)`` unless the caller
        concatenates.
        """
        if block_rows <= 0:
            raise ValueError("block_rows must be positive")
        queries = np.asarray(queries, dtype=np.float64)
        q_sq = np.einsum("ij,ij->i", queries, queries)
        for start in range(0, self._n, block_rows):
            stop = min(start + block_rows, self._n)
            block = self._matrix[start:stop].astype(np.float64, copy=False)
            sq = (
                q_sq[:, None]
                - 2.0 * (queries @ block.T)
                + self._sq_norms[start:stop][None, :]
            )
            np.maximum(sq, 0.0, out=sq)
            yield start, sq

    # -- snapshot ------------------------------------------------------------

    def snapshot_arrays(self) -> Dict[str, np.ndarray]:
        return {
            "vectors": self.matrix.copy(),
            "vector_ids": self.row_ids(),
        }

    def snapshot_header(self) -> dict:
        return {
            "dtype": self.dtype.name,
            "next_id": self._next_id,
            "payloads": list(self._payloads[: self._n]),
        }

    @classmethod
    def from_snapshot(
        cls, header: dict, arrays: Dict[str, np.ndarray]
    ) -> "VectorStore":
        vectors = np.asarray(arrays["vectors"])
        ids = np.asarray(arrays["vector_ids"], dtype=np.int64)
        store = cls(
            vectors.shape[1] if vectors.ndim == 2 else 1,
            dtype=np.dtype(header["dtype"]),
            capacity=vectors.shape[0],
        )
        payloads = header.get("payloads") or [None] * len(ids)
        for vec, id, payload in zip(vectors, ids, payloads):
            store.add(vec, id=int(id), payload=payload)
        store._next_id = max(store._next_id, int(header.get("next_id", 0)))
        return store


__all__ = ["DEFAULT_BLOCK_ROWS", "VectorStore"]
