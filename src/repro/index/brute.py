"""Vectorized brute-force backend: exact, blocked, cache-friendly.

Distances are computed with the Gram trick over fixed-size row blocks of
one contiguous matrix, so peak scratch memory is ``O(q * block_rows)``
instead of the ``O(n^2 * d)`` of a naive broadcast.  Candidates selected
from the (floating-point) Gram distances are then *re-ranked exactly*:
their distances are recomputed as ``||q - x||`` in float64 and sorted by
``(distance, id)``.  With float64 storage (the default for wired code
paths) results are therefore bit-identical to the historical Python-loop
scan, including tie-breaking.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.index.base import FingerprintIndex, Neighbor, register_backend
from repro.index.store import DEFAULT_BLOCK_ROWS, VectorStore

#: Relative slack applied to the k-th candidate's squared Gram distance so
#: that true top-k members never lose their slot to cancellation error.
_CANDIDATE_RTOL = 1e-6
_CANDIDATE_ATOL = 1e-12


@register_backend
class BruteForceIndex(FingerprintIndex):
    """Exact k-NN over a contiguous matrix with blocked Gram distances."""

    backend = "brute"

    def __init__(
        self,
        dim: int,
        dtype=np.float32,
        block_rows: int = DEFAULT_BLOCK_ROWS,
    ):
        super().__init__(dim)
        if block_rows <= 0:
            raise ValueError("block_rows must be positive")
        self.block_rows = int(block_rows)
        self._store = VectorStore(dim, dtype=dtype)

    # -- mutation ------------------------------------------------------------

    def add(
        self,
        vector: np.ndarray,
        id: Optional[int] = None,
        payload: Optional[str] = None,
    ) -> int:
        return self._store.add(self._check_vector(vector), id, payload)

    def update(self, id: int, vector: np.ndarray) -> None:
        self._store.update(id, self._check_vector(vector))

    def remove(self, id: int) -> None:
        self._store.remove(id)

    # -- queries -------------------------------------------------------------

    def _rerank(
        self, query: np.ndarray, rows: np.ndarray
    ) -> List[Tuple[float, int]]:
        """Exact float64 ``(distance, id)`` pairs for candidate rows."""
        if rows.size == 0:
            return []
        ids = self._store.row_ids()[rows]
        pairs = []
        # 1-D norm per candidate, the exact computation l2_distance performs
        # (an axis reduction may accumulate in a different order).
        for row, id in zip(rows.tolist(), ids.tolist()):
            vec = self._store.matrix[row].astype(np.float64, copy=False)
            pairs.append((float(np.linalg.norm(query - vec)), id))
        return sorted(pairs)

    def query(self, vector: np.ndarray, k: int = 1) -> List[Neighbor]:
        k = self._check_k(k)
        return self.query_batch([vector], k=k)[0]

    def query_batch(
        self, vectors: Sequence[np.ndarray], k: int = 1
    ) -> List[List[Neighbor]]:
        k = self._check_k(k)
        queries = np.stack([self._check_vector(v) for v in vectors]) \
            if len(vectors) else np.empty((0, self.dim))
        n = len(self._store)
        if n == 0 or len(vectors) == 0:
            return [[] for _ in vectors]
        # One O(q * n) float64 distance row per query is unavoidable for
        # exact k-NN; the blocking only bounds the *scratch* used to fill it.
        sq = np.empty((len(vectors), n), dtype=np.float64)
        for start, block in self._store.block_sq_distances(
            queries, self.block_rows
        ):
            sq[:, start : start + block.shape[1]] = block
        out: List[List[Neighbor]] = []
        kk = min(k, n)
        for qi in range(len(vectors)):
            row_sq = sq[qi]
            kth = np.partition(row_sq, kk - 1)[kk - 1]
            cutoff = kth + _CANDIDATE_RTOL * max(kth, 1.0) + _CANDIDATE_ATOL
            rows = np.flatnonzero(row_sq <= cutoff)
            ranked = self._rerank(queries[qi], rows)[:kk]
            out.append(
                [
                    Neighbor(id=i, distance=d, payload=self._store.payload(i))
                    for d, i in ranked
                ]
            )
        return out

    def query_radius(
        self, vector: np.ndarray, radius: float
    ) -> List[Neighbor]:
        if radius < 0:
            raise ValueError("radius must be non-negative")
        query = self._check_vector(vector)
        sq_cut = radius * radius
        cutoff = sq_cut + _CANDIDATE_RTOL * max(sq_cut, 1.0) + _CANDIDATE_ATOL
        hits: List[Tuple[float, int]] = []
        for start, block in self._store.block_sq_distances(
            query[None, :], self.block_rows
        ):
            rows = start + np.flatnonzero(block[0] <= cutoff)
            hits.extend(self._rerank(query, rows))
        return [
            Neighbor(id=i, distance=d, payload=self._store.payload(i))
            for d, i in sorted(hits)
            if d <= radius
        ]

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, id: int) -> bool:
        return id in self._store

    def ids(self) -> List[int]:
        return self._store.ids()

    def payload(self, id: int) -> Optional[str]:
        return self._store.payload(id)

    def vector(self, id: int) -> np.ndarray:
        return self._store.vector(id)

    def stats(self) -> Dict[str, object]:
        stats = super().stats()
        stats.update(
            dtype=self._store.dtype.name,
            block_rows=self.block_rows,
            capacity_rows=self._store._matrix.shape[0],
        )
        return stats

    # -- snapshot ------------------------------------------------------------

    def snapshot(self) -> Tuple[dict, Dict[str, np.ndarray]]:
        header = {
            "backend": self.backend,
            "dim": self.dim,
            "block_rows": self.block_rows,
            "store": self._store.snapshot_header(),
        }
        return header, self._store.snapshot_arrays()

    @classmethod
    def from_snapshot(
        cls, header: dict, arrays: Dict[str, np.ndarray]
    ) -> "BruteForceIndex":
        index = cls(
            header["dim"],
            dtype=np.dtype(header["store"]["dtype"]),
            block_rows=header.get("block_rows", DEFAULT_BLOCK_ROWS),
        )
        index._store = VectorStore.from_snapshot(header["store"], arrays)
        return index


__all__ = ["BruteForceIndex"]
