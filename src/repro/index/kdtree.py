"""KD-tree backend: exact sub-linear queries for mid-size libraries.

An array-based median-split KD-tree over the shared
:class:`~repro.index.store.VectorStore`.  Queries are exact branch-and-
bound k-NN with the same ``(distance, id)`` ordering as every other
backend.  Mutations mark the tree dirty; it is rebuilt lazily on the
next query (a rebuild is O(n log n) — fine at the mid-size scales this
backend targets; use the LSH backend beyond that).

Fingerprint dimensionality is moderate (tens of columns), which is the
regime where KD-trees still prune; in very high dimensions prefer the
brute or LSH backends (see ``docs/index.md``).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.index.base import FingerprintIndex, Neighbor, register_backend
from repro.index.store import VectorStore

#: Leaves hold up to this many points; below it, scanning beats recursing.
_LEAF_SIZE = 16


class _Node:
    __slots__ = ("axis", "split", "left", "right", "rows")

    def __init__(self, axis=-1, split=0.0, left=None, right=None, rows=None):
        self.axis = axis
        self.split = split
        self.left = left
        self.right = right
        self.rows = rows  # leaf: row indices into the store matrix


@register_backend
class KDTreeIndex(FingerprintIndex):
    """Exact k-NN via a lazily rebuilt median-split KD-tree."""

    backend = "kdtree"

    def __init__(self, dim: int, dtype=np.float64, leaf_size: int = _LEAF_SIZE):
        super().__init__(dim)
        if leaf_size <= 0:
            raise ValueError("leaf_size must be positive")
        self.leaf_size = int(leaf_size)
        self._store = VectorStore(dim, dtype=dtype)
        self._root: Optional[_Node] = None
        self._dirty = True
        self.rebuilds = 0

    # -- mutation ------------------------------------------------------------

    def add(self, vector, id=None, payload=None) -> int:
        out = self._store.add(self._check_vector(vector), id, payload)
        self._dirty = True
        return out

    def update(self, id: int, vector) -> None:
        self._store.update(id, self._check_vector(vector))
        self._dirty = True

    def remove(self, id: int) -> None:
        self._store.remove(id)
        self._dirty = True

    # -- tree construction ---------------------------------------------------

    def _build(self, rows: np.ndarray, depth: int) -> _Node:
        if rows.size <= self.leaf_size:
            return _Node(rows=rows)
        matrix = self._store.matrix
        # Split on the widest-spread axis for better balance than cycling.
        sub = matrix[rows].astype(np.float64, copy=False)
        spreads = sub.max(axis=0) - sub.min(axis=0)
        axis = int(np.argmax(spreads))
        if spreads[axis] <= 0.0:
            return _Node(rows=rows)  # all duplicates: no split possible
        values = sub[:, axis]
        mid = rows.size // 2
        order = np.argpartition(values, mid)
        split = float(values[order[mid]])
        left = rows[values < split]
        right = rows[values >= split]
        if left.size == 0 or right.size == 0:
            # Degenerate median (many equal values): fall back to a leaf.
            return _Node(rows=rows)
        return _Node(
            axis=axis,
            split=split,
            left=self._build(left, depth + 1),
            right=self._build(right, depth + 1),
        )

    def _ensure_tree(self) -> None:
        if not self._dirty:
            return
        n = len(self._store)
        self._root = (
            self._build(np.arange(n, dtype=np.int64), 0) if n else None
        )
        self._dirty = False
        self.rebuilds += 1

    # -- queries -------------------------------------------------------------

    def _leaf_scan(self, query, rows, k, heap) -> None:
        matrix = self._store.matrix
        ids = self._store.row_ids()
        for row in rows.tolist():
            vec = matrix[row].astype(np.float64, copy=False)
            d = float(np.linalg.norm(query - vec))
            item = (-d, -int(ids[row]))  # max-heap on (distance, id)
            if len(heap) < k:
                heapq.heappush(heap, item)
            elif item > heap[0]:
                heapq.heapreplace(heap, item)

    def _search(self, node: _Node, query, k, heap) -> None:
        if node.rows is not None:
            self._leaf_scan(query, node.rows, k, heap)
            return
        diff = float(query[node.axis]) - node.split
        near, far = (
            (node.left, node.right) if diff < 0 else (node.right, node.left)
        )
        self._search(near, query, k, heap)
        worst = -heap[0][0] if heap else np.inf
        if len(heap) < k or abs(diff) <= worst:
            self._search(far, query, k, heap)

    def query(self, vector, k: int = 1) -> List[Neighbor]:
        k = self._check_k(k)
        query = self._check_vector(vector)
        self._ensure_tree()
        if self._root is None:
            return []
        heap: List[Tuple[float, int]] = []
        self._search(self._root, query, min(k, len(self._store)), heap)
        ranked = sorted((-d, -nid) for d, nid in heap)
        return [
            Neighbor(id=i, distance=d, payload=self._store.payload(i))
            for d, i in ranked
        ]

    def query_radius(self, vector, radius: float) -> List[Neighbor]:
        if radius < 0:
            raise ValueError("radius must be non-negative")
        query = self._check_vector(vector)
        self._ensure_tree()
        hits: List[Tuple[float, int]] = []
        if self._root is None:
            return []
        matrix = self._store.matrix
        ids = self._store.row_ids()

        def visit(node: _Node) -> None:
            if node.rows is not None:
                for row in node.rows.tolist():
                    vec = matrix[row].astype(np.float64, copy=False)
                    d = float(np.linalg.norm(query - vec))
                    if d <= radius:
                        hits.append((d, int(ids[row])))
                return
            diff = float(query[node.axis]) - node.split
            near, far = (
                (node.left, node.right)
                if diff < 0
                else (node.right, node.left)
            )
            visit(near)
            if abs(diff) <= radius:
                visit(far)

        visit(self._root)
        return [
            Neighbor(id=i, distance=d, payload=self._store.payload(i))
            for d, i in sorted(hits)
        ]

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, id: int) -> bool:
        return id in self._store

    def ids(self) -> List[int]:
        return self._store.ids()

    def payload(self, id: int) -> Optional[str]:
        return self._store.payload(id)

    def vector(self, id: int) -> np.ndarray:
        return self._store.vector(id)

    def stats(self) -> Dict[str, object]:
        stats = super().stats()
        stats.update(
            dtype=self._store.dtype.name,
            leaf_size=self.leaf_size,
            rebuilds=self.rebuilds,
            dirty=self._dirty,
        )
        return stats

    # -- snapshot ------------------------------------------------------------

    def snapshot(self) -> Tuple[dict, Dict[str, np.ndarray]]:
        header = {
            "backend": self.backend,
            "dim": self.dim,
            "leaf_size": self.leaf_size,
            "store": self._store.snapshot_header(),
        }
        return header, self._store.snapshot_arrays()

    @classmethod
    def from_snapshot(cls, header, arrays) -> "KDTreeIndex":
        index = cls(
            header["dim"],
            dtype=np.dtype(header["store"]["dtype"]),
            leaf_size=header.get("leaf_size", _LEAF_SIZE),
        )
        index._store = VectorStore.from_snapshot(header["store"], arrays)
        index._dirty = True
        return index


__all__ = ["KDTreeIndex"]
