"""Fingerprint index & matching engine: sub-linear crisis identification.

See :mod:`repro.index.base` for the API and ``docs/index.md`` for the
backend selection guide.
"""

from repro.index.base import (
    FingerprintIndex,
    Neighbor,
    backend_class,
    backend_names,
    create_index,
)
from repro.index.brute import BruteForceIndex
from repro.index.kdtree import KDTreeIndex
from repro.index.lsh import LSHIndex
from repro.index.snapshot import (
    INDEX_FORMAT_VERSION,
    index_from_arrays,
    index_to_arrays,
    load_index,
    save_index,
)

__all__ = [
    "BruteForceIndex",
    "FingerprintIndex",
    "INDEX_FORMAT_VERSION",
    "KDTreeIndex",
    "LSHIndex",
    "Neighbor",
    "backend_class",
    "backend_names",
    "create_index",
    "index_from_arrays",
    "index_to_arrays",
    "load_index",
    "save_index",
]
