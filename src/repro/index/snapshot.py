"""Persist fingerprint indexes as atomic ``.npz`` archives.

The archive format follows the :mod:`repro.core.atomicio` idiom used by
the streaming checkpoints: array payloads plus a JSON header carrying
the backend name and constructor parameters, written atomically.  The
same helpers also embed index snapshots *inside* a monitor checkpoint
(:mod:`repro.core.checkpoint`) under a key prefix, so a restored monitor
does not rebuild its identification indexes from scratch.
"""

from __future__ import annotations

import pathlib
from typing import Dict

import numpy as np

from repro.core.atomicio import atomic_write_npz, pack_header, unpack_header
from repro.index.base import FingerprintIndex, backend_class

#: Format version embedded in every standalone index archive.
INDEX_FORMAT_VERSION = 1


def index_to_arrays(
    index: FingerprintIndex, prefix: str = ""
) -> Dict[str, np.ndarray]:
    """Flatten an index snapshot into prefixed arrays (header included).

    Used both for standalone archives (empty prefix) and for embedding a
    snapshot inside another archive, e.g. a monitor checkpoint.
    """
    header, arrays = index.snapshot()
    out = {f"{prefix}header": pack_header(header)}
    for key, value in arrays.items():
        out[f"{prefix}{key}"] = value
    return out


def index_from_arrays(data, prefix: str = "") -> FingerprintIndex:
    """Inverse of :func:`index_to_arrays`."""
    header = unpack_header({"header": data[f"{prefix}header"]})
    arrays = {
        key[len(prefix):]: data[key]
        for key in getattr(data, "files", data.keys())
        if key.startswith(prefix) and key != f"{prefix}header"
    }
    return backend_class(header["backend"]).from_snapshot(header, arrays)


def save_index(index: FingerprintIndex, path) -> None:
    """Write a standalone index archive atomically."""
    arrays = index_to_arrays(index)
    header = unpack_header({"header": arrays["header"]})
    header["format_version"] = INDEX_FORMAT_VERSION
    arrays["header"] = pack_header(header)
    atomic_write_npz(path, arrays)


def load_index(path) -> FingerprintIndex:
    """Restore an index written by :func:`save_index`."""
    with np.load(pathlib.Path(path), allow_pickle=False) as data:
        header = unpack_header(data)
        version = header.get("format_version")
        if version != INDEX_FORMAT_VERSION:
            raise ValueError(
                f"unsupported index format {version!r} "
                f"(expected {INDEX_FORMAT_VERSION})"
            )
        return index_from_arrays(data)


__all__ = [
    "INDEX_FORMAT_VERSION",
    "index_from_arrays",
    "index_to_arrays",
    "load_index",
    "save_index",
]
