"""Locality-sensitive hashing backend: sub-linear approximate matching.

The p-stable scheme of Datar et al.: each of ``n_tables`` hash tables
keys vectors by ``n_hashes`` concatenated projections
``floor((a . x + b) / w)`` with Gaussian ``a`` and uniform offsets
``b`` drawn from a seeded generator, so two runs with equal seeds build
identical tables.  A query unions the candidate lists of its bucket in
every table, then re-ranks the candidates by *exact* float64 distance —
the approximation is confined to which vectors are considered, never to
a reported distance.

Bucket width ``w`` controls the recall/speed trade-off and depends on
the data scale, so the default (``width=None``) freezes it automatically
the first time hashing is needed: ``w`` becomes half the median pairwise
distance of a deterministic sample of the stored vectors.  The measured
recall contract at the default configuration (recall@10 >= 0.9 against
the exact backend on simulator fingerprints) is enforced by
``tests/test_index_lsh_recall.py`` and re-measured by
``benchmarks/test_index_scaling.py``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.index.base import FingerprintIndex, Neighbor, register_backend
from repro.index.store import VectorStore

#: Defaults of the measured recall contract; changing them invalidates the
#: committed recall numbers in benchmarks/results/index_scaling.txt.
DEFAULT_TABLES = 16
DEFAULT_HASHES = 6
#: Sample size used to freeze the automatic bucket width, and the fraction
#: of the sampled median pairwise distance the width is set to.  Half the
#: median measured ~0.99 recall@10 at ~7% candidate fraction on simulator
#: fingerprints (see benchmarks/results/index_scaling.txt).
_WIDTH_SAMPLE = 256
_AUTO_WIDTH_SCALE = 0.5


@register_backend
class LSHIndex(FingerprintIndex):
    """Approximate k-NN via seeded p-stable random projections."""

    backend = "lsh"

    def __init__(
        self,
        dim: int,
        n_tables: int = DEFAULT_TABLES,
        n_hashes: int = DEFAULT_HASHES,
        width: Optional[float] = None,
        seed: int = 0,
        dtype=np.float32,
    ):
        super().__init__(dim)
        if n_tables <= 0 or n_hashes <= 0:
            raise ValueError("n_tables and n_hashes must be positive")
        if width is not None and width <= 0:
            raise ValueError("width must be positive")
        self.n_tables = int(n_tables)
        self.n_hashes = int(n_hashes)
        self.seed = int(seed)
        self.width = None if width is None else float(width)
        self._store = VectorStore(dim, dtype=dtype)
        rng = np.random.default_rng(self.seed)
        self._proj = rng.normal(size=(self.n_tables, self.n_hashes, dim))
        self._offsets = rng.uniform(size=(self.n_tables, self.n_hashes))
        # table -> bucket key -> set of ids; populated once width is frozen.
        self._tables: List[Dict[Tuple[int, ...], set]] = [
            {} for _ in range(self.n_tables)
        ]
        self._keys_of: Dict[int, List[Tuple[int, ...]]] = {}
        self._hashed = False

    # -- hashing -------------------------------------------------------------

    def _freeze_width(self) -> None:
        """Pick ``w`` from the data scale (deterministic sample)."""
        if self.width is not None:
            return
        n = len(self._store)
        if n < 2:
            self.width = 1.0
            return
        step = max(n // _WIDTH_SAMPLE, 1)
        sample = self._store.matrix[::step][:_WIDTH_SAMPLE].astype(np.float64)
        sq_norms = np.einsum("ij,ij->i", sample, sample)
        sq = sq_norms[:, None] - 2.0 * (sample @ sample.T) + sq_norms[None, :]
        np.maximum(sq, 0.0, out=sq)
        dists = np.sqrt(sq[np.triu_indices(sample.shape[0], k=1)])
        positive = dists[dists > 0]
        self.width = (
            _AUTO_WIDTH_SCALE * float(np.median(positive))
            if positive.size
            else 1.0
        )

    def _hash_keys(self, vector: np.ndarray) -> List[Tuple[int, ...]]:
        """One bucket key per table for a float64 vector."""
        proj = self._proj @ vector  # (n_tables, n_hashes)
        cells = np.floor(proj / self.width + self._offsets).astype(np.int64)
        return [tuple(row) for row in cells]

    def _insert_hashes(self, id: int) -> None:
        keys = self._hash_keys(self._store.vector(id))
        self._keys_of[id] = keys
        for table, key in zip(self._tables, keys):
            table.setdefault(key, set()).add(id)

    def _remove_hashes(self, id: int) -> None:
        for table, key in zip(self._tables, self._keys_of.pop(id)):
            bucket = table.get(key)
            if bucket is not None:
                bucket.discard(id)
                if not bucket:
                    del table[key]

    def _ensure_hashed(self) -> None:
        """Freeze the width and hash any vectors added before it was set."""
        if self._hashed:
            return
        self._freeze_width()
        for id in self._store.ids():
            if id not in self._keys_of:
                self._insert_hashes(id)
        self._hashed = True

    # -- mutation ------------------------------------------------------------

    def add(self, vector, id=None, payload=None) -> int:
        out = self._store.add(self._check_vector(vector), id, payload)
        if self._hashed:
            self._insert_hashes(out)
        return out

    def update(self, id: int, vector) -> None:
        vec = self._check_vector(vector)
        if self._hashed and id in self._keys_of:
            self._remove_hashes(id)
        self._store.update(id, vec)
        if self._hashed:
            self._insert_hashes(id)

    def remove(self, id: int) -> None:
        if self._hashed and id in self._keys_of:
            self._remove_hashes(id)
        self._store.remove(id)

    # -- queries -------------------------------------------------------------

    def _candidates(self, query: np.ndarray) -> List[int]:
        found: set = set()
        for table, key in zip(self._tables, self._hash_keys(query)):
            found |= table.get(key, set())
        return sorted(found)

    def _rerank(
        self, query: np.ndarray, cand_ids: List[int]
    ) -> List[Tuple[float, int]]:
        """Exact float64 ``(distance, id)`` pairs, vectorized and sorted."""
        if not cand_ids:
            return []
        rows = np.fromiter(
            (self._store.row_of(i) for i in cand_ids),
            dtype=np.int64,
            count=len(cand_ids),
        )
        cand = self._store.matrix[rows].astype(np.float64, copy=False)
        diff = cand - query[None, :]
        dists = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        return sorted(zip(dists.tolist(), cand_ids))

    def query(self, vector, k: int = 1) -> List[Neighbor]:
        k = self._check_k(k)
        query = self._check_vector(vector)
        if len(self._store) == 0:
            return []
        self._ensure_hashed()
        ranked = self._rerank(query, self._candidates(query))
        return [
            Neighbor(id=i, distance=d, payload=self._store.payload(i))
            for d, i in ranked[: min(k, len(ranked))]
        ]

    def query_radius(self, vector, radius: float) -> List[Neighbor]:
        if radius < 0:
            raise ValueError("radius must be non-negative")
        query = self._check_vector(vector)
        if len(self._store) == 0:
            return []
        self._ensure_hashed()
        ranked = self._rerank(query, self._candidates(query))
        return [
            Neighbor(id=i, distance=d, payload=self._store.payload(i))
            for d, i in ranked
            if d <= radius
        ]

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, id: int) -> bool:
        return id in self._store

    def ids(self) -> List[int]:
        return self._store.ids()

    def payload(self, id: int) -> Optional[str]:
        return self._store.payload(id)

    def vector(self, id: int) -> np.ndarray:
        return self._store.vector(id)

    def stats(self) -> Dict[str, object]:
        if len(self._store):
            self._ensure_hashed()
        stats = super().stats()
        buckets = sum(len(t) for t in self._tables)
        stats.update(
            dtype=self._store.dtype.name,
            n_tables=self.n_tables,
            n_hashes=self.n_hashes,
            width=self.width,
            seed=self.seed,
            buckets=buckets,
        )
        return stats

    # -- snapshot ------------------------------------------------------------

    def snapshot(self) -> Tuple[dict, Dict[str, np.ndarray]]:
        # Projections and tables are derived from (seed, width): hashing is
        # replayed deterministically on restore, so only the store travels.
        if len(self._store):
            self._ensure_hashed()
        header = {
            "backend": self.backend,
            "dim": self.dim,
            "n_tables": self.n_tables,
            "n_hashes": self.n_hashes,
            "width": self.width,
            "seed": self.seed,
            "store": self._store.snapshot_header(),
        }
        return header, self._store.snapshot_arrays()

    @classmethod
    def from_snapshot(cls, header, arrays) -> "LSHIndex":
        index = cls(
            header["dim"],
            n_tables=header["n_tables"],
            n_hashes=header["n_hashes"],
            width=header["width"],
            seed=header["seed"],
            dtype=np.dtype(header["store"]["dtype"]),
        )
        index._store = VectorStore.from_snapshot(header["store"], arrays)
        return index


__all__ = ["DEFAULT_HASHES", "DEFAULT_TABLES", "LSHIndex"]
