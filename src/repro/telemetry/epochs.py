"""Epoch timebase utilities.

All telemetry in this system is aggregated over fixed-length epochs (15
minutes in the paper's datacenter).  Epochs are identified by a non-negative
integer index counted from the start of the trace; helper functions convert
between epochs, minutes, and days.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import EPOCH_MINUTES


def epochs_per_day(epoch_minutes: int = EPOCH_MINUTES) -> int:
    """Number of epochs in one day.

    Raises ValueError if the epoch length does not evenly divide a day, since
    threshold windows are expressed in whole days.
    """
    day_minutes = 24 * 60
    if epoch_minutes <= 0 or day_minutes % epoch_minutes:
        raise ValueError(f"epoch length {epoch_minutes} must divide 1440 min")
    return day_minutes // epoch_minutes


def epoch_of_minute(minute: int, epoch_minutes: int = EPOCH_MINUTES) -> int:
    """Epoch index containing the given absolute minute."""
    if minute < 0:
        raise ValueError("minute must be non-negative")
    return minute // epoch_minutes


def minutes_of_epoch(epoch: int, epoch_minutes: int = EPOCH_MINUTES) -> int:
    """Absolute minute at which the given epoch starts."""
    if epoch < 0:
        raise ValueError("epoch must be non-negative")
    return epoch * epoch_minutes


@dataclass(frozen=True)
class EpochClock:
    """Converts between epochs, minutes, and days for one trace.

    The clock is purely arithmetic; it exists so the rest of the system never
    hard-codes the aggregation period.
    """

    epoch_minutes: int = EPOCH_MINUTES

    def __post_init__(self) -> None:
        epochs_per_day(self.epoch_minutes)  # validates divisibility

    @property
    def per_day(self) -> int:
        return epochs_per_day(self.epoch_minutes)

    def to_minutes(self, epoch: int) -> int:
        return minutes_of_epoch(epoch, self.epoch_minutes)

    def to_epoch(self, minute: int) -> int:
        return epoch_of_minute(minute, self.epoch_minutes)

    def day_of(self, epoch: int) -> int:
        """Zero-based day index containing the epoch."""
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        return epoch // self.per_day

    def time_of_day(self, epoch: int) -> float:
        """Fraction of the day elapsed at the epoch start, in [0, 1)."""
        return (epoch % self.per_day) / self.per_day

    def span_epochs(self, days: int) -> int:
        """Number of epochs spanned by the given number of days."""
        if days < 0:
            raise ValueError("days must be non-negative")
        return days * self.per_day


__all__ = [
    "EpochClock",
    "epochs_per_day",
    "epoch_of_minute",
    "minutes_of_epoch",
]
