"""Deterministic, seeded chaos harness for the telemetry path.

Wraps any per-epoch agent stream — ``(n_machines, n_metrics)`` sample
matrices, or individual machine reports — and injects the failure modes a
real fleet exhibits exactly when fingerprints matter most:

* **machine dropout** — an agent goes silent for an epoch;
* **delayed reports** — a report arrives one epoch late (and stale);
* **duplicated reports** — the retry path delivers a report twice;
* **NaN bursts** — a subset of one machine's metrics turn non-finite for
  several consecutive epochs (a wedged collector);
* **counter resets** — cumulative counters wrap to zero mid-epoch;
* **stuck-at values** — an agent keeps reporting a frozen sample vector.

Every decision is drawn from one seeded generator in a fixed order, so two
injectors with equal configs produce bit-identical fault schedules and
perturbed streams — tests and benchmarks replay chaos exactly.  Injected
faults are logged in :attr:`ChaosInjector.events` for assertions and
postmortems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Tuple

import numpy as np


@dataclass(frozen=True)
class ChaosConfig:
    """Per-epoch, per-machine fault probabilities and durations."""

    dropout: float = 0.0
    delay: float = 0.0
    duplicate: float = 0.0
    nan_burst: float = 0.0
    nan_burst_metrics: int = 3
    nan_burst_epochs: int = 2
    counter_reset: float = 0.0
    counter_reset_metrics: int = 1
    stuck: float = 0.0
    stuck_epochs: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("dropout", "delay", "duplicate", "nan_burst",
                     "counter_reset", "stuck"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")
        if self.nan_burst_metrics < 1 or self.counter_reset_metrics < 1:
            raise ValueError("fault metric counts must be >= 1")
        if self.nan_burst_epochs < 1 or self.stuck_epochs < 1:
            raise ValueError("fault durations must be >= 1")


@dataclass(frozen=True)
class ChaosEvent:
    """One injected fault, for the determinism log."""

    epoch: int
    machine: int
    kind: str  # dropout | delay | duplicate | nan-burst | counter-reset | stuck
    metrics: Tuple[int, ...] = ()


class ChaosInjector:
    """Injects faults into a fleet sample stream, deterministically.

    Two views of the same fault schedule are offered: :meth:`perturb`
    transforms an epoch's fleet matrix in place-of (silent machines become
    all-NaN rows; delayed reports surface as the *previous* epoch's stale
    values; duplicates are invisible at matrix granularity), while
    :meth:`deliveries` yields ``(machine, values)`` report tuples where
    drops vanish, delayed reports land an epoch late, and duplicates
    appear twice — the form an :class:`~repro.telemetry.collector.EpochAggregator`
    consumes.  Epochs must be presented in order.
    """

    def __init__(self, config: ChaosConfig, n_machines: int, n_metrics: int):
        if n_machines < 1 or n_metrics < 1:
            raise ValueError("need at least one machine and metric")
        self.config = config
        self.n_machines = n_machines
        self.n_metrics = n_metrics
        self.events: List[ChaosEvent] = []
        self._rng = np.random.default_rng(config.seed)
        self._delayed: Dict[int, np.ndarray] = {}  # machine -> buffered report
        self._nan_until: Dict[int, Tuple[int, Tuple[int, ...]]] = {}
        self._stuck_until: Dict[int, Tuple[int, np.ndarray]] = {}

    # -- fault schedule ----------------------------------------------------

    def _pick_metrics(self, count: int) -> Tuple[int, ...]:
        count = min(count, self.n_metrics)
        picked = self._rng.choice(self.n_metrics, size=count, replace=False)
        return tuple(int(m) for m in np.sort(picked))

    def _plan_epoch(
        self, epoch: int, samples: np.ndarray
    ) -> List[Tuple[int, str, np.ndarray]]:
        """Decide each machine's fate this epoch.

        Returns ``(machine, fate, values)`` with fate one of ``deliver``,
        ``drop``, ``delay`` or ``duplicate``; ``values`` already carry the
        value-level faults (bursts, resets, stuck-at).
        """
        cfg = self.config
        samples = np.asarray(samples, dtype=float)
        if samples.shape != (self.n_machines, self.n_metrics):
            raise ValueError(
                f"expected {(self.n_machines, self.n_metrics)} samples, "
                f"got {samples.shape}"
            )
        # One fixed-size draw per machine keeps the random stream aligned
        # regardless of which faults fire.
        draws = self._rng.random((self.n_machines, 6))
        plan: List[Tuple[int, str, np.ndarray]] = []
        for m in range(self.n_machines):
            values = samples[m].copy()

            # Value-level faults first (they ride along however the report
            # is delivered).
            if m in self._stuck_until:
                until, frozen = self._stuck_until[m]
                values = frozen.copy()
                if epoch >= until:
                    del self._stuck_until[m]
            elif cfg.stuck and draws[m, 5] < cfg.stuck:
                self._stuck_until[m] = (epoch + cfg.stuck_epochs - 1, values.copy())
                self.events.append(ChaosEvent(epoch, m, "stuck"))

            if m in self._nan_until:
                until, metrics = self._nan_until[m]
                values[list(metrics)] = np.nan
                if epoch >= until:
                    del self._nan_until[m]
            elif cfg.nan_burst and draws[m, 3] < cfg.nan_burst:
                metrics = self._pick_metrics(cfg.nan_burst_metrics)
                self._nan_until[m] = (epoch + cfg.nan_burst_epochs - 1, metrics)
                values[list(metrics)] = np.nan
                self.events.append(ChaosEvent(epoch, m, "nan-burst", metrics))

            if cfg.counter_reset and draws[m, 4] < cfg.counter_reset:
                metrics = self._pick_metrics(cfg.counter_reset_metrics)
                values[list(metrics)] = 0.0
                self.events.append(
                    ChaosEvent(epoch, m, "counter-reset", metrics)
                )

            # Delivery-level faults (mutually exclusive, in priority order).
            if cfg.dropout and draws[m, 0] < cfg.dropout:
                self.events.append(ChaosEvent(epoch, m, "dropout"))
                plan.append((m, "drop", values))
            elif cfg.delay and draws[m, 1] < cfg.delay:
                self.events.append(ChaosEvent(epoch, m, "delay"))
                plan.append((m, "delay", values))
            elif cfg.duplicate and draws[m, 2] < cfg.duplicate:
                self.events.append(ChaosEvent(epoch, m, "duplicate"))
                plan.append((m, "duplicate", values))
            else:
                plan.append((m, "deliver", values))
        return plan

    # -- matrix view -------------------------------------------------------

    def perturb(self, epoch: int, samples: np.ndarray) -> np.ndarray:
        """Fleet-matrix view of one chaotic epoch.

        Dropped and freshly-delayed machines become all-NaN rows; a report
        delayed from the previous epoch replaces the machine's current row
        with the stale values (what an aggregator that keys reports by
        arrival epoch would see).
        """
        out = np.full((self.n_machines, self.n_metrics), np.nan)
        arrived_late = dict(self._delayed)
        self._delayed.clear()
        for m, fate, values in self._plan_epoch(epoch, samples):
            if fate == "drop":
                continue
            if fate == "delay":
                self._delayed[m] = values
                continue
            out[m] = values  # deliver and duplicate look alike in a matrix
        for m, stale in arrived_late.items():
            out[m] = stale
        return out

    def deliveries(
        self, epoch: int, samples: np.ndarray
    ) -> List[Tuple[int, np.ndarray]]:
        """Report-stream view: ``(machine, values)`` tuples as delivered."""
        out: List[Tuple[int, np.ndarray]] = [
            (m, stale) for m, stale in sorted(self._delayed.items())
        ]
        self._delayed.clear()
        for m, fate, values in self._plan_epoch(epoch, samples):
            if fate == "drop":
                continue
            if fate == "delay":
                self._delayed[m] = values
                continue
            out.append((m, values))
            if fate == "duplicate":
                out.append((m, values.copy()))
        return out

    def wrap(
        self, stream: Iterable[np.ndarray]
    ) -> Iterator[np.ndarray]:
        """Perturb a whole stream of per-epoch fleet matrices."""
        for epoch, samples in enumerate(stream):
            yield self.perturb(epoch, samples)


#: Shard fates returned by :meth:`ShardChaosInjector.fate`.
SHARD_OK = "ok"
SHARD_KILL = "kill"
SHARD_STRAGGLE = "straggle"


@dataclass(frozen=True)
class ShardChaosConfig:
    """Per-epoch, per-shard fault probabilities for the fleet tier.

    ``kill`` is the probability that a shard's worker process dies at
    epoch close (the coordinator must respawn it); ``straggle`` delays a
    shard's partial by ``straggle_seconds`` — longer than the
    coordinator's close deadline, that shard misses the epoch and the
    close is degraded instead of hung.
    """

    kill: float = 0.0
    straggle: float = 0.0
    straggle_seconds: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("kill", "straggle"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")
        if self.kill + self.straggle > 1.0:
            raise ValueError("kill + straggle must not exceed 1")
        if self.straggle_seconds < 0:
            raise ValueError("straggle_seconds must be non-negative")


class ShardChaosInjector:
    """Deterministic shard-level fault schedule for :mod:`repro.fleet`.

    :meth:`fate` is a pure function of ``(seed, epoch, shard)``: the
    coordinator ships the *config* to each worker process and both sides
    (worker deciding whether to die, test asserting what should have
    happened) reconstruct the identical schedule without sharing state —
    the same replayability contract as :class:`ChaosInjector`, but with
    no in-process event log, since a killed worker cannot report one.
    """

    def __init__(self, config: ShardChaosConfig, n_shards: int):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self.config = config
        self.n_shards = n_shards

    def fate(self, epoch: int, shard: int) -> str:
        """``"ok"``, ``"kill"``, or ``"straggle"`` for one (epoch, shard)."""
        if not 0 <= shard < self.n_shards:
            raise ValueError(f"shard {shard} outside [0, {self.n_shards})")
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        cfg = self.config
        if cfg.kill == 0.0 and cfg.straggle == 0.0:
            return SHARD_OK
        r = np.random.default_rng([cfg.seed, epoch, shard]).random()
        if r < cfg.kill:
            return SHARD_KILL
        if r < cfg.kill + cfg.straggle:
            return SHARD_STRAGGLE
        return SHARD_OK

    def schedule(self, n_epochs: int) -> List[ChaosEvent]:
        """The full fault schedule for the first ``n_epochs`` epochs.

        Returned as :class:`ChaosEvent` records with the shard id in the
        ``machine`` slot, for assertions and postmortems.
        """
        events: List[ChaosEvent] = []
        for epoch in range(n_epochs):
            for shard in range(self.n_shards):
                fate = self.fate(epoch, shard)
                if fate != SHARD_OK:
                    events.append(
                        ChaosEvent(epoch, shard, f"shard-{fate}")
                    )
        return events


@dataclass(frozen=True)
class ServingChaosConfig:
    """Fault probabilities for the ingestion front door (:mod:`repro.serving`).

    Four serving-specific failure modes, each independently seeded off the
    shared ``seed`` so schedules replay exactly:

    * ``malformed_frame`` — the load generator corrupts a wire frame
      (truncated JSON, binary garbage, wrong types) before sending it;
    * ``slow_loris`` — a client opens a connection, sends a partial frame,
      and stalls, holding the socket until the server's idle timeout;
    * ``disk_full`` — a journal append fails with ``ENOSPC`` before any
      byte is written (the ack must not happen, the journal must stay
      consistent);
    * ``torn_write`` — a journal append is cut short mid-record and the
      process dies (the classic pulled-plug tail; replay must stop at the
      last intact record);
    * ``tenant_crash`` — the tenant engine raises mid-apply (exercises
      the supervisor's restart/backoff/quarantine path).

    Replication failure modes (PR 7), drawn per replicated batch:

    * ``partition`` — the standby's replication link is severed from the
      standby side (network partition; the subscription resumes from the
      acked cursors after reconnect backoff);
    * ``link_drop`` — the primary's hub drops the subscriber connection
      mid-stream (half-open link / LB reset seen from the other side);
    * ``delayed_ack`` — the standby applies a batch but suppresses the
      ack round, inflating observed replication lag and exercising the
      primary's lag accounting + dead-subscriber reaping threshold.
    """

    malformed_frame: float = 0.0
    slow_loris: float = 0.0
    disk_full: float = 0.0
    torn_write: float = 0.0
    tenant_crash: float = 0.0
    partition: float = 0.0
    link_drop: float = 0.0
    delayed_ack: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("malformed_frame", "slow_loris", "disk_full",
                     "torn_write", "tenant_crash", "partition",
                     "link_drop", "delayed_ack"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")


class InjectedTenantCrash(RuntimeError):
    """A chaos-injected tenant-engine crash (not a real bug)."""


class ServingChaosInjector:
    """Deterministic serving-path fault schedule.

    Every decision is a pure function of ``(seed, fault kind, event
    index)`` — :meth:`fires` with the same arguments always answers the
    same — so a load generator and the assertions checking its damage
    reconstruct identical schedules without sharing state, the same
    contract as :class:`ShardChaosInjector`.  Per-kind counters are kept
    for the common sequential case (:meth:`next_index`), and injected
    faults are logged in :attr:`events` with the event index in the
    ``machine`` slot.
    """

    #: Corruption styles cycled through by :meth:`corrupt_frame`.
    _CORRUPTIONS = ("truncate", "binary", "not-json", "wrong-type",
                    "empty", "huge")

    def __init__(self, config: ServingChaosConfig):
        self.config = config
        self.events: List[ChaosEvent] = []
        self._counters: Dict[str, int] = {}

    def next_index(self, kind: str) -> int:
        """The next sequential event index for one fault kind."""
        n = self._counters.get(kind, 0)
        self._counters[kind] = n + 1
        return n

    def _rng(self, kind: str, index: int) -> np.random.Generator:
        # New kinds are appended so existing kinds keep their exact
        # historical random streams (schedule stability across PRs).
        kinds = ("malformed_frame", "slow_loris", "disk_full",
                 "torn_write", "tenant_crash", "partition",
                 "link_drop", "delayed_ack")
        return np.random.default_rng(
            [self.config.seed, kinds.index(kind), index]
        )

    def fires(self, kind: str, index: int) -> bool:
        """Does fault ``kind`` fire at event ``index``?  Pure function."""
        p = getattr(self.config, kind)
        if p == 0.0:
            return False
        fired = bool(self._rng(kind, index).random() < p)
        if fired:
            self.events.append(ChaosEvent(0, index, kind))
        return fired

    def corrupt_frame(self, frame: bytes, index: int) -> bytes:
        """Deterministically damage one wire frame.

        The corruption style cycles with the event index so a sweep hits
        truncated JSON, binary garbage, non-object JSON, wrong field
        types, empty lines, and oversized frames.
        """
        style = self._CORRUPTIONS[index % len(self._CORRUPTIONS)]
        rng = self._rng("malformed_frame", index)
        body = frame.rstrip(b"\n")
        if style == "truncate":
            cut = max(1, int(rng.integers(1, max(len(body), 2))))
            damaged = body[:cut]
        elif style == "binary":
            damaged = bytes(rng.integers(128, 256, size=32, dtype=np.uint8))
        elif style == "not-json":
            damaged = b"[1, 2, 3]"
        elif style == "wrong-type":
            damaged = b'{"op": 42, "tenant": null}'
        elif style == "empty":
            damaged = b""
        else:  # huge
            damaged = b'{"op": "' + b"x" * 4096 + b'"}'
        return damaged + b"\n"

    def journal_hook(self, tenant: str):
        """A ``write_hook`` for :class:`repro.serving.journal.WriteAheadJournal`.

        Raises ``OSError(ENOSPC)`` on disk-full events and returns a
        truncated byte prefix on torn-write events (the journal writes
        exactly those bytes, then surfaces a torn-write error — the
        in-process stand-in for dying mid-``write``).
        """
        import errno

        def hook(frame: bytes):
            i = self.next_index("disk_full")
            if self.fires("disk_full", i):
                raise OSError(errno.ENOSPC, f"chaos: disk full ({tenant})")
            j = self.next_index("torn_write")
            if self.fires("torn_write", j):
                rng = self._rng("torn_write", j)
                cut = int(rng.integers(1, max(len(frame), 2)))
                return frame[:cut]
            return None

        return hook

    def tenant_fault_hook(self, tenant: str):
        """A per-record fault hook raising :class:`InjectedTenantCrash`."""

        def hook(record: dict) -> None:
            i = self.next_index("tenant_crash")
            if self.fires("tenant_crash", i):
                raise InjectedTenantCrash(
                    f"chaos: injected crash in tenant {tenant!r} "
                    f"(event {i})"
                )

        return hook


__all__ = [
    "ChaosConfig",
    "ChaosEvent",
    "ChaosInjector",
    "InjectedTenantCrash",
    "SHARD_KILL",
    "SHARD_OK",
    "SHARD_STRAGGLE",
    "ServingChaosConfig",
    "ServingChaosInjector",
    "ShardChaosConfig",
    "ShardChaosInjector",
]
