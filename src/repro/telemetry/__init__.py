"""Telemetry substrate: epochs, quantile summaries, and rolling stores.

This package provides the monitoring plumbing the fingerprinting method sits
on: a 15-minute epoch timebase, exact datacenter-wide quantile computation,
streaming quantile sketches (Greenwald-Khanna and P-square) for deployments
where exact computation is too expensive, and a rolling store of quantile
history used to maintain hot/cold thresholds online.
"""

from repro.telemetry.epochs import (
    EpochClock,
    epoch_of_minute,
    epochs_per_day,
    minutes_of_epoch,
)
from repro.telemetry.quantiles import (
    QuantileSummarizer,
    empirical_quantiles,
    summarize_epoch,
)
from repro.telemetry.chaos import (
    ChaosConfig,
    ChaosEvent,
    ChaosInjector,
    ShardChaosConfig,
    ShardChaosInjector,
)
from repro.telemetry.collector import (
    CollectionPipeline,
    EpochAggregator,
    EpochQuality,
    EpochSummary,
    MachineAgent,
)
from repro.telemetry.reliability import (
    AgentHealthTracker,
    QuorumPolicy,
    RetryPolicy,
)
from repro.telemetry.sketches import GKQuantileSketch, P2QuantileEstimator
from repro.telemetry.store import QuantileStore
from repro.telemetry.validation import (
    ValidationIssue,
    ValidationReport,
    validate_epoch_summary,
    validate_history,
)

__all__ = [
    "EpochClock",
    "epoch_of_minute",
    "epochs_per_day",
    "minutes_of_epoch",
    "QuantileSummarizer",
    "empirical_quantiles",
    "summarize_epoch",
    "GKQuantileSketch",
    "P2QuantileEstimator",
    "QuantileStore",
    "AgentHealthTracker",
    "ChaosConfig",
    "ChaosEvent",
    "ChaosInjector",
    "CollectionPipeline",
    "EpochAggregator",
    "EpochQuality",
    "EpochSummary",
    "MachineAgent",
    "QuorumPolicy",
    "RetryPolicy",
    "ShardChaosConfig",
    "ShardChaosInjector",
    "ValidationIssue",
    "ValidationReport",
    "validate_epoch_summary",
    "validate_history",
]
