"""Datacenter-wide quantile summaries of per-machine metrics.

The fingerprinting method's first step (Section 3.2 of the paper) replaces
per-machine metric values with a handful of quantiles computed across all
machines in the datacenter, so the representation scales with the number of
metrics rather than the number of machines.  This module provides the exact
computation used when the fleet is small enough to see every sample (the
paper computed quantiles exactly for several hundred machines); streaming
sketches for larger fleets live in :mod:`repro.telemetry.sketches`.

The empirical quantile convention follows the paper: the p-th quantile of N
ordered samples is the ``ceil(N * p)``-th order statistic (1-based), i.e. the
smallest observed value x such that at least a fraction p of samples are <= x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.config import QuantileConfig


def empirical_quantiles(values: np.ndarray, quantiles: Sequence[float]) -> np.ndarray:
    """Exact empirical quantiles of a 1-D sample.

    Uses the order-statistic definition from Section 3.2 of the paper
    (``N*p``-th ordered value) rather than interpolation, so results are
    always actual observed values.  NaN samples (machines that failed to
    report) are dropped; an all-NaN or empty sample raises ValueError.
    """
    arr = np.asarray(values, dtype=float).ravel()
    arr = arr[~np.isnan(arr)]
    if arr.size == 0:
        raise ValueError("cannot take quantiles of an empty sample")
    arr = np.sort(arr)
    out = np.empty(len(quantiles), dtype=float)
    n = arr.size
    for i, q in enumerate(quantiles):
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        # ceil(n*q) as a 1-based rank, clipped to [1, n].
        rank = min(max(int(np.ceil(n * q)), 1), n)
        out[i] = arr[rank - 1]
    return out


def quantile_ranks(n: int, quantiles: Sequence[float]) -> np.ndarray:
    """0-based order-statistic indices for the paper's quantile rule.

    The p-th quantile of ``n`` ordered samples is the ``ceil(n * p)``-th
    order statistic (1-based), clipped to ``[1, n]``.  Shared by the exact
    aggregation paths (:func:`summarize_epoch`, the collector, and the
    fleet coordinator's partial merge) so they are bit-identical by
    construction.
    """
    if n < 1:
        raise ValueError("need at least one sample")
    qs = np.asarray(quantiles, dtype=float)
    return np.clip(np.ceil(n * qs).astype(int), 1, n) - 1


def summarize_epoch(
    samples: np.ndarray, quantiles: Sequence[float]
) -> np.ndarray:
    """Summarize one epoch of per-machine samples into quantiles per metric.

    Parameters
    ----------
    samples:
        Array of shape ``(n_machines, n_metrics)`` with this epoch's values.
    quantiles:
        Quantile levels in [0, 1].

    Returns
    -------
    Array of shape ``(n_metrics, n_quantiles)``.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 2:
        raise ValueError("samples must be (n_machines, n_metrics)")
    n_machines, n_metrics = samples.shape
    if n_machines == 0:
        raise ValueError("need at least one machine")
    ordered = np.sort(samples, axis=0)
    ranks = quantile_ranks(n_machines, quantiles)
    # (n_metrics, n_quantiles)
    return ordered[ranks, :].T.copy()


def summarize_chunk(
    samples: np.ndarray, quantiles: Sequence[float]
) -> np.ndarray:
    """Vectorized :func:`summarize_epoch` over a chunk of epochs.

    Parameters
    ----------
    samples:
        Array of shape ``(n_epochs, n_machines, n_metrics)``.

    Returns
    -------
    Array of shape ``(n_epochs, n_metrics, n_quantiles)``.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 3:
        raise ValueError("samples must be (n_epochs, n_machines, n_metrics)")
    n_epochs, n_machines, _ = samples.shape
    if n_machines == 0:
        raise ValueError("need at least one machine")
    ordered = np.sort(samples, axis=1)
    ranks = quantile_ranks(n_machines, quantiles)
    # ordered[:, ranks, :] -> (n_epochs, n_quantiles, n_metrics)
    return np.transpose(ordered[:, ranks, :], (0, 2, 1)).copy()


@dataclass
class QuantileSummarizer:
    """Stateless helper bound to one :class:`QuantileConfig`.

    Wraps the module functions so callers carry a single object instead of
    threading quantile levels through every call site.
    """

    config: QuantileConfig = QuantileConfig()

    def metric(self, values: np.ndarray) -> np.ndarray:
        """Quantiles of one metric's per-machine samples for one epoch."""
        return empirical_quantiles(values, self.config.quantiles)

    def epoch(self, samples: np.ndarray) -> np.ndarray:
        """Quantiles of all metrics for one epoch."""
        return summarize_epoch(samples, self.config.quantiles)

    def chunk(self, samples: np.ndarray) -> np.ndarray:
        """Quantiles of all metrics for a chunk of epochs."""
        return summarize_chunk(samples, self.config.quantiles)


__all__ = [
    "empirical_quantiles",
    "quantile_ranks",
    "summarize_epoch",
    "summarize_chunk",
    "QuantileSummarizer",
]
