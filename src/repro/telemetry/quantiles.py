"""Datacenter-wide quantile summaries of per-machine metrics.

The fingerprinting method's first step (Section 3.2 of the paper) replaces
per-machine metric values with a handful of quantiles computed across all
machines in the datacenter, so the representation scales with the number of
metrics rather than the number of machines.  This module provides the exact
computation used when the fleet is small enough to see every sample (the
paper computed quantiles exactly for several hundred machines); streaming
sketches for larger fleets live in :mod:`repro.telemetry.sketches`.

The empirical quantile convention follows the paper: the p-th quantile of N
ordered samples is the ``ceil(N * p)``-th order statistic (1-based), i.e. the
smallest observed value x such that at least a fraction p of samples are <= x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.config import QuantileConfig


def empirical_quantiles(values: np.ndarray, quantiles: Sequence[float]) -> np.ndarray:
    """Exact empirical quantiles of a 1-D sample.

    Uses the order-statistic definition from Section 3.2 of the paper
    (``N*p``-th ordered value) rather than interpolation, so results are
    always actual observed values.  NaN samples (machines that failed to
    report) are dropped; an all-NaN or empty sample raises ValueError.
    """
    arr = np.asarray(values, dtype=float).ravel()
    arr = arr[~np.isnan(arr)]
    if arr.size == 0:
        raise ValueError("cannot take quantiles of an empty sample")
    arr = np.sort(arr)
    out = np.empty(len(quantiles), dtype=float)
    n = arr.size
    for i, q in enumerate(quantiles):
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        # ceil(n*q) as a 1-based rank, clipped to [1, n].
        rank = min(max(int(np.ceil(n * q)), 1), n)
        out[i] = arr[rank - 1]
    return out


def quantile_ranks(n: int, quantiles: Sequence[float]) -> np.ndarray:
    """0-based order-statistic indices for the paper's quantile rule.

    The p-th quantile of ``n`` ordered samples is the ``ceil(n * p)``-th
    order statistic (1-based), clipped to ``[1, n]``.  Shared by the exact
    aggregation paths (:func:`summarize_epoch`, the collector, and the
    fleet coordinator's partial merge) so they are bit-identical by
    construction.
    """
    if n < 1:
        raise ValueError("need at least one sample")
    qs = np.asarray(quantiles, dtype=float)
    return np.clip(np.ceil(n * qs).astype(int), 1, n) - 1


def summarize_epoch(
    samples: np.ndarray, quantiles: Sequence[float]
) -> np.ndarray:
    """Summarize one epoch of per-machine samples into quantiles per metric.

    Parameters
    ----------
    samples:
        Array of shape ``(n_machines, n_metrics)`` with this epoch's values.
    quantiles:
        Quantile levels in [0, 1].

    Returns
    -------
    Array of shape ``(n_metrics, n_quantiles)``.  The result owns a fresh
    ``(n_quantiles, n_metrics)`` gather and is returned as its transpose
    view — the big sorted matrix is never retained.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 2:
        raise ValueError("samples must be (n_machines, n_metrics)")
    n_machines, n_metrics = samples.shape
    if n_machines == 0:
        raise ValueError("need at least one machine")
    ordered = np.sort(samples, axis=0)
    ranks = quantile_ranks(n_machines, quantiles)
    # Advanced indexing already yields a fresh (n_quantiles, n_metrics)
    # array; .T is a constant-time view of it, so no copy is needed.
    return ordered[ranks, :].T


def masked_quantiles(
    samples: np.ndarray,
    quantiles: Sequence[float],
    counts: "np.ndarray | None" = None,
    overwrite: bool = False,
) -> np.ndarray:
    """NaN-aware per-metric quantiles of one epoch in single numpy passes.

    Each metric's quantiles are taken over its *observed* (non-NaN)
    samples only, using the same ``ceil(n*p)`` order-statistic rule as
    :func:`summarize_epoch` — and coinciding with it bit-for-bit when a
    metric has no gaps.  Metrics with zero observations yield NaN.

    One sort (NaN sorts last) plus one vectorized rank gather replaces
    the collector's historical per-quantile Python loop.  Callers must
    pre-mask ``±inf`` to NaN (as every ingestion path does): infinities
    are not counted as observations but would otherwise occupy sort
    slots ahead of the NaN tail.

    Parameters
    ----------
    samples:
        Array of shape ``(n_machines, n_metrics)``, NaN marking gaps.
    counts:
        Optional precomputed finite observations per metric (the epoch
        block tracks them incrementally on ingest); skips the
        ``isfinite`` pass.  Must equal what that pass would count.
    overwrite:
        Sort ``samples`` in place instead of copying — for callers that
        discard the buffer right after (the block is reset per epoch).
        Requires a writable float64 array.

    Returns
    -------
    Array of shape ``(n_metrics, n_quantiles)``.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 2:
        raise ValueError("samples must be (n_machines, n_metrics)")
    n_metrics = samples.shape[1]
    qs = np.asarray(quantiles, dtype=float)
    if counts is None:
        counts = np.isfinite(samples).sum(axis=0)
    if overwrite:
        samples.sort(axis=0)  # NaNs sort to the bottom rows
        ordered = samples
    else:
        ordered = np.sort(samples, axis=0)
    # ceil(count*p) as 1-based ranks, clipped to [1, count] per metric —
    # elementwise identical to quantile_ranks(count, quantiles).
    ranks = (
        np.clip(
            np.ceil(counts[:, None] * qs[None, :]).astype(int),
            1,
            np.maximum(counts, 1)[:, None],
        )
        - 1
    )
    out = ordered[ranks, np.arange(n_metrics)[:, None]]
    out[counts == 0] = np.nan
    return out


def summarize_chunk(
    samples: np.ndarray, quantiles: Sequence[float]
) -> np.ndarray:
    """Vectorized :func:`summarize_epoch` over a chunk of epochs.

    Parameters
    ----------
    samples:
        Array of shape ``(n_epochs, n_machines, n_metrics)``.

    Returns
    -------
    Array of shape ``(n_epochs, n_metrics, n_quantiles)``.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 3:
        raise ValueError("samples must be (n_epochs, n_machines, n_metrics)")
    n_epochs, n_machines, _ = samples.shape
    if n_machines == 0:
        raise ValueError("need at least one machine")
    ordered = np.sort(samples, axis=1)
    ranks = quantile_ranks(n_machines, quantiles)
    # ordered[:, ranks, :] is a fresh (n_epochs, n_quantiles, n_metrics)
    # gather; transpose is a view of it, so no copy is needed.
    return np.transpose(ordered[:, ranks, :], (0, 2, 1))


@dataclass
class QuantileSummarizer:
    """Stateless helper bound to one :class:`QuantileConfig`.

    Wraps the module functions so callers carry a single object instead of
    threading quantile levels through every call site.
    """

    config: QuantileConfig = QuantileConfig()

    def metric(self, values: np.ndarray) -> np.ndarray:
        """Quantiles of one metric's per-machine samples for one epoch."""
        return empirical_quantiles(values, self.config.quantiles)

    def epoch(self, samples: np.ndarray) -> np.ndarray:
        """Quantiles of all metrics for one epoch."""
        return summarize_epoch(samples, self.config.quantiles)

    def chunk(self, samples: np.ndarray) -> np.ndarray:
        """Quantiles of all metrics for a chunk of epochs."""
        return summarize_chunk(samples, self.config.quantiles)


__all__ = [
    "empirical_quantiles",
    "masked_quantiles",
    "quantile_ranks",
    "summarize_epoch",
    "summarize_chunk",
    "QuantileSummarizer",
]
