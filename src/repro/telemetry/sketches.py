"""Streaming quantile estimators.

Section 3.2 of the paper notes that as the datacenter grows, quantiles can be
estimated with bounded error from a stream (citing Guha & McGregor).  This
module provides two classic online estimators so the summarization step keeps
scaling when exact computation over all machines becomes impractical:

* :class:`GKQuantileSketch` -- the Greenwald-Khanna epsilon-approximate
  sketch, giving rank error at most ``eps * n`` for any quantile with
  O(1/eps * log(eps * n)) space.
* :class:`P2QuantileEstimator` -- the P-square algorithm of Jain & Chlamtac,
  tracking a single quantile in O(1) space with parabolic marker updates.

Both are exercised by the scaling benchmark (experiment E11 in DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence


@dataclass
class _GKTuple:
    value: float
    g: int  # rank gap to the previous tuple's minimum rank
    delta: int  # uncertainty of this tuple's rank


class GKQuantileSketch:
    """Greenwald-Khanna epsilon-approximate quantile sketch.

    Supports :meth:`insert` of single observations, :meth:`query` of any
    quantile with guaranteed rank error ``<= eps * n``, bulk construction
    from sorted data (:meth:`from_sorted`), and :meth:`merge` of two
    sketches summarizing disjoint streams — the primitive the sharded
    fleet aggregator (:mod:`repro.fleet`) is built on.
    """

    def __init__(self, eps: float = 0.01):
        if not 0.0 < eps < 1.0:
            raise ValueError("eps must lie in (0, 1)")
        self.eps = eps
        self._tuples: List[_GKTuple] = []
        self._n = 0
        # Compress every ~1/(2 eps) inserts, the standard schedule.
        self._compress_interval = max(int(1.0 / (2.0 * eps)), 1)
        self._since_compress = 0

    def __len__(self) -> int:
        return self._n

    @property
    def size(self) -> int:
        """Number of stored tuples (the sketch's space usage)."""
        return len(self._tuples)

    def insert(self, value: float) -> None:
        """Add one observation to the sketch."""
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot insert NaN")
        tuples = self._tuples
        # Find insertion point (first tuple with larger value).
        lo, hi = 0, len(tuples)
        while lo < hi:
            mid = (lo + hi) // 2
            if tuples[mid].value < value:
                lo = mid + 1
            else:
                hi = mid
        idx = lo
        if idx == 0 or idx == len(tuples):
            delta = 0  # new minimum or maximum is known exactly
        else:
            delta = max(int(math.floor(2.0 * self.eps * self._n)) - 1, 0)
        tuples.insert(idx, _GKTuple(value, 1, delta))
        self._n += 1
        self._since_compress += 1
        if self._since_compress >= self._compress_interval:
            self._compress()
            self._since_compress = 0

    def extend(self, values) -> None:
        for v in values:
            self.insert(v)

    @classmethod
    def from_sorted(
        cls, values: Sequence[float], eps: float = 0.01
    ) -> "GKQuantileSketch":
        """Build a sketch from an already-sorted sample in O(1/eps) tuples.

        Keeps the order statistics at ranks ``1, 1+s, 1+2s, ..., n`` with
        ``s = max(floor(2*eps*n), 1)``, each with ``delta = 0`` (their
        ranks in the input are known exactly).  Every tuple then satisfies
        ``g + delta <= 2*eps*n``, the invariant :meth:`query` relies on,
        so the result is a valid eps-summary of the sample — built with a
        constant amount of Python work per *kept* tuple instead of per
        observation, which is what makes chunked shard folding fast.
        """
        sketch = cls(eps=eps)
        n = len(values)
        if n == 0:
            return sketch
        prev = -math.inf
        for v in values:
            v = float(v)
            if math.isnan(v):
                raise ValueError("cannot sketch NaN")
            if v < prev:
                raise ValueError("values must be sorted ascending")
            prev = v
        step = max(int(math.floor(2.0 * eps * n)), 1)
        ranks = list(range(1, n + 1, step))
        if ranks[-1] != n:
            ranks.append(n)
        tuples: List[_GKTuple] = []
        prev_rank = 0
        for rank in ranks:
            tuples.append(_GKTuple(float(values[rank - 1]), rank - prev_rank, 0))
            prev_rank = rank
        sketch._tuples = tuples
        sketch._n = n
        return sketch

    def merge(self, other: "GKQuantileSketch") -> "GKQuantileSketch":
        """Combine two sketches of disjoint streams into a new sketch.

        Tuples are interleaved in value order; a tuple keeps its ``g`` and
        widens its ``delta`` by the rank uncertainty contributed by the
        *other* sketch at its position (``g + delta - 1`` of the other
        sketch's next-larger tuple).  Summing each tuple's worst case,
        ``max(g + delta)`` of the result is at most ``2*eps1*n1 +
        2*eps2*n2 <= 2*(eps1 + eps2)*(n1 + n2)``, so the merged sketch
        answers any quantile with rank error at most ``(eps1 + eps2) *
        (n1 + n2)`` — the combined-error bound quoted in docs/fleet.md.
        (For equal epsilons the same sum shows the bound is in fact
        ``eps * n``, so repeated merging across shards does not degrade
        the guarantee.)

        The result's ``eps`` is ``max(eps1, eps2)``; both inputs are left
        untouched.
        """
        merged = GKQuantileSketch(eps=max(self.eps, other.eps))
        merged._n = self._n + other._n
        if self._n == 0:
            merged._tuples = [
                _GKTuple(t.value, t.g, t.delta) for t in other._tuples
            ]
            return merged
        if other._n == 0:
            merged._tuples = [
                _GKTuple(t.value, t.g, t.delta) for t in self._tuples
            ]
            return merged
        a, b = self._tuples, other._tuples
        out: List[_GKTuple] = []
        i = j = 0
        while i < len(a) or j < len(b):
            if j >= len(b) or (i < len(a) and a[i].value <= b[j].value):
                t, peer, k = a[i], b, j
                i += 1
            else:
                t, peer, k = b[j], a, i
                j += 1
            # Uncertainty added by the other stream: its elements below t
            # number at least rmin(prev peer tuple) and at most
            # rmax(next peer tuple) - 1.
            if k < len(peer):
                extra = peer[k].g + peer[k].delta - 1
            else:
                extra = 0
            out.append(_GKTuple(t.value, t.g, t.delta + extra))
        merged._tuples = out
        merged._compress()
        return merged

    def _compress(self) -> None:
        """Merge adjacent tuples whose combined uncertainty stays in bound."""
        tuples = self._tuples
        if len(tuples) < 3:
            return
        threshold = math.floor(2.0 * self.eps * self._n)
        out: List[_GKTuple] = [tuples[0]]
        # Never merge into the last tuple's slot from the right; iterate and
        # greedily absorb tuples into their successor when allowed.
        for i in range(1, len(tuples)):
            cur = tuples[i]
            prev = out[-1]
            mergeable = (
                len(out) > 1  # keep the minimum exact
                and i < len(tuples)  # successor exists (cur absorbs prev)
                and prev.g + cur.g + cur.delta <= threshold
            )
            if mergeable:
                cur = _GKTuple(cur.value, prev.g + cur.g, cur.delta)
                out[-1] = cur
            else:
                out.append(cur)
        self._tuples = out

    def query(self, q: float) -> float:
        """Value whose rank is within ``eps * n`` of the q-th quantile."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must lie in [0, 1]")
        if self._n == 0:
            raise ValueError("sketch is empty")
        target = max(int(math.ceil(q * self._n)), 1)
        bound = math.floor(self.eps * self._n)
        r_min = 0
        for i, t in enumerate(self._tuples):
            r_min += t.g
            r_max = r_min + t.delta
            if r_max >= target - bound and r_min >= target - bound:
                return t.value
            if i + 1 < len(self._tuples):
                nxt = self._tuples[i + 1]
                if r_min + nxt.g + nxt.delta > target + bound:
                    return t.value
        return self._tuples[-1].value


class P2QuantileEstimator:
    """P-square single-quantile estimator (Jain & Chlamtac, 1985).

    Maintains five markers whose heights approximate the min, the target
    quantile and its half-way points, and the max; marker heights are
    adjusted with a piecewise-parabolic formula as observations arrive.
    Constant space, suitable for per-metric tracking on an aggregator node.
    """

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError("quantile must lie in (0, 1)")
        self.q = q
        self._initial: List[float] = []
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def insert(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot insert NaN")
        self._n += 1
        if len(self._initial) < 5:
            self._initial.append(value)
            if len(self._initial) == 5:
                self._initial.sort()
                self._heights = list(self._initial)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                q = self.q
                self._desired = [
                    1.0,
                    1.0 + 2.0 * q,
                    1.0 + 4.0 * q,
                    3.0 + 2.0 * q,
                    5.0,
                ]
            return

        h, pos = self._heights, self._positions
        if value < h[0]:
            h[0] = value
            k = 0
        elif value >= h[4]:
            h[4] = value
            k = 3
        else:
            k = 0
            while k < 3 and value >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            pos[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # Adjust interior markers.
        for i in range(1, 4):
            d = self._desired[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1.0) or (
                d <= -1.0 and pos[i - 1] - pos[i] < -1.0
            ):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, step)
                pos[i] += step

    def extend(self, values) -> None:
        for v in values:
            self.insert(v)

    def _parabolic(self, i: int, d: float) -> float:
        h, p = self._heights, self._positions
        return h[i] + d / (p[i + 1] - p[i - 1]) * (
            (p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
            + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        h, p = self._heights, self._positions
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (p[j] - p[i])

    def query(self) -> float:
        """Current estimate of the tracked quantile."""
        if self._n == 0:
            raise ValueError("estimator is empty")
        if len(self._initial) < 5:
            ordered = sorted(self._initial)
            rank = min(
                max(int(math.ceil(self.q * len(ordered))), 1), len(ordered)
            )
            return ordered[rank - 1]
        return self._heights[2]


__all__ = ["GKQuantileSketch", "P2QuantileEstimator"]
