"""Telemetry data-quality validation.

Fingerprints inherit whatever problems the telemetry has: a metric that
silently stops reporting reads as "cold", a stuck agent makes a machine
look healthy, a counter reset looks like a crisis.  This module provides
the checks a deployment runs on each epoch summary (and periodically on
the quantile history) before feeding the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.telemetry.epochs import EpochClock


@dataclass(frozen=True)
class ValidationIssue:
    """One data-quality finding."""

    severity: str  # "warn" or "error"
    code: str
    message: str
    metric_index: Optional[int] = None

    def __post_init__(self) -> None:
        if self.severity not in ("warn", "error"):
            raise ValueError("severity must be warn or error")


@dataclass
class ValidationReport:
    """All findings for one validation pass."""

    issues: List[ValidationIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(i.severity == "error" for i in self.issues)

    @property
    def errors(self) -> List[ValidationIssue]:
        return [i for i in self.issues if i.severity == "error"]

    @property
    def warnings(self) -> List[ValidationIssue]:
        return [i for i in self.issues if i.severity == "warn"]

    def add(self, severity: str, code: str, message: str,
            metric_index: Optional[int] = None) -> None:
        self.issues.append(
            ValidationIssue(severity, code, message, metric_index)
        )


def validate_epoch_summary(
    quantiles: np.ndarray,
    metric_names: Optional[Sequence[str]] = None,
) -> ValidationReport:
    """Checks on one epoch's ``(n_metrics, n_quantiles)`` summary.

    Errors: non-finite values, quantile inversion (q25 > q95).
    Warnings: all-zero metrics (often a dead collector).
    """
    q = np.asarray(quantiles, dtype=float)
    report = ValidationReport()
    if q.ndim != 2:
        report.add("error", "bad-shape",
                   f"expected 2-D summary, got shape {q.shape}")
        return report

    def name(m: int) -> str:
        if metric_names is not None and m < len(metric_names):
            return metric_names[m]
        return f"metric[{m}]"

    bad = ~np.isfinite(q)
    for m in np.flatnonzero(bad.any(axis=1)):
        report.add("error", "non-finite",
                   f"{name(m)} has non-finite quantiles", int(m))
    ordered = np.all(np.diff(q, axis=1) >= -1e-9, axis=1)
    for m in np.flatnonzero(~ordered & ~bad.any(axis=1)):
        report.add("error", "quantile-inversion",
                   f"{name(m)} quantiles are not non-decreasing", int(m))
    zero = np.all(q == 0.0, axis=1)
    for m in np.flatnonzero(zero):
        report.add("warn", "all-zero",
                   f"{name(m)} reports all-zero quantiles "
                   f"(dead collector?)", int(m))
    return report


def validate_history(
    history: np.ndarray,
    metric_names: Optional[Sequence[str]] = None,
    stuck_epochs: Optional[int] = None,
    clock: Optional[EpochClock] = None,
) -> ValidationReport:
    """Checks on a quantile history ``(n_epochs, n_metrics, n_quantiles)``.

    Warnings: metrics stuck at a constant value for ``stuck_epochs``
    consecutive epochs (frozen agent — their hot/cold thresholds collapse
    to a point and flag everything thereafter).  ``stuck_epochs`` defaults
    to one day of epochs under ``clock`` (the paper's 15-minute epochs
    when no clock is given).
    """
    if stuck_epochs is None:
        stuck_epochs = (clock if clock is not None else EpochClock()).per_day
    h = np.asarray(history, dtype=float)
    report = ValidationReport()
    if h.ndim != 3:
        report.add("error", "bad-shape",
                   f"expected 3-D history, got shape {h.shape}")
        return report
    if h.shape[0] < 2:
        return report

    def name(m: int) -> str:
        if metric_names is not None and m < len(metric_names):
            return metric_names[m]
        return f"metric[{m}]"

    window = min(stuck_epochs, h.shape[0])
    tail = h[-window:]
    constant = np.all(tail == tail[0], axis=0).all(axis=1)
    for m in np.flatnonzero(constant):
        report.add("warn", "stuck",
                   f"{name(m)} unchanged for the last {window} epochs",
                   int(m))
    if not np.all(np.isfinite(h)):
        report.add("error", "non-finite", "history has non-finite values")
    return report


__all__ = ["ValidationIssue", "ValidationReport", "validate_epoch_summary",
           "validate_history"]
