"""Telemetry collection pipeline: agents, aggregator, epoch summaries.

The paper's datacenter collects ~100 metrics per machine per 15-minute
epoch with off-the-shelf monitoring (HP OpenView, Ganglia).  This module
provides that plumbing for live deployments of the pipeline:

* :class:`MachineAgent` buffers one machine's samples for the current
  epoch (metrics may be sampled more often than the epoch length and are
  averaged, as in the paper's dataset);
* :class:`EpochAggregator` collects agent reports and reduces them to the
  datacenter-wide quantile summary — exactly, or with Greenwald-Khanna
  sketches when the fleet is too large to gather raw values.

The aggregator's output is the ``(n_metrics, n_quantiles)`` matrix the
fingerprinting pipeline consumes, so a live deployment swaps the simulator
for agents without touching anything downstream.

Degraded operation is first-class: machines in crisis are exactly the
machines whose telemetry fails, so agents drop-and-count non-finite
samples instead of raising (strict mode is available behind a flag),
the aggregator accepts partial fleets, and every epoch summary carries an
:class:`EpochQuality` record — fleet coverage, dropped samples, stale and
dead agents — that downstream consumers (the streaming monitor's quality
gate) use to decide how much to trust the epoch.  Quorum rules live in
:mod:`repro.telemetry.reliability` and apply identically to the exact and
sketch paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.columnar import EpochBlock
from repro.telemetry.quantiles import masked_quantiles, summarize_epoch
from repro.telemetry.reliability import AgentHealthTracker, QuorumPolicy
from repro.telemetry.sketches import GKQuantileSketch


class MachineAgent:
    """Buffers one machine's metric samples within an epoch.

    Non-finite samples (a crashing collector emits NaNs and garbage
    counters) are dropped and counted rather than raised by default;
    ``strict=True`` restores fail-fast behavior for development setups
    where any bad sample is a bug.
    """

    def __init__(self, machine_id: str, metric_names: Sequence[str],
                 strict: bool = False):
        if not metric_names:
            raise ValueError("need at least one metric")
        self.machine_id = machine_id
        self.metric_names = list(metric_names)
        self.strict = strict
        self._index = {m: i for i, m in enumerate(self.metric_names)}
        self._sums = np.zeros(len(self.metric_names))
        self._counts = np.zeros(len(self.metric_names), dtype=int)
        self._dropped = 0

    @property
    def dropped_samples(self) -> int:
        """Non-finite samples dropped since the last flush."""
        return self._dropped

    def record(self, metric: str, value: float) -> None:
        """Record one sample (metrics may be sampled sub-epoch)."""
        try:
            i = self._index[metric]
        except KeyError:
            raise KeyError(f"unknown metric {metric!r}") from None
        if not np.isfinite(value):
            if self.strict:
                raise ValueError(f"non-finite sample for {metric}")
            self._dropped += 1
            return
        self._sums[i] += value
        self._counts[i] += 1

    def record_all(self, values: Sequence[float]) -> None:
        """Record one sample for every metric at once.

        A partially-garbled vector keeps its finite entries: only the
        offending metrics are dropped (and counted), so one bad counter
        does not discard an otherwise healthy sample.
        """
        values = np.asarray(values, dtype=float)
        if values.shape != (len(self.metric_names),):
            raise ValueError("value count mismatch")
        finite = np.isfinite(values)
        if not finite.all():
            if self.strict:
                raise ValueError("non-finite sample")
            self._dropped += int((~finite).sum())
        self._sums[finite] += values[finite]
        self._counts[finite] += 1

    def flush(self) -> np.ndarray:
        """Epoch aggregate (mean per metric); unreported metrics are NaN."""
        with np.errstate(invalid="ignore"):
            out = np.where(
                self._counts > 0, self._sums / np.maximum(self._counts, 1),
                np.nan,
            )
        self._sums[:] = 0.0
        self._counts[:] = 0
        self._dropped = 0
        return out


@dataclass(frozen=True)
class EpochQuality:
    """How trustworthy one epoch's summary is.

    Downstream consumers gate on :attr:`coverage` (reporting fraction of
    the expected fleet) and :attr:`quorum_met`; the remaining counters
    exist for operator dashboards and postmortems.
    """

    epoch: int
    n_reporting: int
    fleet_size: Optional[int] = None  # None when the fleet is unknown
    dropped_samples: int = 0  # non-finite entries dropped fleet-wide
    n_stale_agents: int = 0
    n_dead_agents: int = 0
    quorum_met: bool = True

    @property
    def coverage(self) -> float:
        """Fraction of the expected fleet that reported this epoch."""
        if self.fleet_size is None or self.fleet_size <= 0:
            return 1.0 if self.n_reporting > 0 else 0.0
        return min(self.n_reporting / self.fleet_size, 1.0)


@dataclass
class EpochSummary:
    """One epoch's datacenter-wide summary."""

    epoch: int
    quantiles: np.ndarray  # (n_metrics, n_quantiles)
    n_machines_reporting: int
    quality: Optional[EpochQuality] = None


def _partial_quantiles(
    matrix: np.ndarray, quantiles: Sequence[float]
) -> np.ndarray:
    """Per-metric quantiles of a report matrix with NaN gaps.

    Matches :func:`repro.telemetry.quantiles.summarize_epoch` exactly on a
    fully-finite matrix; metrics where some machines did not report use
    the order statistics of the machines that did, and all-NaN metrics
    come back NaN (mirroring the sketch path, which only ever sees finite
    values).
    """
    ordered = np.sort(matrix, axis=0)  # NaNs sort last
    counts = np.isfinite(matrix).sum(axis=0)
    n_metrics = matrix.shape[1]
    out = np.empty((n_metrics, len(quantiles)), dtype=float)
    cols = np.arange(n_metrics)
    for j, p in enumerate(quantiles):
        ranks = np.clip(np.ceil(counts * p).astype(int), 1,
                        np.maximum(counts, 1)) - 1
        out[:, j] = ordered[ranks, cols]
    out[counts == 0] = np.nan
    return out


class EpochAggregator:
    """Reduces agent reports to datacenter-wide metric quantiles.

    With ``mode="exact"`` all reports are gathered and quantiles computed
    exactly (what the paper did for several hundred machines).  With
    ``mode="sketch"`` each metric feeds a Greenwald-Khanna sketch, keeping
    aggregator memory sublinear in the fleet size.

    Both modes accept partial fleets: reports may contain NaN entries
    (dropped per metric), machines may stay silent, and the epoch closes
    regardless.  When ``fleet_size`` is known, the ``quorum`` policy
    decides whether the partial epoch is still summarizable; below quorum
    the summary is all-NaN and flagged in its quality record, identically
    on both paths.

    Exact mode is columnar by default: reports land in a preallocated
    :class:`repro.core.columnar.EpochBlock` (reused across epochs) and
    the close computes NaN-masked per-metric quantiles in single numpy
    passes (:func:`repro.telemetry.quantiles.masked_quantiles`) — bit-
    identical to the historical per-machine list path, which is retained
    behind ``columnar=False`` as the parity reference and benchmark
    baseline.  :meth:`submit_batch` folds whole ``(batch, n_metrics)``
    report matrices in one vectorized pass on every mode.
    """

    def __init__(
        self,
        metric_names: Sequence[str],
        quantiles: Sequence[float] = (0.25, 0.50, 0.95),
        mode: str = "exact",
        sketch_eps: float = 0.01,
        fleet_size: Optional[int] = None,
        quorum: Optional[QuorumPolicy] = None,
        columnar: bool = True,
    ):
        if mode not in ("exact", "sketch"):
            raise ValueError(f"unknown mode {mode!r}")
        self.metric_names = list(metric_names)
        self.quantiles = tuple(quantiles)
        self.mode = mode
        self.sketch_eps = sketch_eps
        self.fleet_size = fleet_size
        self.quorum = quorum if quorum is not None else QuorumPolicy(
            min_fraction=0.0, min_count=1
        )
        self.columnar = bool(columnar)
        self._epoch = 0
        self._n_reports = 0
        self._reports: List[np.ndarray] = []  # legacy exact path only
        self._block: Optional[EpochBlock] = None
        if mode == "exact" and self.columnar:
            self._block = EpochBlock(len(self.metric_names))
        self._dropped = 0
        self._sketches: Optional[List[GKQuantileSketch]] = None
        if mode == "sketch":
            self._reset_sketches()

    def _reset_sketches(self) -> None:
        self._sketches = [
            GKQuantileSketch(eps=self.sketch_eps)
            for _ in self.metric_names
        ]

    @property
    def epoch(self) -> int:
        return self._epoch

    def submit(self, report: np.ndarray) -> None:
        """Accept one machine's epoch aggregate (NaN entries allowed)."""
        report = np.asarray(report, dtype=float)
        if report.shape != (len(self.metric_names),):
            raise ValueError("report length mismatch")
        if self._block is not None:
            self._dropped += self._block.append(report)
        else:
            finite = np.isfinite(report)
            if not finite.all():
                self._dropped += int((~finite).sum())
                report = np.where(finite, report, np.nan)
            if self.mode == "exact":
                self._reports.append(report)
            else:
                for sketch, value in zip(self._sketches, report):
                    if np.isfinite(value):
                        sketch.insert(float(value))
        self._n_reports += 1

    def submit_batch(self, matrix: np.ndarray) -> None:
        """Accept many machines' epoch aggregates in one vectorized pass.

        Semantically ``submit`` per row.  On the columnar exact path the
        whole batch lands in the epoch block with one copy and one
        NaN-mask; on the sketch path each metric's finite column is
        sorted once and folded in via
        :meth:`GKQuantileSketch.from_sorted` + ``merge`` (error-bounded
        like the fleet folder's batch fold, not bit-identical to
        per-value inserts).
        """
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != len(self.metric_names):
            raise ValueError(
                f"batch must be (n, {len(self.metric_names)}), "
                f"got {matrix.shape}"
            )
        n = matrix.shape[0]
        if n == 0:
            return
        if self._block is not None:
            self._dropped += self._block.append_batch(matrix)
        elif self.mode == "exact":
            # Legacy reference path: identical to per-report submits.
            finite = np.isfinite(matrix)
            self._dropped += int(matrix.size - int(finite.sum()))
            masked = np.where(finite, matrix, np.nan)
            self._reports.extend(masked)
        else:
            finite = np.isfinite(matrix)
            self._dropped += int(matrix.size - int(finite.sum()))
            for j, sketch in enumerate(self._sketches):
                col = matrix[finite[:, j], j]
                if col.size == 0:
                    continue
                batch = GKQuantileSketch.from_sorted(
                    np.sort(col), eps=self.sketch_eps
                )
                self._sketches[j] = (
                    batch if len(sketch) == 0 else sketch.merge(batch)
                )
        self._n_reports += n

    def note_dropped(self, n: int) -> None:
        """Fold agent-side dropped-sample counts into this epoch's quality."""
        self._dropped += int(n)

    def close_epoch(
        self,
        n_stale_agents: int = 0,
        n_dead_agents: int = 0,
    ) -> EpochSummary:
        """Finish the current epoch and emit its summary.

        With an unknown fleet (``fleet_size=None``) an epoch with zero
        reports still raises — there is no way to tell a dead collector
        from an idle one.  With a known fleet the epoch closes regardless
        and quorum failures surface as an all-NaN summary whose quality
        record says why.
        """
        n = self._n_reports
        if n == 0 and self.fleet_size is None:
            raise ValueError("no machine reported this epoch")
        shape = (len(self.metric_names), len(self.quantiles))
        quorum_met = self.quorum.met(n, self.fleet_size)
        if not quorum_met or n == 0:
            q = np.full(shape, np.nan)
            if self.mode == "sketch":
                self._reset_sketches()
        elif self._block is not None:
            # Columnar exact close: one in-place column sort + one rank
            # gather over the block's filled rows, NaN gaps handled in
            # the same pass.  Counts were tracked on ingest, and the
            # block is reset below, so the sort may destroy the buffer.
            q = masked_quantiles(
                self._block.matrix(),
                self.quantiles,
                counts=self._block.column_counts(),
                overwrite=True,
            )
        elif self.mode == "exact":
            matrix = np.vstack(self._reports)
            if np.isfinite(matrix).all():
                q = summarize_epoch(matrix, self.quantiles)
            else:
                q = _partial_quantiles(matrix, self.quantiles)
        else:
            q = np.empty(shape)
            for i, sketch in enumerate(self._sketches):
                if len(sketch) == 0:
                    q[i] = np.nan
                else:
                    q[i] = [sketch.query(p) for p in self.quantiles]
            self._reset_sketches()
        quality = EpochQuality(
            epoch=self._epoch,
            n_reporting=n,
            fleet_size=self.fleet_size,
            dropped_samples=self._dropped,
            n_stale_agents=n_stale_agents,
            n_dead_agents=n_dead_agents,
            quorum_met=quorum_met,
        )
        summary = EpochSummary(
            epoch=self._epoch, quantiles=q, n_machines_reporting=n,
            quality=quality,
        )
        self._reports = []
        self._n_reports = 0
        if self._block is not None:
            self._block.reset()
        self._dropped = 0
        self._epoch += 1
        return summary


class CollectionPipeline:
    """Agents plus aggregator for a whole fleet, driven epoch by epoch.

    Tracks per-agent health: machines silent for ``dead_after``
    consecutive epochs trip their circuit breaker and leave the expected
    fleet, so coverage (and therefore quorum) reflects machines that
    *should* be reporting, not long-dead ones.
    """

    def __init__(
        self,
        machine_ids: Sequence[str],
        metric_names: Sequence[str],
        quantiles: Sequence[float] = (0.25, 0.50, 0.95),
        mode: str = "exact",
        strict: bool = False,
        quorum: Optional[QuorumPolicy] = None,
        dead_after: int = 4,
        columnar: bool = True,
    ):
        if not machine_ids:
            raise ValueError("need at least one machine")
        self.agents: Dict[str, MachineAgent] = {
            mid: MachineAgent(mid, metric_names, strict=strict)
            for mid in machine_ids
        }
        self.health = AgentHealthTracker(machine_ids, dead_after=dead_after)
        self.aggregator = EpochAggregator(
            metric_names, quantiles=quantiles, mode=mode,
            fleet_size=len(machine_ids), quorum=quorum, columnar=columnar,
        )

    def close_epoch(self) -> EpochSummary:
        """Flush every agent into the aggregator and emit the summary."""
        epoch = self.aggregator.epoch
        for mid, agent in self.agents.items():
            self.aggregator.note_dropped(agent.dropped_samples)
            report = agent.flush()
            if not np.all(np.isnan(report)):
                self.aggregator.submit(report)
                self.health.observe_report(mid, epoch)
        self.health.close_epoch(epoch)
        # Coverage is judged against the breaker-adjusted fleet.
        self.aggregator.fleet_size = max(self.health.expected_fleet, 1)
        return self.aggregator.close_epoch(
            n_stale_agents=self.health.n_stale,
            n_dead_agents=self.health.n_dead,
        )


__all__ = [
    "CollectionPipeline",
    "EpochAggregator",
    "EpochQuality",
    "EpochSummary",
    "MachineAgent",
]
