"""Telemetry collection pipeline: agents, aggregator, epoch summaries.

The paper's datacenter collects ~100 metrics per machine per 15-minute
epoch with off-the-shelf monitoring (HP OpenView, Ganglia).  This module
provides that plumbing for live deployments of the pipeline:

* :class:`MachineAgent` buffers one machine's samples for the current
  epoch (metrics may be sampled more often than the epoch length and are
  averaged, as in the paper's dataset);
* :class:`EpochAggregator` collects agent reports and reduces them to the
  datacenter-wide quantile summary — exactly, or with Greenwald-Khanna
  sketches when the fleet is too large to gather raw values.

The aggregator's output is the ``(n_metrics, n_quantiles)`` matrix the
fingerprinting pipeline consumes, so a live deployment swaps the simulator
for agents without touching anything downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.telemetry.quantiles import summarize_epoch
from repro.telemetry.sketches import GKQuantileSketch


class MachineAgent:
    """Buffers one machine's metric samples within an epoch."""

    def __init__(self, machine_id: str, metric_names: Sequence[str]):
        if not metric_names:
            raise ValueError("need at least one metric")
        self.machine_id = machine_id
        self.metric_names = list(metric_names)
        self._index = {m: i for i, m in enumerate(self.metric_names)}
        self._sums = np.zeros(len(self.metric_names))
        self._counts = np.zeros(len(self.metric_names), dtype=int)

    def record(self, metric: str, value: float) -> None:
        """Record one sample (metrics may be sampled sub-epoch)."""
        try:
            i = self._index[metric]
        except KeyError:
            raise KeyError(f"unknown metric {metric!r}") from None
        if not np.isfinite(value):
            raise ValueError(f"non-finite sample for {metric}")
        self._sums[i] += value
        self._counts[i] += 1

    def record_all(self, values: Sequence[float]) -> None:
        """Record one sample for every metric at once."""
        values = np.asarray(values, dtype=float)
        if values.shape != (len(self.metric_names),):
            raise ValueError("value count mismatch")
        if not np.all(np.isfinite(values)):
            raise ValueError("non-finite sample")
        self._sums += values
        self._counts += 1

    def flush(self) -> np.ndarray:
        """Epoch aggregate (mean per metric); unreported metrics are NaN."""
        with np.errstate(invalid="ignore"):
            out = np.where(
                self._counts > 0, self._sums / np.maximum(self._counts, 1),
                np.nan,
            )
        self._sums[:] = 0.0
        self._counts[:] = 0
        return out


@dataclass
class EpochSummary:
    """One epoch's datacenter-wide summary."""

    epoch: int
    quantiles: np.ndarray  # (n_metrics, n_quantiles)
    n_machines_reporting: int


class EpochAggregator:
    """Reduces agent reports to datacenter-wide metric quantiles.

    With ``mode="exact"`` all reports are gathered and quantiles computed
    exactly (what the paper did for several hundred machines).  With
    ``mode="sketch"`` each metric feeds a Greenwald-Khanna sketch, keeping
    aggregator memory sublinear in the fleet size.
    """

    def __init__(
        self,
        metric_names: Sequence[str],
        quantiles: Sequence[float] = (0.25, 0.50, 0.95),
        mode: str = "exact",
        sketch_eps: float = 0.01,
    ):
        if mode not in ("exact", "sketch"):
            raise ValueError(f"unknown mode {mode!r}")
        self.metric_names = list(metric_names)
        self.quantiles = tuple(quantiles)
        self.mode = mode
        self.sketch_eps = sketch_eps
        self._epoch = 0
        self._reports: List[np.ndarray] = []
        self._sketches: Optional[List[GKQuantileSketch]] = None
        if mode == "sketch":
            self._reset_sketches()

    def _reset_sketches(self) -> None:
        self._sketches = [
            GKQuantileSketch(eps=self.sketch_eps)
            for _ in self.metric_names
        ]

    @property
    def epoch(self) -> int:
        return self._epoch

    def submit(self, report: np.ndarray) -> None:
        """Accept one machine's epoch aggregate."""
        report = np.asarray(report, dtype=float)
        if report.shape != (len(self.metric_names),):
            raise ValueError("report length mismatch")
        if self.mode == "exact":
            self._reports.append(report)
        else:
            for sketch, value in zip(self._sketches, report):
                if np.isfinite(value):
                    sketch.insert(float(value))
            self._reports.append(np.empty(0))  # count only

    def close_epoch(self) -> EpochSummary:
        """Finish the current epoch and emit its summary."""
        n = len(self._reports)
        if n == 0:
            raise ValueError("no machine reported this epoch")
        if self.mode == "exact":
            matrix = np.vstack(self._reports)
            q = summarize_epoch(matrix, self.quantiles)
        else:
            q = np.empty((len(self.metric_names), len(self.quantiles)))
            for i, sketch in enumerate(self._sketches):
                if len(sketch) == 0:
                    q[i] = np.nan
                else:
                    q[i] = [sketch.query(p) for p in self.quantiles]
            self._reset_sketches()
        summary = EpochSummary(
            epoch=self._epoch, quantiles=q, n_machines_reporting=n
        )
        self._reports = []
        self._epoch += 1
        return summary


class CollectionPipeline:
    """Agents plus aggregator for a whole fleet, driven epoch by epoch."""

    def __init__(
        self,
        machine_ids: Sequence[str],
        metric_names: Sequence[str],
        quantiles: Sequence[float] = (0.25, 0.50, 0.95),
        mode: str = "exact",
    ):
        if not machine_ids:
            raise ValueError("need at least one machine")
        self.agents: Dict[str, MachineAgent] = {
            mid: MachineAgent(mid, metric_names) for mid in machine_ids
        }
        self.aggregator = EpochAggregator(
            metric_names, quantiles=quantiles, mode=mode
        )

    def close_epoch(self) -> EpochSummary:
        """Flush every agent into the aggregator and emit the summary."""
        for agent in self.agents.values():
            report = agent.flush()
            if not np.all(np.isnan(report)):
                self.aggregator.submit(report)
        return self.aggregator.close_epoch()


__all__ = [
    "CollectionPipeline",
    "EpochAggregator",
    "EpochSummary",
    "MachineAgent",
]
