"""Rolling store of datacenter-wide quantile history.

Online threshold maintenance (Section 3.3) needs the raw quantile values of
every tracked metric over a trailing window of up to 240 days, restricted to
crisis-free epochs.  :class:`QuantileStore` keeps that history in a growing
array together with a per-epoch "anomalous" flag, and serves trailing-window
views to the threshold estimator.

The store also backs Section 6.3's bookkeeping: because raw quantile values
(not discretized summaries) are kept for past crises, fingerprints of old
crises can be recomputed whenever thresholds move.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class QuantileStore:
    """Append-only history of per-epoch metric-quantile values.

    Parameters
    ----------
    n_metrics, n_quantiles:
        Shape of each epoch's summary.
    capacity_hint:
        Initial buffer capacity in epochs; the buffer grows geometrically.
    """

    def __init__(
        self, n_metrics: int, n_quantiles: int, capacity_hint: int = 4096
    ):
        if n_metrics <= 0 or n_quantiles <= 0:
            raise ValueError("n_metrics and n_quantiles must be positive")
        self.n_metrics = n_metrics
        self.n_quantiles = n_quantiles
        cap = max(capacity_hint, 16)
        self._values = np.empty((cap, n_metrics, n_quantiles), dtype=float)
        self._anomalous = np.zeros(cap, dtype=bool)
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def _grow(self, needed: int) -> None:
        cap = self._values.shape[0]
        if needed <= cap:
            return
        new_cap = cap
        while new_cap < needed:
            new_cap *= 2
        values = np.empty(
            (new_cap, self.n_metrics, self.n_quantiles), dtype=float
        )
        values[: self._n] = self._values[: self._n]
        anomalous = np.zeros(new_cap, dtype=bool)
        anomalous[: self._n] = self._anomalous[: self._n]
        self._values = values
        self._anomalous = anomalous

    def append(self, epoch_quantiles: np.ndarray, anomalous: bool) -> int:
        """Record one epoch's summary; returns its epoch index."""
        arr = np.asarray(epoch_quantiles, dtype=float)
        if arr.shape != (self.n_metrics, self.n_quantiles):
            raise ValueError(
                f"expected shape {(self.n_metrics, self.n_quantiles)}, "
                f"got {arr.shape}"
            )
        self._grow(self._n + 1)
        self._values[self._n] = arr
        self._anomalous[self._n] = bool(anomalous)
        self._n += 1
        return self._n - 1

    def extend(self, chunk: np.ndarray, anomalous: np.ndarray) -> None:
        """Record a chunk of epochs at once."""
        chunk = np.asarray(chunk, dtype=float)
        anomalous = np.asarray(anomalous, dtype=bool)
        if chunk.ndim != 3 or chunk.shape[1:] != (
            self.n_metrics,
            self.n_quantiles,
        ):
            raise ValueError("chunk shape mismatch")
        if anomalous.shape != (chunk.shape[0],):
            raise ValueError("anomalous flags must match chunk length")
        self._grow(self._n + chunk.shape[0])
        self._values[self._n : self._n + chunk.shape[0]] = chunk
        self._anomalous[self._n : self._n + chunk.shape[0]] = anomalous
        self._n += chunk.shape[0]

    def values(
        self, start: Optional[int] = None, stop: Optional[int] = None
    ) -> np.ndarray:
        """Read-only view of quantile history in ``[start, stop)``."""
        view = self._values[: self._n][start:stop]
        view.flags.writeable = False
        return view

    def anomalous_mask(
        self, start: Optional[int] = None, stop: Optional[int] = None
    ) -> np.ndarray:
        view = self._anomalous[: self._n][start:stop]
        view.flags.writeable = False
        return view

    def epoch(self, index: int) -> np.ndarray:
        """Quantile summary of one epoch (negative indices allowed)."""
        if index < 0:
            index += self._n
        if not 0 <= index < self._n:
            raise IndexError("epoch index out of range")
        view = self._values[index]
        view.flags.writeable = False
        return view

    def trailing_window(
        self, end: int, window_epochs: int, crisis_free: bool = True
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Window of history ending at (excluding) ``end``.

        Returns ``(values, epoch_indices)``.  With ``crisis_free=True``
        (default, matching Section 3.3 step 1), epochs flagged anomalous are
        excluded so thresholds reflect only normal operation.
        """
        if not 0 <= end <= self._n:
            raise IndexError("end out of range")
        start = max(end - window_epochs, 0)
        idx = np.arange(start, end)
        if crisis_free:
            keep = ~self._anomalous[start:end]
            idx = idx[keep]
        values = self._values[idx]
        return values, idx


__all__ = ["QuantileStore"]
