"""Fault-tolerance primitives for the live telemetry path.

The paper assumes every machine reports ~100 metrics every 15-minute
epoch, but machines *in crisis* are exactly the machines whose telemetry
path is most likely to fail.  This module provides the plumbing a real
deployment needs to keep the fingerprinting pipeline useful while the
system under observation is degrading:

* :class:`AgentHealthTracker` — per-machine heartbeat bookkeeping with a
  circuit breaker: an agent that misses ``dead_after`` consecutive epochs
  is declared dead and excluded from the expected fleet until it reports
  again (which closes the breaker);
* :class:`RetryPolicy` — exponential backoff with jitter for report
  delivery, deterministic under a seeded generator so tests and replays
  reproduce exactly;
* :class:`QuorumPolicy` — the rule deciding whether a partial epoch
  (some machines silent) is still summarizable, shared by the exact and
  sketch aggregation paths so they degrade identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

import numpy as np

#: Agent health states, in order of degradation.
HEALTHY = "healthy"
STALE = "stale"
DEAD = "dead"

T = TypeVar("T")


@dataclass(frozen=True)
class QuorumPolicy:
    """When is a partial epoch still summarizable?

    A quorum requires at least ``min_count`` reports and, when the fleet
    size is known, at least ``min_fraction`` of the fleet.  Below quorum
    the epoch's quantiles are meaningless (quantiles of a biased sliver of
    the fleet) and the aggregator emits NaN instead of a summary.
    """

    min_fraction: float = 0.5
    min_count: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_fraction <= 1.0:
            raise ValueError("min_fraction must lie in [0, 1]")
        if self.min_count < 0:
            raise ValueError("min_count must be non-negative")

    def met(self, n_reporting: int, fleet_size: Optional[int] = None) -> bool:
        if n_reporting < self.min_count:
            return False
        if fleet_size is not None and fleet_size > 0:
            return n_reporting >= self.min_fraction * fleet_size
        return True


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for report delivery.

    Delays grow geometrically from ``base_delay`` by ``multiplier`` per
    attempt, capped at ``max_delay``; each delay is then jittered
    uniformly in ``[1 - jitter, 1 + jitter]`` so a fleet of agents
    retrying after a shared outage does not thundering-herd the
    aggregator.  All randomness comes from the caller's generator — or,
    when ``seed`` is set, from the policy's own seeded generator — so
    tests and chaos replays reproduce the exact delay sequence.
    """

    max_attempts: int = 5
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.1
    #: When set, jitter draws come from a per-policy generator seeded
    #: here whenever the caller passes no ``rng`` — the serving
    #: supervisor and chaos tests use this for reproducible schedules.
    #: ``None`` (the default) keeps the historical behavior: no ``rng``
    #: means no jitter.
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must lie in [0, 1)")

    def _seeded_rng(self) -> Optional[np.random.Generator]:
        """The policy's own jitter generator (lazy; frozen-safe)."""
        if self.seed is None:
            return None
        rng = self.__dict__.get("_rng")
        if rng is None:
            rng = np.random.default_rng(self.seed)
            object.__setattr__(self, "_rng", rng)
        return rng

    def backoff(self, attempt: int,
                rng: Optional[np.random.Generator] = None) -> float:
        """Delay before retry number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        delay = min(self.base_delay * self.multiplier ** attempt,
                    self.max_delay)
        if rng is None:
            rng = self._seeded_rng()
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return float(delay)

    def call(
        self,
        fn: Callable[[], T],
        rng: Optional[np.random.Generator] = None,
        sleep: Optional[Callable[[float], None]] = None,
        retry_on: tuple = (Exception,),
    ) -> T:
        """Run ``fn`` with retries; re-raises after the final attempt.

        ``sleep`` is injectable so tests (and simulated time) can observe
        the backoff schedule without waiting it out.
        """
        last: Optional[BaseException] = None
        for attempt in range(self.max_attempts):
            try:
                return fn()
            except retry_on as exc:
                last = exc
                if attempt + 1 >= self.max_attempts:
                    raise
                if sleep is not None:
                    sleep(self.backoff(attempt, rng))
        raise last  # unreachable; satisfies type checkers


@dataclass
class _AgentState:
    last_report_epoch: Optional[int] = None
    consecutive_misses: int = 0
    reported_this_epoch: bool = False
    trips: int = 0  # times the circuit breaker opened


class AgentHealthTracker:
    """Heartbeat and circuit-breaker state for every agent in the fleet.

    Call :meth:`observe_report` whenever an agent's report arrives and
    :meth:`close_epoch` once per epoch; agents silent for ``dead_after``
    consecutive epochs trip their circuit breaker and are counted out of
    the expected fleet (so one crashed machine does not permanently drag
    coverage below quorum).  A report from a dead agent closes the breaker
    immediately.
    """

    def __init__(
        self,
        machine_ids: Sequence[str],
        dead_after: int = 4,
        stale_after: int = 1,
    ):
        if not machine_ids:
            raise ValueError("need at least one machine")
        if dead_after < 1 or stale_after < 1:
            raise ValueError("dead_after and stale_after must be >= 1")
        if stale_after > dead_after:
            raise ValueError("stale_after must not exceed dead_after")
        self.dead_after = dead_after
        self.stale_after = stale_after
        self._agents: Dict[str, _AgentState] = {
            mid: _AgentState() for mid in machine_ids
        }

    def __contains__(self, machine_id: str) -> bool:
        return machine_id in self._agents

    def add_agent(self, machine_id: str) -> None:
        """Admit a machine discovered after construction (idempotent).

        The serving tier learns a tenant's fleet from the reports
        themselves, so machines join the expected fleet on first
        contact instead of being declared up front.
        """
        if machine_id not in self._agents:
            self._agents[machine_id] = _AgentState()

    def observe_report(self, machine_id: str, epoch: int) -> None:
        """An agent delivered its report for the current epoch."""
        try:
            state = self._agents[machine_id]
        except KeyError:
            raise KeyError(f"unknown machine {machine_id!r}") from None
        state.last_report_epoch = epoch
        state.consecutive_misses = 0
        state.reported_this_epoch = True

    def close_epoch(self, epoch: int) -> List[str]:
        """End the epoch; silent agents accrue a miss.  Returns newly-dead."""
        newly_dead: List[str] = []
        for mid, state in self._agents.items():
            if state.reported_this_epoch:
                state.reported_this_epoch = False
                continue
            was_dead = state.consecutive_misses >= self.dead_after
            state.consecutive_misses += 1
            if not was_dead and state.consecutive_misses >= self.dead_after:
                state.trips += 1
                newly_dead.append(mid)
        return newly_dead

    def status(self, machine_id: str) -> str:
        state = self._agents[machine_id]
        if state.consecutive_misses >= self.dead_after:
            return DEAD
        if state.consecutive_misses >= self.stale_after:
            return STALE
        return HEALTHY

    def staleness(self, machine_id: str) -> int:
        """Consecutive epochs the agent has been silent."""
        return self._agents[machine_id].consecutive_misses

    def _count(self, status: str) -> int:
        return sum(self.status(mid) == status for mid in self._agents)

    @property
    def n_agents(self) -> int:
        return len(self._agents)

    @property
    def n_healthy(self) -> int:
        return self._count(HEALTHY)

    @property
    def n_stale(self) -> int:
        return self._count(STALE)

    @property
    def n_dead(self) -> int:
        return self._count(DEAD)

    @property
    def expected_fleet(self) -> int:
        """Agents currently expected to report (breaker not open)."""
        return self.n_agents - self.n_dead

    def dead_agents(self) -> List[str]:
        return [mid for mid in self._agents if self.status(mid) == DEAD]

    def stale_agents(self) -> List[str]:
        return [mid for mid in self._agents if self.status(mid) == STALE]


__all__ = [
    "AgentHealthTracker",
    "DEAD",
    "HEALTHY",
    "QuorumPolicy",
    "RetryPolicy",
    "STALE",
]
