"""Deterministic load generator and resend-on-reconnect client.

The client half of the durability contract: the server only guarantees
*acked* reports survive, so :class:`ServingClient` keeps every sent
frame in an unacked window and, on reconnect after a connection drop
(e.g. the server was ``kill -9``'d), resends the window verbatim.
Epoch-addressed idempotency on the server turns re-delivered
already-applied records into duplicate acks, so at-least-once delivery
composes into effectively-exactly-once application.

The synthetic workload is a pure function of ``(seed, tenant, epoch,
machine)`` — :func:`synthetic_report` — so an interrupted run and an
uninterrupted reference run offer the server byte-identical input, the
precondition for the kill/recover bit-identity proof.  Crisis windows
shift a metric group and raise SLA-violation flags on a deterministic
subset of machines, driving the full detect → identify → end event
sequence downstream.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.serving import wire
from repro.serving.wire import MalformedFrame
from repro.telemetry.reliability import RetryPolicy

#: Verbs the client stamps with its highest observed fencing token.
_JOURNALED_OPS = ("report", "report_batch", "close_epoch", "diagnose")


def synthetic_report(
    seed: int,
    tenant_idx: int,
    epoch: int,
    machine_idx: int,
    n_metrics: int,
    crisis_epochs: Sequence[int] = (),
) -> dict:
    """One machine's report, reproducible from its coordinates alone."""
    rng = np.random.default_rng([seed, tenant_idx, epoch, machine_idx])
    values = rng.normal(10.0, 2.0, size=n_metrics)
    in_crisis = epoch in crisis_epochs
    if in_crisis:
        # Crises shift the leading metric group fleet-wide.
        values[: max(1, n_metrics // 4)] += 25.0
    # 30% of machines violate their SLA during a crisis — above the
    # paper's 10%-of-machines detection rule.
    violation = in_crisis and machine_idx % 10 < 3
    return {
        "op": "report",
        "tenant": f"tenant-{tenant_idx}",
        "machine": f"m{machine_idx:04d}",
        "epoch": epoch,
        "values": [float(v) for v in values],
        "violation": bool(violation),
    }


def synthetic_batch(
    seed: int,
    tenant_idx: int,
    epoch: int,
    machine_indices: Sequence[int],
    n_metrics: int,
    crisis_epochs: Sequence[int] = (),
) -> dict:
    """One ``report_batch`` frame covering many machines of one tenant.

    Built from :func:`synthetic_report` per machine, so the values a
    batched run offers the server are byte-identical to the unbatched
    workload's — the precondition for batched-vs-unbatched parity
    proofs.
    """
    reports = [
        synthetic_report(
            seed, tenant_idx, epoch, m, n_metrics, crisis_epochs
        )
        for m in machine_indices
    ]
    return {
        "op": "report_batch",
        "tenant": f"tenant-{tenant_idx}",
        "epoch": epoch,
        "machines": [r["machine"] for r in reports],
        "values": [r["values"] for r in reports],
        "violations": [r["violation"] for r in reports],
    }


def workload(
    seed: int,
    n_tenants: int,
    n_machines: int,
    n_epochs: int,
    n_metrics: int,
    crisis_epochs: Sequence[int] = (),
) -> Iterator[dict]:
    """The full request stream: reports then close, epoch by epoch."""
    for epoch in range(n_epochs):
        for t in range(n_tenants):
            for m in range(n_machines):
                yield synthetic_report(
                    seed, t, epoch, m, n_metrics, crisis_epochs
                )
            yield {
                "op": "close_epoch",
                "tenant": f"tenant-{t}",
                "epoch": epoch,
            }


class ServingClient:
    """Pipelined JSON-lines client with resend-after-reconnect.

    ``send`` enqueues a request into the pipeline; ``drain`` collects
    acks.  Any frame without a terminal response when the connection
    drops is resent on the next connect, in order.  Overload and
    restarting sheds are retried after the server's ``retry_after``
    hint (bounded by ``max_retries``).

    **Failover.**  ``endpoints`` lists every serving node (primary and
    standbys).  Connection failures and ``standby`` / ``fenced``
    rejections rotate to the next endpoint and resend the unacked
    window — epoch-addressed idempotency makes the resend safe even
    when the old primary had already applied it.  Reconnect pacing is a
    seeded-jitter :class:`~repro.telemetry.reliability.RetryPolicy`
    (exponential backoff, jitter drawn from ``seed``), so a fleet of
    clients does not thundering-herd a recovering server and a test can
    replay the exact schedule; each delay slept is recorded in
    ``backoff_delays``.

    **Fencing.**  The client remembers the highest fencing epoch any
    response has carried and stamps it on every journaled request; a
    ``stale-fence`` rejection updates the token and retries, so after a
    failover the client converges on the new primary's epoch — and its
    stamped requests are what seal a resurfacing old primary.
    """

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: float = 10.0,
        max_retries: int = 200,
        reconnect_delay: float = 0.05,
        reconnect_attempts: int = 100,
        endpoints: Optional[Sequence[Tuple[str, int]]] = None,
        seed: int = 0,
    ):
        if endpoints is None:
            if host is None or port is None:
                raise ValueError("need host+port or an endpoints list")
            endpoints = [(host, port)]
        self.endpoints = [(h, int(p)) for h, p in endpoints]
        self.host, self.port = self.endpoints[0]
        self.timeout = timeout
        self.max_retries = max_retries
        self.reconnect_delay = reconnect_delay
        self.reconnect_attempts = reconnect_attempts
        self.policy = RetryPolicy(
            max_attempts=max(reconnect_attempts, 1),
            base_delay=reconnect_delay,
            max_delay=1.0,
            jitter=0.25,
            seed=seed,
        )
        self._ep = 0
        self._sock: Optional[socket.socket] = None
        self._buffer = b""
        self.fence = 0
        self.responses: List[dict] = []
        self.events: List[dict] = []
        self.retries = 0
        self.overloads = 0
        self.reconnects = 0
        self.failovers = 0
        self.backoff_delays: List[float] = []

    # -- connection --------------------------------------------------------

    @property
    def endpoint(self) -> Tuple[str, int]:
        """The endpoint the client is currently pointed at."""
        return self.endpoints[self._ep % len(self.endpoints)]

    def connect(self) -> None:
        last: Optional[Exception] = None
        for attempt in range(self.reconnect_attempts):
            host, port = self.endpoint
            try:
                sock = socket.create_connection(
                    (host, port), timeout=self.timeout
                )
                sock.settimeout(self.timeout)
                self._sock = sock
                self._buffer = b""
                return
            except OSError as exc:
                last = exc
                # Unreachable node: try the next endpoint after a
                # seeded-jitter backoff (capped exponent so a long
                # outage polls steadily instead of overflowing).
                self._ep += 1
                delay = self.policy.backoff(min(attempt, 8))
                self.backoff_delays.append(delay)
                time.sleep(delay)
        raise ConnectionError(
            f"could not connect to any of {self.endpoints}: {last}"
        )

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServingClient":
        self.connect()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _reconnect(self) -> None:
        self.close()
        self.reconnects += 1
        self.connect()

    def _rotate(self) -> None:
        """This endpoint cannot serve writes: fail over to the next."""
        self._ep += 1
        self.failovers += 1
        self._reconnect()

    # -- fencing tokens ----------------------------------------------------

    def _stamp(self, obj: dict) -> dict:
        """Attach the highest observed fencing token to a write."""
        if self.fence > 0 and obj.get("op") in _JOURNALED_OPS:
            return {**obj, "fence": self.fence}
        return obj

    def _absorb_fence(self, resp: dict) -> None:
        fence = resp.get("fence")
        if isinstance(fence, int) and fence > self.fence:
            self.fence = fence

    # -- request/response --------------------------------------------------

    def _read_response(self) -> dict:
        while b"\n" not in self._buffer:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return wire.decode_frame(line)

    def request(self, obj: dict) -> dict:
        """Send one request and wait for its terminal response.

        Retries through overload/restarting sheds (honoring
        ``retry_after``), connection drops (resending the request —
        safe because requests are epoch-addressed), ``standby`` /
        ``fenced`` rejections (rotating to the next endpoint), and
        ``stale-fence`` rejections (adopting the newer token).
        """
        for _ in range(self.max_retries):
            try:
                self._sock.sendall(wire.encode_frame(self._stamp(obj)))
                resp = self._read_response()
            except (OSError, ConnectionError, MalformedFrame):
                self._reconnect()
                continue
            err = None if resp.get("ok") else resp.get("error")
            if err in ("overloaded", "restarting"):
                self.retries += 1
                if err == "overloaded":
                    self.overloads += 1
                time.sleep(min(float(resp.get("retry_after", 0.05)), 0.5))
                continue
            if err in ("standby", "fenced"):
                self._absorb_fence(resp)
                self.retries += 1
                self._rotate()
                continue
            if err == "stale-fence":
                self._absorb_fence(resp)
                self.retries += 1
                continue
            self.responses.append(resp)
            self.events.extend(resp.get("events") or [])
            return resp
        raise TimeoutError(
            f"request not acknowledged after {self.max_retries} retries"
        )

    def request_many(
        self, objs: Sequence[dict], window: int = 64
    ) -> List[dict]:
        """Pipeline requests ``window`` at a time, collecting all acks.

        The pipelined window is exactly the unacked set: if the
        connection drops, the whole window is resent after reconnect.
        Sheds within a window are retried individually.
        """
        out: List[dict] = []
        pending = list(objs)
        while pending:
            chunk, pending = pending[:window], pending[window:]
            unacked = list(chunk)
            acked: List[dict] = []
            attempts = 0
            while unacked:
                attempts += 1
                if attempts > self.max_retries:
                    raise TimeoutError(
                        f"{len(unacked)} requests unacked after "
                        f"{self.max_retries} rounds"
                    )
                try:
                    self._sock.sendall(b"".join(
                        wire.encode_frame(self._stamp(o)) for o in unacked
                    ))
                    round_resps = [
                        self._read_response() for _ in unacked
                    ]
                except (OSError, ConnectionError, MalformedFrame):
                    # Kill mid-window: reconnect and resend every frame
                    # still lacking a terminal response.
                    self._reconnect()
                    continue
                still_unacked: List[dict] = []
                max_retry_after = 0.0
                rotate = False
                for obj, resp in zip(unacked, round_resps):
                    err = None if resp.get("ok") else resp.get("error")
                    if err in ("overloaded", "restarting"):
                        self.retries += 1
                        if err == "overloaded":
                            self.overloads += 1
                        still_unacked.append(obj)
                        max_retry_after = max(
                            max_retry_after,
                            float(resp.get("retry_after", 0.05)),
                        )
                        continue
                    if err in ("standby", "fenced"):
                        # Wrong node for writes: fail the window over.
                        self._absorb_fence(resp)
                        self.retries += 1
                        still_unacked.append(obj)
                        rotate = True
                        continue
                    if err == "stale-fence":
                        self._absorb_fence(resp)
                        self.retries += 1
                        still_unacked.append(obj)
                        continue
                    acked.append(resp)
                    self.responses.append(resp)
                    self.events.extend(resp.get("events") or [])
                unacked = still_unacked
                if rotate:
                    self._rotate()
                elif unacked:
                    time.sleep(min(max_retry_after, 0.5))
            out.extend(acked)
        return out


@dataclass
class LoadResult:
    """What one load-generation run observed."""

    reports_sent: int = 0
    acked: int = 0
    duplicates: int = 0
    rejected: int = 0
    overloads: int = 0
    reconnects: int = 0
    failovers: int = 0
    latencies_s: List[float] = field(default_factory=list)
    events: List[dict] = field(default_factory=list)

    @property
    def p99_latency_ms(self) -> float:
        if not self.latencies_s:
            return float("nan")
        return float(np.percentile(self.latencies_s, 99) * 1e3)

    @property
    def mean_latency_ms(self) -> float:
        if not self.latencies_s:
            return float("nan")
        return float(np.mean(self.latencies_s) * 1e3)


def run_load(
    host: str,
    port: int,
    seed: int,
    n_tenants: int,
    n_machines: int,
    n_epochs: int,
    n_metrics: int,
    crisis_epochs: Sequence[int] = (),
    window: int = 64,
    start_epoch: int = 0,
    endpoints: Optional[Sequence[Tuple[str, int]]] = None,
    batch_size: Optional[int] = None,
) -> LoadResult:
    """Drive the synthetic workload against a server, measuring ingest.

    Latency is measured per pipelined window (wall time / window size),
    which is what an agent batching its fleet's reports experiences.
    ``endpoints`` (when given) supersedes ``host``/``port`` and enables
    client-side failover across primary + standbys.  With ``batch_size``
    set, machine reports travel as ``report_batch`` frames of at most
    that many machines (same values, same epochs — the batched and
    unbatched workloads are byte-identical per machine); acked/duplicate
    counts still tally individual machine reports via the ``n`` field
    batch acks carry.
    """
    result = LoadResult()
    with ServingClient(
        host, port, endpoints=endpoints, seed=seed
    ) as client:
        for epoch in range(start_epoch, n_epochs):
            for t in range(n_tenants):
                if batch_size is None:
                    batch = [
                        synthetic_report(
                            seed, t, epoch, m, n_metrics, crisis_epochs
                        )
                        for m in range(n_machines)
                    ]
                else:
                    batch = [
                        synthetic_batch(
                            seed, t, epoch,
                            range(lo, min(lo + batch_size, n_machines)),
                            n_metrics, crisis_epochs,
                        )
                        for lo in range(0, n_machines, batch_size)
                    ]
                batch.append({
                    "op": "close_epoch",
                    "tenant": f"tenant-{t}",
                    "epoch": epoch,
                })
                start = time.perf_counter()
                resps = client.request_many(batch, window=window)
                elapsed = time.perf_counter() - start
                result.reports_sent += n_machines
                result.latencies_s.extend(
                    [elapsed / len(batch)] * len(batch)
                )
                for resp in resps:
                    if resp.get("ok"):
                        # Batch acks carry n = machine reports covered.
                        n_covered = int(resp.get("n", 1))
                        if resp.get("status") == "duplicate":
                            result.duplicates += n_covered
                        else:
                            result.acked += n_covered
                    else:
                        result.rejected += 1
        result.overloads = client.overloads
        result.reconnects = client.reconnects
        result.failovers = client.failovers
        result.events = list(client.events)
    return result


__all__ = [
    "LoadResult",
    "ServingClient",
    "run_load",
    "synthetic_batch",
    "synthetic_report",
    "workload",
]
