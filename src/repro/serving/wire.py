"""JSON-lines wire format for the ingestion front door.

One frame is one UTF-8 JSON object terminated by ``\\n``.  JSON is the
transport deliberately: Python's ``repr``-based float serialization is
shortest-round-trip, so a ``float64`` metric value survives
encode → decode **bit-identically** — the property the kill/recover
proof (``tests/test_serving_recovery.py``) rests on.

Requests (``op`` selects the verb):

``report``
    ``{"op": "report", "tenant": t, "machine": m, "epoch": e,
    "values": [...], "violation": bool}`` — one machine's metric vector
    for epoch ``e``.  Reports are *epoch-addressed* so a client that
    resends after a reconnect is safe: a report for an already-closed
    epoch is acknowledged as a duplicate no-op, never applied twice.
``report_batch``
    ``{"op": "report_batch", "tenant": t, "epoch": e,
    "machines": [m...], "values": [[...]...], "violations": [bool...]}``
    — many machines' vectors for epoch ``e`` in one frame.  The value
    matrix is validated and decoded in one vectorized numpy pass (the
    only per-machine Python work is the id strings), machine ids must
    not repeat within a frame, and the same epoch-addressed resend
    guarantee applies to the frame as a whole.  Acks carry ``n``, the
    number of machine reports the frame covered.
``close_epoch``
    ``{"op": "close_epoch", "tenant": t, "epoch": e}`` — summarize the
    pending reports for ``e`` and feed the streaming monitor.
``diagnose``
    ``{"op": "diagnose", "tenant": t, "crisis": n, "label": s}`` — the
    operators' diagnosis for a past crisis.
``ping`` / ``stats`` / ``state``
    liveness, service-wide counters, and one tenant's full recovery
    state (used by tests to prove bit-identity).
``incidents`` / ``forecasts``
    read-side views of one tenant: the incident catalog (with discovery
    cluster stats when attached) and the early-warning engine's stats +
    retained alarms (PR 9).

Replication and administration (PR 7):

``repl_subscribe``
    ``{"op": "repl_subscribe", "cursors": {tenant: seq, ...},
    "fence": e}`` — a standby opens a journal-shipping subscription,
    resuming each tenant's stream after the given sequence number.  The
    primary answers once, then *pushes* ``repl_frames`` /
    ``repl_heartbeat`` messages down the same connection.
``repl_frames``
    ``{"op": "repl_frames", "tenant": t, "records": [...]}`` — a batch
    of journal records (each carrying its primary-assigned ``seq``),
    pushed primary → standby.
``repl_ack``
    ``{"op": "repl_ack", "cursors": {tenant: seq, ...}}`` — the standby
    reports how far it has durably applied; drives the primary's lag
    accounting, journal retention, and dead-subscriber reaping.
``repl_heartbeat``
    pushed on idle links so long-lived subscriptions survive the
    slow-loris timeout; the standby answers with a ``repl_ack``.
``promote`` / ``fence`` / ``unquarantine``
    operator verbs: promote this standby to primary (mints a new
    fencing epoch), tell a superseded node it has been fenced, and
    release a quarantined tenant with a fresh restart budget.

Journaled verbs additionally accept an optional ``fence`` field — the
highest fencing epoch the writer has observed.  A token newer than the
server's proves the server stale (it fences itself); an older token
marks the *writer* stale (rejected with ``stale-fence`` + the current
epoch).  See :mod:`repro.serving.fencing`.

Responses are ``{"ok": true, ...}`` (``seq`` carries the journal
sequence number for journaled verbs; ``events`` carries monitor events)
or ``{"ok": false, "error": code}`` with ``retry_after`` seconds on
``overloaded`` / ``restarting`` shed responses.

Anything that cannot be parsed into a valid request raises
:class:`MalformedFrame` — a typed error the server answers with an
``{"ok": false, "error": "malformed"}`` frame instead of crashing the
connection, which is exactly what the chaos mode's corrupted frames
exercise.
"""

from __future__ import annotations

import itertools
import json
from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.streaming import (
    CrisisDetected,
    CrisisEnded,
    EpochUntrusted,
    IdentificationUpdate,
    MonitorEvent,
)

#: Request verbs understood by the server.
OPS = (
    "report", "report_batch", "close_epoch", "diagnose",
    "ping", "stats", "state", "incidents", "forecasts",
    "repl_subscribe", "repl_ack", "promote", "fence", "unquarantine",
)

#: Messages pushed primary → standby on a replication link (these are
#: not client requests; :func:`parse_repl_push` validates them).
REPL_PUSH_OPS = ("repl_frames", "repl_heartbeat")


class MalformedFrame(ValueError):
    """The frame is not a valid request (bad JSON, wrong shape/types)."""


def encode_frame(obj: Dict[str, Any]) -> bytes:
    """One wire frame: compact JSON + newline."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one frame into a dict; typed error on garbage."""
    try:
        obj = json.loads(line.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise MalformedFrame(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise MalformedFrame(
            f"frame is a {type(obj).__name__}, not an object"
        )
    return obj


def _require(obj: Dict[str, Any], key: str, kind, what: str):
    if key not in obj:
        raise MalformedFrame(f"{what} is missing {key!r}")
    value = obj[key]
    # bool is an int subclass; an epoch of ``true`` is still malformed.
    if kind is int and isinstance(value, bool):
        raise MalformedFrame(f"{what} field {key!r} must be an integer")
    if not isinstance(value, kind):
        raise MalformedFrame(
            f"{what} field {key!r} must be {getattr(kind, '__name__', kind)}"
        )
    return value


def _require_tenant(obj: Dict[str, Any], what: str) -> str:
    tenant = _require(obj, "tenant", str, what)
    if not tenant or "/" in tenant or tenant in (".", ".."):
        # Tenant names become directory names; keep them path-safe.
        raise MalformedFrame(f"invalid tenant name {tenant!r}")
    return tenant


def _optional_fence(obj: Dict[str, Any], out: Dict[str, Any], what: str):
    """Validate the optional ``fence`` token onto the canonical dict."""
    if "fence" not in obj:
        return out
    fence = _require(obj, "fence", int, what)
    if fence < 0:
        raise MalformedFrame(f"{what} fence must be non-negative")
    out["fence"] = fence
    return out


def _require_cursors(obj: Dict[str, Any], what: str) -> Dict[str, int]:
    cursors = _require(obj, "cursors", dict, what)
    out: Dict[str, int] = {}
    for tenant, seq in cursors.items():
        if not isinstance(tenant, str) or not tenant:
            raise MalformedFrame(f"{what} cursor tenant must be a string")
        if isinstance(seq, bool) or not isinstance(seq, int) or seq < 0:
            raise MalformedFrame(
                f"{what} cursor for {tenant!r} must be a non-negative "
                "integer"
            )
        out[tenant] = seq
    return out


def parse_request(obj: Dict[str, Any]) -> Dict[str, Any]:
    """Validate a decoded frame into a canonical request dict.

    Returns a fresh dict holding only the validated fields, so a frame
    smuggling extra keys cannot reach the journal.
    """
    op = obj.get("op")
    if op not in OPS:
        raise MalformedFrame(f"unknown op {op!r}")
    if op == "report":
        tenant = _require_tenant(obj, "report")
        machine = _require(obj, "machine", str, "report")
        if not machine:
            raise MalformedFrame("report machine must be non-empty")
        epoch = _require(obj, "epoch", int, "report")
        if epoch < 0:
            raise MalformedFrame("report epoch must be non-negative")
        values = _require(obj, "values", list, "report")
        if not values:
            raise MalformedFrame("report values must be non-empty")
        # bool is an int subclass: ``true`` is not a metric value.
        for v in values:
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                raise MalformedFrame("report values must be numbers")
        violation = _require(obj, "violation", bool, "report")
        return _optional_fence(obj, {
            "op": "report",
            "tenant": tenant,
            "machine": machine,
            "epoch": epoch,
            "values": [float(v) for v in values],
            "violation": violation,
        }, "report")
    if op == "report_batch":
        tenant = _require_tenant(obj, "report_batch")
        epoch = _require(obj, "epoch", int, "report_batch")
        if epoch < 0:
            raise MalformedFrame("report_batch epoch must be non-negative")
        machines = _require(obj, "machines", list, "report_batch")
        if not machines:
            raise MalformedFrame("report_batch machines must be non-empty")
        for machine in machines:
            if not isinstance(machine, str) or not machine:
                raise MalformedFrame(
                    "report_batch machines must be non-empty strings"
                )
        if len(set(machines)) != len(machines):
            raise MalformedFrame(
                "report_batch machines must not repeat within a frame"
            )
        values = _require(obj, "values", list, "report_batch")
        if len(values) != len(machines):
            raise MalformedFrame(
                "report_batch values must match machines one-to-one"
            )
        for row in values:
            if not isinstance(row, list) or not row:
                raise MalformedFrame(
                    "report_batch values must be non-empty lists"
                )
        # One C-level pass over every entry: the set of concrete types
        # must be numeric — rejecting bools (an int subclass), strings,
        # None, and nested lists without a per-value Python loop.
        kinds = set(map(type, itertools.chain.from_iterable(values)))
        if not kinds <= {int, float}:
            raise MalformedFrame("report_batch values must be numbers")
        try:
            matrix = np.asarray(values, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise MalformedFrame(
                f"report_batch values must be rectangular: {exc}"
            ) from exc
        if matrix.ndim != 2:
            raise MalformedFrame(
                "report_batch values must be same-length vectors"
            )
        violations = _require(obj, "violations", list, "report_batch")
        if len(violations) != len(machines):
            raise MalformedFrame(
                "report_batch violations must match machines one-to-one"
            )
        if not set(map(type, violations)) <= {bool}:
            raise MalformedFrame("report_batch violations must be booleans")
        return _optional_fence(obj, {
            "op": "report_batch",
            "tenant": tenant,
            "epoch": epoch,
            "machines": list(machines),
            # float64 round-trips bit-identically through repr-based
            # JSON, so journaling the canonicalized lists is lossless.
            "values": matrix.tolist(),
            "violations": list(violations),
        }, "report_batch")
    if op == "close_epoch":
        tenant = _require_tenant(obj, "close_epoch")
        epoch = _require(obj, "epoch", int, "close_epoch")
        if epoch < 0:
            raise MalformedFrame("close_epoch epoch must be non-negative")
        return _optional_fence(
            obj, {"op": "close_epoch", "tenant": tenant, "epoch": epoch},
            "close_epoch",
        )
    if op == "diagnose":
        tenant = _require_tenant(obj, "diagnose")
        crisis = _require(obj, "crisis", int, "diagnose")
        label = _require(obj, "label", str, "diagnose")
        if not label:
            raise MalformedFrame("diagnose label must be non-empty")
        return _optional_fence(obj, {
            "op": "diagnose", "tenant": tenant,
            "crisis": crisis, "label": label,
        }, "diagnose")
    if op == "state":
        return {"op": "state", "tenant": _require_tenant(obj, "state")}
    if op == "incidents":
        return {
            "op": "incidents",
            "tenant": _require_tenant(obj, "incidents"),
        }
    if op == "forecasts":
        return {
            "op": "forecasts",
            "tenant": _require_tenant(obj, "forecasts"),
        }
    if op == "repl_subscribe":
        return _optional_fence(obj, {
            "op": "repl_subscribe",
            "cursors": _require_cursors(obj, "repl_subscribe"),
        }, "repl_subscribe")
    if op == "repl_ack":
        return {
            "op": "repl_ack",
            "cursors": _require_cursors(obj, "repl_ack"),
        }
    if op == "fence":
        epoch = _require(obj, "epoch", int, "fence")
        if epoch < 1:
            raise MalformedFrame("fence epoch must be positive")
        return {"op": "fence", "epoch": epoch}
    if op == "unquarantine":
        return {
            "op": "unquarantine",
            "tenant": _require_tenant(obj, "unquarantine"),
        }
    return {"op": op}


def parse_repl_push(obj: Dict[str, Any]) -> Dict[str, Any]:
    """Validate a primary → standby push message (frames or heartbeat).

    The standby applies these through the live journal-then-apply path,
    so the same no-garbage rule holds: anything malformed raises
    :class:`MalformedFrame` and the standby drops the link rather than
    applying it.
    """
    op = obj.get("op")
    if op not in REPL_PUSH_OPS:
        raise MalformedFrame(f"unknown replication push op {op!r}")
    if op == "repl_heartbeat":
        return {"op": "repl_heartbeat"}
    tenant = _require_tenant(obj, "repl_frames")
    records = _require(obj, "records", list, "repl_frames")
    if not records:
        raise MalformedFrame("repl_frames records must be non-empty")
    validated: List[Dict[str, Any]] = []
    for record in records:
        if not isinstance(record, dict):
            raise MalformedFrame("repl_frames records must be objects")
        seq = record.get("seq")
        if isinstance(seq, bool) or not isinstance(seq, int) or seq < 1:
            raise MalformedFrame(
                "repl_frames record is missing its journal seq"
            )
        body = parse_request(record)
        if body["op"] not in (
            "report", "report_batch", "close_epoch", "diagnose"
        ):
            raise MalformedFrame(
                f"unjournalable op {body['op']!r} in repl_frames"
            )
        if body["tenant"] != tenant:
            raise MalformedFrame(
                "repl_frames record tenant does not match the frame"
            )
        body["seq"] = seq
        validated.append(body)
    return {"op": "repl_frames", "tenant": tenant, "records": validated}


# ---------------------------------------------------------------------------
# Monitor events on the wire
# ---------------------------------------------------------------------------

_EVENT_TYPES = {
    "crisis_detected": CrisisDetected,
    "crisis_ended": CrisisEnded,
    "epoch_untrusted": EpochUntrusted,
    "identification": IdentificationUpdate,
}


def event_to_wire(event: MonitorEvent) -> Dict[str, Any]:
    """Serialize one monitor event to a JSON-safe dict."""
    if isinstance(event, CrisisDetected):
        return {
            "type": "crisis_detected",
            "epoch": event.epoch,
            "crisis": event.crisis_number,
        }
    if isinstance(event, CrisisEnded):
        return {
            "type": "crisis_ended",
            "epoch": event.epoch,
            "crisis": event.crisis_number,
            "duration": event.duration_epochs,
        }
    if isinstance(event, EpochUntrusted):
        return {
            "type": "epoch_untrusted",
            "epoch": event.epoch,
            "reasons": list(event.reasons),
        }
    if isinstance(event, IdentificationUpdate):
        return {
            "type": "identification",
            "epoch": event.epoch,
            "crisis": event.crisis_number,
            "slot": event.identification_epoch,
            "label": event.label,
            # repr round-trip: the float64 distance survives bitwise.
            "distance": event.distance,
        }
    raise TypeError(f"unknown monitor event {type(event).__name__}")


def event_from_wire(obj: Dict[str, Any]) -> MonitorEvent:
    """Rebuild the frozen event dataclass from its wire dict."""
    kind = obj.get("type")
    if kind == "crisis_detected":
        return CrisisDetected(epoch=obj["epoch"], crisis_number=obj["crisis"])
    if kind == "crisis_ended":
        return CrisisEnded(
            epoch=obj["epoch"],
            crisis_number=obj["crisis"],
            duration_epochs=obj["duration"],
        )
    if kind == "epoch_untrusted":
        return EpochUntrusted(
            epoch=obj["epoch"], reasons=tuple(obj["reasons"])
        )
    if kind == "identification":
        distance = obj["distance"]
        return IdentificationUpdate(
            epoch=obj["epoch"],
            crisis_number=obj["crisis"],
            identification_epoch=obj["slot"],
            label=obj["label"],
            distance=None if distance is None else float(distance),
        )
    raise MalformedFrame(f"unknown event type {kind!r}")


# ---------------------------------------------------------------------------
# Response builders
# ---------------------------------------------------------------------------


def ok_response(
    seq: Optional[int] = None,
    events: Optional[List[Dict[str, Any]]] = None,
    **fields: Any,
) -> Dict[str, Any]:
    resp: Dict[str, Any] = {"ok": True}
    if seq is not None:
        resp["seq"] = seq
    if events is not None:
        resp["events"] = events
    resp.update(fields)
    return resp


def error_response(
    code: str, retry_after: Optional[float] = None, **fields: Any
) -> Dict[str, Any]:
    resp: Dict[str, Any] = {"ok": False, "error": code}
    if retry_after is not None:
        resp["retry_after"] = retry_after
    resp.update(fields)
    return resp


__all__ = [
    "MalformedFrame",
    "OPS",
    "REPL_PUSH_OPS",
    "decode_frame",
    "encode_frame",
    "error_response",
    "event_from_wire",
    "event_to_wire",
    "ok_response",
    "parse_repl_push",
    "parse_request",
]
