"""Monotonic fencing epochs: the split-brain guard for failover.

Promotion of a standby mints a new **fencing epoch** — a monotonically
increasing integer persisted durably (atomic tmp + fsync + rename) in
the node's state directory.  Every write acknowledged by a node is
stamped with the node's current epoch, clients remember the highest
epoch they have ever observed and attach it to subsequent writes, and
the rules are strict:

* a request carrying an epoch **newer** than the node's own proves the
  node has been superseded — the node *permanently fences itself*
  (``fenced`` is persisted, surviving restarts) and answers ``fenced``;
* a request carrying an epoch **older** than the node's own is a stale
  writer — rejected with ``stale-fence`` plus the current epoch so the
  client can adopt it and retry against the real primary;
* once fenced, the node's write-ahead journals refuse appends outright
  (:class:`StaleFencingToken` raised from the journal's ``fence_check``
  seam), so no code path — not even one that slipped past the server
  layer — can ack after promotion.

This is token fencing, not a shared-storage lease: a fully partitioned
old primary that no post-promotion writer ever reaches can still ack
the equally-partitioned writers on its side, and those acks are
discarded when the node is re-seeded as a standby (see the failover
runbook in ``docs/operations.md``).  The failover controller therefore
sends an explicit ``fence`` op to the old primary as soon as it is
reachable, and every client that has observed the promotion seals the
old primary on first contact.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile

from repro.core.atomicio import fsync_dir


class StaleFencingToken(RuntimeError):
    """This node has been fenced: a newer fencing epoch exists.

    Raised by the journal's ``fence_check`` seam on any append attempted
    after the node learned it was superseded — the write must never
    reach disk, let alone be acked.
    """


class FencingState:
    """The durable ``(epoch, fenced)`` pair for one serving node.

    ``epoch`` is the highest fencing epoch this node has ever observed
    (its own when primary, the primary's when standby); ``fenced`` means
    a *newer* epoch was observed while this node held the primary role —
    a terminal, persisted condition cleared only by an explicit
    :meth:`mint` (operator re-promotion after re-seeding).
    """

    def __init__(self, root):
        self.path = pathlib.Path(root) / "fence.json"
        self.epoch = 0
        self.fenced = False
        if self.path.exists():
            state = json.loads(self.path.read_text())
            self.epoch = int(state["epoch"])
            self.fenced = bool(state["fenced"])

    # -- persistence -------------------------------------------------------

    def _save(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {"epoch": self.epoch, "fenced": self.fenced}
        ).encode("utf-8")
        fd, tmp = tempfile.mkstemp(
            dir=self.path.parent, suffix=".fence.tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
            fsync_dir(self.path.parent)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- transitions -------------------------------------------------------

    def mint(self) -> int:
        """Take (or retake) the primary role under a fresh, higher epoch.

        The new epoch strictly exceeds everything this node has ever
        seen, so writers holding older tokens are rejected as stale and
        the displaced primary fences itself on first contact.
        """
        self.epoch += 1
        self.fenced = False
        self._save()
        return self.epoch

    def observe(self, epoch: int) -> None:
        """Track the highest epoch seen *without* taking the fenced hit.

        A standby tailing its primary learns the primary's epoch this
        way; a later :meth:`mint` then always lands strictly above it.
        """
        if epoch > self.epoch:
            self.epoch = epoch
            self._save()

    def fence(self, observed_epoch: int) -> bool:
        """A writer carrying ``observed_epoch`` arrived; fence if newer.

        Returns ``True`` if this call (or a previous one) left the node
        fenced.  Fencing is persisted immediately: a fenced node that is
        killed and restarted comes back fenced.
        """
        if observed_epoch > self.epoch:
            self.epoch = observed_epoch
            self.fenced = True
            self._save()
        return self.fenced

    def check(self) -> None:
        """Journal seam: refuse the append if this node is fenced."""
        if self.fenced:
            raise StaleFencingToken(
                f"node is fenced at epoch {self.epoch}: a newer primary "
                "exists; this journal must never ack again"
            )


__all__ = ["FencingState", "StaleFencingToken"]
