"""One tenant's durable streaming engine.

A :class:`TenantRuntime` owns everything the front door knows about one
tenant: the write-ahead journal, the pending-epoch report buffer, the
agent-health tracker, the :class:`~repro.core.streaming.StreamingCrisisMonitor`
(one :class:`~repro.core.engine.EpochStateEngine` + per-slot
:class:`~repro.index.FingerprintIndex` under the hood), and the
checkpoint that ties them together.

**Apply is replay.**  Every state change flows through
:meth:`TenantRuntime.apply` on a journaled record — the live path and
crash recovery execute the *same* code, which is how recovery is
bit-identical: checkpoint restore rebuilds the monitor exactly
(:mod:`repro.core.checkpoint`), the journal cursor (``applied_seq``)
stored in the checkpoint's ``extra`` header says where to resume, and
replaying the journal suffix re-derives precisely the state an
uninterrupted run would hold.

**Epoch-addressed idempotency.**  Records carry the epoch they belong
to; a record for an already-closed epoch is a duplicate no-op (acked,
never re-applied), a report for the current epoch overwrites by machine
id.  A client may therefore resend everything unacked after a reconnect
without corrupting state.

**Checkpoint cadence.**  Every ``checkpoint_every_epochs`` closed
epochs, the runtime snapshots the monitor atomically with the journal
cursor, agent-health counters, the retained event log, and the
open epoch's pending report buffer in the header's ``extra`` — one
file, one rename — then compacts the journal down to the unapplied
suffix.  Checkpointing mid-epoch (graceful shutdown) is safe: the
pending buffer rides inside the snapshot, so journaled-and-acked
reports for the open epoch survive the compaction that follows.
"""

from __future__ import annotations

import pathlib
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.config import (
    FingerprintingConfig,
    QuantileConfig,
    ReliabilityConfig,
    ServingConfig,
    ThresholdConfig,
)
from repro.core import checkpoint as ckpt
from repro.core.columnar import EpochBlock
from repro.core.streaming import StreamingCrisisMonitor
from repro.serving.journal import WriteAheadJournal
from repro.serving.wire import event_to_wire
from repro.telemetry.collector import EpochQuality
from repro.telemetry.epochs import EpochClock
from repro.telemetry.quantiles import summarize_epoch
from repro.telemetry.reliability import AgentHealthTracker

#: Apply statuses, also used as ack detail on the wire.
APPLIED = "applied"
DUPLICATE = "duplicate"
BAD_EPOCH = "bad-epoch"
UNKNOWN_CRISIS = "unknown-crisis"


def monitor_config(cfg: ServingConfig) -> FingerprintingConfig:
    """The method configuration a serving tenant runs under."""
    return FingerprintingConfig(
        quantiles=QuantileConfig(quantiles=tuple(cfg.quantiles)),
        thresholds=ThresholdConfig(window_days=cfg.window_days),
    )


def _build_monitor(cfg: ServingConfig) -> StreamingCrisisMonitor:
    monitor = StreamingCrisisMonitor(
        n_metrics=cfg.n_metrics,
        relevant_metrics=list(range(cfg.n_relevant)),
        config=monitor_config(cfg),
        threshold_refresh_epochs=cfg.resolved_refresh_epochs(),
        min_history_epochs=cfg.resolved_min_history(),
        reliability=ReliabilityConfig(coverage_floor=cfg.coverage_floor),
        clock=EpochClock(epoch_minutes=cfg.epoch_minutes),
    )
    _attach_discovery(monitor, cfg)
    _attach_forecast(monitor, cfg)
    return monitor


def _attach_discovery(monitor: StreamingCrisisMonitor, cfg: ServingConfig):
    """Attach a discovery engine when the tenant opts in.

    A monitor restored from a checkpoint that already embeds discovery
    state comes back with its engine attached; this only fills the gap
    for fresh monitors and for checkpoints taken before the tenant
    enabled discovery.
    """
    if cfg.discovery_enabled and monitor.discovery is None:
        from repro.discovery.engine import DiscoveryEngine

        monitor.attach_discovery(DiscoveryEngine(cfg.discovery))


def _attach_forecast(monitor: StreamingCrisisMonitor, cfg: ServingConfig):
    """Attach a forecast engine when the tenant opts in.

    Like discovery, a checkpoint that embeds forecast state restores
    with the engine (and its trained detector) already attached; this
    fills the gap for fresh monitors and pre-forecast checkpoints,
    seeding from ``cfg.forecast_model`` when a trained model file is
    configured.
    """
    if cfg.forecast_enabled and monitor.forecast is None:
        from repro.forecast.engine import ForecastEngine, load_forecast

        if cfg.forecast_model:
            engine = load_forecast(cfg.forecast_model)
        else:
            engine = ForecastEngine(cfg.forecast)
        monitor.attach_forecast(engine)


class TenantRuntime:
    """Journal + engine + checkpoint for one tenant.

    ``fault_hook``, when set, is called with every record at the top of
    :meth:`apply` — the chaos seam for injected tenant crashes (and the
    mechanism by which a *poison record* crash-loops: the record was
    journaled before the crash, so recovery replays it and crashes
    again, which is exactly what the supervisor's quarantine exists
    for).
    """

    def __init__(
        self,
        tenant: str,
        cfg: ServingConfig,
        root,
        journal_hook: Optional[Callable[[bytes], Optional[bytes]]] = None,
        fault_hook: Optional[Callable[[dict], None]] = None,
        fence_check: Optional[Callable[[], None]] = None,
        retention_floor: Optional[Callable[[], Optional[int]]] = None,
    ):
        self.tenant = tenant
        self.cfg = cfg
        self.dir = pathlib.Path(root) / "tenants" / tenant
        self.dir.mkdir(parents=True, exist_ok=True)
        self.journal = WriteAheadJournal(
            self.dir / "journal.wal", write_hook=journal_hook,
            fence_check=fence_check,
        )
        self.checkpoint_path = self.dir / "checkpoint.npz"
        self.fault_hook = fault_hook
        #: When set, compaction never drops records past this floor —
        #: the replication hub pins it at the slowest live subscriber's
        #: acked cursor so a standby can always resume from its seq.
        self.retention_floor = retention_floor
        self.monitor = _build_monitor(cfg)
        self.health: Optional[AgentHealthTracker] = None
        self.next_epoch = 0
        self.applied_seq = 0
        #: Highest seq ever dropped by compaction: a subscriber whose
        #: cursor sits below this has a gap the journal can no longer
        #: fill and must be re-seeded (``snapshot-needed``).
        self.compacted_through = 0
        self.epochs_since_checkpoint = 0
        self.event_log: List[dict] = []  # wire-encoded, cumulative
        #: Reports currently buffered for ``next_epoch``, keyed by
        #: machine id.  A columnar :class:`EpochBlock` (preallocated
        #: value matrix + violation bitmap, machine ids interned once)
        #: replacing the historical ``Dict[str, Tuple[List[float],
        #: bool]]`` — its mapping facade keeps dict-style reads
        #: (``len`` / ``in`` / iteration / ``pending[machine]``)
        #: working, and re-delivered reports still overwrite by
        #: machine id.
        self.pending = EpochBlock(cfg.n_metrics)

    # -- record application (live path AND replay path) --------------------

    def classify(self, record: dict) -> str:
        """What :meth:`apply` would do with this record, without doing it.

        The server consults this *before* journaling so duplicates and
        out-of-order records are acked/nacked without a disk write.
        """
        kind = record["op"]
        if kind in ("report", "report_batch", "close_epoch"):
            epoch = record["epoch"]
            if epoch < self.next_epoch:
                return DUPLICATE
            if epoch > self.next_epoch:
                return BAD_EPOCH
            return APPLIED
        if kind == "diagnose":
            numbers = {
                s.number for s in self.monitor._library
            }
            return APPLIED if record["crisis"] in numbers else UNKNOWN_CRISIS
        raise ValueError(f"unjournalable record kind {kind!r}")

    def apply(self, record: dict) -> Tuple[str, List[dict]]:
        """Apply one journaled record; returns ``(status, wire events)``."""
        if self.fault_hook is not None:
            self.fault_hook(record)
        status = self.classify(record)
        events: List[dict] = []
        if status == APPLIED:
            kind = record["op"]
            if kind == "report":
                self._apply_report(record)
            elif kind == "report_batch":
                self._apply_report_batch(record)
            elif kind == "close_epoch":
                events = self._apply_close(record)
            else:
                self.monitor.diagnose(record["crisis"], record["label"])
        seq = record.get("seq")
        if seq is not None:
            self.applied_seq = max(self.applied_seq, seq)
        return status, events

    def _apply_report(self, record: dict) -> None:
        machine = record["machine"]
        if self.health is None:
            self.health = AgentHealthTracker([machine])
        else:
            self.health.add_agent(machine)
        self.health.observe_report(machine, record["epoch"])
        self.pending.put(machine, record["values"], record["violation"])

    def _apply_report_batch(self, record: dict) -> None:
        machines = record["machines"]
        if self.health is None:
            self.health = AgentHealthTracker(list(machines))
        else:
            for machine in machines:
                self.health.add_agent(machine)
        epoch = record["epoch"]
        for machine in machines:
            self.health.observe_report(machine, epoch)
        self.pending.put_batch(
            machines,
            np.asarray(record["values"], dtype=float),
            record["violations"],
        )

    def _apply_close(self, record: dict) -> List[dict]:
        epoch = record["epoch"]
        nq = len(self.cfg.quantiles)
        if len(self.pending):
            # One gather out of the block; the column sort inside
            # summarize_epoch makes machine order irrelevant, and a mean
            # of 0/1 floats is exact, so this is bit-identical to the
            # historical dict-of-lists stacking.
            samples, violations = self.pending.gather()
            summary = summarize_epoch(samples, self.cfg.quantiles)
            violation = float(violations.astype(float).mean())
        else:
            # A silent fleet still closes its epoch: a NaN summary fails
            # the monitor's validation gate, so the epoch is quarantined
            # rather than poisoning thresholds.
            summary = np.full((self.cfg.n_metrics, nq), np.nan)
            violation = 0.0
        if self.health is not None:
            self.health.close_epoch(epoch)
            fleet = self.health.expected_fleet
        else:
            fleet = 0
        quality = EpochQuality(
            epoch=epoch,
            n_reporting=len(self.pending),
            fleet_size=fleet if fleet > 0 else None,
            n_stale_agents=(
                self.health.n_stale if self.health is not None else 0
            ),
            n_dead_agents=(
                self.health.n_dead if self.health is not None else 0
            ),
            quorum_met=len(self.pending) > 0,
        )
        raw = self.monitor.ingest(summary, violation, quality)
        wire_events = [event_to_wire(e) for e in raw]
        self.event_log.extend(wire_events)
        retain = self.cfg.event_log_retain
        if len(self.event_log) > retain:
            del self.event_log[: len(self.event_log) - retain]
        self.pending.clear()
        self.next_epoch = epoch + 1
        self.epochs_since_checkpoint += 1
        if self.epochs_since_checkpoint >= self.cfg.checkpoint_every_epochs:
            self.checkpoint()
        return wire_events

    # -- durability --------------------------------------------------------

    def _health_state(self) -> Optional[dict]:
        if self.health is None:
            return None
        return {
            mid: {
                "misses": state.consecutive_misses,
                "last": state.last_report_epoch,
                "trips": state.trips,
                "reported": state.reported_this_epoch,
            }
            for mid, state in self.health._agents.items()
        }

    def checkpoint(self) -> None:
        """Snapshot monitor + journal cursor atomically, then compact.

        The snapshot carries the open epoch's ``pending`` buffer (and
        the per-epoch health flags), so a mid-epoch checkpoint — the
        graceful-shutdown path — never loses journaled-and-acked
        reports to the compaction below.  A crash between the snapshot
        rename and the journal compaction is safe: replay of
        already-applied records is a sequence of idempotent overwrites
        and duplicate no-ops.
        """
        floor = self.applied_seq
        if self.retention_floor is not None:
            pinned = self.retention_floor()
            if pinned is not None:
                # Never compact past the slowest live subscriber: its
                # next resume must find every record after its cursor.
                floor = min(floor, pinned)
        floor = max(floor, self.compacted_through)
        extra = {
            "applied_seq": self.applied_seq,
            "next_epoch": self.next_epoch,
            "compacted_through": floor,
            "health": self._health_state(),
            "events": self.event_log,
            # The block serializes to the historical dict form, so old
            # and new checkpoints stay mutually loadable.
            "pending": {
                machine: {"values": values, "violation": violation}
                for machine, (values, violation) in self.pending.items()
            },
        }
        ckpt.save_monitor(self.monitor, self.checkpoint_path, extra=extra)
        self.journal.compact(floor)
        self.compacted_through = floor
        self.epochs_since_checkpoint = 0

    @classmethod
    def recover(
        cls,
        tenant: str,
        cfg: ServingConfig,
        root,
        journal_hook: Optional[Callable[[bytes], Optional[bytes]]] = None,
        fault_hook: Optional[Callable[[dict], None]] = None,
        fence_check: Optional[Callable[[], None]] = None,
        retention_floor: Optional[Callable[[], Optional[int]]] = None,
    ) -> "TenantRuntime":
        """Restore from checkpoint + journal; safe after ``kill -9``.

        A corrupt checkpoint raises
        :class:`~repro.core.checkpoint.CheckpointCorruptError` (typed,
        never a raw ``KeyError``) — the supervisor surfaces it and
        quarantines the tenant rather than crashing the service.
        """
        runtime = cls(
            tenant, cfg, root,
            journal_hook=journal_hook, fault_hook=fault_hook,
            fence_check=fence_check, retention_floor=retention_floor,
        )
        if runtime.checkpoint_path.exists():
            runtime.monitor = ckpt.load_monitor(
                runtime.checkpoint_path,
                config=monitor_config(cfg),
                reliability=ReliabilityConfig(
                    coverage_floor=cfg.coverage_floor
                ),
            )
            _attach_discovery(runtime.monitor, cfg)
            _attach_forecast(runtime.monitor, cfg)
            extra = ckpt.read_checkpoint_extra(runtime.checkpoint_path)
            runtime.applied_seq = int(extra.get("applied_seq", 0))
            runtime.next_epoch = int(extra.get("next_epoch", 0))
            # Pre-replication checkpoints always compacted to the
            # cursor, so their floor defaults to applied_seq.
            runtime.compacted_through = int(
                extra.get("compacted_through", runtime.applied_seq)
            )
            runtime.event_log = list(extra.get("events", []))
            for machine, entry in (extra.get("pending") or {}).items():
                runtime.pending.put(
                    machine, entry["values"], entry["violation"]
                )
            health = extra.get("health")
            if health:
                tracker = AgentHealthTracker(list(health))
                for mid, state in health.items():
                    agent = tracker._agents[mid]
                    agent.consecutive_misses = int(state["misses"])
                    agent.last_report_epoch = state["last"]
                    agent.trips = int(state["trips"])
                    agent.reported_this_epoch = bool(
                        state.get("reported", False)
                    )
                runtime.health = tracker
            # The compacted journal may be empty while the checkpoint
            # cursor is far along; pin the seq high-water mark so fresh
            # appends can never reuse sequence numbers at or below it
            # (replay would silently skip them on the next recovery).
            runtime.journal.reserve_seq(runtime.applied_seq)
        # A torn tail is the expected signature of a crash mid-append;
        # everything past the last intact record was never acked.
        runtime.journal.truncate_tail()
        for record in runtime.journal.replay(after_seq=runtime.applied_seq):
            runtime.apply(record)
        return runtime

    def state(self) -> dict:
        """Wire-safe snapshot of recovery-relevant state (for tests/ops)."""
        thresholds = self.monitor.thresholds
        return {
            "tenant": self.tenant,
            "next_epoch": self.next_epoch,
            "applied_seq": self.applied_seq,
            "pending": sorted(self.pending),
            "ready": self.monitor.ready,
            "crises": self.monitor._crisis_counter,
            "untrusted_epochs": self.monitor.untrusted_epochs,
            "library_labels": list(self.monitor.library_labels),
            "thresholds": None if thresholds is None else {
                "cold": thresholds.cold.tolist(),
                "hot": thresholds.hot.tolist(),
            },
            "events": list(self.event_log),
        }

    def incidents(self) -> dict:
        """Wire-safe incident-catalog view (``admin incidents``).

        Read-only companion to :meth:`state`: the crises the monitor
        retains with their current labels, the distinct labels the
        supervised path can match, and — when a discovery engine rides
        this tenant — its cluster statistics.
        """
        discovery = self.monitor.discovery
        return {
            "tenant": self.tenant,
            "crises": [
                {"number": s.number, "label": s.label}
                for s in self.monitor._library
            ],
            "library_labels": sorted(
                {s.label for s in self.monitor._library if s.label}
            ),
            "discovery": None if discovery is None else discovery.stats(),
        }

    def forecasts(self) -> dict:
        """Wire-safe early-warning view (``admin forecasts``).

        Read-only: the forecast engine's runtime statistics plus its
        retained alarms, or ``forecast: None`` when the tenant never
        opted in.
        """
        forecast = self.monitor.forecast
        return {
            "tenant": self.tenant,
            "forecast": None if forecast is None else forecast.stats(),
            "alarms": [] if forecast is None else forecast.forecasts(),
        }

    def close(self) -> None:
        self.journal.close()


__all__ = [
    "APPLIED",
    "BAD_EPOCH",
    "DUPLICATE",
    "TenantRuntime",
    "UNKNOWN_CRISIS",
    "monitor_config",
]
