"""Per-tenant supervision: restart with backoff, quarantine crash-loops.

The front door's graceful-degradation contract: one bad tenant never
takes down the service.  Each tenant runs behind a supervisor slot with
three states:

``RUNNING``
    records are dispatched to the tenant's :class:`~repro.serving.tenant.TenantRuntime`.
``RESTARTING``
    the engine crashed; requests are shed with an explicit
    ``retry_after`` until the backoff expires, then the next request
    triggers a recovery attempt (checkpoint restore + journal replay —
    the same proven path a process restart takes).
``QUARANTINED``
    ``max_restarts`` consecutive crashes — the classic *poison record*
    crash-loop, where journal-before-ack guarantees the crashing record
    is replayed on every recovery.  The tenant is parked (requests get
    a terminal ``quarantined`` error) until an operator clears it
    (:meth:`TenantSupervisor.clear_quarantine`); every other tenant
    keeps serving.  See ``docs/serving.md`` for the runbook.

Backoff delays come from :class:`repro.telemetry.reliability.RetryPolicy`
with the policy's *seeded* jitter, so a chaos run's restart schedule is
reproducible.  The clock and sleep are injectable for tests.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.config import ServingConfig
from repro.serving.fencing import FencingState, StaleFencingToken
from repro.serving.journal import JournalTornWrite
from repro.serving.tenant import APPLIED, BAD_EPOCH, DUPLICATE, TenantRuntime
from repro.telemetry.reliability import RetryPolicy

logger = logging.getLogger(__name__)

RUNNING = "running"
RESTARTING = "restarting"
QUARANTINED = "quarantined"

#: Terminal dispatch status of a fenced (superseded) node.
FENCED = "fenced"


@dataclass
class _TenantSlot:
    runtime: Optional[TenantRuntime] = None
    state: str = RUNNING
    crash_streak: int = 0
    restarts: int = 0  # lifetime successful recoveries
    next_retry_at: float = 0.0
    last_error: Optional[str] = None
    crash_log: List[str] = field(default_factory=list)


class TenantSupervisor:
    """Owns every tenant slot and the restart/quarantine policy.

    ``journal_hook_factory`` / ``fault_hook_factory`` take a tenant name
    and return the per-tenant chaos hooks (or ``None``); production runs
    pass neither.

    ``fencing`` (when serving behind a front door) threads the node's
    :class:`~repro.serving.fencing.FencingState` into every tenant
    journal, so a fenced node cannot append.  ``on_journaled`` is the
    replication tap: called with ``(tenant, records)`` immediately after
    a batch reaches disk, records carrying their assigned seqs — the
    hub fans these out to subscribed standbys.  ``retention_floor``
    maps a tenant name to the lowest seq a live subscriber still needs
    (or ``None``), pinning journal compaction.
    """

    def __init__(
        self,
        cfg: ServingConfig,
        root,
        clock: Callable[[], float] = time.monotonic,
        journal_hook_factory: Optional[Callable[[str], Optional[Callable]]] = None,
        fault_hook_factory: Optional[Callable[[str], Optional[Callable]]] = None,
        fencing: Optional[FencingState] = None,
        on_journaled: Optional[Callable[[str, List[dict]], None]] = None,
        retention_floor: Optional[Callable[[str], Optional[int]]] = None,
    ):
        self.cfg = cfg
        self.root = root
        self.clock = clock
        self.journal_hook_factory = journal_hook_factory
        self.fault_hook_factory = fault_hook_factory
        self.fencing = fencing
        self.on_journaled = on_journaled
        self.retention_floor = retention_floor
        self.policy = RetryPolicy(
            max_attempts=cfg.max_restarts,
            base_delay=cfg.restart_base_delay,
            max_delay=cfg.restart_max_delay,
            seed=cfg.seed,
        )
        self._slots: Dict[str, _TenantSlot] = {}

    # -- slot lifecycle ----------------------------------------------------

    def _hooks(self, tenant: str) -> Tuple[Optional[Callable], Optional[Callable]]:
        jh = (
            self.journal_hook_factory(tenant)
            if self.journal_hook_factory is not None else None
        )
        fh = (
            self.fault_hook_factory(tenant)
            if self.fault_hook_factory is not None else None
        )
        return jh, fh

    def _recover(self, tenant: str) -> TenantRuntime:
        jh, fh = self._hooks(tenant)
        floor = None
        if self.retention_floor is not None:
            floor = lambda t=tenant: self.retention_floor(t)  # noqa: E731
        return TenantRuntime.recover(
            tenant, self.cfg, self.root,
            journal_hook=jh, fault_hook=fh,
            fence_check=(
                self.fencing.check if self.fencing is not None else None
            ),
            retention_floor=floor,
        )

    def slot(self, tenant: str) -> _TenantSlot:
        """The slot for ``tenant``, recovering its runtime on first touch."""
        slot = self._slots.get(tenant)
        if slot is None:
            slot = _TenantSlot()
            self._slots[tenant] = slot
            try:
                slot.runtime = self._recover(tenant)
            except Exception as exc:  # noqa: BLE001 — isolation boundary
                self._mark_crashed(tenant, slot, exc)
        return slot

    def peek(self, tenant: str) -> Optional[_TenantSlot]:
        """The slot for ``tenant`` if one exists — never creates one.

        Read-only paths (the ``state`` verb) use this so an arbitrary
        queried name cannot mint a tenant directory on disk; only
        journaled verbs create slots.
        """
        return self._slots.get(tenant)

    def tenants(self) -> List[str]:
        return sorted(self._slots)

    def adopt_existing(self) -> List[str]:
        """Recover every tenant directory found under the root (startup)."""
        import pathlib

        tenant_root = pathlib.Path(self.root) / "tenants"
        found = []
        if tenant_root.is_dir():
            for path in sorted(tenant_root.iterdir()):
                if path.is_dir():
                    self.slot(path.name)
                    found.append(path.name)
        return found

    # -- crash handling ----------------------------------------------------

    def _mark_crashed(
        self, tenant: str, slot: _TenantSlot, exc: BaseException
    ) -> None:
        if slot.runtime is not None:
            try:
                slot.runtime.close()
            except Exception:  # noqa: BLE001 — already crashing
                pass
        slot.runtime = None
        slot.crash_streak += 1
        slot.last_error = f"{type(exc).__name__}: {exc}"
        slot.crash_log.append(slot.last_error)
        if slot.crash_streak >= self.cfg.max_restarts:
            slot.state = QUARANTINED
            logger.error(
                "tenant %s quarantined after %d consecutive crashes: %s",
                tenant, slot.crash_streak, slot.last_error,
            )
        else:
            delay = self.policy.backoff(slot.crash_streak - 1)
            slot.state = RESTARTING
            slot.next_retry_at = self.clock() + delay
            logger.warning(
                "tenant %s crashed (streak %d), restart in %.3fs: %s",
                tenant, slot.crash_streak, delay, slot.last_error,
            )

    def clear_quarantine(self, tenant: str) -> None:
        """Operator override: give a quarantined tenant a fresh streak."""
        slot = self._slots.get(tenant)
        if slot is None or slot.state != QUARANTINED:
            raise KeyError(f"tenant {tenant!r} is not quarantined")
        slot.state = RESTARTING
        slot.crash_streak = 0
        slot.next_retry_at = self.clock()

    # -- dispatch ----------------------------------------------------------

    def _shed_payload(self, slot: _TenantSlot) -> Tuple[str, dict]:
        if slot.state == QUARANTINED:
            return "quarantined", {"detail": slot.last_error}
        return "shed", {
            "retry_after": max(slot.next_retry_at - self.clock(), 1e-3)
        }

    def _ensure_running(self, tenant: str, slot: _TenantSlot) -> bool:
        """Recover a RESTARTING slot whose backoff has expired."""
        if slot.state == RUNNING:
            return True
        if slot.state == QUARANTINED:
            return False
        if self.clock() < slot.next_retry_at:
            return False
        try:
            slot.runtime = self._recover(tenant)
        except JournalTornWrite:
            raise
        except Exception as exc:  # noqa: BLE001 — isolation boundary
            self._mark_crashed(tenant, slot, exc)
            return False
        slot.state = RUNNING
        slot.restarts += 1
        logger.info(
            "tenant %s recovered (restart %d)", tenant, slot.restarts
        )
        return True

    def dispatch_batch(
        self, tenant: str, records: List[dict]
    ) -> List[Tuple[str, dict]]:
        """Journal-then-apply a batch of validated records for one tenant.

        The durable path: records that will change state are journaled
        with **one** group-commit fsync (:meth:`WriteAheadJournal.append_many`),
        then applied in order.  Duplicates and out-of-order records are
        answered without touching disk.  Responses are ``(status,
        payload)`` pairs aligned with ``records``; shed responses carry
        ``retry_after``.  A tenant crash mid-batch sheds the rest of the
        batch (their journaled records replay on recovery, and the
        client's resends collapse into duplicate acks) — it never
        escapes to the caller.  :class:`~repro.serving.journal.JournalTornWrite`
        *does* escape: a torn append means this process must die.
        """
        if self.fencing is not None and self.fencing.fenced:
            # Superseded: this node must never journal (= ack) again.
            return [
                (FENCED, {"fence": self.fencing.epoch}) for _ in records
            ]
        slot = self.slot(tenant)
        if not self._ensure_running(tenant, slot):
            return [self._shed_payload(slot) for _ in records]
        runtime = slot.runtime
        # Classify against a *predicted* epoch cursor so a pipelined
        # batch (report e, close e, report e+1, ...) journals in one go.
        pred = runtime.next_epoch
        plans: List[str] = []
        to_journal: List[dict] = []
        for record in records:
            op = record["op"]
            if op in ("report", "report_batch", "close_epoch"):
                epoch = record["epoch"]
                if epoch < pred:
                    plan = DUPLICATE
                elif epoch > pred:
                    plan = BAD_EPOCH
                else:
                    plan = APPLIED
                    if op == "close_epoch":
                        pred += 1
            else:
                # diagnose is classified at *apply* time, after earlier
                # records in the batch have taken effect — a diagnose
                # referencing a crisis that a close_epoch in this same
                # pipelined batch detects must not be rejected against
                # the pre-batch library.  An unknown crisis becomes a
                # journaled no-op (idempotent on replay).
                plan = APPLIED
            plans.append(plan)
            if plan == APPLIED:
                to_journal.append(record)
        try:
            runtime.journal.append_many(to_journal)
        except JournalTornWrite:
            raise
        except StaleFencingToken:
            # Fenced between the check above and the append (a newer
            # epoch arrived on another connection): reject everything.
            return [
                (FENCED, {"fence": self.fencing.epoch}) for _ in records
            ]
        except OSError as exc:
            # Disk full: the batch was rolled back; shed every record
            # that needed the journal, answer the rest normally.
            logger.warning(
                "journal append failed for tenant %s: %s", tenant, exc
            )
            return [
                ("shed", {"retry_after": 0.5, "detail": "journal-error"})
                if plan == APPLIED
                else (plan, {"events": []})
                for plan in plans
            ]
        if self.on_journaled is not None and to_journal:
            # The journal stream is the replication stream: ship copies
            # (seqs now assigned) before applying, so a tenant crash
            # mid-apply cannot hide durably journaled records from the
            # standby — they replay identically on both sides.
            self.on_journaled(tenant, [dict(r) for r in to_journal])
        responses: List[Tuple[str, dict]] = []
        crashed = False
        for record, plan in zip(records, plans):
            # Batch acks carry how many machine reports they covered,
            # so clients can account throughput without re-parsing.
            extra_fields = (
                {"n": len(record["machines"])}
                if record["op"] == "report_batch"
                else {}
            )
            if plan != APPLIED:
                responses.append((plan, {"events": [], **extra_fields}))
                continue
            if crashed:
                responses.append(self._shed_payload(slot))
                continue
            try:
                status, events = runtime.apply(record)
            except JournalTornWrite:
                raise
            except Exception as exc:  # noqa: BLE001 — isolation boundary
                self._mark_crashed(tenant, slot, exc)
                crashed = True
                responses.append(self._shed_payload(slot))
                continue
            slot.crash_streak = 0
            responses.append(
                (
                    status,
                    {
                        "events": events,
                        "seq": record.get("seq"),
                        **extra_fields,
                    },
                )
            )
        return responses

    def dispatch(self, tenant: str, record: dict) -> Tuple[str, dict]:
        """Single-record convenience wrapper over :meth:`dispatch_batch`."""
        return self.dispatch_batch(tenant, [record])[0]

    # -- introspection / shutdown -----------------------------------------

    def stats(self) -> dict:
        out = {}
        for tenant, slot in sorted(self._slots.items()):
            out[tenant] = {
                "state": slot.state,
                "crash_streak": slot.crash_streak,
                "restarts": slot.restarts,
                "last_error": slot.last_error,
                "next_epoch": (
                    slot.runtime.next_epoch
                    if slot.runtime is not None else None
                ),
                "applied_seq": (
                    slot.runtime.applied_seq
                    if slot.runtime is not None else None
                ),
            }
        return out

    def checkpoint_all(self) -> None:
        """Graceful shutdown: snapshot every running tenant."""
        for tenant, slot in sorted(self._slots.items()):
            if slot.runtime is not None:
                try:
                    slot.runtime.checkpoint()
                except Exception as exc:  # noqa: BLE001
                    logger.warning(
                        "checkpoint of tenant %s failed on shutdown: %s",
                        tenant, exc,
                    )

    def close(self) -> None:
        for slot in self._slots.values():
            if slot.runtime is not None:
                slot.runtime.close()


__all__ = [
    "FENCED",
    "QUARANTINED",
    "RESTARTING",
    "RUNNING",
    "TenantSupervisor",
]
