"""Journal-shipping replication: warm standby over the wire protocol.

The durability story of PR 6 ends at the machine boundary: the journal
survives ``kill -9`` of the *process*, but not loss of the *node*.
This module closes that gap with a hot standby that tails the primary's
per-tenant write-ahead journals over the existing JSON-lines protocol:

* :class:`ReplicationHub` (primary side) — owns the subscriber set.  A
  standby sends ``repl_subscribe`` with per-tenant sequence cursors;
  the hub replays the journal suffix past each cursor, then streams
  every subsequently journaled batch (``repl_frames``) down the same
  connection, heartbeating on idle so the subscription is never
  mistaken for a slow-loris.  Subscriber acks (``repl_ack``) drive lag
  accounting, pin journal compaction (a record is only compacted once
  the slowest live subscriber has acked past it), and a subscriber that
  stops acking is reaped so a dead standby cannot pin the journal
  forever.

* :class:`StandbyReplicator` (standby side) — maintains the
  subscription, filters each pushed batch down to unseen sequence
  numbers, and applies it through the standby's **own**
  journal-then-apply path (:meth:`TenantSupervisor.dispatch_batch`).
  Because the standby journals the byte-identical record stream in the
  same order, its locally assigned sequence numbers must equal the
  primary's — checked record-for-record; a mismatch is
  :class:`ReplicationDivergence`, never silently absorbed.  Standby
  state is therefore bit-identical *by construction*: both sides run
  the same apply code over the same journal stream.

A standby whose cursor has fallen behind the primary's compaction
horizon cannot be caught up from the log alone; the hub answers
``snapshot-needed`` for that tenant and the operator re-seeds the
standby from the primary's state directory (runbook in
``docs/operations.md``).

Chaos seams (:class:`~repro.telemetry.chaos.ServingChaosConfig`):
``partition`` severs the link from the standby side, ``link_drop``
severs it from the primary side, and ``delayed_ack`` suppresses an ack
round — all pure functions of ``(seed, kind, index)``, so a chaos run's
damage schedule replays exactly.
"""

from __future__ import annotations

import itertools
import logging
import socket
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.serving import wire
from repro.serving.tenant import APPLIED
from repro.serving.wire import MalformedFrame
from repro.telemetry.reliability import RetryPolicy

logger = logging.getLogger(__name__)


class ReplicationDivergence(RuntimeError):
    """The standby's journal stream no longer matches the primary's.

    Raised when a replicated record lands under a different local
    sequence number (or fails to apply) — the standby's state can no
    longer be trusted to be bit-identical and must be re-seeded.
    """


class _InjectedPartition(ConnectionError):
    """Chaos: the replication link was severed mid-stream."""


class _Subscriber:
    """One standby's live subscription on the primary."""

    _ids = itertools.count(1)

    def __init__(self, conn: socket.socket, addr, cursors: Dict[str, int]):
        self.sid = next(self._ids)
        self.conn = conn
        self.addr = addr
        #: Highest seq per tenant the standby has durably applied.
        self.acked: Dict[str, int] = dict(cursors)
        #: Tenants this subscriber cannot log-catch-up on
        #: (snapshot-needed): live frames for them are withheld and
        #: their acks ignored until the standby is re-seeded.
        self.skip: set = set()
        self.queue: deque = deque()
        self.cond = threading.Condition()
        self.last_ack = time.monotonic()
        self.closed = False

    def close(self) -> None:
        with self.cond:
            self.closed = True
            self.cond.notify_all()
        try:
            self.conn.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.conn.close()
        except OSError:
            pass


class ReplicationHub:
    """Primary-side fan-out of the journal stream to subscribed standbys."""

    def __init__(self, server, chaos=None):
        self.server = server
        self.chaos = chaos
        self._subs: List[_Subscriber] = []
        self._subs_lock = threading.Lock()
        self.frames_shipped = 0
        self.subscribers_reaped = 0

    # -- supervisor taps ---------------------------------------------------

    def publish(self, tenant: str, records: List[dict]) -> None:
        """Enqueue a freshly journaled batch to every live subscriber.

        Called under the server's dispatch lock, immediately after the
        records hit the primary's journal — the same lock the catch-up
        snapshot in :meth:`serve_subscriber` is taken under, so each
        subscriber sees every record exactly once: in the catch-up
        replay if journaled before registration, in the queue after.
        """
        with self._subs_lock:
            subs = list(self._subs)
        for sub in subs:
            with sub.cond:
                if not sub.closed:
                    sub.queue.append((tenant, [dict(r) for r in records]))
                    sub.cond.notify_all()

    def retention_floor(self, tenant: str) -> Optional[int]:
        """Lowest acked cursor any live subscriber holds for ``tenant``.

        Journal compaction must keep everything past this floor so the
        subscriber can resume from its cursor after a reconnect.  A
        subscriber that never acks is reaped (``repl_ack_timeout_s``),
        releasing its pin.  Only subscribers actually *tracking* the
        tenant count — one already behind the compaction horizon
        (snapshot-needed) has no cursor here and must not freeze
        compaction at zero forever.  ``None`` when nobody tracks it.
        """
        with self._subs_lock:
            subs = [s for s in self._subs if not s.closed]
        cursors = [
            sub.acked[tenant] for sub in subs if tenant in sub.acked
        ]
        return min(cursors) if cursors else None

    # -- subscription lifecycle --------------------------------------------

    def serve_subscriber(
        self, conn: socket.socket, addr, request: dict,
        leftover: List[bytes], tail: bytes = b"",
    ) -> None:
        """Run one replication subscription; returns when the link dies.

        Runs on the connection's accept thread: sends the subscribe
        response and the catch-up suffix, spawns a writer for live
        frames + heartbeats, and consumes ``repl_ack`` frames until the
        subscriber disappears or is reaped.
        """
        server = self.server
        sub_fence = request.get("fence")
        if sub_fence is not None and sub_fence > server.fencing.epoch:
            # The subscriber has seen a newer primary than us: we are
            # the stale side of a partition.  Seal ourselves.
            server.fencing.fence(sub_fence)
            conn.sendall(wire.encode_frame(wire.error_response(
                "fenced", fence=server.fencing.epoch,
            )))
            return
        cursors = request["cursors"]
        catchup: List[Tuple[str, List[dict]]] = []
        snapshot_needed: List[str] = []
        start_cursors: Dict[str, int] = {}
        with server._lock:
            for tenant in server.supervisor.tenants():
                slot = server.supervisor.peek(tenant)
                runtime = slot.runtime if slot is not None else None
                if runtime is None:
                    continue  # quarantined/restarting: resumes later
                cursor = cursors.get(tenant, 0)
                if cursor < runtime.compacted_through:
                    # The journal no longer holds the suffix this
                    # subscriber needs; it must be re-seeded.
                    snapshot_needed.append(tenant)
                    continue
                records = runtime.journal.replay(after_seq=cursor)
                start_cursors[tenant] = cursor
                if records:
                    catchup.append((tenant, records))
            sub = _Subscriber(conn, addr, start_cursors)
            sub.skip = set(snapshot_needed)
            with self._subs_lock:
                self._subs.append(sub)
        try:
            conn.sendall(wire.encode_frame(wire.ok_response(
                op="repl_subscribe",
                fence=server.fencing.epoch,
                tenants=start_cursors,
                snapshot_needed=snapshot_needed,
            )))
            writer = threading.Thread(
                target=self._writer, args=(sub, catchup),
                name=f"repl-writer-{sub.sid}", daemon=True,
            )
            writer.start()
            self._reader(sub, leftover, tail)
        finally:
            sub.close()
            with self._subs_lock:
                if sub in self._subs:
                    self._subs.remove(sub)

    def _send_frames(self, sub: _Subscriber, batch) -> None:
        tenant, records = batch
        cap = self.server.cfg.repl_batch_records
        for i in range(0, len(records), cap):
            sub.conn.sendall(wire.encode_frame({
                "op": "repl_frames",
                "tenant": tenant,
                "records": records[i:i + cap],
            }))
            self.frames_shipped += 1

    def _writer(self, sub: _Subscriber, catchup) -> None:
        cfg = self.server.cfg
        try:
            for batch in catchup:
                self._send_frames(sub, batch)
            last_sent = time.monotonic()
            while not sub.closed and not self.server._stopping.is_set():
                with sub.cond:
                    if not sub.queue:
                        sub.cond.wait(timeout=cfg.heartbeat_interval_s / 2)
                    batches = []
                    while sub.queue:
                        batches.append(sub.queue.popleft())
                if sub.closed:
                    return
                now = time.monotonic()
                if now - sub.last_ack > cfg.repl_ack_timeout_s:
                    # Dead subscriber: reap it so its retention pin and
                    # socket do not outlive the standby it belonged to.
                    self.subscribers_reaped += 1
                    logger.warning(
                        "reaping replication subscriber %s "
                        "(no ack for %.1fs)", sub.addr, now - sub.last_ack,
                    )
                    return
                if batches and self.chaos is not None:
                    idx = self.chaos.next_index("link_drop")
                    if self.chaos.fires("link_drop", idx):
                        logger.warning(
                            "chaos: dropping replication link %s", sub.addr
                        )
                        return
                for batch in batches:
                    if batch[0] in sub.skip:
                        # This tenant's suffix is gone from the log;
                        # pushing its live tail would only wedge the
                        # standby on an epoch gap.  Re-seed resolves it.
                        continue
                    self._send_frames(sub, batch)
                    last_sent = time.monotonic()
                if (
                    not batches
                    and time.monotonic() - last_sent
                    >= cfg.heartbeat_interval_s
                ):
                    # Idle link: heartbeat so the subscriber knows the
                    # primary is alive and the subscription is never
                    # dropped as a slow-loris.
                    sub.conn.sendall(
                        wire.encode_frame({"op": "repl_heartbeat"})
                    )
                    last_sent = time.monotonic()
        except OSError:
            pass
        finally:
            sub.close()

    def _reader(
        self, sub: _Subscriber, leftover: List[bytes], tail: bytes = b""
    ) -> None:
        """Consume ``repl_ack`` frames until the link dies."""
        buffer = bytes(tail)
        lines = deque(line for line in leftover if line.strip())
        sub.conn.settimeout(0.2)
        while not sub.closed and not self.server._stopping.is_set():
            while lines:
                line = lines.popleft()
                try:
                    request = wire.parse_request(wire.decode_frame(line))
                except MalformedFrame:
                    logger.warning(
                        "malformed frame on replication link %s", sub.addr
                    )
                    return
                if request["op"] != "repl_ack":
                    logger.warning(
                        "unexpected op %r on replication link %s",
                        request["op"], sub.addr,
                    )
                    return
                for tenant, seq in request["cursors"].items():
                    if tenant in sub.skip:
                        continue  # stale by definition: no retention pin
                    if seq > sub.acked.get(tenant, 0):
                        sub.acked[tenant] = seq
                sub.last_ack = time.monotonic()
            try:
                chunk = sub.conn.recv(65536)
            except socket.timeout:
                continue
            except OSError:
                return
            if not chunk:
                return
            buffer += chunk
            if b"\n" in buffer:
                *complete, buffer = buffer.split(b"\n")
                lines.extend(line for line in complete if line.strip())

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        """Per-subscriber acked cursors and lag, for the ``stats`` verb."""
        with self._subs_lock:
            subs = [s for s in self._subs if not s.closed]
        out = []
        now = time.monotonic()
        with self.server._lock:
            last_seqs = {
                tenant: slot.runtime.journal.last_seq
                for tenant in self.server.supervisor.tenants()
                for slot in [self.server.supervisor.peek(tenant)]
                if slot is not None and slot.runtime is not None
            }
        for sub in subs:
            lag = {
                tenant: max(0, last_seqs.get(tenant, 0)
                            - sub.acked.get(tenant, 0))
                for tenant in last_seqs
            }
            out.append({
                "id": sub.sid,
                "acked": dict(sub.acked),
                "lag": lag,
                "ack_age_s": now - sub.last_ack,
            })
        return {
            "subscribers": out,
            "frames_shipped": self.frames_shipped,
            "subscribers_reaped": self.subscribers_reaped,
        }

    def close(self) -> None:
        with self._subs_lock:
            subs = list(self._subs)
            self._subs.clear()
        for sub in subs:
            sub.close()


class StandbyReplicator:
    """Standby-side tailer: subscribe, apply, ack — reconnect forever.

    Owns a single daemon thread.  Applies every pushed batch through the
    standby server's supervisor under the server's dispatch lock (the
    standby still answers reads and admin verbs concurrently), verifies
    sequence-number parity with the primary, and acks its durable
    cursor.  Connection loss — including injected partitions — is
    retried against the endpoint list with the supervisor's seeded
    jittered backoff, resuming from the acked cursors (seq-based
    resume), so a flapping link re-ships only the unacked suffix.
    """

    def __init__(
        self,
        server,
        endpoints: Sequence[Tuple[str, int]],
        chaos=None,
        sleep=time.sleep,
    ):
        if not endpoints:
            raise ValueError("standby needs at least one primary endpoint")
        self.server = server
        self.endpoints = [(h, int(p)) for h, p in endpoints]
        self.chaos = chaos
        self.sleep = sleep
        self.policy = RetryPolicy(
            max_attempts=server.cfg.max_restarts,
            base_delay=server.cfg.restart_base_delay,
            max_delay=server.cfg.restart_max_delay,
            seed=server.cfg.seed,
        )
        self._stopping = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._sock: Optional[socket.socket] = None
        self._ep = 0
        self.connected = False
        self.subscriptions = 0
        self.frames_applied = 0
        self.records_applied = 0
        self.acks_sent = 0
        self.acks_suppressed = 0
        self.partitions = 0
        self.last_frame_at: Optional[float] = None
        self.last_error: Optional[str] = None
        self.snapshot_needed: List[str] = []
        self.diverged = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._loop, name="standby-replicator", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stopping.set()
        sock = self._sock
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    # -- cursors and acks --------------------------------------------------

    def _cursors(self) -> Dict[str, int]:
        with self.server._lock:
            out = {}
            for tenant in self.server.supervisor.tenants():
                slot = self.server.supervisor.peek(tenant)
                if slot is not None and slot.runtime is not None:
                    out[tenant] = slot.runtime.applied_seq
            return out

    def _send_ack(self) -> None:
        if self.chaos is not None:
            idx = self.chaos.next_index("delayed_ack")
            if self.chaos.fires("delayed_ack", idx):
                # Chaos: hold this ack; the cursor still advances
                # locally and rides out with the next ack round, so the
                # only observable effect is transient reported lag.
                self.acks_suppressed += 1
                return
        self._sock.sendall(wire.encode_frame({
            "op": "repl_ack", "cursors": self._cursors(),
        }))
        self.acks_sent += 1

    # -- the apply path ----------------------------------------------------

    def _apply(self, tenant: str, records: List[dict]) -> None:
        """Apply one pushed batch through the live dispatch path."""
        with self.server._lock:
            slot = self.server.supervisor.peek(tenant)
            current = (
                slot.runtime.applied_seq
                if slot is not None and slot.runtime is not None else 0
            )
            fresh = [r for r in records if r["seq"] > current]
            if not fresh:
                return
            expected = [r["seq"] for r in fresh]
            stripped = [
                {k: v for k, v in r.items() if k != "seq"} for r in fresh
            ]
            results = self.server.supervisor.dispatch_batch(
                tenant, stripped
            )
        for (status, payload), want in zip(results, expected):
            if status != APPLIED:
                # Shed/quarantine on the standby: the cursor did not
                # advance; drop the link and let seq-based resume
                # re-ship after the supervisor's backoff.
                raise _InjectedPartition(
                    f"standby could not apply seq {want} for tenant "
                    f"{tenant!r} (status {status}); resuming from cursor"
                )
            got = payload.get("seq")
            if got != want:
                self.diverged = True
                raise ReplicationDivergence(
                    f"tenant {tenant!r}: primary seq {want} landed as "
                    f"local seq {got}; standby must be re-seeded"
                )
        self.frames_applied += 1
        self.records_applied += len(fresh)

    # -- the subscription loop ---------------------------------------------

    def _read_frame(self, buffer: bytearray) -> dict:
        sock = self._sock
        while b"\n" not in buffer:
            chunk = sock.recv(65536)
            if not chunk:
                raise ConnectionError("replication link closed")
            buffer.extend(chunk)
        line, _, rest = bytes(buffer).partition(b"\n")
        buffer[:] = rest
        return wire.decode_frame(line)

    def _loop(self) -> None:
        attempt = 0
        while not self._stopping.is_set():
            endpoint = self.endpoints[self._ep % len(self.endpoints)]
            try:
                self._run_subscription(endpoint)
                attempt = 0
            except ReplicationDivergence as exc:
                self.last_error = str(exc)
                self.connected = False
                logger.critical("replication divergence: %s", exc)
                return  # fatal: re-seed required, never auto-resume
            except (OSError, ConnectionError, MalformedFrame) as exc:
                self.last_error = f"{type(exc).__name__}: {exc}"
                self.connected = False
                self._ep += 1
                if self._stopping.is_set():
                    return
                delay = self.policy.backoff(
                    min(attempt, self.policy.max_attempts - 1)
                )
                attempt += 1
                self.sleep(delay)

    def _run_subscription(self, endpoint: Tuple[str, int]) -> None:
        cfg = self.server.cfg
        sock = socket.create_connection(endpoint, timeout=5.0)
        self._sock = sock
        try:
            sock.sendall(wire.encode_frame({
                "op": "repl_subscribe",
                "cursors": self._cursors(),
                "fence": self.server.fencing.epoch,
            }))
            buffer = bytearray()
            sock.settimeout(5.0)
            resp = self._read_frame(buffer)
            if not resp.get("ok"):
                raise ConnectionError(
                    f"subscription rejected: {resp.get('error')}"
                )
            fence = resp.get("fence")
            if fence is not None:
                self.server.fencing.observe(int(fence))
            self.snapshot_needed = list(resp.get("snapshot_needed", []))
            if self.snapshot_needed:
                logger.error(
                    "standby is behind the primary's compaction horizon "
                    "for tenants %s: re-seed required (see the failover "
                    "runbook)", self.snapshot_needed,
                )
            self.subscriptions += 1
            self.connected = True
            # The primary heartbeats on idle; silence beyond the ack
            # timeout means the link (or the primary) is gone.
            sock.settimeout(cfg.repl_ack_timeout_s)
            batch_idx = 0
            skip = set(self.snapshot_needed)
            while not self._stopping.is_set():
                push = wire.parse_repl_push(self._read_frame(buffer))
                self.last_frame_at = time.monotonic()
                if push["op"] == "repl_heartbeat":
                    self._send_ack()
                    continue
                if push["tenant"] in skip:
                    # Behind the compaction horizon for this tenant:
                    # only a re-seed can fix it; applying the live
                    # tail would wedge on the epoch gap.
                    continue
                if self.chaos is not None:
                    idx = self.chaos.next_index("partition")
                    if self.chaos.fires("partition", idx):
                        self.partitions += 1
                        raise _InjectedPartition(
                            f"chaos: partition at batch {batch_idx}"
                        )
                batch_idx += 1
                self._apply(push["tenant"], push["records"])
                self._send_ack()
        finally:
            self.connected = False
            self._sock = None
            try:
                sock.close()
            except OSError:
                pass

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        now = time.monotonic()
        return {
            "endpoints": [f"{h}:{p}" for h, p in self.endpoints],
            "connected": self.connected,
            "subscriptions": self.subscriptions,
            "frames_applied": self.frames_applied,
            "records_applied": self.records_applied,
            "acks_sent": self.acks_sent,
            "acks_suppressed": self.acks_suppressed,
            "partitions": self.partitions,
            "last_frame_age_s": (
                None if self.last_frame_at is None
                else now - self.last_frame_at
            ),
            "snapshot_needed": list(self.snapshot_needed),
            "diverged": self.diverged,
            "last_error": self.last_error,
        }


__all__ = [
    "ReplicationDivergence",
    "ReplicationHub",
    "StandbyReplicator",
]
