"""Durable multi-tenant ingestion front door (ROADMAP item 1).

The paper's monitor must run *through* the crises it diagnoses, so this
package turns the in-process :class:`repro.core.streaming.StreamingCrisisMonitor`
into a long-running service engineered for durability first:

* :mod:`repro.serving.wire` — the JSON-lines wire format and its typed
  validation errors;
* :mod:`repro.serving.journal` — the per-tenant write-ahead journal
  (append + fsync *before* ack, CRC-framed records, torn-tail replay,
  compaction after checkpoint);
* :mod:`repro.serving.tenant` — one tenant's engine: pending-epoch
  buffer, quality-gated epoch close, checkpoint + journal cursor,
  bit-identical crash recovery;
* :mod:`repro.serving.supervisor` — restart-with-backoff and crash-loop
  quarantine so one bad tenant never takes down the service;
* :mod:`repro.serving.server` — the threaded TCP front door with
  admission control (explicit retry-after, bounded in-flight) and
  slow-loris defense;
* :mod:`repro.serving.loadgen` — deterministic load generator and
  resend-on-reconnect client (with endpoint failover and fencing-token
  tracking) used by tests, chaos runs, and the
  ``benchmarks/test_serving_ingest.py`` benchmark;
* :mod:`repro.serving.fencing` — monotonic fencing epochs, the
  split-brain guard for failover;
* :mod:`repro.serving.replication` — journal-shipping replication to a
  warm standby (the WAL stream *is* the replication stream), with
  seq-based resume, lag accounting, and retention pinning;
* :mod:`repro.serving.failover` — the probe → promote → fence
  controller.

See ``docs/serving.md`` for the wire format and the operational runbook.
"""

from repro.serving.journal import (
    JournalCorruptError,
    JournalError,
    JournalTornWrite,
    WriteAheadJournal,
)
from repro.serving.failover import FailoverController
from repro.serving.fencing import FencingState, StaleFencingToken
from repro.serving.loadgen import LoadResult, ServingClient, run_load
from repro.serving.replication import (
    ReplicationDivergence,
    ReplicationHub,
    StandbyReplicator,
)
from repro.serving.server import IngestServer
from repro.serving.supervisor import (
    FENCED,
    QUARANTINED,
    RESTARTING,
    RUNNING,
    TenantSupervisor,
)
from repro.serving.tenant import TenantRuntime
from repro.serving.wire import (
    MalformedFrame,
    decode_frame,
    encode_frame,
    event_from_wire,
    event_to_wire,
    parse_repl_push,
    parse_request,
)

__all__ = [
    "FENCED",
    "FailoverController",
    "FencingState",
    "IngestServer",
    "ReplicationDivergence",
    "ReplicationHub",
    "StaleFencingToken",
    "StandbyReplicator",
    "JournalCorruptError",
    "JournalError",
    "JournalTornWrite",
    "LoadResult",
    "MalformedFrame",
    "QUARANTINED",
    "RESTARTING",
    "RUNNING",
    "ServingClient",
    "TenantRuntime",
    "TenantSupervisor",
    "WriteAheadJournal",
    "decode_frame",
    "encode_frame",
    "event_from_wire",
    "event_to_wire",
    "parse_repl_push",
    "parse_request",
    "run_load",
]
