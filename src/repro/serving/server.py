"""Threaded TCP front door: admission control, batching, durability.

One accept loop plus one thread per connection; per-tenant work is
serialized by the supervisor lock, so tenant engines never see
concurrent applies.  The receive loop drains *every* complete frame
available on the socket before dispatching, which is where group commit
comes from: a pipelined client's burst becomes one journal fsync per
tenant per drain, not one per report.

**Admission control.**  A global in-flight budget
(``cfg.max_inflight``) bounds accepted-but-unapplied requests across
all connections.  Beyond it the server answers
``{"ok": false, "error": "overloaded", "retry_after": s}`` — an
explicit shed, never a silent drop and never an unbounded queue.
``peak_inflight`` records the high-water mark so tests can prove the
bound was honored.

**Slow-loris defense.**  A connection that leaves a partial frame
unfinished for ``cfg.idle_timeout_s`` is dropped, as is any frame
longer than ``cfg.max_frame_bytes``.

**Fatality.**  A torn journal write
(:class:`~repro.serving.journal.JournalTornWrite`) means the store can
no longer be trusted to ack — the server stops accepting and shuts
down; the on-disk state is exactly what a mid-write power cut leaves,
and restart-time replay truncates the torn tail.

**Roles (PR 7).**  A server runs as ``primary`` (accepts writes, fans
journaled batches out to subscribed standbys via
:class:`~repro.serving.replication.ReplicationHub`) or ``standby``
(rejects client writes with an explicit ``standby`` error, tails the
primary's journal stream through a
:class:`~repro.serving.replication.StandbyReplicator`, and answers
reads/stats).  :meth:`IngestServer.promote` flips a standby to primary,
minting a fresh fencing epoch; write requests carrying a stale fencing
token are rejected (``stale-fence``), and a token *newer* than the
node's own fences the node permanently (split-brain guard — see
:mod:`repro.serving.fencing`).
"""

from __future__ import annotations

import logging
import socket
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import ServingConfig
from repro.serving import wire
from repro.serving.fencing import FencingState
from repro.serving.journal import JournalTornWrite
from repro.serving.replication import ReplicationHub, StandbyReplicator
from repro.serving.supervisor import FENCED, TenantSupervisor

logger = logging.getLogger(__name__)

#: How statuses from the tenant/supervisor layer map onto the wire.
_OK_STATUSES = {"applied", "duplicate"}

#: Verbs that reach the journal (and therefore replication + fencing).
_JOURNALED_OPS = ("report", "report_batch", "close_epoch", "diagnose")


class IngestServer:
    """The durable multi-tenant ingestion service."""

    def __init__(
        self,
        cfg: ServingConfig,
        root,
        host: str = "127.0.0.1",
        port: int = 0,
        journal_hook_factory: Optional[Callable[[str], Optional[Callable]]] = None,
        fault_hook_factory: Optional[Callable[[str], Optional[Callable]]] = None,
        standby_of: Optional[Sequence[Tuple[str, int]]] = None,
        repl_chaos=None,
    ):
        self.cfg = cfg
        self.host = host
        self.port = port
        self.role = "standby" if standby_of else "primary"
        self.fencing = FencingState(root)
        # Every server owns a hub: a standby's hub simply has no
        # subscribers until the node is promoted (and chained standbys
        # work for free).  The hub pins journal compaction at the
        # slowest live subscriber's acked cursor.
        self.hub = ReplicationHub(self, chaos=repl_chaos)
        self.supervisor = TenantSupervisor(
            cfg, root,
            journal_hook_factory=journal_hook_factory,
            fault_hook_factory=fault_hook_factory,
            fencing=self.fencing,
            on_journaled=self.hub.publish,
            retention_floor=self.hub.retention_floor,
        )
        self.replicator: Optional[StandbyReplicator] = None
        if standby_of:
            self.replicator = StandbyReplicator(
                self, standby_of, chaos=repl_chaos
            )
        self.standby_rejects = 0
        self.stale_fence_rejects = 0
        self._lock = threading.Lock()  # serializes supervisor access
        self._admission = threading.Lock()  # guards in-flight counters
        self.inflight = 0
        self.peak_inflight = 0
        self.overload_responses = 0
        self.malformed_frames = 0
        self.slowloris_drops = 0
        self.accepted_total = 0
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_threads: List[threading.Thread] = []
        self._stopping = threading.Event()
        self.fatal_error: Optional[str] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> int:
        """Recover existing tenants, bind, and serve; returns the port."""
        adopted = self.supervisor.adopt_existing()
        if adopted:
            logger.info("recovered tenants at startup: %s", adopted)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        listener.settimeout(0.2)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="serving-accept", daemon=True
        )
        self._accept_thread.start()
        if self.replicator is not None:
            self.replicator.start()
        return self.port

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn, addr),
                name=f"serving-conn-{addr[1]}",
                daemon=True,
            )
            self._conn_threads.append(thread)
            thread.start()
            self._conn_threads = [
                t for t in self._conn_threads if t.is_alive()
            ]

    def close(self, checkpoint: bool = True) -> None:
        """Graceful shutdown: stop accepting, drain, checkpoint tenants."""
        self._stopping.set()
        if self.replicator is not None:
            self.replicator.stop()
        self.hub.close()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        for thread in self._conn_threads:
            thread.join(timeout=2.0)
        with self._lock:
            if checkpoint and self.fatal_error is None:
                self.supervisor.checkpoint_all()
            self.supervisor.close()

    def promote(self) -> int:
        """Flip this node to primary under a fresh fencing epoch.

        Stops the standby replicator *before* taking the dispatch lock
        (the replicator thread may be blocked on it mid-apply), then
        mints the new epoch — strictly above everything this node has
        observed from its old primary, so the displaced primary's token
        is stale everywhere and the displaced primary fences itself on
        first contact with any post-promotion writer.
        """
        replicator = self.replicator
        if replicator is not None:
            self.replicator = None
            replicator.stop()
        with self._lock:
            epoch = self.fencing.mint()
            self.role = "primary"
        logger.warning("promoted to primary at fencing epoch %d", epoch)
        return epoch

    def _fatal(self, message: str) -> None:
        # The journal can no longer guarantee the ack contract: stop the
        # world.  On-disk state is a valid crash image; restart recovers.
        self.fatal_error = message
        logger.critical("fatal serving error, shutting down: %s", message)
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass

    # -- connection handling ----------------------------------------------

    def _serve_connection(self, conn: socket.socket, addr) -> None:
        conn.settimeout(self.cfg.idle_timeout_s)
        buffer = b""
        try:
            while not self._stopping.is_set():
                try:
                    chunk = conn.recv(65536)
                except socket.timeout:
                    if buffer:
                        # Mid-frame stall: the slow-loris signature.
                        self.slowloris_drops += 1
                        logger.warning(
                            "dropping slow-loris connection %s "
                            "(%d bytes stalled mid-frame)",
                            addr, len(buffer),
                        )
                        return
                    continue
                except OSError:
                    return
                if not chunk:
                    return
                buffer += chunk
                if b"\n" not in buffer:
                    if len(buffer) > self.cfg.max_frame_bytes:
                        conn.sendall(wire.encode_frame(
                            wire.error_response("frame-too-long")
                        ))
                        return
                    continue
                *lines, buffer = buffer.split(b"\n")
                handoff = self._find_subscribe(lines)
                if handoff is not None:
                    index, request = handoff
                    responses = self._handle_lines(lines[:index])
                    if responses:
                        conn.sendall(b"".join(
                            wire.encode_frame(r) for r in responses
                        ))
                    # The connection now belongs to the replication
                    # hub: it pushes frames/heartbeats and reads acks
                    # until the subscriber disappears or is reaped.
                    conn.settimeout(None)
                    self.hub.serve_subscriber(
                        conn, addr, request, lines[index + 1:], buffer
                    )
                    return
                responses = self._handle_lines(lines)
                if responses:
                    conn.sendall(b"".join(
                        wire.encode_frame(r) for r in responses
                    ))
        except JournalTornWrite as exc:
            self._fatal(str(exc))
        except OSError:
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _find_subscribe(
        self, lines: List[bytes]
    ) -> Optional[Tuple[int, dict]]:
        """Locate a valid ``repl_subscribe`` frame in a drained batch.

        A malformed subscribe falls through to :meth:`_handle_lines`
        and is answered with the usual ``malformed`` error.
        """
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                request = wire.parse_request(wire.decode_frame(line))
            except wire.MalformedFrame:
                continue
            if request["op"] == "repl_subscribe":
                return i, request
        return None

    def _admit(self, n: int) -> int:
        """Reserve in-flight slots; returns how many were granted."""
        with self._admission:
            granted = max(0, min(n, self.cfg.max_inflight - self.inflight))
            self.inflight += granted
            self.peak_inflight = max(self.peak_inflight, self.inflight)
        return granted

    def _release(self, n: int) -> None:
        with self._admission:
            self.inflight -= n

    def _handle_lines(self, lines: List[bytes]) -> List[dict]:
        """Parse, admit, and dispatch one drained batch of frames.

        Journaled verbs for the same tenant that sit adjacently in the
        batch are dispatched together (one group commit); control verbs
        are answered inline.  Response order matches frame order.
        """
        parsed: List[Tuple[Optional[dict], Optional[dict]]] = []
        admitted = 0
        for line in lines:
            if not line.strip():
                continue  # blank keep-alive lines are ignored
            if len(line) > self.cfg.max_frame_bytes:
                parsed.append((None, wire.error_response("frame-too-long")))
                continue
            try:
                request = wire.parse_request(wire.decode_frame(line))
            except wire.MalformedFrame as exc:
                self.malformed_frames += 1
                parsed.append(
                    (None, wire.error_response("malformed", detail=str(exc)))
                )
                continue
            if request["op"] in _JOURNALED_OPS:
                if self.role != "primary":
                    # A standby never acks client writes: an ack here
                    # could be lost when the real primary's stream is
                    # replayed over this node.
                    self.standby_rejects += 1
                    parsed.append((None, wire.error_response(
                        "standby", fence=self.fencing.epoch,
                    )))
                    continue
                token = request.pop("fence", None)
                if token is not None:
                    if token > self.fencing.epoch:
                        # The writer has seen a newer primary: we are
                        # the stale side of a failover.  Seal this node
                        # permanently before another byte is journaled.
                        self.fencing.fence(token)
                        parsed.append((None, wire.error_response(
                            "fenced", fence=self.fencing.epoch,
                        )))
                        continue
                    if token < self.fencing.epoch:
                        # Stale writer: reject with the current epoch
                        # so the client adopts it and retries.
                        self.stale_fence_rejects += 1
                        parsed.append((None, wire.error_response(
                            "stale-fence", fence=self.fencing.epoch,
                        )))
                        continue
                if self._admit(1) == 0:
                    self.overload_responses += 1
                    parsed.append((None, wire.error_response(
                        "overloaded", retry_after=0.05,
                    )))
                    continue
                admitted += 1
                self.accepted_total += 1
                parsed.append((request, None))
            else:
                parsed.append((request, None))
        responses: List[Optional[dict]] = [resp for _, resp in parsed]
        try:
            # Dispatch journaled verbs tenant-batch by tenant-batch,
            # preserving order within the drained buffer.
            i = 0
            while i < len(parsed):
                request, pre = parsed[i]
                if request is None:
                    i += 1
                    continue
                op = request["op"]
                if op not in _JOURNALED_OPS:
                    responses[i] = self._control(request)
                    i += 1
                    continue
                tenant = request["tenant"]
                j = i
                batch: List[dict] = []
                slots: List[int] = []
                while j < len(parsed):
                    req_j, _ = parsed[j]
                    if (
                        req_j is None
                        or req_j.get("tenant") != tenant
                        or req_j["op"] not in _JOURNALED_OPS
                    ):
                        break
                    batch.append(dict(req_j))
                    slots.append(j)
                    j += 1
                with self._lock:
                    results = self.supervisor.dispatch_batch(tenant, batch)
                for slot_i, (status, payload) in zip(slots, results):
                    responses[slot_i] = self._wire_response(status, payload)
                i = j
        finally:
            self._release(admitted)
        return [r for r in responses if r is not None]

    def _wire_response(self, status: str, payload: dict) -> dict:
        if status in _OK_STATUSES:
            # Batch acks carry n = machine reports the frame covered, so
            # clients can tally per-machine acked/duplicate counts.
            extra = {"n": payload["n"]} if "n" in payload else {}
            return wire.ok_response(
                seq=payload.get("seq"),
                events=payload.get("events", []),
                status=status,
                **extra,
            )
        if status == "shed":
            return wire.error_response(
                "restarting",
                retry_after=payload.get("retry_after", 0.1),
                detail=payload.get("detail"),
            )
        if status == "quarantined":
            return wire.error_response(
                "quarantined", detail=payload.get("detail")
            )
        if status == FENCED:
            return wire.error_response(
                "fenced", fence=payload.get("fence")
            )
        # bad-epoch / unknown-crisis: client-side errors.
        return wire.error_response(status)

    def _control(self, request: dict) -> dict:
        op = request["op"]
        if op == "ping":
            return wire.ok_response(op="pong")
        if op == "stats":
            replicator = self.replicator
            replication = {
                "hub": self.hub.stats(),
                "standby": (
                    replicator.stats() if replicator is not None else None
                ),
            }
            with self._lock:
                tenants = self.supervisor.stats()
            return wire.ok_response(
                role=self.role,
                fence=self.fencing.epoch,
                fenced=self.fencing.fenced,
                tenants=tenants,
                replication=replication,
                inflight=self.inflight,
                peak_inflight=self.peak_inflight,
                overload_responses=self.overload_responses,
                malformed_frames=self.malformed_frames,
                slowloris_drops=self.slowloris_drops,
                standby_rejects=self.standby_rejects,
                stale_fence_rejects=self.stale_fence_rejects,
                accepted_total=self.accepted_total,
            )
        if op == "promote":
            epoch = self.promote()
            return wire.ok_response(role=self.role, fence=epoch)
        if op == "fence":
            # Operator/controller verb: seal this node if the given
            # epoch supersedes it (idempotent; a node never fences
            # itself below or at its own minted epoch).
            fenced = self.fencing.fence(request["epoch"])
            return wire.ok_response(
                fence=self.fencing.epoch, fenced=fenced
            )
        if op == "unquarantine":
            tenant = request["tenant"]
            with self._lock:
                try:
                    self.supervisor.clear_quarantine(tenant)
                except KeyError:
                    return wire.error_response(
                        "not-quarantined", detail=tenant
                    )
            return wire.ok_response(tenant=tenant, status="restarting")
        if op == "repl_ack":
            # An ack outside a live subscription has nothing to update.
            return wire.error_response("not-subscribed")
        if op == "repl_subscribe":
            # Valid subscribes are handed off before dispatch; reaching
            # here means the frame shared a drain with a handed-off one.
            return wire.error_response("already-subscribed")
        # state / incidents / forecasts: one tenant's read-side
        # snapshot.  All read-only: an unknown name is an error, never a
        # freshly minted tenant directory (only journaled verbs create
        # slots).
        tenant = request["tenant"]
        with self._lock:
            slot = self.supervisor.peek(tenant)
            if slot is None:
                return wire.error_response(
                    "unknown-tenant", detail=tenant
                )
            if slot.runtime is None:
                return wire.error_response(
                    slot.state, detail=slot.last_error
                )
            if op == "incidents":
                return wire.ok_response(**slot.runtime.incidents())
            if op == "forecasts":
                return wire.ok_response(**slot.runtime.forecasts())
            return wire.ok_response(state=slot.runtime.state())


__all__ = ["IngestServer"]
