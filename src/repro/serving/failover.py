"""Failover controller: detect a dead primary, promote, fence.

A deliberately small external observer — the shape an operator's
watchdog (or the operator themselves, via ``repro admin``) takes:

1. **Probe** every endpoint with the ``stats`` verb.
2. A live, unfenced primary → healthy; nothing to do.
3. No live primary for ``grace_probes`` consecutive rounds (the grace
   period keeps a single dropped probe from triggering a needless
   failover) → **promote** the most caught-up reachable standby (the
   one with the highest total applied journal cursor, i.e. the least
   replication lag, so promotion loses the least acked-but-unshipped
   work) and **fence** every displaced primary (and any unreachable
   node, best-effort) with the freshly minted epoch; surviving standbys
   are left unfenced — they re-point at the new primary and adopt its
   epoch through their subscriptions.

Fencing the old primary here is best-effort — it may be partitioned
away.  Correctness does not depend on reaching it: its epoch is now
stale everywhere, so the first post-promotion client that contacts it
seals it (see :mod:`repro.serving.fencing`), and until then nothing it
acks is visible to clients that have observed the promotion.

The controller never *un*-fences and never re-seeds: returning a
displaced primary to service is an operator action (runbook in
``docs/operations.md``).
"""

from __future__ import annotations

import logging
import socket
from typing import Dict, List, Optional, Sequence, Tuple

from repro.serving import wire
from repro.serving.wire import MalformedFrame

logger = logging.getLogger(__name__)

Endpoint = Tuple[str, int]


class FailoverController:
    """Probe a fleet of serving nodes; promote a standby when needed."""

    def __init__(
        self,
        endpoints: Sequence[Endpoint],
        grace_probes: int = 2,
        probe_timeout: float = 2.0,
    ):
        if not endpoints:
            raise ValueError("controller needs at least one endpoint")
        if grace_probes < 1:
            raise ValueError("grace_probes must be at least 1")
        self.endpoints: List[Endpoint] = [
            (h, int(p)) for h, p in endpoints
        ]
        self.grace_probes = grace_probes
        self.probe_timeout = probe_timeout
        #: Consecutive probe rounds without a live primary.
        self.misses = 0
        self.promotions = 0

    # -- wire plumbing -----------------------------------------------------

    def _call(self, endpoint: Endpoint, request: dict) -> Optional[dict]:
        """One request/response against one node; ``None`` if unreachable."""
        try:
            with socket.create_connection(
                endpoint, timeout=self.probe_timeout
            ) as sock:
                sock.settimeout(self.probe_timeout)
                sock.sendall(wire.encode_frame(request))
                buffer = b""
                while b"\n" not in buffer:
                    chunk = sock.recv(65536)
                    if not chunk:
                        return None
                    buffer += chunk
                resp = wire.decode_frame(buffer.split(b"\n", 1)[0])
                return resp if resp.get("ok") else None
        except (OSError, MalformedFrame):
            return None

    def probe(self, endpoint: Endpoint) -> Optional[dict]:
        """The node's ``stats`` response, or ``None`` if it is down."""
        return self._call(endpoint, {"op": "stats"})

    # -- the control loop --------------------------------------------------

    @staticmethod
    def _applied_total(status: dict) -> int:
        """How caught-up a node is: its total applied journal cursor."""
        return sum(
            t.get("applied_seq") or 0
            for t in status.get("tenants", {}).values()
        )

    def step(self) -> dict:
        """One observe → decide → act round; returns what happened."""
        statuses: Dict[Endpoint, Optional[dict]] = {
            ep: self.probe(ep) for ep in self.endpoints
        }
        primaries = [
            ep for ep, s in statuses.items()
            if s is not None
            and s.get("role") == "primary"
            and not s.get("fenced")
        ]
        if primaries:
            self.misses = 0
            return {"action": "healthy", "primary": primaries[0]}
        self.misses += 1
        if self.misses < self.grace_probes:
            return {"action": "wait", "misses": self.misses}
        candidates = [
            ep for ep, s in statuses.items()
            if s is not None
            and s.get("role") == "standby"
            and not s.get("fenced")
        ]
        if not candidates:
            return {"action": "no-candidate", "misses": self.misses}
        candidate = max(
            candidates, key=lambda ep: self._applied_total(statuses[ep])
        )
        resp = self._call(candidate, {"op": "promote"})
        if resp is None:
            # The candidate died between probe and promote; next round
            # picks another (misses stays above the grace threshold).
            return {"action": "promote-failed", "endpoint": candidate}
        epoch = int(resp["fence"])
        self.promotions += 1
        self.misses = 0
        logger.warning(
            "promoted %s:%d to primary at fencing epoch %d",
            candidate[0], candidate[1], epoch,
        )
        fenced: List[Endpoint] = []
        for ep in self.endpoints:
            if ep == candidate:
                continue
            status = statuses[ep]
            if status is not None and status.get("role") == "standby":
                # A surviving standby is redundancy, not a threat: it
                # re-points at the new primary and adopts the epoch via
                # its subscription.  Fencing it would seal it for good.
                continue
            if self._call(ep, {"op": "fence", "epoch": epoch}) is not None:
                fenced.append(ep)
        return {
            "action": "promoted",
            "endpoint": candidate,
            "fence": epoch,
            "fenced": fenced,
        }


__all__ = ["FailoverController"]
