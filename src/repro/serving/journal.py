"""Per-tenant write-ahead journal: append + fsync before ack.

The durability contract of the serving tier: a report is acknowledged
only after its journal record has reached disk, so a ``kill -9`` at any
instant loses *at most* unacked work — the client's
resend-on-reconnect (:mod:`repro.serving.loadgen`) then re-delivers it.

Record framing is ``<u32 length> <u32 crc32> <payload>`` (little
endian), payload = compact JSON carrying the record's sequence number.
The CRC plus length prefix makes every torn-write mode detectable on
replay:

* a tail cut mid-payload (pulled plug) fails the length or CRC check —
  replay stops at the last intact record and :meth:`~WriteAheadJournal.truncate_tail`
  trims the garbage;
* a failed append (e.g. ``ENOSPC``) is rolled back by truncating the
  file to its pre-append size, so the journal never holds a half batch.

Group commit: :meth:`~WriteAheadJournal.append_many` writes a whole
batch of records and fsyncs **once**, which is what makes the
journal-per-report discipline affordable (see
``benchmarks/test_serving_ingest.py``).

After a checkpoint the applied prefix is dead weight;
:meth:`~WriteAheadJournal.compact` rewrites the journal atomically
(tmp + fsync + rename + dir fsync, the :mod:`repro.core.atomicio`
discipline) keeping only records past the checkpoint cursor.
"""

from __future__ import annotations

import json
import os
import pathlib
import struct
import tempfile
import zlib
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.atomicio import fsync_dir

#: ``<u32 length> <u32 crc32>`` record prefix.
_PREFIX = struct.Struct("<II")

#: Sanity cap on a single record; a length field beyond this is garbage,
#: not a record (protects replay from allocating absurd buffers).
MAX_RECORD_BYTES = 16 << 20


class JournalError(ValueError):
    """Base class for journal failures."""


class JournalCorruptError(JournalError):
    """A record that should be intact (not the tail) failed validation."""


class JournalTornWrite(JournalError):
    """An append was cut short mid-record (chaos mid-write kill).

    The in-process stand-in for dying inside ``write(2)``: the journal
    holds a torn tail exactly as a pulled plug would leave it, and the
    server must treat the process as dead (exit) rather than ack.
    """


def _frame(record: dict) -> bytes:
    payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
    return _PREFIX.pack(len(payload), zlib.crc32(payload)) + payload


class WriteAheadJournal:
    """Append-only, CRC-framed, fsync-on-commit record log.

    ``write_hook`` is the chaos seam: called with each encoded frame
    before it is written, it may raise ``OSError`` (disk full — the
    append is rolled back) or return a truncated prefix of the frame
    (torn write — the truncated bytes are written and
    :class:`JournalTornWrite` raised, leaving the on-disk state a crash
    would).  ``None`` (the default) writes frames verbatim.

    ``fence_check`` is the split-brain seam: called before any byte of
    a batch is written, it raises
    :class:`~repro.serving.fencing.StaleFencingToken` when this node
    has been superseded by a newer fencing epoch — a fenced node can
    never journal (and therefore never ack) again, no matter which code
    path reached the append.
    """

    def __init__(
        self,
        path,
        write_hook: Optional[Callable[[bytes], Optional[bytes]]] = None,
        fence_check: Optional[Callable[[], None]] = None,
    ):
        self.path = pathlib.Path(path)
        self.write_hook = write_hook
        self.fence_check = fence_check
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "ab")
        self._last_seq: Optional[int] = None

    # -- write path --------------------------------------------------------

    @property
    def last_seq(self) -> int:
        """Highest sequence number ever journaled (0 when empty)."""
        if self._last_seq is None:
            last = 0
            for record, _ in self._scan():
                last = record.get("seq", last)
            self._last_seq = last
        return self._last_seq

    def reserve_seq(self, floor: int) -> None:
        """Never assign sequence numbers at or below ``floor``.

        Recovery seeds this with the checkpoint's ``applied_seq``: after
        a compaction-to-empty plus restart the file alone no longer
        remembers how far numbering got, and reusing old seqs would make
        the next replay skip freshly acked records.
        """
        if floor > self.last_seq:
            self._last_seq = floor

    def append_many(self, records: List[dict]) -> List[int]:
        """Journal a batch durably: one write span, one fsync.

        Sequence numbers are assigned here (``last_seq + 1`` onward) and
        embedded in each record before encoding.  On any failure the
        file is truncated back to its pre-batch size — the journal never
        exposes a half-committed batch.
        """
        if not records:
            return []
        if self.fence_check is not None:
            self.fence_check()
        start = self._fh.tell()
        seqs: List[int] = []
        next_seq = self.last_seq
        torn = False
        try:
            for record in records:
                next_seq += 1
                record["seq"] = next_seq
                seqs.append(next_seq)
                frame = _frame(record)
                if self.write_hook is not None:
                    replacement = self.write_hook(frame)
                    if replacement is not None:
                        # Torn write: persist the damage, then die.
                        self._fh.write(replacement)
                        torn = True
                        break
                self._fh.write(frame)
            self._fh.flush()
            os.fsync(self._fh.fileno())
        except JournalError:
            raise
        except OSError:
            # Disk full (or any write error): roll the batch back so the
            # journal stays a clean sequence of intact records.  The
            # BufferedWriter may still hold frames a failed flush never
            # delivered — close it (dropping that buffer) and reopen on
            # a fresh handle, so rolled-back bytes can never leak into
            # the file after the truncation below.
            try:
                self._fh.close()
            except OSError:
                pass
            fd = os.open(self.path, os.O_WRONLY)
            try:
                os.ftruncate(fd, start)
                os.fsync(fd)
            finally:
                os.close(fd)
            self._fh = open(self.path, "ab")
            raise
        if torn:
            self._last_seq = next_seq - 1
            raise JournalTornWrite(
                f"append of seq {next_seq} was cut short mid-record"
            )
        self._last_seq = next_seq
        return seqs

    def append(self, record: dict) -> int:
        """Journal one record durably; returns its sequence number."""
        return self.append_many([record])[0]

    # -- read path ---------------------------------------------------------

    def _scan(self) -> Iterator[Tuple[dict, int]]:
        """Yield ``(record, end_offset)`` for every intact record.

        Stops silently at a torn tail (short prefix, short payload, or
        CRC mismatch *at the end of the file* — the shape a crash
        leaves); damage followed by more bytes is corruption, raised as
        :class:`JournalCorruptError`.
        """
        self._fh.flush()
        with open(self.path, "rb") as fh:
            size = os.fstat(fh.fileno()).st_size
            offset = 0
            while True:
                prefix = fh.read(_PREFIX.size)
                if len(prefix) < _PREFIX.size:
                    if prefix and offset + len(prefix) < size:
                        raise JournalCorruptError(
                            f"undersized record prefix at offset {offset}"
                        )
                    return
                length, crc = _PREFIX.unpack(prefix)
                tail_end = offset + _PREFIX.size + length
                if length > MAX_RECORD_BYTES:
                    raise JournalCorruptError(
                        f"implausible record length {length} at offset "
                        f"{offset}"
                    )
                payload = fh.read(length)
                damaged = (
                    len(payload) < length or zlib.crc32(payload) != crc
                )
                if damaged:
                    if tail_end >= size:
                        return  # torn tail: the crash signature
                    raise JournalCorruptError(
                        f"record at offset {offset} fails its CRC but is "
                        "not the tail"
                    )
                try:
                    record = json.loads(payload.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                    raise JournalCorruptError(
                        f"record at offset {offset} passed CRC but is not "
                        f"JSON: {exc}"
                    ) from exc
                offset = tail_end
                yield record, offset

    def replay(self, after_seq: int = 0) -> List[dict]:
        """All intact records with ``seq > after_seq``, in order."""
        return [
            record
            for record, _ in self._scan()
            if record.get("seq", 0) > after_seq
        ]

    def valid_size(self) -> int:
        """Byte length of the intact record prefix of the file."""
        end = 0
        for _, end in self._scan():
            pass
        return end

    def truncate_tail(self) -> int:
        """Trim a torn tail; returns how many bytes were dropped."""
        keep = self.valid_size()
        self._fh.flush()
        size = os.fstat(self._fh.fileno()).st_size
        if size > keep:
            os.ftruncate(self._fh.fileno(), keep)
            self._fh.seek(keep)
        return size - keep

    # -- maintenance -------------------------------------------------------

    def compact(self, applied_seq: int) -> int:
        """Drop records with ``seq <= applied_seq``; returns records kept.

        The rewrite is atomic (tmp + fsync + rename + dir fsync): a
        crash mid-compaction leaves the full journal, never a torn one.
        Called after a successful checkpoint, whose cursor makes the
        applied prefix redundant.
        """
        survivors = self.replay(after_seq=applied_seq)
        fd, tmp = tempfile.mkstemp(
            dir=self.path.parent, suffix=".wal.tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                for record in survivors:
                    fh.write(_frame(record))
                fh.flush()
                os.fsync(fh.fileno())
            self._fh.close()
            os.replace(tmp, self.path)
            fsync_dir(self.path.parent)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        finally:
            if self._fh.closed:
                self._fh = open(self.path, "ab")
        return len(survivors)

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "WriteAheadJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = [
    "JournalCorruptError",
    "JournalError",
    "JournalTornWrite",
    "MAX_RECORD_BYTES",
    "WriteAheadJournal",
]
