"""Sharded fleet aggregation: parallel epoch summarization.

The paper's epoch summary is independent of the number of machines
(Section 3.1); this package makes the *collection tier* in front of it
scale the same way.  A :class:`~repro.fleet.planner.ShardPlan`
hash-partitions the fleet across worker processes, each worker folds its
machines' reports into a mergeable :class:`~repro.fleet.partial.ShardPartial`
(exact value multisets, or Greenwald-Khanna sketches with a combined
merge error bound), and the
:class:`~repro.fleet.coordinator.FleetAggregator` merges the partials
into the same :class:`~repro.telemetry.collector.EpochSummary` the
streaming monitor already consumes — straggler- and crash-aware via a
close deadline, shard-level coverage accounting, and worker respawn.

See ``docs/fleet.md`` for architecture, shard sizing, and the
straggler/quorum semantics.
"""

from repro.fleet.coordinator import (
    FleetAggregator,
    FleetCollectionPipeline,
    FleetEpochQuality,
)
from repro.fleet.partial import ShardFolder, ShardPartial, merge_partials
from repro.fleet.planner import (
    ShardPlan,
    describe_plan,
    iter_batches,
    plan_shards,
    stable_shard,
)

__all__ = [
    "FleetAggregator",
    "FleetCollectionPipeline",
    "FleetEpochQuality",
    "ShardFolder",
    "ShardPartial",
    "ShardPlan",
    "describe_plan",
    "iter_batches",
    "merge_partials",
    "plan_shards",
    "stable_shard",
]
