"""Fleet coordinator: a process-based sharded epoch aggregator.

:class:`FleetAggregator` is the drop-in sharded replacement for the
single-process :class:`repro.telemetry.collector.EpochAggregator`: it
accepts the same per-machine reports (plus a fast whole-matrix path),
routes them to ``n_shards`` worker processes through bounded queues
(chunked batches, blocking backpressure), and merges the per-shard
partials back into the same :class:`EpochSummary` the rest of the stack
consumes — :class:`repro.core.streaming.StreamingCrisisMonitor` ingests
fleet-produced summaries unchanged.

Degradation is first-class, mirroring PR 1's single-process semantics at
the shard level: an epoch close waits at most ``close_deadline_s`` for
partials; shards that miss the deadline (stragglers, chaos-killed
workers) simply do not contribute, their machines count as non-reporting
in the :class:`FleetEpochQuality` record (feeding the monitor's quality
gate), and dead workers are respawned before the next epoch.  The close
*never* hangs on a lost worker.
"""

from __future__ import annotations

import logging
import queue as queue_module
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import multiprocessing

import numpy as np

from repro.config import FleetConfig
from repro.fleet.partial import ShardPartial, merge_partials
from repro.fleet.planner import ShardPlan, iter_batches, plan_shards, stable_shard
from repro.fleet.worker import worker_main
from repro.telemetry.chaos import ShardChaosConfig
from repro.telemetry.collector import EpochQuality, EpochSummary, MachineAgent
from repro.telemetry.reliability import AgentHealthTracker, QuorumPolicy

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class FleetEpochQuality(EpochQuality):
    """Epoch quality with shard-level coverage accounting.

    Extends :class:`EpochQuality` (so every downstream consumer of the
    quality gate works unchanged) with which shards actually contributed:
    a missing shard means its machines' reports were lost this epoch,
    which already shows up in ``n_reporting``/``coverage`` — the extra
    fields say *why*.
    """

    n_shards: int = 1
    n_shards_reporting: int = 1
    missing_shards: Tuple[int, ...] = ()


class _Worker:
    """One shard's process and its private task queue."""

    def __init__(self, ctx, shard_id: int, aggregator: "FleetAggregator"):
        self.shard_id = shard_id
        self.task_queue = ctx.Queue(maxsize=aggregator.config.queue_depth)
        self.process = ctx.Process(
            target=worker_main,
            args=(
                shard_id,
                aggregator.n_shards,
                len(aggregator.metric_names),
                aggregator.config.mode,
                aggregator.config.sketch_eps,
                self.task_queue,
                aggregator._result_queue,
                aggregator.chaos,
            ),
            daemon=True,
        )
        self.process.start()


class FleetAggregator:
    """Sharded, parallel reduction of machine reports to epoch summaries.

    Parameters
    ----------
    metric_names:
        The fleet's metric schema (shared by every machine).
    machine_ids:
        When given, fixes the shard plan (stable hash partition) and the
        default ``fleet_size``; reports can then be routed by machine id
        and whole fleet matrices are sliced along the precomputed
        partition.  Without ids, reports are spread round-robin (shard
        choice only affects load balance, not the merged summary).
    config:
        :class:`repro.config.FleetConfig` — shard count, batching,
        backpressure, mode, deadline.
    chaos:
        Optional :class:`~repro.telemetry.chaos.ShardChaosConfig`; the
        fault schedule runs *inside* the workers (see
        :mod:`repro.fleet.worker`).

    Use as a context manager (or call :meth:`shutdown`) — worker
    processes are real.
    """

    def __init__(
        self,
        metric_names: Sequence[str],
        machine_ids: Optional[Sequence[str]] = None,
        quantiles: Sequence[float] = (0.25, 0.50, 0.95),
        config: FleetConfig = FleetConfig(),
        fleet_size: Optional[int] = None,
        quorum: Optional[QuorumPolicy] = None,
        chaos: Optional[ShardChaosConfig] = None,
    ):
        if not metric_names:
            raise ValueError("need at least one metric")
        self.metric_names = list(metric_names)
        self.quantiles = tuple(quantiles)
        self.config = config
        self.chaos = chaos
        self.quorum = quorum if quorum is not None else QuorumPolicy(
            min_fraction=0.0, min_count=1
        )
        self.plan: Optional[ShardPlan] = None
        if machine_ids is not None:
            self.plan = plan_shards(machine_ids, config.n_shards)
            if fleet_size is None:
                fleet_size = len(machine_ids)
        self.fleet_size = fleet_size
        self._epoch = 0
        self._dropped = 0
        self._round_robin = 0
        self._submitted = 0
        self._buffers: List[List[np.ndarray]] = [
            [] for _ in range(config.n_shards)
        ]
        self.last_partials: Dict[int, ShardPartial] = {}
        self.n_respawns = 0  # lifetime count of workers brought back
        self.force_killed_shards: List[int] = []  # shards needing SIGKILL
        self._ctx = multiprocessing.get_context(config.start_method)
        self._result_queue = self._ctx.Queue()
        self._workers: List[_Worker] = [
            _Worker(self._ctx, s, self) for s in range(config.n_shards)
        ]
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "FleetAggregator":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def shutdown(self, join_timeout_s: float = 2.0) -> None:
        """Stop every worker; idempotent — and guaranteed to reap.

        Escalation ladder per worker: cooperative stop sentinel →
        ``join(timeout)`` → ``terminate()`` (SIGTERM) → ``kill()``
        (SIGKILL, which no handler can ignore) → final join.  A hung or
        signal-ignoring worker can therefore never leak a process past
        shutdown; shards that needed SIGKILL are logged and recorded in
        :attr:`force_killed_shards`.
        """
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            if worker.process.is_alive():
                try:
                    worker.task_queue.put(("stop",), timeout=0.5)
                except queue_module.Full:
                    pass
        for worker in self._workers:
            worker.process.join(timeout=join_timeout_s)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=min(join_timeout_s, 1.0))
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=min(join_timeout_s, 1.0))
                self.force_killed_shards.append(worker.shard_id)
                logger.warning(
                    "shard %d ignored terminate; force-killed (SIGKILL)",
                    worker.shard_id,
                )
        self._result_queue.close()

    def _respawn_dead(self) -> None:
        """Replace dead workers (fresh queue — stale batches are lost)."""
        for s, worker in enumerate(self._workers):
            if not worker.process.is_alive():
                worker.task_queue.close()
                self._workers[s] = _Worker(self._ctx, s, self)
                self.n_respawns += 1

    # -- submission --------------------------------------------------------

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def n_shards(self) -> int:
        return self.config.n_shards

    def _put(self, shard: int, message) -> None:
        """Blocking put with a dead-reader escape hatch.

        Backpressure is the point of the bounded queue, so this blocks
        while the worker is alive; if the worker died, the chunk is
        dropped (it will be recorded as shard loss at close) instead of
        deadlocking the coordinator.
        """
        worker = self._workers[shard]
        while True:
            try:
                worker.task_queue.put(message, timeout=0.2)
                return
            except queue_module.Full:
                if not worker.process.is_alive():
                    return

    def _flush_shard(self, shard: int) -> None:
        buffer = self._buffers[shard]
        if not buffer:
            return
        chunk = np.vstack(buffer)
        self._buffers[shard] = []
        self._put(shard, ("batch", self._epoch, chunk))

    def submit(
        self, report: np.ndarray, machine_id: Optional[str] = None
    ) -> None:
        """Accept one machine's epoch report (NaN entries allowed).

        Routed to its planned shard when ``machine_id`` is known,
        round-robin otherwise; buffered and shipped in ``batch_size``
        chunks.
        """
        report = np.asarray(report, dtype=float)
        if report.shape != (len(self.metric_names),):
            raise ValueError("report length mismatch")
        if machine_id is not None:
            shard = stable_shard(machine_id, self.n_shards)
        else:
            shard = self._round_robin
            self._round_robin = (self._round_robin + 1) % self.n_shards
        self._submitted += 1
        buffer = self._buffers[shard]
        buffer.append(report)
        if len(buffer) >= self.config.batch_size:
            self._flush_shard(shard)

    def submit_matrix(self, matrix: np.ndarray) -> None:
        """Accept a whole fleet's epoch matrix at once.

        Rows follow the construction-time ``machine_ids`` order when the
        shapes match (hash-partitioned slicing); otherwise rows are dealt
        contiguously across shards.
        """
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != len(self.metric_names):
            raise ValueError(
                f"matrix must be (n_machines, {len(self.metric_names)})"
            )
        self._submitted += matrix.shape[0]
        if self.plan is not None and matrix.shape[0] == self.plan.n_machines:
            slices = [matrix[rows] for rows in self.plan.rows]
        else:
            slices = np.array_split(matrix, self.n_shards, axis=0)
        for shard, part in enumerate(slices):
            for chunk in iter_batches(part, self.config.batch_size):
                if chunk.shape[0]:
                    self._put(shard, ("batch", self._epoch, chunk))

    def note_dropped(self, n: int) -> None:
        """Fold agent-side dropped-sample counts into this epoch's quality."""
        self._dropped += int(n)

    # -- epoch close -------------------------------------------------------

    def _gather_partials(self, deadline_s: float) -> Dict[int, ShardPartial]:
        partials: Dict[int, ShardPartial] = {}
        deadline = time.monotonic() + deadline_s
        while len(partials) < self.n_shards:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                message = self._result_queue.get(
                    timeout=min(remaining, 0.05)
                )
            except queue_module.Empty:
                # A dead worker will never answer; only keep waiting out
                # the deadline while some missing shard is still alive
                # (a straggler that may yet make it).
                if not any(
                    self._workers[s].process.is_alive()
                    for s in range(self.n_shards)
                    if s not in partials
                ):
                    break
                continue
            _, shard_id, epoch, partial = message
            if epoch != self._epoch:
                continue  # stale straggler from an already-closed epoch
            partials[shard_id] = partial
        return partials

    def close_epoch(
        self,
        n_stale_agents: int = 0,
        n_dead_agents: int = 0,
        deadline_s: Optional[float] = None,
    ) -> EpochSummary:
        """Finish the epoch: flush, gather shard partials, merge, emit.

        Mirrors ``EpochAggregator.close_epoch`` exactly — including the
        unknown-fleet zero-report error and the below-quorum all-NaN
        summary — with shard-level accounting on top.
        """
        for shard in range(self.n_shards):
            self._flush_shard(shard)
        for shard in range(self.n_shards):
            self._put(shard, ("close", self._epoch))
        if deadline_s is None:
            deadline_s = self.config.close_deadline_s
        partials = self._gather_partials(deadline_s)
        self.last_partials = partials
        missing = tuple(
            s for s in range(self.n_shards) if s not in partials
        )
        self._respawn_dead()

        n = sum(p.n_reports for p in partials.values())
        if n == 0 and self._submitted == 0 and self.fleet_size is None:
            # Same contract as the single-process aggregator: with an
            # unknown fleet a silent epoch is indistinguishable from a
            # dead collector.
            self._epoch_reset()
            raise ValueError("no machine reported this epoch")
        dropped = self._dropped + sum(p.dropped for p in partials.values())
        quorum_met = self.quorum.met(n, self.fleet_size)
        if not quorum_met or n == 0:
            quantiles = np.full(
                (len(self.metric_names), len(self.quantiles)), np.nan
            )
        else:
            quantiles = merge_partials(
                list(partials.values()), len(self.metric_names),
                self.quantiles,
            )
        quality = FleetEpochQuality(
            epoch=self._epoch,
            n_reporting=n,
            fleet_size=self.fleet_size,
            dropped_samples=dropped,
            n_stale_agents=n_stale_agents,
            n_dead_agents=n_dead_agents,
            quorum_met=quorum_met,
            n_shards=self.n_shards,
            n_shards_reporting=len(partials),
            missing_shards=missing,
        )
        summary = EpochSummary(
            epoch=self._epoch,
            quantiles=quantiles,
            n_machines_reporting=n,
            quality=quality,
        )
        self._epoch_reset()
        return summary

    def _epoch_reset(self) -> None:
        self._dropped = 0
        self._submitted = 0
        self._round_robin = 0
        self._buffers = [[] for _ in range(self.n_shards)]
        self._epoch += 1


class FleetCollectionPipeline:
    """Agents + health tracking + sharded aggregation for a whole fleet.

    The fleet-scale counterpart of
    :class:`repro.telemetry.collector.CollectionPipeline`: identical
    agent buffering and circuit-breaker bookkeeping, with the reduction
    fanned out across the worker pool.  With ``config.n_shards == 1`` and
    ``mode="exact"`` its summaries are bit-identical to the
    single-process pipeline on the same reports (proven by
    ``tests/test_fleet_parity.py``).
    """

    def __init__(
        self,
        machine_ids: Sequence[str],
        metric_names: Sequence[str],
        quantiles: Sequence[float] = (0.25, 0.50, 0.95),
        config: FleetConfig = FleetConfig(),
        strict: bool = False,
        quorum: Optional[QuorumPolicy] = None,
        dead_after: int = 4,
        chaos: Optional[ShardChaosConfig] = None,
    ):
        if not machine_ids:
            raise ValueError("need at least one machine")
        self.agents: Dict[str, MachineAgent] = {
            mid: MachineAgent(mid, metric_names, strict=strict)
            for mid in machine_ids
        }
        self.health = AgentHealthTracker(machine_ids, dead_after=dead_after)
        self.aggregator = FleetAggregator(
            metric_names,
            machine_ids=machine_ids,
            quantiles=quantiles,
            config=config,
            quorum=quorum,
            chaos=chaos,
        )

    def __enter__(self) -> "FleetCollectionPipeline":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        self.aggregator.shutdown()

    def close_epoch(self) -> EpochSummary:
        """Flush every agent into the sharded aggregator; emit the summary."""
        epoch = self.aggregator.epoch
        for mid, agent in self.agents.items():
            self.aggregator.note_dropped(agent.dropped_samples)
            report = agent.flush()
            if not np.all(np.isnan(report)):
                self.aggregator.submit(report, machine_id=mid)
                self.health.observe_report(mid, epoch)
        self.health.close_epoch(epoch)
        # Coverage is judged against the breaker-adjusted fleet.
        self.aggregator.fleet_size = max(self.health.expected_fleet, 1)
        return self.aggregator.close_epoch(
            n_stale_agents=self.health.n_stale,
            n_dead_agents=self.health.n_dead,
        )


__all__ = [
    "FleetAggregator",
    "FleetCollectionPipeline",
    "FleetEpochQuality",
]
