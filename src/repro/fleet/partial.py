"""Mergeable per-shard epoch partials.

Each shard worker folds its machines' reports into a :class:`ShardPartial`
— the only thing that crosses the process boundary back to the
coordinator.  Two kinds exist, mirroring the two modes of
:class:`repro.telemetry.collector.EpochAggregator`:

* **exact** — the multiset of finite values per metric.  Merging is
  concatenation; the coordinator sorts the union and applies the paper's
  order-statistic rule (:func:`repro.telemetry.quantiles.quantile_ranks`),
  so the result is *bit-identical* to the single-process aggregator: both
  reduce the same multiset with the same rank formula, and sorting is
  order-independent.
* **sketch** — one Greenwald-Khanna sketch per metric, built by sorting
  each report chunk (vectorized) and folding it in via
  :meth:`GKQuantileSketch.from_sorted` + :meth:`GKQuantileSketch.merge`.
  Merging shard sketches at the coordinator keeps the combined rank-error
  bound of :meth:`~repro.telemetry.sketches.GKQuantileSketch.merge`, and
  the partial's size is O(metrics / eps) regardless of shard size — the
  "summary independent of the number of machines" property, applied to
  the collection tier.

Everything here is pure (no processes, no queues) so the aggregation
semantics can be tested exhaustively without a worker pool; the pool in
:mod:`repro.fleet.worker` is plumbing around these functions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.columnar import EpochBlock
from repro.telemetry.quantiles import quantile_ranks
from repro.telemetry.sketches import GKQuantileSketch


@dataclass
class ShardPartial:
    """One shard's mergeable contribution to one epoch.

    ``values[j]`` (exact mode) holds metric ``j``'s finite values from
    this shard's reports; ``sketches[j]`` (sketch mode) the shard-local
    GK sketch.  ``counts[j]`` is the number of finite observations of
    metric ``j`` either way.  ``fold_seconds`` is the worker's busy time
    for the epoch, used by the scaling benchmark to show how the work
    divides across shards.
    """

    shard_id: int
    epoch: int
    mode: str
    n_reports: int
    dropped: int
    counts: np.ndarray  # (n_metrics,) finite observations per metric
    values: Optional[List[np.ndarray]] = None
    sketches: Optional[List[GKQuantileSketch]] = None
    fold_seconds: float = 0.0


class ShardFolder:
    """Folds report chunks for one shard into a :class:`ShardPartial`.

    ``fold`` accepts a ``(batch, n_metrics)`` chunk (NaN entries allowed
    — dropped and counted, as in the single-process aggregator); ``close``
    emits the partial and resets for the next epoch.
    """

    def __init__(
        self,
        shard_id: int,
        n_metrics: int,
        mode: str = "exact",
        sketch_eps: float = 0.01,
    ):
        if n_metrics < 1:
            raise ValueError("need at least one metric")
        if mode not in ("exact", "sketch"):
            raise ValueError(f"unknown mode {mode!r}")
        self.shard_id = shard_id
        self.n_metrics = n_metrics
        self.mode = mode
        self.sketch_eps = sketch_eps
        self._reset()

    def _reset(self) -> None:
        self._n_reports = 0
        self._dropped = 0
        self._counts = np.zeros(self.n_metrics, dtype=int)
        if self.mode == "exact":
            # Preallocated columnar block, reused across epochs; the
            # reset below clears occupancy without touching the buffer.
            if not hasattr(self, "_block"):
                self._block = EpochBlock(self.n_metrics)
            self._block.reset()
        self._sketches: List[Optional[GKQuantileSketch]] = [
            None for _ in range(self.n_metrics)
        ]
        self._busy = 0.0

    def fold(self, chunk: np.ndarray) -> None:
        """Fold one chunk of reports into the running partial."""
        start = time.perf_counter()
        chunk = np.asarray(chunk, dtype=float)
        if chunk.ndim != 2 or chunk.shape[1] != self.n_metrics:
            raise ValueError(
                f"chunk must be (batch, {self.n_metrics}), got {chunk.shape}"
            )
        self._n_reports += chunk.shape[0]
        if self.mode == "exact":
            # The block NaN-masks non-finite entries in the same pass
            # that copies the chunk (inf is dropped-and-counted, like
            # the single-process submit path).
            self._dropped += self._block.append_batch(chunk)
        else:
            finite = np.isfinite(chunk)
            self._dropped += int(chunk.size - finite.sum())
            self._counts += finite.sum(axis=0)
            for j in range(self.n_metrics):
                col = chunk[finite[:, j], j]
                if col.size == 0:
                    continue
                batch = GKQuantileSketch.from_sorted(
                    np.sort(col), eps=self.sketch_eps
                )
                running = self._sketches[j]
                self._sketches[j] = (
                    batch if running is None else running.merge(batch)
                )
        self._busy += time.perf_counter() - start

    def close(self, epoch: int) -> ShardPartial:
        """Emit this epoch's partial and reset the folder."""
        start = time.perf_counter()
        if self.mode == "exact":
            # One column-wise sort; each metric's finite values are the
            # leading ``counts[j]`` rows (NaN sorts last), so the
            # per-metric filter loops collapse to constant-time slices.
            # Values come out sorted — the merge step re-sorts the
            # cross-shard union anyway, so the summary is unchanged.
            counts = self._block.column_counts()
            ordered = np.sort(self._block.matrix(), axis=0)
            values = [
                ordered[: counts[j], j] for j in range(self.n_metrics)
            ]
            self._counts = counts
            partial = ShardPartial(
                shard_id=self.shard_id,
                epoch=epoch,
                mode="exact",
                n_reports=self._n_reports,
                dropped=self._dropped,
                counts=self._counts,
                values=values,
            )
        else:
            partial = ShardPartial(
                shard_id=self.shard_id,
                epoch=epoch,
                mode="sketch",
                n_reports=self._n_reports,
                dropped=self._dropped,
                counts=self._counts,
                sketches=[
                    sk if sk is not None else GKQuantileSketch(self.sketch_eps)
                    for sk in self._sketches
                ],
            )
        busy = self._busy + (time.perf_counter() - start)
        partial.fold_seconds = busy
        self._reset()
        return partial


def merge_partials(
    partials: Sequence[ShardPartial],
    n_metrics: int,
    quantiles: Sequence[float],
) -> np.ndarray:
    """Reduce shard partials to the ``(n_metrics, n_quantiles)`` summary.

    Exact partials reproduce the single-process aggregator bit-for-bit:
    per metric, the union of finite values is sorted and the
    ``ceil(n*p)``-th order statistics are taken, exactly as
    ``EpochAggregator.close_epoch`` does over the stacked report matrix.
    Sketch partials are merged per metric and queried; metrics nobody
    observed come back NaN on both paths.
    """
    shape = (n_metrics, len(quantiles))
    out = np.full(shape, np.nan)
    if not partials:
        return out
    modes = {p.mode for p in partials}
    if len(modes) != 1:
        raise ValueError(f"cannot merge mixed-mode partials: {modes}")
    mode = modes.pop()
    if mode == "exact":
        # One flat concatenation keyed by metric id, one lexsort, one
        # rank gather — no per-metric Python sort/rank loops.  The
        # lexsort's primary key is the metric id and the secondary key
        # the value, so rows [offset[j] : offset[j] + counts[j]] of the
        # flat array are exactly metric j's sorted union, which is what
        # the historical per-metric ``np.sort(concatenate(...))`` built.
        counts = np.zeros(n_metrics, dtype=np.int64)
        arrays: List[np.ndarray] = []
        for j in range(n_metrics):
            for p in partials:
                vals = p.values[j]
                if vals.size:
                    arrays.append(vals)
                    counts[j] += vals.size
        if not arrays:
            return out
        flat = np.concatenate(arrays)
        ids = np.repeat(np.arange(n_metrics), counts)
        flat = flat[np.lexsort((flat, ids))]
        offsets = np.concatenate(([0], np.cumsum(counts[:-1])))
        qs = np.asarray(quantiles, dtype=float)
        # ceil(n*p) 1-based ranks clipped to [1, n] per metric —
        # elementwise identical to quantile_ranks(counts[j], quantiles).
        ranks = (
            np.clip(
                np.ceil(counts[:, None] * qs[None, :]).astype(int),
                1,
                np.maximum(counts, 1)[:, None],
            )
            - 1
        )
        idx = np.minimum(offsets[:, None] + ranks, flat.size - 1)
        gathered = flat[idx]
        np.copyto(out, gathered, where=(counts > 0)[:, None])
    else:
        for j in range(n_metrics):
            sketch: Optional[GKQuantileSketch] = None
            for p in partials:
                shard_sketch = p.sketches[j]
                if len(shard_sketch) == 0:
                    continue
                sketch = (
                    shard_sketch if sketch is None
                    else sketch.merge(shard_sketch)
                )
            if sketch is not None:
                out[j] = [sketch.query(q) for q in quantiles]
    return out


__all__ = ["ShardFolder", "ShardPartial", "merge_partials"]
