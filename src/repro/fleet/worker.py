"""Shard worker process: the queue protocol around :class:`ShardFolder`.

Each worker owns one shard.  It drains a bounded task queue of messages:

* ``("batch", epoch, chunk)`` — fold one report chunk;
* ``("close", epoch)`` — emit ``("partial", shard_id, epoch, partial)``
  on the shared result queue and reset for the next epoch;
* ``("stop",)`` — exit cleanly.

Chaos (:class:`repro.telemetry.chaos.ShardChaosInjector`) is evaluated
*inside* the worker at close time, from the config alone — a ``kill``
fate terminates the process abruptly (``os._exit``), exactly like a real
worker crash, and a ``straggle`` fate sleeps past the coordinator's
deadline before replying.  The coordinator never needs to trust a failing
worker to report its own failure.
"""

from __future__ import annotations

import os
import time
from typing import Optional

from repro.fleet.partial import ShardFolder
from repro.telemetry.chaos import (
    SHARD_KILL,
    SHARD_STRAGGLE,
    ShardChaosConfig,
    ShardChaosInjector,
)

#: Exit code of a chaos-killed worker, distinguishable from a crash.
CHAOS_EXIT_CODE = 23


def worker_main(
    shard_id: int,
    n_shards: int,
    n_metrics: int,
    mode: str,
    sketch_eps: float,
    task_queue,
    result_queue,
    chaos_config: Optional[ShardChaosConfig] = None,
) -> None:
    """Run one shard worker until a ``("stop",)`` message arrives."""
    folder = ShardFolder(
        shard_id, n_metrics, mode=mode, sketch_eps=sketch_eps
    )
    chaos = (
        ShardChaosInjector(chaos_config, n_shards)
        if chaos_config is not None
        else None
    )
    while True:
        message = task_queue.get()
        kind = message[0]
        if kind == "batch":
            _, _epoch, chunk = message
            folder.fold(chunk)
        elif kind == "close":
            _, epoch = message
            fate = chaos.fate(epoch, shard_id) if chaos else None
            if fate == SHARD_KILL:
                os._exit(CHAOS_EXIT_CODE)
            if fate == SHARD_STRAGGLE:
                time.sleep(chaos_config.straggle_seconds)
            result_queue.put(
                ("partial", shard_id, epoch, folder.close(epoch))
            )
        elif kind == "stop":
            return
        else:  # pragma: no cover - protocol bug guard
            raise RuntimeError(f"unknown fleet message {kind!r}")


__all__ = ["CHAOS_EXIT_CODE", "worker_main"]
