"""Shard planning: hash-partitioning a fleet across aggregation workers.

The paper's scaling argument (Section 3.1) is that the epoch summary is
independent of the number of machines; the collection tier in front of it
is not, so it is sharded.  The planner assigns every machine to one of
``n_shards`` workers with a *stable* content hash of its machine id —
stable across processes and Python invocations (unlike the builtin
``hash``, which is salted), so a report can be routed by any frontend
without coordination and a restarted coordinator rebuilds the identical
plan.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

import numpy as np


def stable_shard(machine_id: str, n_shards: int) -> int:
    """Deterministic shard of one machine id (CRC32 of the UTF-8 bytes)."""
    if n_shards < 1:
        raise ValueError("n_shards must be positive")
    return zlib.crc32(machine_id.encode("utf-8")) % n_shards


@dataclass(frozen=True)
class ShardPlan:
    """A fixed assignment of machines to shards.

    ``assignment[i]`` is the shard of ``machine_ids[i]``; ``rows[s]`` are
    the row indices of shard ``s`` in a fleet-ordered report matrix, so a
    coordinator handed the whole epoch matrix can slice each shard's
    chunk with one fancy-index per shard.
    """

    machine_ids: Tuple[str, ...]
    n_shards: int
    assignment: np.ndarray  # (n_machines,) shard per machine
    rows: Tuple[np.ndarray, ...] = field(repr=False)  # per-shard row indices

    def shard_of(self, machine_id: str) -> int:
        return stable_shard(machine_id, self.n_shards)

    @property
    def n_machines(self) -> int:
        return len(self.machine_ids)

    @property
    def sizes(self) -> np.ndarray:
        """Machines per shard."""
        return np.bincount(self.assignment, minlength=self.n_shards)

    @property
    def imbalance(self) -> float:
        """max/mean shard size; 1.0 is perfectly balanced."""
        sizes = self.sizes
        mean = sizes.mean()
        return float(sizes.max() / mean) if mean > 0 else 1.0

    def machines(self, shard: int) -> List[str]:
        if not 0 <= shard < self.n_shards:
            raise ValueError(f"shard {shard} outside [0, {self.n_shards})")
        return [self.machine_ids[i] for i in self.rows[shard]]


def plan_shards(machine_ids: Sequence[str], n_shards: int) -> ShardPlan:
    """Hash-partition ``machine_ids`` across ``n_shards`` workers."""
    if not machine_ids:
        raise ValueError("need at least one machine")
    if len(set(machine_ids)) != len(machine_ids):
        raise ValueError("machine ids must be unique")
    if n_shards < 1:
        raise ValueError("n_shards must be positive")
    assignment = np.array(
        [stable_shard(mid, n_shards) for mid in machine_ids], dtype=int
    )
    rows = tuple(
        np.flatnonzero(assignment == s) for s in range(n_shards)
    )
    return ShardPlan(
        machine_ids=tuple(machine_ids),
        n_shards=n_shards,
        assignment=assignment,
        rows=rows,
    )


def iter_batches(
    matrix: np.ndarray, batch_size: int
) -> Iterator[np.ndarray]:
    """Split a report matrix into contiguous chunks of ``batch_size`` rows."""
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    for start in range(0, matrix.shape[0], batch_size):
        yield matrix[start : start + batch_size]


def describe_plan(plan: ShardPlan) -> str:
    """Operator-facing summary of a shard plan (the ``fleet plan`` CLI)."""
    sizes = plan.sizes
    lines = [
        f"fleet plan: {plan.n_machines} machines over "
        f"{plan.n_shards} shards",
        f"  shard sizes: min {sizes.min()}  mean {sizes.mean():.1f}  "
        f"max {sizes.max()}  (imbalance {plan.imbalance:.3f})",
    ]
    for s in range(plan.n_shards):
        ids = plan.machines(s)
        sample = ", ".join(ids[:4]) + (", ..." if len(ids) > 4 else "")
        lines.append(f"  shard {s:3d}: {len(ids):6d} machines  [{sample}]")
    return "\n".join(lines)


__all__ = [
    "ShardPlan",
    "describe_plan",
    "iter_batches",
    "plan_shards",
    "stable_shard",
]
