"""Fleet aggregation throughput measurement.

Shared by ``repro fleet bench`` and ``benchmarks/test_fleet_scaling.py``:
drives the single-process :class:`EpochAggregator` (report-by-report, its
API) and the sharded :class:`FleetAggregator` at several worker counts
over the same simulated fleet, and reports sustained aggregation
throughput in reports/second plus the per-shard busy time (how the fold
work actually divided across workers — on a single-CPU host the workers
time-slice one core, so busy time, not wall clock, is the partitioning
evidence).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.config import FleetConfig
from repro.fleet.coordinator import FleetAggregator
from repro.telemetry.collector import EpochAggregator


@dataclass(frozen=True)
class BenchResult:
    """Throughput of one configuration over the benchmark workload."""

    label: str
    n_workers: int  # 0 = single-process baseline
    n_machines: int
    n_metrics: int
    n_epochs: int
    seconds: float
    max_shard_busy_s: float  # 0 for the baseline

    @property
    def reports_per_s(self) -> float:
        return self.n_machines * self.n_epochs / self.seconds


def simulate_fleet_epochs(
    n_machines: int,
    n_metrics: int,
    n_epochs: int,
    seed: int = 0,
    nan_fraction: float = 0.001,
) -> np.ndarray:
    """Synthetic per-epoch fleet matrices: lognormal-ish metrics + gaps."""
    rng = np.random.default_rng(seed)
    base = rng.uniform(1.0, 50.0, size=n_metrics)
    epochs = np.exp(
        rng.normal(scale=0.3, size=(n_epochs, n_machines, n_metrics))
    ) * base
    if nan_fraction > 0:
        mask = rng.random(epochs.shape) < nan_fraction
        epochs[mask] = np.nan
    return epochs


def run_baseline(
    epochs: np.ndarray, mode: str, sketch_eps: float
) -> BenchResult:
    """Single-process EpochAggregator fed report-by-report."""
    n_epochs, n_machines, n_metrics = epochs.shape
    names = [f"m{j}" for j in range(n_metrics)]
    agg = EpochAggregator(
        names, mode=mode, sketch_eps=sketch_eps, fleet_size=n_machines
    )
    start = time.perf_counter()
    for e in range(n_epochs):
        matrix = epochs[e]
        for row in matrix:
            agg.submit(row)
        agg.close_epoch()
    seconds = time.perf_counter() - start
    return BenchResult(
        label=f"single-process ({mode})",
        n_workers=0,
        n_machines=n_machines,
        n_metrics=n_metrics,
        n_epochs=n_epochs,
        seconds=seconds,
        max_shard_busy_s=0.0,
    )


def run_fleet(
    epochs: np.ndarray,
    n_workers: int,
    mode: str,
    sketch_eps: float,
    batch_size: int = 512,
) -> BenchResult:
    """Sharded FleetAggregator over the same workload."""
    n_epochs, n_machines, n_metrics = epochs.shape
    names = [f"m{j}" for j in range(n_metrics)]
    machine_ids = [f"host-{i:05d}" for i in range(n_machines)]
    config = FleetConfig(
        n_shards=n_workers, mode=mode, sketch_eps=sketch_eps,
        batch_size=batch_size,
    )
    busy = 0.0
    with FleetAggregator(
        names, machine_ids=machine_ids, config=config
    ) as fleet:
        start = time.perf_counter()
        for e in range(n_epochs):
            fleet.submit_matrix(epochs[e])
            fleet.close_epoch()
            busy = max(
                busy,
                max(
                    (p.fold_seconds for p in fleet.last_partials.values()),
                    default=0.0,
                ),
            )
        seconds = time.perf_counter() - start
    return BenchResult(
        label=f"fleet x{n_workers} ({mode})",
        n_workers=n_workers,
        n_machines=n_machines,
        n_metrics=n_metrics,
        n_epochs=n_epochs,
        seconds=seconds,
        max_shard_busy_s=busy,
    )


def run_scaling(
    n_machines: int = 10_000,
    n_metrics: int = 16,
    n_epochs: int = 3,
    worker_counts: Sequence[int] = (1, 2, 4),
    mode: str = "sketch",
    sketch_eps: float = 0.02,
    seed: int = 0,
) -> List[BenchResult]:
    """Baseline vs. fleet at each worker count over one shared workload."""
    epochs = simulate_fleet_epochs(n_machines, n_metrics, n_epochs, seed=seed)
    results = [run_baseline(epochs, mode, sketch_eps)]
    for n_workers in worker_counts:
        results.append(
            run_fleet(epochs, n_workers, mode, sketch_eps)
        )
    return results


def format_results(
    results: Sequence[BenchResult], title: Optional[str] = None
) -> str:
    """Human-readable throughput table (committed by the benchmark)."""
    baseline = results[0]
    lines = []
    if title:
        lines += [title, ""]
    lines.append(
        f"fleet: {baseline.n_machines} machines x {baseline.n_metrics} "
        f"metrics, {baseline.n_epochs} epochs  "
        f"(host cpus: {os.cpu_count()})"
    )
    lines.append("")
    lines.append(
        "%-26s %9s %13s %9s %15s"
        % ("configuration", "total s", "reports/s", "speedup", "max shard busy")
    )
    for r in results:
        speedup = r.reports_per_s / baseline.reports_per_s
        busy = f"{r.max_shard_busy_s * 1e3:10.1f} ms" if r.n_workers else "-"
        lines.append(
            "%-26s %9.3f %13.0f %8.2fx %15s"
            % (r.label, r.seconds, r.reports_per_s, speedup, busy)
        )
    return "\n".join(lines)


__all__ = [
    "BenchResult",
    "format_results",
    "run_baseline",
    "run_fleet",
    "run_scaling",
    "simulate_fleet_epochs",
]
