"""KPI baseline: fingerprints from the three operator KPIs only.

"For each KPI, the fingerprint contains the number of machines in the
datacenter that are violating the performance SLA specified for that KPI"
(Section 4.2).  We use the violating *fraction* (equivalent up to a constant
for a fixed fleet), averaged over the crisis summary window.  With only
three dimensions this representation cannot distinguish crisis types that
stress the same stage — which is the point of the baseline.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.config import FingerprintConfig
from repro.datacenter.trace import CrisisRecord, DatacenterTrace
from repro.methods.base import OfflineMethod


class KPIMethod(OfflineMethod):
    """Crisis vectors of per-KPI violating-machine fractions."""

    name = "KPIs"

    def __init__(self, fingerprint: FingerprintConfig = FingerprintConfig()):
        self.fingerprint = fingerprint
        self.trace: Optional[DatacenterTrace] = None

    def fit(self, trace: DatacenterTrace, crises: List[CrisisRecord]) -> None:
        self.trace = trace

    def vector(
        self, crisis: CrisisRecord, n_epochs: Optional[int] = None
    ) -> np.ndarray:
        if self.trace is None:
            raise RuntimeError("method is not fitted")
        det = crisis.detected_epoch
        if det is None:
            raise ValueError("crisis was never detected")
        fp = self.fingerprint
        lo = max(det - fp.pre_epochs, 0)
        hi = min(det + fp.post_epochs, self.trace.n_epochs - 1)
        window = self.trace.kpi_violation_fraction[lo : hi + 1]
        if n_epochs is not None:
            window = window[: max(n_epochs, 1)]
        return window.mean(axis=0)

    def pair_distance(
        self,
        new: CrisisRecord,
        known: CrisisRecord,
        n_epochs: Optional[int] = None,
    ) -> float:
        return float(
            np.linalg.norm(self.vector(new, n_epochs)
                           - self.vector(known, n_epochs))
        )


__all__ = ["KPIMethod"]
