"""Offline fingerprint methods: the paper's, and the all-metrics ablation.

In the offline setting (Section 5.1) every parameter is estimated with
perfect future knowledge: hot/cold thresholds over the whole trace's
crisis-free epochs, relevant metrics selected from all labeled crises
(top-10 per crisis, then the 15 most frequent).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.config import FingerprintingConfig, SelectionConfig
from repro.core.engine import compute_thresholds, fingerprint_from_window
from repro.core.selection import (
    select_crisis_metrics,
    select_relevant_metrics,
)
from repro.core.thresholds import QuantileThresholds
from repro.datacenter.trace import CrisisRecord, DatacenterTrace
from repro.methods.base import OfflineMethod


class FingerprintMethod(OfflineMethod):
    """The paper's method, offline variant (Section 5.1).

    Parameters default to the paper: 15 relevant metrics offline, 2/98
    hot/cold percentiles, summary window −2 … +4 epochs.
    """

    name = "fingerprints"

    def __init__(
        self,
        config: Optional[FingerprintingConfig] = None,
        exclude_kpis_from_selection: bool = False,
    ):
        if config is None:
            config = FingerprintingConfig(
                selection=SelectionConfig(n_relevant=15)
            )
        self.config = config
        self.exclude_kpis = exclude_kpis_from_selection
        self.trace: Optional[DatacenterTrace] = None
        self.thresholds: Optional[QuantileThresholds] = None
        self.relevant: Optional[np.ndarray] = None

    def _relevant_metrics(
        self, trace: DatacenterTrace, crises: List[CrisisRecord]
    ) -> np.ndarray:
        exclude = trace.kpi_metric_indices if self.exclude_kpis else ()
        selections = [
            select_crisis_metrics(
                c.raw.values,
                c.raw.violations,
                top_k=self.config.selection.per_crisis_top_k,
                exclude=exclude,
            )
            for c in crises
        ]
        return select_relevant_metrics(
            selections,
            self.config.selection.n_relevant,
            pool=max(len(selections), self.config.selection.crisis_pool),
        )

    def fit(self, trace: DatacenterTrace, crises: List[CrisisRecord]) -> None:
        self.trace = trace
        cfg = self.config.thresholds
        # The paper's offline thresholds use "the four months of data
        # surrounding the 19 crises", not the whole multi-season trace:
        # thresholds must reflect the operating regime the crises occur in,
        # or slow workload drift pollutes the discretization.
        detections = [c.detected_epoch for c in crises if c.detected]
        margin = 15 * trace.epochs_per_day
        lo = max(min(detections) - margin, 0) if detections else 0
        hi = min(max(detections) + margin, trace.n_epochs) if detections \
            else trace.n_epochs
        mask = trace.crisis_free_mask()
        mask[:lo] = False
        mask[hi:] = False
        history = trace.quantiles[mask]
        self.thresholds = compute_thresholds(
            history, cfg.cold_percentile, cfg.hot_percentile
        )
        self.relevant = self._relevant_metrics(trace, crises)

    def vector(
        self, crisis: CrisisRecord, n_epochs: Optional[int] = None
    ) -> np.ndarray:
        """Crisis fingerprint, optionally truncated to the first n epochs."""
        if self.trace is None or self.thresholds is None:
            raise RuntimeError("method is not fitted")
        fp = self.config.fingerprint
        det = crisis.detected_epoch
        if det is None:
            raise ValueError("crisis was never detected")
        lo = max(det - fp.pre_epochs, 0)
        hi = min(det + fp.post_epochs, self.trace.n_epochs - 1)
        window = self.trace.quantiles[lo : hi + 1]
        if n_epochs is not None:
            window = window[: max(n_epochs, 1)]
        return fingerprint_from_window(window, self.thresholds, self.relevant)

    def pair_distance(
        self,
        new: CrisisRecord,
        known: CrisisRecord,
        n_epochs: Optional[int] = None,
    ) -> float:
        va = self.vector(new, n_epochs)
        vb = self.vector(known, n_epochs)
        return float(np.linalg.norm(va - vb))


class AllMetricsFingerprintMethod(FingerprintMethod):
    """Fingerprints built from *all* collected metrics (no selection).

    Quantifies the noise irrelevant metrics inject into identification —
    the paper's "fingerprints (all metrics)" baseline achieves only ~50%
    accuracy against 97.5% with selection.
    """

    name = "fingerprints (all metrics)"

    def _relevant_metrics(
        self, trace: DatacenterTrace, crises: List[CrisisRecord]
    ) -> np.ndarray:
        return np.arange(trace.n_metrics)


__all__ = ["FingerprintMethod", "AllMetricsFingerprintMethod"]
