"""Adaptation of the SOSP'05 signatures approach (paper appendix).

Cohen et al. build, per crisis, a model that (a) selects the metrics most
relevant to that crisis and (b) thresholds each selected metric with a
per-metric classifier; an epoch's *signature* sets +1 for relevant metrics
attributed as anomalous, −1 for relevant-but-normal metrics, and 0 for
irrelevant ones.  Crises are retrieved by signature similarity.

Following the paper's appendix, our adaptation makes every contested choice
in the signatures approach's favor:

* metrics are aggregated across servers with quantiles (a per-server model
  farm would make the representation exponential in the metric count);
* one model per crisis is built with *perfect knowledge* of that crisis —
  equivalent to assuming the Brier-score model-selection machinery always
  picks the ideal model;
* metric selection uses L1-regularized logistic regression (shown more
  robust than the original naive Bayes feature search), and the per-metric
  attribution threshold comes from the same classifier fit on each metric
  in isolation.

Distances are computed under the *known* crisis's model: when matching a
new crisis against a library entry, the library entry's model produces the
signatures of both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.config import FingerprintConfig
from repro.datacenter.trace import CrisisRecord, DatacenterTrace
from repro.core.selection import stabilize
from repro.methods.base import OfflineMethod
from repro.ml.logistic import L1LogisticRegression, select_top_k_features
from repro.ml.preprocessing import StandardScaler


@dataclass
class SignatureModel:
    """Per-crisis model: relevant features plus per-feature attribution.

    ``weights``/``intercepts`` are per-feature single-variable logistic
    parameters on *standardized* values; a feature is attributed anomalous
    when its classifier votes for the anomalous class.
    """

    feature_indices: np.ndarray  # into the flattened (metric, quantile) axis
    means: np.ndarray
    scales: np.ndarray
    weights: np.ndarray
    intercepts: np.ndarray
    n_features_total: int

    def attribute(self, epoch_features: np.ndarray) -> np.ndarray:
        """Epoch signatures: {-1, 0, +1} over all features.

        ``epoch_features`` is ``(n_epochs, n_features_total)`` of raw
        flattened quantile values.
        """
        feats = np.asarray(epoch_features, dtype=float)
        if feats.ndim == 1:
            feats = feats[None]
        sub = (feats[:, self.feature_indices] - self.means) / self.scales
        votes = sub * self.weights + self.intercepts  # (n_epochs, k)
        sig = np.zeros((feats.shape[0], self.n_features_total), dtype=float)
        sig[:, self.feature_indices] = np.where(votes > 0.0, 1.0, -1.0)
        return sig


class SignaturesMethod(OfflineMethod):
    """The signatures baseline over datacenter-wide quantile features."""

    name = "signatures"

    def __init__(
        self,
        top_k: int = 10,
        normal_epochs: int = 192,
        fingerprint: FingerprintConfig = FingerprintConfig(),
    ):
        self.top_k = top_k
        self.normal_epochs = normal_epochs
        self.fingerprint = fingerprint
        self.trace: Optional[DatacenterTrace] = None
        self.models: Dict[int, SignatureModel] = {}
        self._flat_cache: Optional[np.ndarray] = None

    # -- model construction -------------------------------------------------

    def _flat_quantiles(self) -> np.ndarray:
        # Same variance stabilization as the fingerprint feature selection
        # (a choice favorable to the signatures approach; raw heavy-tailed
        # values would wreck its per-crisis model fits).  Cached: the trace
        # is large and every signature computation slices this matrix.
        if self._flat_cache is None:
            q = self.trace.quantiles
            self._flat_cache = stabilize(q.reshape(q.shape[0], -1))
        return self._flat_cache

    def _training_epochs(self, crisis: CrisisRecord):
        """Crisis-epoch and normal-epoch indices for one crisis's model."""
        det = crisis.detected_epoch
        fp = self.fingerprint
        hi = min(det + fp.post_epochs, self.trace.n_epochs - 1)
        crisis_idx = np.arange(det, hi + 1)
        # Crisis-free epochs immediately preceding the summary window.
        lo_search = max(det - fp.pre_epochs - 1, 0)
        candidates = np.arange(max(lo_search - 4 * self.normal_epochs, 0),
                               lo_search)
        normal_mask = ~self.trace.anomalous[candidates]
        normal_idx = candidates[normal_mask][-self.normal_epochs :]
        return crisis_idx, normal_idx

    def build_model(self, crisis: CrisisRecord) -> SignatureModel:
        """Fit the per-crisis signature model with perfect knowledge."""
        if self.trace is None:
            raise RuntimeError("method is not fitted")
        flat = self._flat_quantiles()
        crisis_idx, normal_idx = self._training_epochs(crisis)
        if len(normal_idx) == 0:
            raise ValueError("no normal epochs available for model training")
        X = np.concatenate([flat[crisis_idx], flat[normal_idx]])
        y = np.concatenate(
            [np.ones(len(crisis_idx)), np.zeros(len(normal_idx))]
        )
        scaler = StandardScaler().fit(X)
        Xs = scaler.transform(X)
        picked = select_top_k_features(Xs, y, k=self.top_k)
        if picked.size == 0:
            picked = np.array([0], dtype=int)

        weights = np.empty(picked.size)
        intercepts = np.empty(picked.size)
        solver = L1LogisticRegression(lam=1e-4, max_iter=500)
        for j, f in enumerate(picked):
            model = solver.fit(Xs[:, [f]], y)
            weights[j] = model.weights[0]
            intercepts[j] = model.intercept
        return SignatureModel(
            feature_indices=picked,
            means=scaler.mean_[picked],
            scales=scaler.scale_[picked],
            weights=weights,
            intercepts=intercepts,
            n_features_total=flat.shape[1],
        )

    def fit(self, trace: DatacenterTrace, crises: List[CrisisRecord]) -> None:
        if trace is not self.trace:
            self._flat_cache = None
        self.trace = trace
        self.models = {c.index: self.build_model(c) for c in crises}

    # -- signatures and distances -------------------------------------------

    def signature(
        self,
        crisis: CrisisRecord,
        model: SignatureModel,
        n_epochs: Optional[int] = None,
    ) -> np.ndarray:
        """Crisis signature under a given model (averaged epoch signatures)."""
        det = crisis.detected_epoch
        if det is None:
            raise ValueError("crisis was never detected")
        fp = self.fingerprint
        lo = max(det - fp.pre_epochs, 0)
        hi = min(det + fp.post_epochs, self.trace.n_epochs - 1)
        window = self._flat_quantiles()[lo : hi + 1]
        if n_epochs is not None:
            window = window[: max(n_epochs, 1)]
        return model.attribute(window).mean(axis=0)

    def pair_distance(
        self,
        new: CrisisRecord,
        known: CrisisRecord,
        n_epochs: Optional[int] = None,
    ) -> float:
        """Distance under the known crisis's model."""
        model = self.models.get(known.index)
        if model is None:
            model = self.models[known.index] = self.build_model(known)
        sig_new = self.signature(new, model, n_epochs)
        sig_known = self.signature(known, model, n_epochs)
        return float(np.linalg.norm(sig_new - sig_known))


__all__ = ["SignatureModel", "SignaturesMethod"]
