"""Crisis-identification methods compared in the paper (Section 4.2).

Four representations of datacenter state, all evaluated through the same
offline discrimination and identification protocols:

* :class:`FingerprintMethod` — the paper's contribution (relevant-metric
  quantile fingerprints);
* :class:`AllMetricsFingerprintMethod` — fingerprints without feature
  selection ("fingerprints (all metrics)"), quantifying the noise
  irrelevant metrics introduce;
* :class:`KPIMethod` — per-KPI counts of SLA-violating machines, i.e. what
  operators already watch;
* :class:`SignaturesMethod` — the adaptation of Cohen et al.'s SOSP'05
  signatures described in the paper's appendix, with every design choice
  resolved in the signatures approach's favor.
"""

from repro.methods.base import OfflineMethod
from repro.methods.fingerprints import (
    AllMetricsFingerprintMethod,
    FingerprintMethod,
)
from repro.methods.kpi import KPIMethod
from repro.methods.signatures import SignatureModel, SignaturesMethod

__all__ = [
    "OfflineMethod",
    "FingerprintMethod",
    "AllMetricsFingerprintMethod",
    "KPIMethod",
    "SignatureModel",
    "SignaturesMethod",
]
