"""Common interface for crisis-representation methods.

The offline experiments (Figures 3 and 4) compare four representations
under identical protocols.  Each method implements:

* :meth:`fit` — perfect-knowledge preparation over the whole trace (the
  offline setting's premise);
* :meth:`pair_distance` — distance between a (possibly partial) new crisis
  and a known crisis.  The "known" side matters for the signatures method,
  whose representation of a crisis depends on the known crisis's model;
  for the vector methods the distance is symmetric.

``n_epochs`` counts epochs from the start of the fingerprint summary window
(detection − pre_epochs); online identification at epoch k passes
``pre_epochs + k + 1`` so partial comparisons are apples-to-apples.
"""

from __future__ import annotations

import abc
from typing import List, Optional

import numpy as np

from repro.core.similarity import pair_arrays
from repro.datacenter.trace import CrisisRecord, DatacenterTrace


class OfflineMethod(abc.ABC):
    """A crisis representation evaluated in the offline setting."""

    #: Human-readable method name used in result tables.
    name: str = "method"

    @abc.abstractmethod
    def fit(self, trace: DatacenterTrace, crises: List[CrisisRecord]) -> None:
        """Prepare the method with perfect knowledge of the whole trace."""

    @abc.abstractmethod
    def pair_distance(
        self,
        new: CrisisRecord,
        known: CrisisRecord,
        n_epochs: Optional[int] = None,
    ) -> float:
        """Distance between a new crisis (truncated) and a known one."""

    def distance_matrix(self, crises: List[CrisisRecord]) -> np.ndarray:
        """Symmetrized pairwise distances for discrimination ROCs."""
        n = len(crises)
        out = np.zeros((n, n))
        for i in range(n):
            for j in range(i + 1, n):
                d = 0.5 * (
                    self.pair_distance(crises[i], crises[j])
                    + self.pair_distance(crises[j], crises[i])
                )
                out[i, j] = out[j, i] = d
        return out

    def discrimination_pairs(self, crises: List[CrisisRecord]):
        """(pair_distances, is_same) arrays for a distance ROC."""
        labels = [c.label for c in crises]
        return pair_arrays(self.distance_matrix(crises), labels)


__all__ = ["OfflineMethod"]
