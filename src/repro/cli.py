"""Command-line interface.

The subcommands cover the common workflows without writing Python:

* ``simulate`` — generate a synthetic datacenter trace and save it;
* ``identify`` — replay online crisis identification over a saved trace;
* ``monitor`` — drive the streaming monitor over a trace with crash-safe
  checkpoints (``--checkpoint``/``--resume``);
* ``index`` — build/query/stats/bench a fingerprint index
  (:mod:`repro.index`) over a trace's crisis fingerprints;
* ``fleet`` — plan/run/bench the sharded parallel aggregation tier
  (:mod:`repro.fleet`) over a simulated fleet;
* ``serve`` — the durable ingestion front door (``--standby-of`` runs a
  warm replica); ``admin`` — operate a running fleet (stats,
  unquarantine, promote, fence, failover);
* ``discover`` — unsupervised crisis discovery: cluster an unlabeled
  trace (:mod:`repro.discovery`), inspect saved discovery state, and
  manually promote clusters into the catalog;
* ``forecast`` — predictive early warning (:mod:`repro.forecast`):
  train a two-stage pre-SLA detector on a trace, replay it for
  lead-time-vs-precision numbers, and inspect saved models;
* ``discriminate`` — Figure 3's AUC comparison of all four methods;
* ``render`` — print a Figure 1-style fingerprint heatmap for one crisis;
* ``timeline`` — print a day-by-day strip of the trace's crises;
* ``report`` — full operator dossier for one crisis.

Run ``python -m repro <subcommand> --help`` for options.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from repro.config import (
    FingerprintingConfig,
    SelectionConfig,
    ThresholdConfig,
)
from repro.telemetry.epochs import EpochClock


def _add_simulate(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("simulate", help="generate and save a trace")
    p.add_argument("output", help="path of the .npz trace archive")
    p.add_argument("--machines", type=int, default=40)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--warmup-days", type=int, default=30)
    p.add_argument("--bootstrap-days", type=int, default=210)
    p.add_argument("--labeled-days", type=int, default=120)
    p.add_argument("--bootstrap-crises", type=int, default=20)


def _add_identify(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "identify", help="replay online identification over a trace"
    )
    p.add_argument("trace", help="path of a saved .npz trace")
    p.add_argument("--relevant-metrics", type=int, default=30)
    p.add_argument("--window-days", type=int, default=240)
    p.add_argument("--alpha", type=float, default=0.1)


def _add_monitor(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "monitor",
        help="drive the streaming monitor over a trace, with "
             "crash-safe checkpoints",
    )
    p.add_argument("trace", help="path of a saved .npz trace")
    p.add_argument("--relevant-metrics", type=int, default=20)
    p.add_argument("--window-days", type=int, default=30)
    p.add_argument("--coverage-floor", type=float, default=0.5,
                   help="min fleet coverage for an epoch to be trusted")
    p.add_argument("--checkpoint", help="checkpoint archive path")
    p.add_argument("--checkpoint-every", type=int, default=None,
                   help="epochs between checkpoints "
                        "(default: one day of the trace's epochs)")
    p.add_argument("--resume", action="store_true",
                   help="resume from --checkpoint instead of starting fresh")
    p.add_argument("--stop-epoch", type=int, default=None,
                   help="stop after this epoch (exclusive); default: all")


def _add_index(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "index",
        help="build, query and benchmark fingerprint indexes",
    )
    isub = p.add_subparsers(dest="index_action", required=True)

    b = isub.add_parser(
        "build", help="index a trace's labeled crisis fingerprints"
    )
    b.add_argument("trace", help="path of a saved .npz trace")
    b.add_argument("output", help="path of the index archive to write")
    b.add_argument("--backend", default="brute",
                   choices=("brute", "kdtree", "lsh"))
    b.add_argument("--relevant-metrics", type=int, default=30)
    b.add_argument("--synthetic", type=int, default=0,
                   help="pad the index with jittered synthetic "
                        "fingerprints up to this total size")
    b.add_argument("--seed", type=int, default=0,
                   help="seed for LSH hashing and synthetic padding")

    q = isub.add_parser(
        "query", help="match one crisis against a built index"
    )
    q.add_argument("index", help="path of a saved index archive")
    q.add_argument("trace", help="the trace the index was built from")
    q.add_argument("crisis", type=int, help="crisis index in the trace")
    q.add_argument("--k", type=int, default=3)
    q.add_argument("--relevant-metrics", type=int, default=30,
                   help="must match the build invocation")

    s = isub.add_parser("stats", help="print index statistics")
    s.add_argument("index", help="path of a saved index archive")

    be = isub.add_parser(
        "bench", help="per-query latency vs. a Python-loop linear scan"
    )
    be.add_argument("index", help="path of a saved index archive")
    be.add_argument("--queries", type=int, default=50)
    be.add_argument("--k", type=int, default=10)
    be.add_argument("--seed", type=int, default=0)


def _add_fleet(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "fleet",
        help="sharded parallel epoch aggregation over a simulated fleet",
    )
    fsub = p.add_subparsers(dest="fleet_action", required=True)

    def common(q, machines=1000, shards=4):
        q.add_argument("--machines", type=int, default=machines)
        q.add_argument("--shards", type=int, default=shards)

    pl = fsub.add_parser(
        "plan", help="show the hash-partitioned shard assignment"
    )
    common(pl)

    r = fsub.add_parser(
        "run", help="aggregate a simulated fleet epoch by epoch"
    )
    common(r, machines=500)
    r.add_argument("--metrics", type=int, default=20)
    r.add_argument("--epochs", type=int, default=8)
    r.add_argument("--mode", default="exact", choices=("exact", "sketch"))
    r.add_argument("--sketch-eps", type=float, default=0.01)
    r.add_argument("--deadline", type=float, default=5.0,
                   help="epoch-close deadline in seconds")
    r.add_argument("--seed", type=int, default=0)
    r.add_argument("--chaos-kill", type=float, default=0.0,
                   help="per-epoch probability a shard worker dies at close")
    r.add_argument("--chaos-straggle", type=float, default=0.0,
                   help="per-epoch probability a shard straggles")
    r.add_argument("--chaos-straggle-seconds", type=float, default=0.5)

    b = fsub.add_parser(
        "bench", help="throughput vs. the single-process aggregator"
    )
    b.add_argument("--machines", type=int, default=10_000)
    b.add_argument("--metrics", type=int, default=16)
    b.add_argument("--epochs", type=int, default=3)
    b.add_argument("--workers", default="1,2,4",
                   help="comma-separated worker counts")
    b.add_argument("--mode", default="sketch", choices=("exact", "sketch"))
    b.add_argument("--sketch-eps", type=float, default=0.02)
    b.add_argument("--seed", type=int, default=0)


def _add_serve(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "serve",
        help="run the durable multi-tenant ingestion service "
             "(JSON-lines over TCP; see docs/serving.md)",
    )
    p.add_argument("--root", required=True,
                   help="state directory (journals + checkpoints)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="0 picks a free port; the bound port is printed "
                        "as 'SERVING <host> <port>' on stdout")
    p.add_argument("--metrics", type=int, default=8)
    p.add_argument("--relevant", type=int, default=4)
    p.add_argument("--epoch-minutes", type=int, default=15,
                   help="epoch length (must divide 1440)")
    p.add_argument("--window-days", type=int, default=240)
    p.add_argument("--refresh-epochs", type=int, default=None,
                   help="threshold refresh cadence (default: daily)")
    p.add_argument("--min-history-epochs", type=int, default=None,
                   help="history before thresholds activate "
                        "(default: 7 days)")
    p.add_argument("--checkpoint-every", type=int, default=4,
                   help="closed epochs between tenant checkpoints")
    p.add_argument("--max-inflight", type=int, default=1024,
                   help="admission bound on accepted-but-unapplied "
                        "requests")
    p.add_argument("--idle-timeout", type=float, default=5.0,
                   help="seconds before a stalled mid-frame connection "
                        "is dropped")
    p.add_argument("--max-restarts", type=int, default=3,
                   help="consecutive tenant crashes before quarantine")
    p.add_argument("--standby-of", default=None, metavar="HOST:PORT[,...]",
                   help="run as a warm standby tailing the given "
                        "primary's journals (rejects client writes "
                        "until promoted; see docs/operations.md)")
    p.add_argument("--heartbeat-interval", type=float, default=1.0,
                   help="replication heartbeat cadence on idle links")
    p.add_argument("--repl-ack-timeout", type=float, default=5.0,
                   help="seconds without an ack before a replication "
                        "subscriber is presumed dead and reaped")
    p.add_argument("--forecast", action="store_true",
                   help="attach a forecast engine to every tenant for "
                        "predictive early warning (see "
                        "docs/forecasting.md)")
    p.add_argument("--forecast-model", default=None, metavar="PATH",
                   help="trained forecast model archive (from "
                        "'repro forecast train') seeded into fresh "
                        "tenants; without it tenants observe but never "
                        "alarm until a trained checkpoint arrives")
    p.add_argument("--discovery", action="store_true",
                   help="attach a discovery engine to every tenant so "
                        "don't-know crises grow the catalog "
                        "automatically (see docs/discovery.md)")
    p.add_argument("--seed", type=int, default=0)


def _add_discover(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "discover",
        help="unsupervised crisis discovery over an unlabeled trace "
             "(see docs/discovery.md)",
    )
    dsub = p.add_subparsers(dest="discover_action", required=True)

    r = dsub.add_parser(
        "run",
        help="replay a trace with zero diagnoses and cluster its crises",
    )
    r.add_argument("trace", help="path of a saved .npz trace")
    r.add_argument("--state", default=None,
                   help="write the discovery state archive here")
    r.add_argument("--relevant-metrics", type=int, default=10)
    r.add_argument("--window-days", type=int, default=30)
    r.add_argument("--assign-radius", type=float, default=None,
                   help="fixed cluster radius "
                        "(default: auto-calibrated from the stream)")
    r.add_argument("--radius-scale", type=float, default=1.1,
                   help="widening applied to the auto-calibrated radius")
    r.add_argument("--no-promote", action="store_true",
                   help="cluster only; never mint catalog entries")

    s = dsub.add_parser(
        "stats", help="print a saved discovery state's statistics"
    )
    s.add_argument("state", help="path of a discovery state archive")

    pr = dsub.add_parser(
        "promote",
        help="manually promote one cluster into the catalog and save",
    )
    pr.add_argument("state", help="path of a discovery state archive")
    pr.add_argument("cluster", type=int, help="cluster id (see stats)")
    pr.add_argument("--label", default=None,
                    help="catalog label (default: discovered-<id>)")


def _add_forecast(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "forecast",
        help="predictive early warning: train, replay, and inspect "
             "pre-SLA crisis forecasters (see docs/forecasting.md)",
    )
    fsub = p.add_subparsers(dest="forecast_action", required=True)

    t = fsub.add_parser(
        "train",
        help="replay a trace prefix online and train the two-stage "
             "detector; writes a model archive for 'forecast run' and "
             "'serve --forecast-model'",
    )
    t.add_argument("trace", help="path of a saved .npz trace")
    t.add_argument("model", help="path of the model archive to write")
    t.add_argument("--relevant-metrics", type=int, default=10)
    t.add_argument("--window-days", type=int, default=30)
    t.add_argument("--train-epochs", type=int, default=None,
                   help="train on the first N epochs only "
                        "(default: the whole trace)")
    t.add_argument("--horizon", type=int, default=4,
                   help="lead horizon: alarm when a crisis is expected "
                        "within this many epochs")
    t.add_argument("--budget", type=float, default=0.02,
                   help="false-alarm budget on crisis-free epochs")
    t.add_argument("--negatives", type=int, default=6000,
                   help="crisis-free epochs sampled for training")
    t.add_argument("--seed", type=int, default=0)

    r = fsub.add_parser(
        "run",
        help="replay a trace through a trained forecaster and print "
             "the lead-time-vs-precision report",
    )
    r.add_argument("trace", help="path of a saved .npz trace")
    r.add_argument("model", help="path of a trained model archive")
    r.add_argument("--relevant-metrics", type=int, default=10)
    r.add_argument("--window-days", type=int, default=30)
    r.add_argument("--eval-start", type=int, default=0,
                   help="only score crises detected at or after this "
                        "epoch (use the training split point)")

    s = fsub.add_parser(
        "stats", help="print a saved forecast model's statistics"
    )
    s.add_argument("model", help="path of a trained model archive")


def _parse_endpoints(spec: str) -> List[Tuple[str, int]]:
    """Parse ``host:port[,host:port...]`` into endpoint tuples."""
    out: List[Tuple[str, int]] = []
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        host, sep, port = item.rpartition(":")
        if not sep or not host:
            raise SystemExit(f"bad endpoint {item!r}: expected HOST:PORT")
        try:
            out.append((host, int(port)))
        except ValueError:
            raise SystemExit(f"bad endpoint port in {item!r}")
    if not out:
        raise SystemExit(f"no endpoints in {spec!r}")
    return out


def _add_admin(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "admin",
        help="operate a running serving fleet: stats, unquarantine, "
             "promote, fence, failover (see docs/operations.md)",
    )
    p.add_argument("--endpoints", required=True, metavar="HOST:PORT[,...]",
                   help="serving nodes, primary first by convention")
    asub = p.add_subparsers(dest="admin_command", required=True)
    asub.add_parser("stats", help="print every node's stats as JSON")
    inc = asub.add_parser(
        "incidents",
        help="print one tenant's crisis catalog: stored labels plus "
             "discovery cluster statistics (read-only)",
    )
    inc.add_argument("tenant")
    fc = asub.add_parser(
        "forecasts",
        help="print one tenant's early-warning state: forecast engine "
             "statistics plus retained alarms (read-only)",
    )
    fc.add_argument("tenant")
    u = asub.add_parser(
        "unquarantine",
        help="release a quarantined tenant with a fresh restart budget",
    )
    u.add_argument("tenant")
    asub.add_parser(
        "promote",
        help="promote the first reachable standby to primary "
             "(mints a new fencing epoch)",
    )
    f = asub.add_parser(
        "fence", help="fence every node at the given epoch"
    )
    f.add_argument("epoch", type=int)
    fo = asub.add_parser(
        "failover",
        help="one controller round: probe, and promote + fence if the "
             "primary is gone",
    )
    fo.add_argument("--grace-probes", type=int, default=2)


def _add_discriminate(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "discriminate", help="Figure 3: per-method discrimination AUC"
    )
    p.add_argument("trace", help="path of a saved .npz trace")


def _add_report(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "report", help="print the full operator dossier for one crisis"
    )
    p.add_argument("trace", help="path of a saved .npz trace")
    p.add_argument("crisis", type=int, help="crisis index in the trace")
    p.add_argument("--relevant-metrics", type=int, default=30)


def _add_timeline(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "timeline", help="print a day-by-day strip of the trace"
    )
    p.add_argument("trace", help="path of a saved .npz trace")
    p.add_argument("--days-per-row", type=int, default=60)


def _add_render(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "render", help="print the fingerprint heatmap of one crisis"
    )
    p.add_argument("trace", help="path of a saved .npz trace")
    p.add_argument("crisis", type=int, help="crisis index in the trace")
    p.add_argument("--relevant-metrics", type=int, default=15)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fingerprinting the Datacenter (EuroSys 2010) tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_simulate(sub)
    _add_identify(sub)
    _add_monitor(sub)
    _add_index(sub)
    _add_fleet(sub)
    _add_serve(sub)
    _add_admin(sub)
    _add_discover(sub)
    _add_forecast(sub)
    _add_discriminate(sub)
    _add_render(sub)
    _add_timeline(sub)
    _add_report(sub)
    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.datacenter import DatacenterSimulator, SimulationConfig
    from repro.persistence import save_trace

    config = SimulationConfig(
        n_machines=args.machines,
        seed=args.seed,
        warmup_days=args.warmup_days,
        bootstrap_days=args.bootstrap_days,
        labeled_days=args.labeled_days,
        n_bootstrap_crises=args.bootstrap_crises,
    )
    print(
        f"simulating {config.total_days} days on {config.n_machines} "
        f"machines (seed {config.seed})..."
    )
    trace = DatacenterSimulator(config).run()
    save_trace(trace, args.output)
    print(
        f"wrote {args.output}: {trace.n_epochs} epochs, "
        f"{trace.n_metrics} metrics, "
        f"{len(trace.detected_crises)} detected crises"
    )
    return 0


def _cmd_identify(args: argparse.Namespace) -> int:
    from repro.config import IdentificationConfig
    from repro.core.identification import is_stable, sequence_label
    from repro.core.pipeline import FingerprintPipeline
    from repro.persistence import load_trace

    trace = load_trace(args.trace)
    config = FingerprintingConfig(
        selection=SelectionConfig(n_relevant=args.relevant_metrics),
        thresholds=ThresholdConfig(window_days=args.window_days),
        identification=IdentificationConfig(alpha=args.alpha),
    )
    pipeline = FingerprintPipeline(trace, config)
    correct = attempted = 0
    for crisis in trace.detected_crises:
        pipeline.observe(crisis)
        pipeline.refresh(crisis.detected_epoch)
        pipeline.update_identification_threshold()
        if pipeline.identification_threshold is not None:
            known = {k.label for k in pipeline.known}
            seq = pipeline.identify(crisis).sequence
            stable = is_stable(seq)
            settled = sequence_label(seq) if stable else None
            ok = (
                settled == crisis.label
                if crisis.label in known
                else (stable and settled is None)
            )
            attempted += 1
            correct += ok
            print(
                f"[{'OK  ' if ok else 'MISS'}] crisis {crisis.index:3d} "
                f"type {crisis.label} "
                f"({'known' if crisis.label in known else 'new'}): "
                f"{' '.join(seq)}"
            )
        pipeline.confirm(crisis)
    if attempted:
        print(f"accuracy: {correct}/{attempted} "
              f"({100.0 * correct / attempted:.0f}%)")
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    from repro.config import ReliabilityConfig
    from repro.core.checkpoint import load_monitor, save_monitor
    from repro.core.streaming import (
        CrisisDetected,
        CrisisEnded,
        EpochUntrusted,
        IdentificationUpdate,
        StreamingCrisisMonitor,
    )
    from repro.persistence import load_trace

    trace = load_trace(args.trace)
    clock = EpochClock(epoch_minutes=(24 * 60) // trace.epochs_per_day)
    config = FingerprintingConfig(
        selection=SelectionConfig(n_relevant=args.relevant_metrics),
        thresholds=ThresholdConfig(window_days=args.window_days),
    )
    reliability = ReliabilityConfig(coverage_floor=args.coverage_floor)
    checkpoint_every = (
        args.checkpoint_every
        if args.checkpoint_every is not None
        else reliability.checkpoint_cadence(clock.per_day)
    )

    if args.resume:
        if not args.checkpoint:
            print("--resume requires --checkpoint", file=sys.stderr)
            return 1
        monitor = load_monitor(args.checkpoint, config, reliability)
        start = len(monitor.store)
        print(f"resumed from {args.checkpoint} at epoch {start}")
    else:
        from repro.methods import FingerprintMethod

        method = FingerprintMethod(config)
        method.fit(trace, trace.labeled_crises)
        monitor = StreamingCrisisMonitor(
            n_metrics=trace.n_metrics,
            relevant_metrics=method.relevant,
            config=config,
            reliability=reliability,
            clock=clock,
        )
        start = 0

    stop = trace.n_epochs
    if args.stop_epoch is not None:
        stop = min(stop, args.stop_epoch)
    frac = trace.kpi_violation_fraction.max(axis=1)
    n_detected = n_untrusted = 0
    for epoch in range(start, stop):
        events = monitor.ingest(trace.quantiles[epoch], float(frac[epoch]))
        for event in events:
            if isinstance(event, CrisisDetected):
                n_detected += 1
                print(f"[{event.epoch:6d}] crisis {event.crisis_number} "
                      f"detected")
            elif isinstance(event, IdentificationUpdate):
                d = "-" if event.distance is None else f"{event.distance:.3f}"
                print(f"[{event.epoch:6d}] crisis {event.crisis_number} "
                      f"identification {event.identification_epoch}: "
                      f"{event.label} (distance {d})")
            elif isinstance(event, CrisisEnded):
                print(f"[{event.epoch:6d}] crisis {event.crisis_number} "
                      f"ended after {event.duration_epochs} epochs")
            elif isinstance(event, EpochUntrusted):
                n_untrusted += 1
                print(f"[{event.epoch:6d}] epoch untrusted: "
                      f"{', '.join(event.reasons)}")
        if (
            args.checkpoint
            and (epoch + 1 - start) % checkpoint_every == 0
        ):
            save_monitor(monitor, args.checkpoint)
    if args.checkpoint:
        save_monitor(monitor, args.checkpoint)
        print(f"checkpoint written to {args.checkpoint}")
    print(f"monitored epochs {start}..{stop}: {n_detected} detections, "
          f"{n_untrusted} untrusted epochs")
    return 0


def _fitted_fingerprints(trace, n_relevant: int):
    """Fit the paper's method and fingerprint every labeled crisis."""
    from repro.methods import FingerprintMethod

    method = FingerprintMethod(
        FingerprintingConfig(
            selection=SelectionConfig(n_relevant=n_relevant)
        )
    )
    method.fit(trace, trace.labeled_crises)
    vectors = [method.vector(c) for c in trace.labeled_crises]
    labels = [c.label for c in trace.labeled_crises]
    return method, vectors, labels


def _cmd_index(args: argparse.Namespace) -> int:
    import time

    import numpy as np

    from repro.index import create_index, load_index, save_index
    from repro.persistence import load_trace

    if args.index_action == "build":
        trace = load_trace(args.trace)
        _, vectors, labels = _fitted_fingerprints(
            trace, args.relevant_metrics
        )
        kwargs = {"seed": args.seed} if args.backend == "lsh" else {}
        index = create_index(args.backend, len(vectors[0]), **kwargs)
        index.add_batch(vectors, payloads=labels)
        if args.synthetic > len(index):
            # Jittered copies of real fingerprints: scale experiments need
            # libraries far larger than one trace can produce.
            rng = np.random.default_rng(args.seed)
            base = np.stack(vectors)
            while len(index) < args.synthetic:
                row = int(rng.integers(len(base)))
                vec = base[row] + rng.normal(
                    scale=0.05, size=base.shape[1]
                )
                index.add(vec, payload=labels[row])
        save_index(index, args.output)
        print(
            f"wrote {args.output}: {len(index)} fingerprints "
            f"({index.backend} backend, dim {index.dim})"
        )
        return 0

    index = load_index(args.index)
    if args.index_action == "stats":
        for key, value in sorted(index.stats().items()):
            print(f"{key:>14}: {value}")
        return 0

    if args.index_action == "query":
        trace = load_trace(args.trace)
        crises = {c.index: c for c in trace.detected_crises}
        if args.crisis not in crises:
            print(f"crisis {args.crisis} not found or undetected",
                  file=sys.stderr)
            return 1
        method, _, _ = _fitted_fingerprints(trace, args.relevant_metrics)
        vector = method.vector(crises[args.crisis])
        hits = index.query(vector, k=args.k)
        if not hits:
            print("no matches (empty index or no LSH candidates)")
            return 0
        for rank, hit in enumerate(hits, start=1):
            print(f"{rank}. id {hit.id:6d}  distance {hit.distance:.4f}  "
                  f"label {hit.payload or '-'}")
        return 0

    # bench: indexed queries vs. the historical Python-loop linear scan.
    rng = np.random.default_rng(args.seed)
    ids = index.ids()
    if not ids:
        print("index is empty", file=sys.stderr)
        return 1
    picks = rng.choice(len(ids), size=min(args.queries, len(ids)),
                       replace=False)
    queries = [
        index.vector(ids[i]) + rng.normal(scale=0.01, size=index.dim)
        for i in picks
    ]
    start = time.perf_counter()
    for query in queries:
        index.query(query, k=args.k)
    indexed_s = (time.perf_counter() - start) / len(queries)
    library = [(i, index.vector(i)) for i in ids]
    scan_queries = queries[: max(min(5, len(queries)), 1)]
    start = time.perf_counter()
    for query in scan_queries:
        scored = sorted(
            (float(np.linalg.norm(query - vec)), i) for i, vec in library
        )
        del scored
    scan_s = (time.perf_counter() - start) / len(scan_queries)
    print(f"backend {index.backend}, {len(index)} vectors, "
          f"dim {index.dim}, k={args.k}")
    print(f"indexed query : {indexed_s * 1e3:9.3f} ms")
    print(f"linear scan   : {scan_s * 1e3:9.3f} ms")
    print(f"speedup       : {scan_s / max(indexed_s, 1e-12):9.1f}x")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.config import FleetConfig
    from repro.fleet import FleetAggregator, describe_plan, plan_shards
    from repro.fleet.bench import (
        format_results,
        run_scaling,
        simulate_fleet_epochs,
    )
    from repro.telemetry.chaos import ShardChaosConfig

    if args.fleet_action == "plan":
        machine_ids = [f"host-{i:05d}" for i in range(args.machines)]
        print(describe_plan(plan_shards(machine_ids, args.shards)))
        return 0

    if args.fleet_action == "run":
        machine_ids = [f"host-{i:05d}" for i in range(args.machines)]
        metric_names = [f"metric-{j}" for j in range(args.metrics)]
        chaos = None
        if args.chaos_kill or args.chaos_straggle:
            chaos = ShardChaosConfig(
                kill=args.chaos_kill,
                straggle=args.chaos_straggle,
                straggle_seconds=args.chaos_straggle_seconds,
                seed=args.seed,
            )
        config = FleetConfig(
            n_shards=args.shards, mode=args.mode,
            sketch_eps=args.sketch_eps, close_deadline_s=args.deadline,
        )
        stream = simulate_fleet_epochs(
            args.machines, args.metrics, args.epochs, seed=args.seed
        )
        with FleetAggregator(
            metric_names, machine_ids=machine_ids, config=config,
            chaos=chaos,
        ) as fleet:
            for epoch in range(args.epochs):
                fleet.submit_matrix(stream[epoch])
                summary = fleet.close_epoch()
                q = summary.quality
                degraded = (
                    "" if not q.missing_shards
                    else f"  MISSING SHARDS {list(q.missing_shards)}"
                )
                median = summary.quantiles[0, len(fleet.quantiles) // 2]
                print(
                    f"[{epoch:4d}] reporting {q.n_reporting:6d}/"
                    f"{q.fleet_size}  coverage {q.coverage:5.1%}  "
                    f"shards {q.n_shards_reporting}/{q.n_shards}  "
                    f"quorum {'ok' if q.quorum_met else 'FAILED'}  "
                    f"median(m0) "
                    f"{'nan' if np.isnan(median) else f'{median:.3f}'}"
                    f"{degraded}"
                )
            if fleet.n_respawns:
                print(f"respawned {fleet.n_respawns} dead worker(s)")
        return 0

    # bench
    worker_counts = [int(w) for w in args.workers.split(",") if w]
    results = run_scaling(
        n_machines=args.machines,
        n_metrics=args.metrics,
        n_epochs=args.epochs,
        worker_counts=worker_counts,
        mode=args.mode,
        sketch_eps=args.sketch_eps,
        seed=args.seed,
    )
    print(format_results(
        results, title="Fleet aggregation throughput"
    ))
    return 0


def _cmd_discriminate(args: argparse.Namespace) -> int:
    from repro.evaluation.discrimination import discrimination_roc
    from repro.evaluation.results import format_table
    from repro.methods import (
        AllMetricsFingerprintMethod,
        FingerprintMethod,
        KPIMethod,
        SignaturesMethod,
    )
    from repro.persistence import load_trace

    trace = load_trace(args.trace)
    crises = trace.labeled_crises
    rows = []
    for method in (
        FingerprintMethod(),
        SignaturesMethod(),
        AllMetricsFingerprintMethod(),
        KPIMethod(),
    ):
        method.fit(trace, crises)
        roc = discrimination_roc(method, crises)
        rows.append([method.name, round(roc.auc, 3)])
    print(format_table(["type of fingerprint", "AUC"], rows))
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    from repro.core.summary import summary_vectors
    from repro.methods import FingerprintMethod
    from repro.persistence import load_trace
    from repro.viz import render_fingerprint

    trace = load_trace(args.trace)
    crises = {c.index: c for c in trace.detected_crises}
    if args.crisis not in crises:
        print(f"crisis {args.crisis} not found or undetected",
              file=sys.stderr)
        return 1
    crisis = crises[args.crisis]
    method = FingerprintMethod(
        FingerprintingConfig(
            selection=SelectionConfig(n_relevant=args.relevant_metrics)
        )
    )
    method.fit(trace, trace.labeled_crises)
    det = crisis.detected_epoch
    window = trace.quantiles[max(det - 2, 0) : det + 5]
    summaries = summary_vectors(window, method.thresholds)
    sub = summaries[:, method.relevant, :]
    print(
        render_fingerprint(
            sub.reshape(sub.shape[0], -1),
            title=f"crisis {crisis.index} (type {crisis.label})",
        )
    )
    print("metrics:", ", ".join(
        trace.metric_names[i] for i in method.relevant
    ))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.methods import FingerprintMethod
    from repro.persistence import load_trace
    from repro.viz import crisis_dossier

    trace = load_trace(args.trace)
    crises = {c.index: c for c in trace.detected_crises}
    if args.crisis not in crises:
        print(f"crisis {args.crisis} not found or undetected",
              file=sys.stderr)
        return 1
    crisis = crises[args.crisis]
    method = FingerprintMethod(
        FingerprintingConfig(
            selection=SelectionConfig(n_relevant=args.relevant_metrics)
        )
    )
    method.fit(trace, trace.labeled_crises)
    others = [c for c in trace.labeled_crises if c.index != crisis.index]
    scored = sorted(
        ((c.label, method.pair_distance(crisis, c)) for c in others),
        key=lambda pair: pair[1],
    )[:3]
    print(
        crisis_dossier(
            trace, crisis, method.thresholds, method.relevant,
            matches=scored,
        )
    )
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.persistence import load_trace
    from repro.viz import render_timeline

    trace = load_trace(args.trace)
    print(render_timeline(trace, days_per_row=args.days_per_row))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.config import ServingConfig
    from repro.serving import IngestServer

    cfg = ServingConfig(
        n_metrics=args.metrics,
        n_relevant=args.relevant,
        epoch_minutes=args.epoch_minutes,
        window_days=args.window_days,
        threshold_refresh_epochs=args.refresh_epochs,
        min_history_epochs=args.min_history_epochs,
        checkpoint_every_epochs=args.checkpoint_every,
        max_inflight=args.max_inflight,
        idle_timeout_s=args.idle_timeout,
        max_restarts=args.max_restarts,
        heartbeat_interval_s=args.heartbeat_interval,
        repl_ack_timeout_s=args.repl_ack_timeout,
        discovery_enabled=args.discovery,
        forecast_enabled=args.forecast or bool(args.forecast_model),
        forecast_model=args.forecast_model,
        seed=args.seed,
    )
    standby_of = (
        _parse_endpoints(args.standby_of)
        if args.standby_of else None
    )
    server = IngestServer(
        cfg, args.root, host=args.host, port=args.port,
        standby_of=standby_of,
    )
    port = server.start()
    # Discovery line for supervisors/tests: flushed before serving.
    print(f"SERVING {args.host} {port}", flush=True)
    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stop.set())
    while not stop.is_set() and not server._stopping.is_set():
        stop.wait(0.2)
    server.close()  # graceful: checkpoints every tenant
    if server.fatal_error is not None:
        print(f"FATAL {server.fatal_error}", file=sys.stderr)
        return 1
    return 0


def _cmd_admin(args: argparse.Namespace) -> int:
    import json

    from repro.serving.failover import FailoverController

    endpoints = _parse_endpoints(args.endpoints)
    controller = FailoverController(endpoints)
    if args.admin_command == "stats":
        out = {
            f"{h}:{p}": controller.probe((h, p)) for h, p in endpoints
        }
        print(json.dumps(out, indent=2, sort_keys=True))
        return 0 if any(v is not None for v in out.values()) else 1
    if args.admin_command in ("incidents", "forecasts"):
        for endpoint in endpoints:
            resp = controller._call(
                endpoint,
                {"op": args.admin_command, "tenant": args.tenant},
            )
            if resp is not None:
                print(json.dumps(resp, indent=2, sort_keys=True))
                return 0
        print(f"no reachable node knows tenant {args.tenant!r}",
              file=sys.stderr)
        return 1
    if args.admin_command == "unquarantine":
        for endpoint in endpoints:
            resp = controller._call(
                endpoint, {"op": "unquarantine", "tenant": args.tenant}
            )
            if resp is not None:
                print(f"UNQUARANTINED {args.tenant} "
                      f"on {endpoint[0]}:{endpoint[1]}")
                return 0
        print(f"no reachable node would unquarantine {args.tenant!r}",
              file=sys.stderr)
        return 1
    if args.admin_command == "promote":
        for endpoint in endpoints:
            status = controller.probe(endpoint)
            if status is not None and status.get("role") == "standby":
                resp = controller._call(endpoint, {"op": "promote"})
                if resp is not None:
                    print(f"PROMOTED {endpoint[0]}:{endpoint[1]} "
                          f"fence {resp['fence']}")
                    return 0
        print("no reachable standby to promote", file=sys.stderr)
        return 1
    if args.admin_command == "fence":
        fenced = 0
        for endpoint in endpoints:
            resp = controller._call(
                endpoint, {"op": "fence", "epoch": args.epoch}
            )
            if resp is not None:
                fenced += 1
                print(f"FENCE {endpoint[0]}:{endpoint[1]} "
                      f"epoch {resp['fence']} fenced {resp['fenced']}")
        return 0 if fenced else 1
    # failover: one controller round.
    controller.grace_probes = args.grace_probes
    # Pre-charge the miss counter so a single invocation acts
    # immediately when the operator has already decided the primary is
    # gone; the grace period matters for the looped/daemonized form.
    result = None
    for _ in range(args.grace_probes):
        result = controller.step()
        if result["action"] != "wait":
            break
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0 if result["action"] in ("healthy", "promoted") else 1


def _cmd_discover(args: argparse.Namespace) -> int:
    import json
    from dataclasses import replace

    from repro.discovery import load_discovery, save_discovery
    from repro.discovery.eval import (
        EVAL_DISCOVERY,
        format_report,
        run_unlabeled,
    )

    if args.discover_action == "run":
        from repro.persistence import load_trace

        trace = load_trace(args.trace)
        config = FingerprintingConfig(
            selection=SelectionConfig(n_relevant=args.relevant_metrics),
            thresholds=ThresholdConfig(window_days=args.window_days),
        )
        discovery = replace(
            EVAL_DISCOVERY,
            assign_radius=args.assign_radius,
            radius_scale=args.radius_scale,
            auto_promote=not args.no_promote,
        )
        result, engine = run_unlabeled(
            trace, config=config, discovery=discovery
        )
        print(format_report(result))
        if args.state:
            save_discovery(engine, args.state)
            print(f"\ndiscovery state written to {args.state}")
        return 0

    engine = load_discovery(args.state)
    if args.discover_action == "stats":
        stats = engine.stats()
        clusters = stats.pop("clusters", [])
        for key, value in sorted(stats.items()):
            print(f"{key:>16}: {value}")
        for row in clusters:
            print(json.dumps(row, sort_keys=True))
        return 0

    # promote: name one cluster by hand, persist the updated state.
    try:
        label = engine.promote_cluster(args.cluster, label=args.label)
    except KeyError:
        print(f"no cluster {args.cluster} in {args.state}",
              file=sys.stderr)
        return 1
    save_discovery(engine, args.state)
    print(f"promoted cluster {args.cluster} as {label}")
    return 0


def _cmd_forecast(args: argparse.Namespace) -> int:
    from repro.forecast.engine import load_forecast

    if args.forecast_action == "stats":
        engine = load_forecast(args.model)
        for key, value in sorted(engine.stats().items()):
            print(f"{key:>18}: {value}")
        return 0

    from repro.config import ForecastConfig
    from repro.discovery.eval import unlabeled_relevant_metrics
    from repro.persistence import load_trace

    trace = load_trace(args.trace)
    config = FingerprintingConfig(
        selection=SelectionConfig(n_relevant=args.relevant_metrics),
        thresholds=ThresholdConfig(window_days=args.window_days),
    )
    relevant = unlabeled_relevant_metrics(trace, config)

    if args.forecast_action == "train":
        from repro.forecast.engine import save_forecast
        from repro.forecast.trainer import train_forecaster

        fcfg = ForecastConfig(
            horizon_epochs=args.horizon,
            false_alarm_budget=args.budget,
            seed=args.seed,
        )
        engine, report = train_forecaster(
            trace, relevant, config=config, fcfg=fcfg,
            train_epochs=args.train_epochs, n_negative=args.negatives,
        )
        print(
            f"trained on {report.train_epochs} epochs: "
            f"{report.n_positive} positive / {report.n_negative} "
            f"negative examples, {report.n_detections} detections"
        )
        print(
            f"stage 1: lambda {report.lam:.6g}, alarm threshold "
            f"{report.alarm_threshold:.4f} (training recall "
            f"{report.calibration_recall:.0%} at "
            f"{report.calibration_fpr:.2%} false alarms)"
        )
        print(
            f"stage 2: {report.catalog_size} catalog fingerprints, "
            f"match threshold {report.match_threshold}"
        )
        save_forecast(engine, args.model)
        print(f"model written to {args.model}")
        return 0

    # run: replay the trace and report lead-time vs precision.
    from repro.forecast.eval import evaluate_forecaster, format_report

    engine = load_forecast(args.model)
    result = evaluate_forecaster(
        trace, relevant, engine, eval_start=args.eval_start,
        config=config,
    )
    print(format_report(result, title=args.trace))
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "identify": _cmd_identify,
    "monitor": _cmd_monitor,
    "index": _cmd_index,
    "fleet": _cmd_fleet,
    "serve": _cmd_serve,
    "admin": _cmd_admin,
    "discover": _cmd_discover,
    "forecast": _cmd_forecast,
    "discriminate": _cmd_discriminate,
    "render": _cmd_render,
    "timeline": _cmd_timeline,
    "report": _cmd_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
