"""Evaluation harness: discovery quality on a fully unlabeled stream.

The headline experiment replays a simulated trace through the streaming
monitor with **no operator diagnoses at all** — the regime the paper's
bootstrap period lives in — and lets the attached
:class:`~repro.discovery.DiscoveryEngine` grow the catalog on its own.
Ground-truth crisis types (known to the simulator, hidden from the
pipeline) then score the discovered partition: how many injected types
were recovered, cluster purity, and chance-adjusted agreement
(adjusted Rand / NMI, :mod:`repro.extensions.catalog`).

Relevant metrics are selected *without labels*: the per-crisis
L1-logistic step (Section 3.4) only needs the raw machine telemetry
around each detected crisis and the SLA violation flags, never the
diagnosis, so the unlabeled run uses exactly the paper's selection on
its own detections.

For context the harness also replays the *supervised ceiling* — the
same stream with an oracle operator diagnosing every crisis as it ends
— and reports the agreement the identification path achieves with that
much help.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import (
    DiscoveryConfig,
    FingerprintingConfig,
    SelectionConfig,
    ThresholdConfig,
)
from repro.core.identification import UNKNOWN, is_stable, sequence_label
from repro.core.selection import (
    select_crisis_metrics,
    select_relevant_metrics,
)
from repro.core.streaming import (
    CrisisDetected,
    CrisisEnded,
    IdentificationUpdate,
    StreamingCrisisMonitor,
)
from repro.discovery.engine import DiscoveryEngine
from repro.extensions.catalog import (
    adjusted_rand_index,
    normalized_mutual_information,
)
from repro.incidents import IncidentDatabase

#: Streaming config matched to the replay traces.  Discovery clusters
#: best on *compact* fingerprints: with no labels to average away noise,
#: every extra relevant metric adds variance that blurs the gap between
#: same-type and different-type distances, so the eval keeps only the
#: 10 most recurrent metrics (the paper's per-crisis top-k).  The
#: 30-day threshold window keeps rolling re-estimation tractable at
#: test scale.
EVAL_CONFIG = FingerprintingConfig(
    selection=SelectionConfig(n_relevant=10),
    thresholds=ThresholdConfig(window_days=30),
)

#: Discovery policy for the eval: the auto-calibrated radius lands at
#: the inner edge of the same-type distance band (the largest-gap
#: midpoint is conservative), so the eval widens it by 10% — enough to
#: absorb the spread the evolving thresholds add to a type's
#: fingerprints without bridging distinct types.
EVAL_DISCOVERY = DiscoveryConfig(radius_scale=1.1)


@dataclass(frozen=True)
class DiscoveryEvalResult:
    """Scores of one fully-unlabeled discovery run."""

    n_detected: int
    n_clustered: int
    n_clusters: int
    n_promoted: int
    n_types: int
    recovered_types: int
    purity: float
    adjusted_rand: float
    nmi: float
    supervised_adjusted_rand: float
    supervised_accuracy: float
    cluster_rows: Tuple[dict, ...]

    def to_dict(self) -> dict:
        return asdict(self)


def unlabeled_relevant_metrics(
    trace, config: FingerprintingConfig = EVAL_CONFIG
) -> np.ndarray:
    """Relevant metrics from detections only — no diagnoses involved."""
    selections = [
        select_crisis_metrics(
            c.raw.values,
            c.raw.violations,
            top_k=config.selection.per_crisis_top_k,
        )
        for c in trace.detected_crises
        if c.raw is not None
    ]
    return select_relevant_metrics(
        selections,
        config.selection.n_relevant,
        pool=max(len(selections), config.selection.crisis_pool),
    )


def truth_label(trace, epoch: int) -> Optional[str]:
    """Ground-truth type of the injected crisis covering ``epoch``."""
    for c in trace.crises:
        if c.instance.start_epoch - 4 <= epoch <= c.instance.end_epoch + 8:
            return c.label
    return None


def _make_monitor(
    trace,
    relevant: np.ndarray,
    config: FingerprintingConfig,
) -> StreamingCrisisMonitor:
    return StreamingCrisisMonitor(
        n_metrics=trace.n_metrics,
        relevant_metrics=relevant,
        config=config,
        threshold_refresh_epochs=trace.epochs_per_day,
        min_history_epochs=trace.epochs_per_day * 7,
    )


def run_unlabeled(
    trace,
    config: FingerprintingConfig = EVAL_CONFIG,
    discovery: DiscoveryConfig = EVAL_DISCOVERY,
    incidents: Optional[IncidentDatabase] = None,
) -> Tuple[DiscoveryEvalResult, DiscoveryEngine]:
    """Replay ``trace`` with zero diagnoses; score the discovered catalog.

    Returns ``(result, engine)`` so callers can inspect or persist the
    engine state (the CLI saves it, the benchmark reports it).
    """
    relevant = unlabeled_relevant_metrics(trace, config)
    monitor = _make_monitor(trace, relevant, config)
    engine = DiscoveryEngine(
        discovery,
        incidents=IncidentDatabase() if incidents is None else incidents,
    )
    monitor.attach_discovery(engine)

    frac = trace.kpi_violation_fraction.max(axis=1)
    detected_at: Dict[int, int] = {}
    for epoch in range(trace.n_epochs):
        for event in monitor.ingest(
            trace.quantiles[epoch], float(frac[epoch])
        ):
            if isinstance(event, CrisisDetected):
                detected_at[event.crisis_number] = event.epoch
    engine.finalize()

    truths = {
        number: truth_label(trace, epoch)
        for number, epoch in detected_at.items()
    }
    result = score_partition(
        engine.clusterer.partition(),
        truths,
        n_detected=len(detected_at),
        n_promoted=len(engine.clusterer.labels()),
        supervised=run_supervised_ceiling(trace, config),
    )
    return result, engine


def run_supervised_ceiling(
    trace, config: FingerprintingConfig = EVAL_CONFIG
) -> Tuple[float, float]:
    """(adjusted Rand, identification accuracy) with an oracle operator.

    The same stream, but every crisis is diagnosed with its true type
    the moment it ends — the best the *supervised* identification path
    can do.  The partition scored is the one identification itself
    produces: crises grouped by their settled stable label, unstable or
    unknown ones left as singletons.
    """
    from repro.methods import FingerprintMethod

    method = FingerprintMethod(config)
    method.fit(trace, trace.labeled_crises)
    monitor = _make_monitor(trace, method.relevant, config)

    frac = trace.kpi_violation_fraction.max(axis=1)
    detected_at: Dict[int, int] = {}
    sequences: Dict[int, List[str]] = {}
    settled: Dict[int, Optional[str]] = {}
    seen_types: Dict[int, bool] = {}
    known: set = set()
    for epoch in range(trace.n_epochs):
        for event in monitor.ingest(
            trace.quantiles[epoch], float(frac[epoch])
        ):
            if isinstance(event, CrisisDetected):
                detected_at[event.crisis_number] = event.epoch
                sequences[event.crisis_number] = []
            elif isinstance(event, IdentificationUpdate):
                sequences.setdefault(event.crisis_number, []).append(
                    event.label
                )
            elif isinstance(event, CrisisEnded):
                seq = sequences.pop(event.crisis_number, [])
                label = None
                if seq and is_stable(seq):
                    label = sequence_label(seq)
                settled[event.crisis_number] = label
                truth = truth_label(
                    trace, detected_at[event.crisis_number]
                )
                if truth is not None:
                    seen_types[event.crisis_number] = truth in known
                    known.add(truth)
                    try:
                        monitor.diagnose(event.crisis_number, truth)
                    except KeyError:
                        pass

    refs = sorted(n for n, e in detected_at.items()
                  if truth_label(trace, e) is not None)
    truth_seq = [truth_label(trace, detected_at[n]) for n in refs]
    pred_seq = [
        settled.get(n) if settled.get(n) not in (None, UNKNOWN)
        else f"solo-{n}"
        for n in refs
    ]
    if not refs:
        return 0.0, 0.0
    ari = adjusted_rand_index(pred_seq, truth_seq)
    # Accuracy over the identifiable cases: recurrences of a previously
    # diagnosed type (a first occurrence cannot be named by anyone).
    attempted = [n for n in refs if seen_types.get(n)]
    correct = sum(
        1 for n in attempted
        if settled.get(n) == truth_label(trace, detected_at[n])
    )
    accuracy = correct / len(attempted) if attempted else 0.0
    return float(ari), float(accuracy)


def score_partition(
    partition: Dict[int, List[int]],
    truths: Dict[int, Optional[str]],
    n_detected: int,
    n_promoted: int,
    supervised: Tuple[float, float] = (0.0, 0.0),
) -> DiscoveryEvalResult:
    """Score a discovered partition against ground-truth types.

    Detections that match no injected crisis (spurious) are excluded
    from the agreement metrics; refs the clusterer never saw (e.g. a
    crisis still live at end of trace) simply don't participate.
    """
    ref_cluster: Dict[int, int] = {}
    for cid, members in partition.items():
        for ref in members:
            ref_cluster[ref] = cid
    refs = sorted(
        r for r in ref_cluster if truths.get(r) is not None
    )
    truth_seq = [truths[r] for r in refs]
    pred_seq = [ref_cluster[r] for r in refs]

    rows: List[dict] = []
    recovered: set = set()
    agree = 0
    for cid, members in sorted(partition.items()):
        labeled = [truths[r] for r in members if truths.get(r) is not None]
        counts: Dict[str, int] = {}
        for lab in labeled:
            counts[lab] = counts.get(lab, 0) + 1
        majority = (
            max(sorted(counts), key=lambda k: counts[k]) if counts else None
        )
        if majority is not None:
            recovered.add(majority)
            agree += counts[majority]
        rows.append(
            {
                "cluster": cid,
                "size": len(members),
                "majority_truth": majority,
                "truth_counts": dict(sorted(counts.items())),
            }
        )
    n_types = len({t for t in truth_seq})
    sup_ari, sup_acc = supervised
    return DiscoveryEvalResult(
        n_detected=n_detected,
        n_clustered=len(ref_cluster),
        n_clusters=len(partition),
        n_promoted=n_promoted,
        n_types=n_types,
        recovered_types=len(recovered),
        purity=agree / len(refs) if refs else 0.0,
        adjusted_rand=(
            float(adjusted_rand_index(pred_seq, truth_seq)) if refs else 0.0
        ),
        nmi=(
            float(normalized_mutual_information(pred_seq, truth_seq))
            if refs
            else 0.0
        ),
        supervised_adjusted_rand=float(sup_ari),
        supervised_accuracy=float(sup_acc),
        cluster_rows=tuple(rows),
    )


def format_report(result: DiscoveryEvalResult) -> str:
    """Human-readable report for the benchmark artifact and the CLI."""
    lines = [
        "Unsupervised crisis discovery on a fully unlabeled stream",
        "=" * 57,
        "",
        f"detected crises          : {result.n_detected}",
        f"clustered fingerprints   : {result.n_clustered}",
        f"clusters                 : {result.n_clusters}"
        f" ({result.n_promoted} promoted)",
        f"ground-truth types       : {result.n_types}",
        f"recovered types          : {result.recovered_types}",
        f"cluster purity           : {result.purity:.3f}",
        f"adjusted Rand index      : {result.adjusted_rand:.3f}",
        f"normalized MI            : {result.nmi:.3f}",
        "",
        "supervised ceiling (oracle diagnoses every crisis):",
        f"  adjusted Rand index    : "
        f"{result.supervised_adjusted_rand:.3f}",
        f"  identification accuracy: {result.supervised_accuracy:.3f}",
        "",
        f"{'cluster':>8} {'size':>5} {'majority':>9}  truth mix",
    ]
    for row in result.cluster_rows:
        mix = ", ".join(
            f"{lab}:{n}" for lab, n in row["truth_counts"].items()
        )
        lines.append(
            f"{row['cluster']:>8} {row['size']:>5} "
            f"{str(row['majority_truth']):>9}  {mix}"
        )
    return "\n".join(lines)


__all__ = [
    "EVAL_CONFIG",
    "EVAL_DISCOVERY",
    "DiscoveryEvalResult",
    "format_report",
    "run_supervised_ceiling",
    "run_unlabeled",
    "score_partition",
    "truth_label",
    "unlabeled_relevant_metrics",
]
