"""Unsupervised crisis discovery: auto-growing the catalog.

The supervised pipeline (Section 5) can only identify crises whose type
an operator has already diagnosed — everything else is a "don't know".
This package mines those don't-knows online: an
:class:`OnlineClusterer` groups unidentified fingerprints by proximity
(through the sub-linear fingerprint index), tracks cluster medoids and
stability, and a :class:`DiscoveryEngine` promotes stable clusters into
the incident catalog so the supervised path starts matching them.  When
an operator later diagnoses a member crisis, the promoted entry is
renamed in place — never duplicated.
"""

from repro.discovery.clusterer import ClusterEvent, OnlineClusterer
from repro.discovery.engine import (
    DISCOVERY_FORMAT_VERSION,
    DiscoveryEngine,
    load_discovery,
    save_discovery,
)

__all__ = [
    "DISCOVERY_FORMAT_VERSION",
    "ClusterEvent",
    "DiscoveryEngine",
    "OnlineClusterer",
    "load_discovery",
    "save_discovery",
]
