"""Online density/medoid clustering of unidentified crisis fingerprints.

The supervised identification path (Section 4.3 of the paper) can only
match crises operators have labeled; everything else collapses into the
don't-know label.  :class:`OnlineClusterer` turns that dead end into
signal: each unidentified fingerprint *joins* the cluster of its
nearest already-clustered fingerprint if that neighbor lies within the
assignment radius, or seeds a new cluster otherwise (density
semantics — discretized fingerprints of a recurring crisis type form a
tight clump, and a chain of within-radius neighbors is the same
recurring problem observed at different severities).  Neighbor lookup
goes through a :class:`repro.index.FingerprintIndex` over every
clustered fingerprint, so the hot-path assignment is one sub-linear
radius query — never an all-pairs Python scan over past crises.

Each cluster also maintains its **medoid** (the member minimizing total
distance to the others) as its catalog representative: promotions store
the medoid as the incident fingerprint, and the lifecycle rules below
are phrased over medoids.

Cluster lifecycle:

* **stability** — an evidence counter: +1 per assignment, summed on
  merge, reset to the side's member count on split.  Promotion gates on
  it (see :class:`repro.discovery.DiscoveryEngine`).
* **merge** — when a new fingerprint lands within the radius of two
  clusters it bridges them, and when churn drags two medoids within
  ``merge_fraction * radius`` of each other they attract — in both
  cases the merge commits *only if* the merged cluster would satisfy
  the split bound.
* **split** — when a member strays beyond ``split_fraction * radius``
  of its medoid, the farthest member seeds a new cluster and members
  re-partition to the closer side — *only if* the two resulting medoids
  end up farther apart than the merge bound.

The two commit guards are each other's negation band: a freshly merged
cluster cannot satisfy the split trigger, and a freshly split pair
cannot satisfy the merge trigger, so merge/split cannot oscillate on
static evidence (``tests/test_discovery_properties.py`` proves the
bound under add/remove churn).  With lifecycle rules quiescent the
partition is exactly the connected components of the radius graph —
independent of ingestion order.

When no ``assign_radius`` is configured the clusterer buffers the first
``calibration_size`` fingerprints and auto-calibrates: the radius is
the midpoint of the largest gap in the sorted pairwise distances of the
buffer (searched below the median, where the within-category distances
of a discretized fingerprint space concentrate).  The one all-pairs
computation happens exactly once, off the hot path, over a
constant-size buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import DiscoveryConfig
from repro.index import FingerprintIndex, create_index


@dataclass(frozen=True)
class ClusterEvent:
    """One entry in the cluster-lifecycle audit trail.

    ``kind`` is one of ``seeded``/``assigned``/``merged``/``split``/
    ``removed``/``dissolved``/``promoted``/``renamed``; ``ref`` is the
    fingerprint reference involved (for ``merged`` it is the absorbed
    cluster id, for ``split`` the new cluster id, ``-1`` when not
    applicable).
    """

    kind: str
    cluster_id: int
    ref: int


@dataclass
class _Cluster:
    refs: List[int]
    vectors: List[np.ndarray]
    stability: int
    label: Optional[str] = None  # promoted catalog label
    medoid: Optional[np.ndarray] = None
    medoid_ref: int = -1


class OnlineClusterer:
    """Incremental density/medoid clustering over a fingerprint index.

    The index holds every clustered fingerprint keyed by its ``ref``;
    cluster membership is the ``_ref_cluster`` mapping on top of it.
    """

    def __init__(self, dim: int, config: DiscoveryConfig = DiscoveryConfig()):
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = int(dim)
        self.config = config
        self.radius: Optional[float] = config.assign_radius
        self._clusters: Dict[int, _Cluster] = {}
        self._ref_cluster: Dict[int, int] = {}
        self._pending: List[Tuple[int, np.ndarray]] = []
        self._next_cluster = 0
        self.events: List[ClusterEvent] = []
        self._index = self._new_index()

    def _new_index(self) -> FingerprintIndex:
        kwargs: Dict[str, object] = {}
        if self.config.backend in ("brute", "kdtree"):
            # float64 storage keeps assignment distances bit-identical
            # across snapshot/restore.
            kwargs["dtype"] = np.float64
        return create_index(self.config.backend, self.dim, **kwargs)

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._clusters)

    @property
    def n_pending(self) -> int:
        return len(self._pending)

    def cluster_ids(self) -> List[int]:
        return sorted(self._clusters)

    def members(self, cluster_id: int) -> List[int]:
        return list(self._clusters[cluster_id].refs)

    def medoid(self, cluster_id: int) -> np.ndarray:
        return np.array(self._clusters[cluster_id].medoid)

    def stability(self, cluster_id: int) -> int:
        return self._clusters[cluster_id].stability

    def label(self, cluster_id: int) -> Optional[str]:
        return self._clusters[cluster_id].label

    def labels(self) -> Dict[int, str]:
        """Promoted cluster labels, by cluster id."""
        return {
            cid: c.label
            for cid, c in self._clusters.items()
            if c.label is not None
        }

    def cluster_of(self, ref: int) -> Optional[int]:
        return self._ref_cluster.get(ref)

    def cluster_of_label(self, label: str) -> Optional[int]:
        for cid in sorted(self._clusters):
            if self._clusters[cid].label == label:
                return cid
        return None

    def assignments(self) -> Dict[int, int]:
        """ref -> cluster id for every clustered fingerprint."""
        return dict(self._ref_cluster)

    def partition(self) -> Dict[int, List[int]]:
        """cluster id -> sorted member refs."""
        return {
            cid: sorted(c.refs) for cid, c in sorted(self._clusters.items())
        }

    def promotable(self) -> List[int]:
        """Clusters whose evidence clears the promotion gate."""
        cfg = self.config
        return [
            cid
            for cid in sorted(self._clusters)
            if self._clusters[cid].label is None
            and self._clusters[cid].stability >= cfg.promote_stability
            and len(self._clusters[cid].refs) >= cfg.min_promote_size
        ]

    def stats(self) -> Dict[str, object]:
        """Operational summary (serving ``incidents`` op, CLI ``stats``)."""
        return {
            "radius": self.radius,
            "n_clusters": len(self._clusters),
            "n_pending": len(self._pending),
            "n_fingerprints": len(self._ref_cluster),
            "clusters": [
                {
                    "cluster": cid,
                    "size": len(c.refs),
                    "stability": c.stability,
                    "label": c.label,
                }
                for cid, c in sorted(self._clusters.items())
            ],
        }

    # -- event log ---------------------------------------------------------

    def _event(self, kind: str, cluster_id: int, ref: int = -1) -> None:
        self.events.append(ClusterEvent(kind, cluster_id, ref))
        limit = self.config.history_limit
        if len(self.events) > limit:
            del self.events[: len(self.events) - limit]

    # -- calibration -------------------------------------------------------

    def _calibrate(self) -> None:
        """Pick the assignment radius from the calibration buffer.

        One-time all-pairs pass over a constant-size buffer: the sorted
        pairwise distances of a fingerprint stream drawn from a few
        recurring categories show a gap between the within-category
        distances (small — discretized fingerprints of the same crisis
        type nearly coincide) and the between-category ones.  The radius
        lands in the middle of the largest such gap below the median.
        """
        matrix = np.stack([vec for _, vec in self._pending])
        diff = matrix[:, None, :] - matrix[None, :, :]
        dist = np.sqrt((diff * diff).sum(axis=-1))
        iu = np.triu_indices(len(matrix), k=1)
        pairs = np.sort(dist[iu])
        if pairs.size == 0 or pairs[-1] == 0.0:
            radius = 1e-9
        else:
            median = float(np.median(pairs))
            # Candidate gaps whose lower edge sits at or below the
            # median: between-category pairs dominate the upper tail.
            cut = int(np.searchsorted(pairs, median, side="right"))
            lo = pairs[: max(cut, 2)]
            gaps = np.diff(lo)
            if gaps.size and float(gaps.max()) > 0.0:
                g = int(np.argmax(gaps))
                radius = float(lo[g] + lo[g + 1]) / 2.0
            else:
                radius = median / 2.0
        self.radius = max(radius * self.config.radius_scale, 1e-9)

    def flush(self) -> List[int]:
        """Calibrate (if needed) and drain the buffer in arrival order.

        Returns the cluster ids assigned to the drained fingerprints.
        Called automatically once the buffer fills; callers with a short
        stream (fewer fingerprints than ``calibration_size``) call it
        explicitly at end of stream.
        """
        if not self._pending:
            return []
        if self.radius is None:
            if len(self._pending) < 2:
                self.radius = 1.0
            else:
                self._calibrate()
        drained = self._pending
        self._pending = []
        return [self._assign(ref, vec) for ref, vec in drained]

    # -- ingestion ---------------------------------------------------------

    def ingest(self, vector: np.ndarray, ref: int) -> Optional[int]:
        """Cluster one fingerprint; returns its cluster id.

        Returns ``None`` while the fingerprint sits in the calibration
        buffer (auto-radius mode only); the buffer drains — and every
        buffered fingerprint is assigned — as soon as it holds
        ``calibration_size`` entries.
        """
        vec = np.asarray(vector, dtype=float).ravel()
        if vec.shape != (self.dim,):
            raise ValueError(
                f"fingerprint dimension mismatch: got {vec.shape[0]}, "
                f"expected {self.dim}"
            )
        if ref in self._ref_cluster or any(
            r == ref for r, _ in self._pending
        ):
            raise ValueError(f"ref {ref} already clustered")
        if self.radius is None:
            self._pending.append((int(ref), vec))
            if len(self._pending) >= self.config.calibration_size:
                self.flush()
                return self._ref_cluster.get(ref)
            return None
        return self._assign(int(ref), vec)

    def remove(self, ref: int) -> None:
        """Retract one fingerprint (evidence withdrawn)."""
        for i, (r, _) in enumerate(self._pending):
            if r == ref:
                del self._pending[i]
                return
        cid = self._ref_cluster.pop(ref, None)
        if cid is None:
            raise KeyError(f"ref {ref} is not clustered")
        self._index.remove(ref)
        cluster = self._clusters[cid]
        i = cluster.refs.index(ref)
        del cluster.refs[i]
        del cluster.vectors[i]
        if not cluster.refs:
            del self._clusters[cid]
            self._event("dissolved", cid, ref)
            return
        self._refresh_medoid(cid)
        cluster.stability = max(1, cluster.stability - 1)
        self._event("removed", cid, ref)
        cid = self._maybe_split(cid)
        self._maybe_merge(cid)

    def promote(self, cluster_id: int, label: str) -> None:
        """Mark a cluster as a promoted catalog entry."""
        if not label:
            raise ValueError("label must be non-empty")
        self._clusters[cluster_id].label = label
        self._event("promoted", cluster_id)

    def rename(self, cluster_id: int, label: str) -> None:
        """Replace a promoted cluster's label (operator diagnosis)."""
        if not label:
            raise ValueError("label must be non-empty")
        self._clusters[cluster_id].label = label
        self._event("renamed", cluster_id)

    def reinforce(self, cluster_id: int, vector: np.ndarray, ref: int) -> int:
        """Add supervised evidence straight into a known cluster.

        Used when the identification path matched a *promoted* entry:
        the fingerprint joins that cluster regardless of which medoid is
        nearest, keeping the catalog entry and the supervised library in
        lockstep.
        """
        vec = np.asarray(vector, dtype=float).ravel()
        if vec.shape != (self.dim,):
            raise ValueError("fingerprint dimension mismatch")
        if ref in self._ref_cluster:
            raise ValueError(f"ref {ref} already clustered")
        cid = self._join(cluster_id, int(ref), vec)
        cid = self._maybe_merge(cid)
        self._maybe_split(cid)
        return self._ref_cluster[int(ref)]

    # -- internals ---------------------------------------------------------

    def _assign(self, ref: int, vec: np.ndarray) -> int:
        hits = (
            self._index.query_radius(vec, self.radius)
            if len(self._index)
            else []
        )
        if hits:
            nearest = min(hits, key=lambda h: (h.distance, h.id))
            cid = self._join(self._ref_cluster[nearest.id], ref, vec)
            # The new fingerprint may bridge further clusters: same
            # density rule, so they belong together (guarded below).
            bridged = sorted(
                {self._ref_cluster[h.id] for h in hits} - {cid}
            )
            for other in bridged:
                if other in self._clusters and cid in self._clusters:
                    cid = self._merge_pair(cid, other)
            cid = self._maybe_merge(cid)
            self._maybe_split(cid)
        else:
            cid = self._next_cluster
            self._next_cluster += 1
            self._clusters[cid] = _Cluster(
                refs=[ref], vectors=[vec], stability=1,
                medoid=vec, medoid_ref=ref,
            )
            self._index.add(vec, id=ref)
            self._ref_cluster[ref] = cid
            self._event("seeded", cid, ref)
        return self._ref_cluster[ref]

    def _join(self, cid: int, ref: int, vec: np.ndarray) -> int:
        cluster = self._clusters[cid]
        cluster.refs.append(ref)
        cluster.vectors.append(vec)
        cluster.stability += 1
        self._ref_cluster[ref] = cid
        self._index.add(vec, id=ref)
        self._refresh_medoid(cid)
        self._event("assigned", cid, ref)
        return cid

    @staticmethod
    def _medoid_of(
        refs: List[int], vectors: List[np.ndarray]
    ) -> Tuple[int, np.ndarray, float]:
        """(index, medoid vector, dispersion) of a member set.

        The medoid minimizes total distance to the other members; ties
        break toward the lowest ref so the choice is independent of
        ingestion order (the permutation-invariance property rests on
        this).  Dispersion is the max member-to-medoid distance.
        """
        matrix = np.stack(vectors)
        diff = matrix[:, None, :] - matrix[None, :, :]
        dist = np.sqrt((diff * diff).sum(axis=-1))
        totals = dist.sum(axis=1)
        order = sorted(range(len(refs)), key=lambda i: (totals[i], refs[i]))
        best = order[0]
        return best, matrix[best], float(dist[best].max())

    def _refresh_medoid(self, cid: int) -> None:
        cluster = self._clusters[cid]
        i, medoid, _ = self._medoid_of(cluster.refs, cluster.vectors)
        cluster.medoid = medoid
        cluster.medoid_ref = cluster.refs[i]

    def _dispersion(self, cid: int) -> float:
        cluster = self._clusters[cid]
        matrix = np.stack(cluster.vectors)
        d = np.sqrt(((matrix - cluster.medoid) ** 2).sum(axis=-1))
        return float(d.max())

    def _merge_pair(self, cid: int, other_cid: int) -> int:
        """Guarded merge of two clusters; returns the surviving id.

        Commit guard (hysteresis): the merged cluster must satisfy the
        split bound, so a merge can never be immediately undone.  When
        the guard refuses, both clusters survive and ``cid`` is
        returned unchanged.
        """
        split_bound = self.config.split_dispersion(self.radius)
        a, b = self._clusters[cid], self._clusters[other_cid]
        refs = a.refs + b.refs
        vectors = a.vectors + b.vectors
        _, _, dispersion = self._medoid_of(refs, vectors)
        if dispersion > split_bound:
            return cid  # would immediately re-split: stay apart
        keep, gone = min(cid, other_cid), max(cid, other_cid)
        absorbed = self._clusters[gone]
        target = self._clusters[keep]
        # Member lists concatenate keep-first, deterministically.
        target.refs = list(target.refs) + list(absorbed.refs)
        target.vectors = list(target.vectors) + list(absorbed.vectors)
        target.stability = a.stability + b.stability
        if target.label is None and absorbed.label is not None:
            target.label = absorbed.label
        for ref in absorbed.refs:
            self._ref_cluster[ref] = keep
        del self._clusters[gone]
        self._refresh_medoid(keep)
        self._event("merged", keep, gone)
        return keep

    def _maybe_merge(self, cid: int) -> int:
        """Merge ``cid`` with any cluster whose medoid drifted too close.

        Neighboring clusters are found through the fingerprint index: a
        medoid is itself a member, so any cluster whose medoid sits
        within the merge radius of ours has a point the radius query
        returns.  Iterates to a fixpoint — each committed merge removes
        a cluster, so the loop is bounded by the cluster count.
        """
        merge_radius = self.config.merge_radius(self.radius)
        while True:
            cluster = self._clusters[cid]
            near = {
                self._ref_cluster[h.id]
                for h in self._index.query_radius(
                    cluster.medoid, merge_radius
                )
            } - {cid}
            merged = False
            for other_cid in sorted(near):
                other = self._clusters[other_cid]
                gap = float(
                    np.linalg.norm(cluster.medoid - other.medoid)
                )
                if gap > merge_radius:
                    continue  # a stray member is close, the medoid isn't
                kept = self._merge_pair(cid, other_cid)
                if kept != cid or other_cid not in self._clusters:
                    cid = kept
                    merged = True
                    break
            if not merged:
                return cid

    def _maybe_split(self, cid: int) -> int:
        """Split ``cid`` when its dispersion exceeds the split bound.

        The farthest member (ties toward the lowest ref) seeds the new
        cluster; members re-partition to the closer medoid.  Commit
        guard (hysteresis): the two new medoids must sit farther apart
        than the merge bound, so a split can never be immediately
        re-merged.
        """
        cluster = self._clusters[cid]
        if len(cluster.refs) < 2:
            return cid
        split_bound = self.config.split_dispersion(self.radius)
        matrix = np.stack(cluster.vectors)
        dists = np.sqrt(((matrix - cluster.medoid) ** 2).sum(axis=-1))
        if float(dists.max()) <= split_bound:
            return cid
        order = sorted(
            range(len(cluster.refs)),
            key=lambda i: (-dists[i], cluster.refs[i]),
        )
        far = order[0]
        far_vec = cluster.vectors[far]
        to_far = np.sqrt(((matrix - far_vec) ** 2).sum(axis=-1))
        stay_idx = [
            i for i in range(len(cluster.refs))
            if i != far and dists[i] <= to_far[i]
        ]
        move_idx = [
            i for i in range(len(cluster.refs))
            if i == far or dists[i] > to_far[i]
        ]
        if not stay_idx or not move_idx:
            return cid
        stay_refs = [cluster.refs[i] for i in stay_idx]
        stay_vecs = [cluster.vectors[i] for i in stay_idx]
        move_refs = [cluster.refs[i] for i in move_idx]
        move_vecs = [cluster.vectors[i] for i in move_idx]
        _, medoid_a, _ = self._medoid_of(stay_refs, stay_vecs)
        _, medoid_b, _ = self._medoid_of(move_refs, move_vecs)
        gap = float(np.linalg.norm(medoid_a - medoid_b))
        if gap <= self.config.merge_radius(self.radius):
            return cid  # would immediately re-merge: stay together
        new_cid = self._next_cluster
        self._next_cluster += 1
        cluster.refs = stay_refs
        cluster.vectors = stay_vecs
        cluster.stability = len(stay_refs)
        self._refresh_medoid(cid)
        self._clusters[new_cid] = _Cluster(
            refs=move_refs, vectors=move_vecs, stability=len(move_refs),
        )
        for ref in move_refs:
            self._ref_cluster[ref] = new_cid
        self._refresh_medoid(new_cid)
        self._event("split", cid, new_cid)
        return cid

    # -- snapshot ----------------------------------------------------------

    def snapshot(self) -> Tuple[dict, Dict[str, np.ndarray]]:
        """Serializable state as ``(header, arrays)``.

        Restoring through :meth:`from_snapshot` is bit-identical: member
        vectors round-trip as float64 arrays, medoids are re-derived
        from the stored ``medoid_ref`` (a member, so equality is exact),
        and the event history is replayed entry for entry.
        """
        header = {
            "dim": self.dim,
            "radius": self.radius,
            "next_cluster": self._next_cluster,
            "clusters": [
                {
                    "id": cid,
                    "refs": list(c.refs),
                    "stability": c.stability,
                    "label": c.label,
                    "medoid_ref": c.medoid_ref,
                }
                for cid, c in sorted(self._clusters.items())
            ],
            "pending_refs": [r for r, _ in self._pending],
            "events": [[e.kind, e.cluster_id, e.ref] for e in self.events],
        }
        arrays: Dict[str, np.ndarray] = {}
        for cid, c in sorted(self._clusters.items()):
            arrays[f"cluster_{cid}"] = np.stack(c.vectors).astype(np.float64)
        if self._pending:
            arrays["pending"] = np.stack(
                [v for _, v in self._pending]
            ).astype(np.float64)
        return header, arrays

    @classmethod
    def from_snapshot(
        cls,
        header: dict,
        arrays: Dict[str, np.ndarray],
        config: DiscoveryConfig = DiscoveryConfig(),
        prefix: str = "",
    ) -> "OnlineClusterer":
        clusterer = cls(int(header["dim"]), config)
        radius = header["radius"]
        clusterer.radius = None if radius is None else float(radius)
        clusterer._next_cluster = int(header["next_cluster"])
        for meta in header["clusters"]:
            cid = int(meta["id"])
            matrix = np.asarray(arrays[f"{prefix}cluster_{cid}"], dtype=float)
            refs = [int(r) for r in meta["refs"]]
            cluster = _Cluster(
                refs=refs,
                vectors=[matrix[i] for i in range(len(refs))],
                stability=int(meta["stability"]),
                label=meta["label"],
                medoid_ref=int(meta["medoid_ref"]),
            )
            i = refs.index(cluster.medoid_ref)
            cluster.medoid = cluster.vectors[i]
            clusterer._clusters[cid] = cluster
            for j, ref in enumerate(refs):
                clusterer._index.add(cluster.vectors[j], id=ref)
                clusterer._ref_cluster[ref] = cid
        pending_refs = [int(r) for r in header.get("pending_refs", [])]
        if pending_refs:
            matrix = np.asarray(arrays[f"{prefix}pending"], dtype=float)
            clusterer._pending = [
                (ref, matrix[i]) for i, ref in enumerate(pending_refs)
            ]
        clusterer.events = [
            ClusterEvent(str(kind), int(cid), int(ref))
            for kind, cid, ref in header.get("events", [])
        ]
        return clusterer


__all__ = ["ClusterEvent", "OnlineClusterer"]
