"""Discovery engine: wiring the clusterer into the streaming monitor.

:class:`DiscoveryEngine` rides on a
:class:`~repro.core.streaming.StreamingCrisisMonitor` (opt-in via
:meth:`~repro.core.streaming.StreamingCrisisMonitor.attach_discovery`)
and watches its event stream.  When a crisis ends:

* an *unidentified* crisis (its identification sequence is unstable or
  settled on the don't-know label) is fingerprinted from the stored
  crisis window and fed to the :class:`OnlineClusterer`;
* a crisis the supervised path identified as a previously *promoted*
  discovered entry is clustered the same way — the density rule, not
  the supervised match, decides where it lands, and a label sync pass
  keeps the monitor's library in lockstep with the clusters;
* a crisis with a real (operator) label is left to the supervised path.

When a cluster's evidence clears the promotion gate the engine mints a
``discovered-<id>`` label, labels the member crises in the monitor's
library (so the supervised identification path starts matching the
entry — the promotion round-trip), and records an
:class:`~repro.incidents.IncidentRecord` carrying the cluster medoid.
If an operator later diagnoses any member crisis with a real label, the
discovered entry is *renamed* — member crises relabeled, incident
records relabeled — never duplicated.

Engine state (clusterer + live identification sequences) is embedded in
monitor checkpoints by :mod:`repro.core.checkpoint`, so a restored
monitor resumes discovery bit-identically; standalone
:func:`save_discovery` / :func:`load_discovery` serve the CLI.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import DiscoveryConfig
from repro.core.atomicio import atomic_write_npz, pack_header, unpack_header
from repro.core.identification import UNKNOWN, is_stable, sequence_label
from repro.discovery.clusterer import OnlineClusterer

#: Format version of standalone discovery state archives.
DISCOVERY_FORMAT_VERSION = 1


class DiscoveryEngine:
    """Online catalog growth from a monitor's don't-know crises."""

    def __init__(
        self,
        config: DiscoveryConfig = DiscoveryConfig(),
        incidents=None,
    ):
        self.config = config
        #: Optional :class:`repro.incidents.IncidentDatabase`; promoted
        #: clusters append records here, renames relabel them.
        self.incidents = incidents
        self.clusterer: Optional[OnlineClusterer] = None
        self._monitor = None
        #: crisis number -> identification labels seen so far
        self._sequences: Dict[int, List[str]] = {}
        #: crisis number -> detection epoch (for incident records)
        self._detected: Dict[int, int] = {}
        #: Reentrancy guard: diagnoses the engine itself issues must not
        #: be mistaken for operator diagnoses (rename trigger).
        self._labeling = False

    # -- attachment --------------------------------------------------------

    def attach(self, monitor) -> None:
        """Bind to a monitor (normally via ``attach_discovery``)."""
        dim = int(monitor.relevant.size) * monitor.config.quantiles.count
        if self.clusterer is None:
            self.clusterer = OnlineClusterer(dim, self.config)
        elif self.clusterer.dim != dim:
            raise ValueError(
                f"discovery state is {self.clusterer.dim}-dimensional but "
                f"the monitor fingerprints {dim} dimensions"
            )
        self._monitor = monitor
        monitor._discovery = self

    @property
    def monitor(self):
        return self._monitor

    # -- monitor hooks -----------------------------------------------------

    def observe(self, events) -> None:
        """Consume one ingest call's emitted events (monitor hook)."""
        from repro.core.streaming import (
            CrisisDetected,
            CrisisEnded,
            IdentificationUpdate,
        )

        for event in events:
            if isinstance(event, CrisisDetected):
                self._detected[event.crisis_number] = event.epoch
                self._sequences[event.crisis_number] = []
            elif isinstance(event, IdentificationUpdate):
                self._sequences.setdefault(event.crisis_number, []).append(
                    event.label
                )
            elif isinstance(event, CrisisEnded):
                seq = self._sequences.pop(event.crisis_number, [])
                self._crisis_ended(event.crisis_number, seq)

    def on_diagnose(self, crisis_number: int, label: str) -> None:
        """Monitor hook: an operator diagnosed a crisis.

        If the crisis belongs to a promoted discovered cluster and the
        new label is a real one, the discovered entry is renamed — the
        late-arriving label replaces the synthetic one everywhere
        instead of minting a duplicate catalog entry.
        """
        if self._labeling or self.clusterer is None:
            return
        if label.startswith(self.config.label_prefix):
            return
        cid = self.clusterer.cluster_of(crisis_number)
        if cid is None:
            return
        old = self.clusterer.label(cid)
        if old is None or old == label:
            return
        self.rename_cluster(cid, label)

    # -- lifecycle ---------------------------------------------------------

    def _crisis_ended(self, number: int, sequence: List[str]) -> None:
        monitor = self._monitor
        stored = None
        for s in monitor._library:
            if s.number == number:
                stored = s
                break
        if stored is None:  # ended before it was stored (never happens)
            return
        label: Optional[str] = None
        if sequence and is_stable(sequence):
            label = sequence_label(sequence)
        if (
            label is not None
            and label != UNKNOWN
            and not label.startswith(self.config.label_prefix)
        ):
            # A real operator label: the supervised path owns it.
            return
        # Everything else — don't-knows, unstable sequences, and crises
        # the supervised path matched to a *promoted* discovered entry —
        # is routed by the density rule.  Trusting the supervised match
        # instead would let a loosely calibrated identification
        # threshold force-join far-away fingerprints and poison the
        # cluster; geometry decides, and the label sync below restores
        # the promoted label wherever the crisis actually lands.
        vec = monitor._fingerprint(stored.quantile_window)
        self.clusterer.ingest(vec, ref=number)
        self._sync_promoted_labels()
        if self.config.auto_promote:
            self._promote_ready()

    def finalize(self) -> None:
        """Drain the calibration buffer at end of stream."""
        if self.clusterer is None:
            return
        self.clusterer.flush()
        self._sync_promoted_labels()
        if self.config.auto_promote:
            self._promote_ready()

    def _promote_ready(self) -> None:
        for cid in self.clusterer.promotable():
            self.promote_cluster(cid)

    def promote_cluster(
        self, cluster_id: int, label: Optional[str] = None
    ) -> str:
        """Promote one cluster into the catalog; returns its label."""
        if label is None:
            label = f"{self.config.label_prefix}{cluster_id}"
        self.clusterer.promote(cluster_id, label)
        for ref in self.clusterer.members(cluster_id):
            self._label_member(ref, label)
        if self.incidents is not None:
            members = self.clusterer.members(cluster_id)
            detected = min(
                (self._detected.get(r, 0) for r in members), default=0
            )
            self.incidents.add(
                label=label,
                detected_epoch=detected,
                fingerprint=self.clusterer.medoid(cluster_id),
                diagnosis=(
                    f"auto-discovered cluster of {len(members)} "
                    "unidentified crises (pending operator review)"
                ),
                metric_indices=(
                    None
                    if self._monitor is None
                    else np.asarray(self._monitor.relevant, dtype=int)
                ),
            )
        return label

    def rename_cluster(self, cluster_id: int, label: str) -> str:
        """Replace a promoted cluster's label everywhere (no duplicate)."""
        old = self.clusterer.label(cluster_id)
        self.clusterer.rename(cluster_id, label)
        for ref in self.clusterer.members(cluster_id):
            self._label_member(ref, label)
        if self.incidents is not None and old is not None:
            self.incidents.relabel(old, label)
        return label

    def _label_member(self, number: int, label: str) -> None:
        """Label a library crisis on the engine's own authority."""
        monitor = self._monitor
        if monitor is None:
            return
        self._labeling = True
        try:
            monitor.diagnose(number, label)
        except KeyError:
            pass  # crisis aged out of the library
        finally:
            self._labeling = False

    def _sync_promoted_labels(self) -> None:
        """Re-align library labels with promoted clusters after churn.

        A merge can fold one promoted cluster into another and a split
        can strand members; this pass re-labels members of promoted
        clusters so the supervised library never disagrees with the
        catalog.  Cluster counts are small, so this is a cheap
        dictionary sweep.
        """
        monitor = self._monitor
        if monitor is None:
            return
        labels = self.clusterer.labels()
        if not labels:
            return
        by_number = {s.number: s for s in monitor._library}
        for cid, label in labels.items():
            for ref in self.clusterer.members(cid):
                stored = by_number.get(ref)
                if stored is not None and stored.label != label:
                    self._label_member(ref, label)

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, object]:
        if self.clusterer is None:
            return {"attached": False}
        out = dict(self.clusterer.stats())
        out["attached"] = self._monitor is not None
        out["live_sequences"] = len(self._sequences)
        return out

    # -- snapshot ----------------------------------------------------------

    def snapshot(
        self, prefix: str = ""
    ) -> Tuple[dict, Dict[str, np.ndarray]]:
        """Engine state as ``(header, arrays)`` for embedding.

        ``prefix`` namespaces the array keys so the snapshot can ride
        inside a monitor checkpoint archive without collisions.
        """
        if self.clusterer is None:
            raise ValueError("engine is not attached")
        cl_header, cl_arrays = self.clusterer.snapshot()
        header = {
            "config": asdict(self.config),
            "clusterer": cl_header,
            "sequences": {
                str(n): list(labels)
                for n, labels in sorted(self._sequences.items())
            },
            "detected": {
                str(n): e for n, e in sorted(self._detected.items())
            },
        }
        arrays = {
            f"{prefix}{name}": array for name, array in cl_arrays.items()
        }
        return header, arrays

    @classmethod
    def from_snapshot(
        cls,
        header: dict,
        arrays,
        prefix: str = "",
        incidents=None,
    ) -> "DiscoveryEngine":
        config = DiscoveryConfig(**header["config"])
        engine = cls(config, incidents=incidents)
        engine.clusterer = OnlineClusterer.from_snapshot(
            header["clusterer"], arrays, config=config, prefix=prefix
        )
        engine._sequences = {
            int(n): list(labels)
            for n, labels in header.get("sequences", {}).items()
        }
        engine._detected = {
            int(n): int(e) for n, e in header.get("detected", {}).items()
        }
        return engine


# ---------------------------------------------------------------------------
# Standalone persistence (CLI)
# ---------------------------------------------------------------------------


def save_discovery(engine: DiscoveryEngine, path) -> None:
    """Persist an engine's discovery state to a standalone archive."""
    header, arrays = engine.snapshot()
    header = {
        "format_version": DISCOVERY_FORMAT_VERSION,
        "kind": "discovery",
        **header,
    }
    arrays = dict(arrays)
    arrays["header"] = pack_header(header)
    atomic_write_npz(path, arrays)


def load_discovery(path, incidents=None) -> DiscoveryEngine:
    """Restore an engine saved by :func:`save_discovery` (unattached)."""
    path = pathlib.Path(path)
    with np.load(path, allow_pickle=False) as data:
        try:
            header = unpack_header(data)
        except (KeyError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ValueError(
                f"{path} is not a discovery state archive: {exc}"
            ) from exc
        version = header.get("format_version")
        if version != DISCOVERY_FORMAT_VERSION:
            raise ValueError(
                f"unsupported discovery state format {version!r} "
                f"(expected {DISCOVERY_FORMAT_VERSION})"
            )
        if header.get("kind") != "discovery":
            raise ValueError(
                f"{path} holds a {header.get('kind')!r}, not discovery state"
            )
        return DiscoveryEngine.from_snapshot(
            header, data, incidents=incidents
        )


__all__ = [
    "DISCOVERY_FORMAT_VERSION",
    "DiscoveryEngine",
    "load_discovery",
    "save_discovery",
]
