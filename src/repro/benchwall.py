"""CI perf wall: fail the build when a headline metric regresses.

Every benchmark in ``benchmarks/`` publishes a machine-readable mirror
of its result table as ``benchmarks/results/BENCH_<name>.json`` (see
``publish_json`` in ``benchmarks/conftest.py``).  Those files are
committed — they are the *baseline*.  The wall re-runs the same
benchmarks in quick mode on the current tree and compares each
benchmark's **headline metrics** against the committed numbers:

* a *higher-is-better* metric (throughput, speedup, recall) regresses
  when ``current < baseline * (1 - tolerance)``;
* a *lower-is-better* metric (latency, recovery time, replication lag)
  regresses when ``current > baseline * (1 + tolerance)``.

The default tolerance is 30% — wide enough that shared-runner noise
does not page anyone, tight enough that an accidental O(n²) or a lost
fast path cannot slip through.  Comparisons are only made like-for-like:
a baseline recorded in ``"mode": "full"`` is *skipped* (with a visible
reason) when the fresh run is quick, never silently compared.

``scripts/perf_wall.py`` is the thin CLI wrapper; this module holds all
the logic so tests can drive it without subprocesses.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

HIGHER = "higher"
LOWER = "lower"

#: Default regression tolerance: a headline may drift this fraction in
#: the bad direction before the wall fails.
DEFAULT_TOLERANCE = 0.30


@dataclass(frozen=True)
class Headline:
    """One walled metric: how to read it and which way is good.

    ``slack`` is an *absolute* drift allowance in the metric's own
    units, applied on top of the relative tolerance.  It exists for
    timing metrics whose baseline sits near the measurement floor
    (a 1 ms replication-lag reading can double on scheduler jitter
    alone); a change only regresses when it exceeds the relative
    tolerance AND the absolute slack, so sub-resolution noise cannot
    fail the wall while a real 10x blowup still does.
    """

    label: str
    extract: Callable[[dict], float]
    direction: str  # HIGHER or LOWER
    slack: float = 0.0

    def value(self, payload: dict) -> float:
        return float(self.extract(payload))


def _min_recall(payload: dict) -> float:
    return min(s["recall_at_10"] for s in payload["sizes"])


def _peak_fleet_throughput(payload: dict) -> float:
    return max(c["reports_per_s"] for c in payload["configs"])


#: The wall's coverage: benchmark name -> its headline metrics.  The
#: name is the ``BENCH_<name>.json`` stem; extractors must match the
#: payload shape that benchmark publishes (``test_wall_covers_committed_
#: baselines`` keeps this honest against the committed files).
HEADLINES: Dict[str, Tuple[Headline, ...]] = {
    "engine_refresh": (
        Headline("speedup", lambda d: d["speedup"], HIGHER),
        Headline(
            "incremental_refresh_ms",
            lambda d: d["incremental_refresh_ms"], LOWER,
        ),
    ),
    "fleet_scaling": (
        Headline("peak_reports_per_s", _peak_fleet_throughput, HIGHER),
    ),
    "index_scaling": (
        Headline(
            "speedup_at_max_n", lambda d: d["sizes"][-1]["speedup"], HIGHER
        ),
        Headline("min_recall_at_10", _min_recall, HIGHER),
    ),
    "serving": (
        Headline("reports_per_s", lambda d: d["reports_per_s"], HIGHER),
        Headline(
            "batched_reports_per_s",
            lambda d: d["batched_reports_per_s"], HIGHER,
        ),
        Headline(
            "p99_latency_ms", lambda d: d["p99_latency_ms"], LOWER,
            slack=0.5,
        ),
        Headline("recovery_s", lambda d: d["recovery_s"], LOWER, slack=1.0),
    ),
    "discovery": (
        Headline(
            "recovered_types", lambda d: d["recovered_types"], HIGHER
        ),
        Headline(
            "adjusted_rand", lambda d: d["adjusted_rand"], HIGHER,
            slack=0.05,
        ),
    ),
    "serving_replication": (
        Headline(
            "replicated_reports_per_s",
            lambda d: d["replicated_reports_per_s"], HIGHER,
        ),
        Headline(
            "steady_state_lag_s", lambda d: d["steady_state_lag_s"], LOWER,
            slack=0.5,
        ),
        Headline(
            "promotion_s", lambda d: d["promotion_s"], LOWER, slack=1.0
        ),
    ),
    "columnar": (
        Headline(
            "close_speedup_at_max_n",
            lambda d: d["sizes"][-1]["close_speedup"], HIGHER,
        ),
        Headline(
            "block_reports_per_s_at_max_n",
            lambda d: d["sizes"][-1]["block_reports_per_s"], HIGHER,
        ),
    ),
    "forecast": (
        Headline("recall", lambda d: d["recall"], HIGHER),
        Headline(
            "median_lead_epochs", lambda d: d["median_lead_epochs"],
            HIGHER, slack=1.0,
        ),
        Headline(
            "false_alarm_rate", lambda d: d["false_alarm_rate"], LOWER,
            slack=0.01,
        ),
    ),
}

#: Which pytest file regenerates each baseline, and the env var that
#: switches it to quick mode.
BENCH_SOURCES: Dict[str, Tuple[str, str]] = {
    "engine_refresh": (
        "benchmarks/test_engine_refresh.py", "ENGINE_REFRESH_QUICK"
    ),
    "fleet_scaling": (
        "benchmarks/test_fleet_scaling.py", "FLEET_SCALING_QUICK"
    ),
    "index_scaling": (
        "benchmarks/test_index_scaling.py", "INDEX_SCALING_QUICK"
    ),
    "serving": (
        "benchmarks/test_serving_ingest.py", "SERVING_INGEST_QUICK"
    ),
    "serving_replication": (
        "benchmarks/test_serving_failover.py", "SERVING_FAILOVER_QUICK"
    ),
    "discovery": (
        "benchmarks/test_discovery_unlabeled.py",
        "DISCOVERY_UNLABELED_QUICK",
    ),
    "forecast": (
        "benchmarks/test_forecast_leadtime.py",
        "FORECAST_LEADTIME_QUICK",
    ),
    "columnar": (
        "benchmarks/test_columnar_ingest.py", "COLUMNAR_INGEST_QUICK"
    ),
}


@dataclass
class Check:
    """The verdict on one headline metric."""

    benchmark: str
    metric: str
    direction: str
    baseline: float
    current: float
    regressed: bool

    @property
    def change(self) -> float:
        """Signed fractional change, positive = metric went up."""
        if self.baseline == 0:
            return 0.0 if self.current == 0 else float("inf")
        return self.current / self.baseline - 1.0


@dataclass
class WallReport:
    """Everything one wall run decided, renderable for CI logs."""

    checks: List[Check] = field(default_factory=list)
    skipped: Dict[str, str] = field(default_factory=dict)
    tolerance: float = DEFAULT_TOLERANCE

    @property
    def regressions(self) -> List[Check]:
        return [c for c in self.checks if c.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = [
            "perf wall (tolerance %.0f%%)" % (self.tolerance * 100),
            "%-22s %-26s %9s %12s %12s %8s" % (
                "benchmark", "metric", "dir", "baseline", "current",
                "change",
            ),
        ]
        for c in self.checks:
            change = (
                "%+7.1f%%" % (c.change * 100)
                if c.change != float("inf") else "    +inf"
            )
            lines.append("%-22s %-26s %9s %12.4g %12.4g %s%s" % (
                c.benchmark, c.metric, c.direction, c.baseline,
                c.current, change, "  REGRESSED" if c.regressed else "",
            ))
        for name, reason in sorted(self.skipped.items()):
            lines.append("%-22s skipped: %s" % (name, reason))
        lines.append(
            "FAIL: %d headline metric(s) regressed" % len(self.regressions)
            if not self.ok else "OK: no headline regressions"
        )
        return "\n".join(lines)


def load_bench(path: pathlib.Path) -> dict:
    with open(path) as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict):
        raise ValueError(f"{path} is not a benchmark payload")
    return payload


def compare(
    name: str,
    baseline: dict,
    current: dict,
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[Check]:
    """Direction-aware comparison of one benchmark's headline metrics.

    A metric the current payload no longer exposes counts as a
    regression — a benchmark silently dropping its headline is exactly
    the failure mode a wall exists to catch.
    """
    checks: List[Check] = []
    for headline in HEADLINES.get(name, ()):
        base = headline.value(baseline)
        try:
            cur = headline.value(current)
        except (KeyError, IndexError, TypeError, ValueError):
            checks.append(Check(
                benchmark=name, metric=headline.label,
                direction=headline.direction, baseline=base,
                current=float("nan"), regressed=True,
            ))
            continue
        if headline.direction == HIGHER:
            regressed = (
                cur < base * (1.0 - tolerance)
                and base - cur > headline.slack
            )
        else:
            regressed = (
                cur > base * (1.0 + tolerance)
                and cur - base > headline.slack
            )
        checks.append(Check(
            benchmark=name, metric=headline.label,
            direction=headline.direction, baseline=base, current=cur,
            regressed=regressed,
        ))
    return checks


def evaluate(
    baselines: Dict[str, dict],
    fresh: Dict[str, dict],
    tolerance: float = DEFAULT_TOLERANCE,
    names: Optional[Sequence[str]] = None,
) -> WallReport:
    """Compare every walled benchmark present in both runs."""
    report = WallReport(tolerance=tolerance)
    for name in sorted(names) if names is not None else sorted(HEADLINES):
        baseline = baselines.get(name)
        current = fresh.get(name)
        if baseline is None:
            report.skipped[name] = "no committed baseline"
            continue
        if current is None:
            report.skipped[name] = "no fresh run"
            continue
        if baseline.get("mode") != current.get("mode"):
            report.skipped[name] = (
                "mode mismatch: baseline %r vs fresh %r — not comparable"
                % (baseline.get("mode"), current.get("mode"))
            )
            continue
        report.checks.extend(compare(name, baseline, current, tolerance))
    return report


def collect_baselines(
    results_dir: pathlib.Path, names: Optional[Sequence[str]] = None
) -> Dict[str, dict]:
    """All committed ``BENCH_<name>.json`` payloads under the wall."""
    out: Dict[str, dict] = {}
    for name in names if names is not None else sorted(HEADLINES):
        path = results_dir / f"BENCH_{name}.json"
        if path.exists():
            out[name] = load_bench(path)
    return out


def run_wall(
    repo_root: pathlib.Path,
    names: Optional[Sequence[str]] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    runner: Optional[Callable[[str, Dict[str, str]], int]] = None,
) -> WallReport:
    """The whole wall: snapshot baselines, re-run quick, compare, restore.

    The quick re-run writes into ``benchmarks/results/`` (that is where
    ``publish_json`` points), so the committed baselines are snapshotted
    first and restored afterwards — the wall never mutates the tree it
    is judging.  ``runner`` is injectable for tests; the default shells
    out to pytest.
    """
    names = list(names) if names is not None else sorted(HEADLINES)
    results_dir = repo_root / "benchmarks" / "results"
    baselines = collect_baselines(results_dir, names)

    def default_runner(test_path: str, env: Dict[str, str]) -> int:
        merged = dict(os.environ)
        merged.update(env)
        src = str(repo_root / "src")
        merged["PYTHONPATH"] = (
            src + os.pathsep + merged["PYTHONPATH"]
            if merged.get("PYTHONPATH") else src
        )
        return subprocess.call(
            [sys.executable, "-m", "pytest", "-x", "-q", test_path],
            cwd=str(repo_root), env=merged,
        )

    run = runner if runner is not None else default_runner
    fresh: Dict[str, dict] = {}
    with tempfile.TemporaryDirectory(prefix="benchwall-") as snap:
        snapshot = pathlib.Path(snap)
        saved: List[str] = []
        # Snapshot every published artifact, not just the walled JSONs:
        # the quick re-run also rewrites the human .txt records, and
        # those are committed full-mode numbers.
        if results_dir.exists():
            for src in results_dir.iterdir():
                if src.is_file():
                    shutil.copy2(src, snapshot / src.name)
                    saved.append(src.name)
        try:
            for name in names:
                if name not in baselines:
                    continue  # evaluate() reports the missing baseline
                test_path, quick_env = BENCH_SOURCES[name]
                if not (repo_root / test_path).exists():
                    continue
                code = run(test_path, {quick_env: "1"})
                fresh_path = results_dir / f"BENCH_{name}.json"
                if code == 0 and fresh_path.exists():
                    fresh[name] = load_bench(fresh_path)
        finally:
            if results_dir.exists():
                for leftover in results_dir.iterdir():
                    if leftover.is_file() and leftover.name not in saved:
                        leftover.unlink()
            for filename in saved:
                shutil.copy2(snapshot / filename, results_dir / filename)
    return evaluate(baselines, fresh, tolerance, names=names)


__all__ = [
    "Check",
    "DEFAULT_TOLERANCE",
    "HIGHER",
    "LOWER",
    "Headline",
    "HEADLINES",
    "BENCH_SOURCES",
    "WallReport",
    "collect_baselines",
    "compare",
    "evaluate",
    "load_bench",
    "run_wall",
]
