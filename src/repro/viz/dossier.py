"""Single-crisis dossier: everything an operator wants on one screen.

Combines detection facts, the rendered fingerprint, the hot/cold state of
each relevant metric, KPI impact, and the nearest library matches into one
plain-text report — the artifact the paper's operators used when they
"very quickly recognized most of the crises" from rendered fingerprints.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.summary import summary_vectors
from repro.core.thresholds import QuantileThresholds
from repro.datacenter.trace import CrisisRecord, DatacenterTrace
from repro.viz.render import render_fingerprint


def _column_state(value: float) -> str:
    if value > 0.5:
        return "HOT"
    if value > 0.15:
        return "warm"
    if value < -0.5:
        return "COLD"
    if value < -0.15:
        return "cool"
    return "-"


def crisis_dossier(
    trace: DatacenterTrace,
    crisis: CrisisRecord,
    thresholds: QuantileThresholds,
    relevant: np.ndarray,
    matches: Optional[Sequence[Tuple[str, float]]] = None,
    max_metrics: int = 30,
) -> str:
    """Render the dossier for one detected crisis.

    ``matches`` carries ``(label, distance)`` pairs from the identifier,
    nearest first, if identification has run.
    """
    if crisis.detected_epoch is None:
        raise ValueError("crisis was never detected")
    det = crisis.detected_epoch
    relevant = np.asarray(relevant, dtype=int)

    lo = max(det - 2, 0)
    hi = min(det + 4, trace.n_epochs - 1)
    window = trace.quantiles[lo : hi + 1]
    summaries = summary_vectors(window, thresholds)
    sub = summaries[:, relevant, :]
    flat = sub.reshape(sub.shape[0], -1)
    means = flat.astype(float).mean(axis=0)

    lines: List[str] = []
    day = det // trace.epochs_per_day
    tod = (det % trace.epochs_per_day) * 24.0 / trace.epochs_per_day
    lines.append(f"CRISIS DOSSIER — crisis #{crisis.index}")
    lines.append(
        f"detected: epoch {det} (day {day}, {int(tod):02d}:"
        f"{int((tod % 1) * 60):02d})"
    )
    frac = trace.kpi_violation_fraction[det]
    kpi_bits = ", ".join(
        f"{name}: {100 * f:.0f}% of machines violating"
        for name, f in zip(trace.kpi_names, frac)
    )
    lines.append(f"KPI impact at detection: {kpi_bits}")

    if matches:
        lines.append("")
        lines.append("nearest known crises:")
        for label, distance in matches:
            lines.append(f"  type {label}  (distance {distance:.2f})")
    lines.append("")
    lines.append(render_fingerprint(flat, title="fingerprint (-30m..+60m)"))

    lines.append("")
    lines.append("relevant metrics (window-average state per quantile):")
    header = f"  {'metric':32s} {'q25':>6s} {'q50':>6s} {'q95':>6s}"
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    n_q = trace.n_quantiles
    shown = 0
    order = np.argsort(
        -np.abs(means.reshape(len(relevant), n_q)).max(axis=1)
    )
    for m_pos in order:
        if shown >= max_metrics:
            lines.append(f"  ... {len(relevant) - shown} more")
            break
        m = relevant[m_pos]
        states = [
            _column_state(means[m_pos * n_q + q]) for q in range(n_q)
        ]
        if all(s == "-" for s in states):
            continue
        lines.append(
            f"  {trace.metric_names[m]:32s} "
            + " ".join(f"{s:>6s}" for s in states)
        )
        shown += 1
    if shown == 0:
        lines.append("  (no relevant metric left its normal band)")
    return "\n".join(lines)


__all__ = ["crisis_dossier"]
