"""Trace timeline and distance-matrix renderers.

Complements :mod:`repro.viz.render` with two operator-facing views:

* :func:`render_timeline` — a day-by-day strip of the trace showing where
  crises were injected and what the SLA detector flagged;
* :func:`render_distance_matrix` — a shaded pairwise-distance heatmap of
  crisis fingerprints (dark = close), making recurring types visible at a
  glance.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.datacenter.trace import DatacenterTrace

#: Shading ramp from close (dark) to far (light).
_SHADES = "#@%*+=-:. "


def render_timeline(
    trace: DatacenterTrace,
    days_per_row: int = 60,
    include_bootstrap: bool = True,
) -> str:
    """One character per day: '.' quiet, '!' anomalous epochs present,
    letters mark injected crisis types (uppercase = labeled)."""
    per_day = trace.epochs_per_day
    n_days = trace.n_epochs // per_day
    chars = []
    anomalous_by_day = [
        trace.anomalous[d * per_day : (d + 1) * per_day].any()
        for d in range(n_days)
    ]
    day_labels: List[Optional[str]] = [None] * n_days
    for crisis in trace.crises:
        if not include_bootstrap and not crisis.labeled:
            continue
        day = crisis.instance.start_epoch // per_day
        if day < n_days:
            label = crisis.label
            day_labels[day] = label if crisis.labeled else label.lower()
    for d in range(n_days):
        if day_labels[d] is not None:
            chars.append(day_labels[d])
        elif anomalous_by_day[d]:
            chars.append("!")
        else:
            chars.append(".")
    lines = ["trace timeline (one character per day; letters = injected "
             "crises, lowercase = undiagnosed)"]
    for start in range(0, n_days, days_per_row):
        chunk = "".join(chars[start : start + days_per_row])
        lines.append(f"day {start:4d} | {chunk}")
    return "\n".join(lines)


def render_distance_matrix(
    distances: np.ndarray,
    labels: Sequence[str],
    title: str = "",
) -> str:
    """Shaded pairwise-distance heatmap with label axes (dark = close)."""
    distances = np.asarray(distances, dtype=float)
    n = distances.shape[0]
    if distances.shape != (n, n):
        raise ValueError("distances must be square")
    if len(labels) != n:
        raise ValueError("labels length mismatch")
    if n == 0:
        raise ValueError("empty matrix")
    off_diag = distances[~np.eye(n, dtype=bool)]
    hi = float(off_diag.max()) if off_diag.size else 1.0
    hi = hi if hi > 0 else 1.0
    lines = []
    if title:
        lines.append(title)
    lines.append("    " + " ".join(f"{lab:>2s}" for lab in labels))
    for i in range(n):
        cells = []
        for j in range(n):
            if i == j:
                cells.append(" \\")
                continue
            level = min(int(distances[i, j] / hi * (len(_SHADES) - 1)),
                        len(_SHADES) - 1)
            cells.append(" " + _SHADES[level])
        lines.append(f"{labels[i]:>3s} " + " ".join(c.strip().rjust(2)
                                                    for c in cells))
    lines.append("(dark '#' = similar fingerprints, light '.' = distant)")
    return "\n".join(lines)


__all__ = ["render_distance_matrix", "render_timeline"]
