"""Text visualizations: fingerprint heatmaps (Figure 1) and ROC curves.

The paper notes fingerprints are interpretable by human operators — when
shown rendered fingerprints, the datacenter's operators recognized most
crises on sight.  These renderers produce the same artifact in a terminal.
"""

from repro.viz.dossier import crisis_dossier
from repro.viz.render import render_fingerprint, render_roc, render_series
from repro.viz.timeline import render_distance_matrix, render_timeline

__all__ = [
    "crisis_dossier",
    "render_fingerprint",
    "render_roc",
    "render_series",
    "render_distance_matrix",
    "render_timeline",
]
