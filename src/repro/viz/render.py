"""ASCII renderers for fingerprints, ROC curves, and accuracy series."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

#: Glyphs for cold / normal / hot, mirroring Figure 1's white/gray/black.
_GLYPHS = {-1: ".", 0: " ", 1: "#"}


def render_fingerprint(
    summaries: np.ndarray,
    metric_names: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Render an epoch-by-column fingerprint heatmap (Figure 1).

    ``summaries`` is ``(n_epochs, n_columns)`` with entries in {-1, 0, +1}
    (column = one metric quantile); each row of output is one epoch.
    ``.`` is cold, space is normal, ``#`` is hot.
    """
    summaries = np.asarray(summaries)
    if summaries.ndim != 2:
        raise ValueError("summaries must be (n_epochs, n_columns)")
    if not np.isin(summaries, (-1, 0, 1)).all():
        raise ValueError("summaries must be ternary")
    lines = []
    if title:
        lines.append(title)
    lines.append("+" + "-" * summaries.shape[1] + "+")
    for row in summaries.astype(int):
        lines.append("|" + "".join(_GLYPHS[v] for v in row) + "|")
    lines.append("+" + "-" * summaries.shape[1] + "+")
    if metric_names is not None:
        lines.append("columns: " + ", ".join(metric_names))
    return "\n".join(lines)


def render_roc(
    fpr: np.ndarray,
    tpr: np.ndarray,
    width: int = 41,
    height: int = 17,
    title: str = "",
) -> str:
    """Plot an ROC curve with text; x = false-alarm rate, y = recall."""
    fpr = np.asarray(fpr, dtype=float)
    tpr = np.asarray(tpr, dtype=float)
    if fpr.shape != tpr.shape or fpr.ndim != 1 or fpr.size == 0:
        raise ValueError("fpr/tpr must be equal-length 1-D arrays")
    grid = [[" "] * width for _ in range(height)]
    # Interpolate the curve densely so the plot is connected.
    xs = np.linspace(0.0, 1.0, width * 4)
    ys = np.interp(xs, fpr, tpr)
    for x, y in zip(xs, ys):
        col = min(int(x * (width - 1)), width - 1)
        row = height - 1 - min(int(y * (height - 1)), height - 1)
        grid[row][col] = "*"
    lines = []
    if title:
        lines.append(title)
    lines.append("recall")
    for i, row in enumerate(grid):
        label = "1.0" if i == 0 else ("0.0" if i == height - 1 else "   ")
        lines.append(f"{label} |" + "".join(row))
    lines.append("    +" + "-" * width)
    lines.append("     0.0" + " " * (width - 11) + "1.0")
    lines.append("     false-alarm rate")
    return "\n".join(lines)


def render_series(
    x: np.ndarray,
    series: Sequence[np.ndarray],
    labels: Sequence[str],
    width: int = 61,
    height: int = 15,
    title: str = "",
) -> str:
    """Overlay several y(x) series (e.g. known/unknown accuracy vs alpha)."""
    x = np.asarray(x, dtype=float)
    if len(series) != len(labels) or not series:
        raise ValueError("series/labels mismatch")
    marks = "ox+*%@"
    grid = [[" "] * width for _ in range(height)]
    x_lo, x_hi = float(x.min()), float(x.max())
    span = max(x_hi - x_lo, 1e-12)
    for s_idx, ys in enumerate(series):
        ys = np.asarray(ys, dtype=float)
        if ys.shape != x.shape:
            raise ValueError("series length mismatch")
        for xi, yi in zip(x, ys):
            if np.isnan(yi):
                continue
            col = min(int((xi - x_lo) / span * (width - 1)), width - 1)
            yi = min(max(yi, 0.0), 1.0)
            row = height - 1 - min(int(yi * (height - 1)), height - 1)
            grid[row][col] = marks[s_idx % len(marks)]
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        label = "1.0" if i == 0 else ("0.0" if i == height - 1 else "   ")
        lines.append(f"{label} |" + "".join(row))
    lines.append("    +" + "-" * width)
    lines.append(f"     {x_lo:.2f}" + " " * (width - 12) + f"{x_hi:.2f}")
    legend = "  ".join(
        f"{marks[i % len(marks)]}={lab}" for i, lab in enumerate(labels)
    )
    lines.append("     " + legend)
    return "\n".join(lines)


__all__ = ["render_fingerprint", "render_roc", "render_series"]
