"""Experiment E2 — Figure 4: offline identification accuracy per method.

Paper's result (Section 5.1.3): with perfect future knowledge the
fingerprint method reaches ~97.5% known / ~93.3% unknown accuracy; the
signatures adaptation lands around 75/80%; the all-metrics and KPI
baselines only manage roughly 50-55%.
"""

from conftest import publish
from repro.evaluation.experiments import OfflineIdentificationExperiment
from repro.evaluation.results import format_percent, format_table
from repro.viz import render_series


def test_fig4_offline_identification(benchmark, fitted_methods,
                                     labeled_crises):
    def compute():
        results = {}
        for method in fitted_methods:
            exp = OfflineIdentificationExperiment(
                method, labeled_crises, n_runs=5, seed=7
            )
            results[method.name] = exp.run()
        return results

    curves_by_method = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for name, curves in curves_by_method.items():
        op = curves.operating_point()
        rows.append(
            [
                name,
                format_percent(op["known_accuracy"]),
                format_percent(op["unknown_accuracy"]),
                f"{op['mean_time_minutes']:.0f} min",
                round(op["alpha"], 3),
            ]
        )
    text = format_table(
        ["method", "known acc.", "unknown acc.", "time to id", "alpha*"],
        rows,
        title="Figure 4 — offline identification (operating point where "
        "known/unknown accuracies cross)",
    )
    fp = curves_by_method["fingerprints"]
    text += "\n\n" + render_series(
        fp.alphas,
        [fp.known_accuracy, fp.unknown_accuracy],
        ["known accuracy", "unknown accuracy"],
        title="fingerprints: accuracy vs alpha (offline)",
    )
    publish("fig4_offline_identification", text)

    op = {
        name: curves.operating_point()
        for name, curves in curves_by_method.items()
    }

    def balanced(name):
        return (op[name]["known_accuracy"] + op[name]["unknown_accuracy"]) / 2

    # Shape: fingerprints lead every alternative (Figure 4's ordering);
    # the absolute level is below the paper's 97.5/93.3% because our
    # synthetic baselines are stronger than the production dataset's (see
    # EXPERIMENTS.md).
    assert balanced("fingerprints") > 0.75
    assert balanced("fingerprints") > balanced("fingerprints (all metrics)")
    assert balanced("fingerprints") > balanced("KPIs")
    assert balanced("fingerprints") >= balanced("signatures")
    assert op["fingerprints"]["mean_time_minutes"] <= 30.0
