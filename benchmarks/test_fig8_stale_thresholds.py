"""Experiment E6 — Figure 8: the cost of not re-fingerprinting old crises.

Section 6.3: the method stores raw quantile values for past crises and
recomputes their {-1, 0, +1} fingerprints whenever hot/cold thresholds
move.  Freezing each past crisis's discretization at the thresholds in
force when it occurred costs about five accuracy points in the paper.
"""

from conftest import publish
from repro.config import FingerprintingConfig, SelectionConfig, ThresholdConfig
from repro.evaluation.experiments import OnlineIdentificationExperiment
from repro.evaluation.results import format_percent, format_table

CONFIG = FingerprintingConfig(
    selection=SelectionConfig(n_relevant=30),
    thresholds=ThresholdConfig(window_days=240),
)


def test_fig8_stale_thresholds(benchmark, paper_trace):
    def compute():
        fresh = OnlineIdentificationExperiment(
            paper_trace, CONFIG, recompute_past_fingerprints=True
        ).run(mode="online", bootstrap=10, n_runs=21, seed=7)
        stale = OnlineIdentificationExperiment(
            paper_trace, CONFIG, recompute_past_fingerprints=False
        ).run(mode="online", bootstrap=10, n_runs=21, seed=7)
        return fresh, stale

    fresh, stale = benchmark.pedantic(compute, rounds=1, iterations=1)
    op_fresh = fresh.operating_point()
    op_stale = stale.operating_point()

    rows = [
        [
            "recomputed fingerprints (paper default)",
            format_percent(op_fresh["known_accuracy"]),
            format_percent(op_fresh["unknown_accuracy"]),
        ],
        [
            "stale fingerprints (thresholds frozen at crisis time)",
            format_percent(op_stale["known_accuracy"]),
            format_percent(op_stale["unknown_accuracy"]),
        ],
    ]
    text = format_table(
        ["variant", "known acc.", "unknown acc."],
        rows,
        title="Figure 8 — updating fingerprints when thresholds move",
    )
    publish("fig8_stale_thresholds", text)

    def balanced(op):
        return (op["known_accuracy"] + op["unknown_accuracy"]) / 2

    # Shape: freezing old discretizations does not help, and typically
    # costs a few points (5 in the paper).
    assert balanced(op_fresh) >= balanced(op_stale) - 0.02
