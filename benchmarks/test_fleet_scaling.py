"""Scaling of the sharded fleet aggregator vs. the single-process path.

Simulates a 10k-machine fleet (16 metrics, 3 epochs) and measures
sustained aggregation throughput — reports/second through a full
submit + close-epoch cycle — for the single-process
:class:`EpochAggregator` fed report-by-report (its API) and for the
sharded :class:`FleetAggregator` at 1/2/4 workers.  The fleet PR's
acceptance floor is asserted directly: >= 3x throughput at 4 workers.

The fleet path wins on two axes: vectorized chunk folding (one sort per
batch instead of per-value Python work) and work partitioning across
worker processes; the table reports each shard's busy time so the
partitioning is visible even on hosts where the workers time-slice a
single core.

Set ``FLEET_SCALING_QUICK=1`` (the CI smoke job does) for a reduced
2000-machine sweep at 1/2 workers with a 1.5x floor.
"""

import os

from repro.fleet.bench import format_results, run_scaling

from conftest import publish, publish_json

QUICK = os.environ.get("FLEET_SCALING_QUICK") == "1"
N_MACHINES = 2000 if QUICK else 10_000
N_METRICS = 16
N_EPOCHS = 2 if QUICK else 3
WORKER_COUNTS = (1, 2) if QUICK else (1, 2, 4)
SPEEDUP_FLOOR = 1.5 if QUICK else 3.0
MODE = "sketch"
SKETCH_EPS = 0.02


def test_fleet_scaling():
    results = run_scaling(
        n_machines=N_MACHINES,
        n_metrics=N_METRICS,
        n_epochs=N_EPOCHS,
        worker_counts=WORKER_COUNTS,
        mode=MODE,
        sketch_eps=SKETCH_EPS,
        seed=0,
    )
    lines = [
        format_results(
            results,
            title="Fleet aggregation scaling: single-process "
            "EpochAggregator vs. sharded FleetAggregator "
            f"(mode={MODE}, eps={SKETCH_EPS})",
        ),
        "",
        "reports/s = machines x epochs / total wall time (submit through "
        "close_epoch).",
        "max shard busy = slowest worker's fold time per epoch; compare "
        "against total s for the partitioning picture on 1-cpu hosts.",
        f"floor asserted at {WORKER_COUNTS[-1]} workers: "
        f">={SPEEDUP_FLOOR:.1f}x over the single-process baseline.",
        "mode = %s" % ("quick (CI smoke)" if QUICK else "full"),
    ]
    publish("fleet_scaling", "\n".join(lines))
    publish_json("fleet_scaling", {
        "n_machines": N_MACHINES,
        "n_metrics": N_METRICS,
        "n_epochs": N_EPOCHS,
        "sketch_eps": SKETCH_EPS,
        "speedup_floor": SPEEDUP_FLOOR,
        "mode": "quick" if QUICK else "full",
        "configs": [{
            "label": r.label,
            "n_workers": r.n_workers,
            "seconds": r.seconds,
            "reports_per_s": r.reports_per_s,
            "max_shard_busy_s": r.max_shard_busy_s,
        } for r in results],
    })

    baseline = results[0]
    best = results[-1]
    assert best.n_workers == WORKER_COUNTS[-1]
    speedup = best.reports_per_s / baseline.reports_per_s
    assert speedup >= SPEEDUP_FLOOR, (
        f"only {speedup:.2f}x over the single-process aggregator at "
        f"{best.n_workers} workers ({N_MACHINES} machines)"
    )
