"""Experiment E12 — Section 7: forecasting crises from early signs.

The paper's future-work section reports encouraging initial results on
forecasting crises — especially type B, whose downstream backlog builds
before the SLA detector fires.  The forecaster trains on early (pre-
detection) fingerprints of past crises and is evaluated on held-out ones.
"""

from conftest import publish
from repro.evaluation.results import format_table
from repro.extensions import CrisisForecaster


def test_sec7_forecasting(benchmark, paper_trace, labeled_crises,
                          fingerprint_method):
    method = fingerprint_method
    train, test = labeled_crises[:12], labeled_crises[12:]

    def compute():
        forecaster = CrisisForecaster(
            paper_trace,
            method.thresholds,
            method.relevant,
            lead_epochs=1,
            window_epochs=3,
        ).fit(train)
        threshold = forecaster.calibrate_threshold()
        overall = forecaster.evaluate(test, threshold=threshold)
        test_b = [c for c in test if c.label == "B"]
        by_type = (
            forecaster.evaluate(test_b, threshold=threshold)
            if test_b else None
        )
        return overall, by_type

    overall, type_b = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = [
        [
            "all held-out crises",
            f"{overall.recall:.0%} of {overall.n_crises}",
            f"{overall.false_alarm_rate:.1%}",
        ]
    ]
    if type_b is not None:
        rows.append(
            [
                "type B only",
                f"{type_b.recall:.0%} of {type_b.n_crises}",
                f"{type_b.false_alarm_rate:.1%}",
            ]
        )
    text = format_table(
        ["evaluation", "crises forecast", "false alarms (normal epochs)"],
        rows,
        title="Section 7 — forecasting crises from early fingerprint signs",
    )
    publish("sec7_forecasting", text)

    # Shape: forecasting is genuinely informative (better than the base
    # rate) with a low false-alarm rate, and type B — whose downstream
    # backlog builds gradually — is the forecastable type.
    assert overall.false_alarm_rate < 0.15
    if type_b is not None and type_b.n_crises >= 2:
        assert type_b.recall >= 0.5
