"""Lead time vs precision: the online forecaster against Section 7.

The forecast subsystem's acceptance bar, asserted directly.  A
two-stage detector is trained once on the trace prefix ending before
the 8th labeled crisis, then the *full* trace is replayed online
through a fresh monitor with the trained engine attached, and every
crisis the schedule still holds — 12 of the 19 labeled crises,
spanning seven distinct types — is scored:

* **recall** must strictly beat the Section 7 offline demo (43% of its
  held-out crises at a 2% false-alarm budget, 1.7% realized) while the
  online detector is calibrated at *half* that budget (1%) and must
  also realize a lower false-alarm rate;
* the **median lead** must be at least 2 epochs — alarms that arrive
  with the SLA breach are not forecasts;
* stage-2 must name the right incident for at least 60% of the
  forewarned crises it labels.

The split differs from the offline demo's (train on 12, test on the
last 7) deliberately: the demo's last-7 slice happens to draw five
step-onset crises that the simulator detects at their start epoch, so
it measures luck on background epochs more than forecasting skill.
Training once at the 70% mark and scoring the *entire* remaining
schedule exercises every onset shape the simulator generates —
ramping type-B crises, lagged step onsets, and instant ones — and the
bar is the harder dominance claim: more crises forecast, on a bigger
held-out set, at a stricter budget.

Relevant metrics are selected from training-period detections only
(the unlabeled Section 3.4 selection), so nothing from the held-out
period leaks into the model.

Set ``FORECAST_LEADTIME_QUICK=1`` (the CI smoke job and the perf wall
do) for the unit-test-scale simulation with relaxed floors.
"""

import os

import numpy as np

from repro.config import ForecastConfig
from repro.core.selection import (
    select_crisis_metrics,
    select_relevant_metrics,
)
from repro.datacenter import DatacenterSimulator
from repro.datacenter.scenarios import tiny
from repro.forecast import (
    FORECAST_REPLAY_CONFIG,
    evaluate_forecaster,
    format_report,
    train_forecaster,
)

from conftest import publish, publish_json

QUICK = os.environ.get("FORECAST_LEADTIME_QUICK") == "1"

#: The committed Section 7 baseline (benchmarks/results/
#: sec7_forecasting.txt): 43% of its held-out crises forecast at a 2%
#: false-alarm budget (1.7% realized).  The online subsystem must
#: strictly beat the recall on its larger held-out schedule while
#: calibrated at half the budget.
SEC7_RECALL = 0.43
SEC7_FALSE_ALARM_RATE = 0.017

#: Online calibration budget: half the offline demo's 2%.
FALSE_ALARM_BUDGET = 0.01

MIN_RECALL = 0.30 if QUICK else SEC7_RECALL
MAX_FALSE_ALARMS = 0.03 if QUICK else SEC7_FALSE_ALARM_RATE
MIN_MEDIAN_LEAD = 1.0 if QUICK else 2.0
MIN_STAGE2 = 0.50 if QUICK else 0.60


def training_relevant(trace, split, config=FORECAST_REPLAY_CONFIG):
    """Section 3.4 selection restricted to training-period detections."""
    selections = [
        select_crisis_metrics(
            c.raw.values,
            c.raw.violations,
            top_k=config.selection.per_crisis_top_k,
        )
        for c in trace.detected_crises
        if c.raw is not None and c.detected_epoch < split
    ]
    return select_relevant_metrics(
        selections,
        config.selection.n_relevant,
        pool=max(len(selections), config.selection.crisis_pool),
    )


def test_forecast_leadtime(request):
    if QUICK:
        trace = DatacenterSimulator(tiny(seed=1234)).run()
    else:
        trace = request.getfixturevalue("paper_trace")
    labeled = trace.labeled_crises
    assert len(labeled) >= 17

    fcfg = ForecastConfig(false_alarm_budget=FALSE_ALARM_BUDGET)
    # Train on the prefix before the 8th labeled crisis and hold out the
    # full remaining schedule (12 crises, seven types).  The prefix
    # stops clear of the 8th crisis's lead window so no positive
    # training epoch overlaps the evaluation period.
    split = (
        int(labeled[7].instance.start_epoch) - fcfg.horizon_epochs - 8
    )

    relevant = training_relevant(trace, split)
    engine, report = train_forecaster(
        trace, relevant, fcfg=fcfg, train_epochs=split
    )
    result = evaluate_forecaster(trace, relevant, engine, eval_start=split)

    text = format_report(
        result,
        title=(
            "forecast lead time (%s; train<%d, %d crises held out)"
            % ("quick" if QUICK else "paper", split, result.n_crises)
        ),
    )
    text += "\n\n" + "\n".join([
        "training:",
        f"  positives / negatives  {report.n_positive}"
        f" / {report.n_negative}",
        f"  stage-1 lambda         {report.lam:.5f}",
        f"  alarm threshold        {report.alarm_threshold:.5f}"
        f"  (budget {fcfg.false_alarm_budget:.0%})",
        f"  stage-2 catalog        {report.catalog_size} entries",
        f"sec7 baseline: recall {SEC7_RECALL:.0%} at budget 2%"
        f" (realized {SEC7_FALSE_ALARM_RATE:.1%})",
    ])
    publish("forecast_leadtime", text)
    publish_json("forecast", {
        "mode": "quick" if QUICK else "full",
        "n_crises": result.n_crises,
        "n_forewarned": result.n_forewarned,
        "recall": round(result.recall, 4),
        "median_lead_epochs": result.median_lead_epochs,
        "false_alarm_rate": round(result.false_alarm_rate, 5),
        "n_false_alarms": result.n_false_alarms,
        "n_normal_epochs": result.n_normal_epochs,
        "stage2_accuracy": round(result.stage2_accuracy, 4),
        "n_stage2_scored": result.n_stage2_scored,
        "catalog_size": report.catalog_size,
        "train_positives": report.n_positive,
        "sec7_recall": SEC7_RECALL,
        "sec7_false_alarm_rate": SEC7_FALSE_ALARM_RATE,
    })

    # The detector actually trained and the evaluation actually scored.
    assert report.n_positive > 0 and report.catalog_size > 0
    assert result.n_crises >= (5 if QUICK else 10)
    assert np.isfinite(result.recall)

    # The acceptance bar: strictly better recall than Section 7 at a
    # stricter budget and a lower realized false-alarm rate, with
    # genuine advance notice and a mostly-right early identification.
    assert result.recall > MIN_RECALL, text
    assert result.false_alarm_rate <= MAX_FALSE_ALARMS, text
    assert result.median_lead_epochs >= MIN_MEDIAN_LEAD, text
    if result.n_stage2_scored:
        assert result.stage2_accuracy >= MIN_STAGE2, text
