"""Experiment E1 — Figure 3: distance ROC curves and AUC per method.

Paper's result: the fingerprint method achieves AUC ~0.99 (near-perfect
separation) and clearly dominates the signatures adaptation, the
all-metrics fingerprints, and the KPI-only baseline.
"""

import numpy as np

from conftest import publish
from repro.evaluation.discrimination import discrimination_roc
from repro.evaluation.results import format_table
from repro.viz import render_roc


def test_fig3_discrimination(benchmark, fitted_methods, labeled_crises):
    def compute():
        return {
            m.name: discrimination_roc(m, labeled_crises)
            for m in fitted_methods
        }

    rocs = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = [[name, round(roc.auc, 3)] for name, roc in rocs.items()]
    text = format_table(
        ["type of fingerprint", "AUC"],
        rows,
        title="Figure 3 — discriminative power (area under distance ROC)",
    )
    fp_roc = rocs["fingerprints"]
    text += "\n\n" + render_roc(
        fp_roc.fpr, fp_roc.tpr, title="fingerprints distance ROC"
    )
    publish("fig3_discrimination", text)

    aucs = {name: roc.auc for name, roc in rocs.items()}
    # Shape criteria (DESIGN.md section 7): fingerprints near-perfect and
    # at least as discriminative as every baseline.
    assert aucs["fingerprints"] > 0.93
    assert aucs["fingerprints"] >= aucs["fingerprints (all metrics)"] - 0.02
    assert aucs["fingerprints"] >= aucs["KPIs"] - 0.02
    assert np.isfinite(aucs["signatures"])
