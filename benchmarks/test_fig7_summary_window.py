"""Experiment E5 — Figure 7: discriminative power vs summary window.

The crisis fingerprint averages epoch fingerprints over a window [t0, t1]
relative to detection.  The paper's Figure 7: windows starting at least 30
minutes before the crisis quickly reach high AUC as the window end grows;
the production choice (-30 min, +60 min) sits on the plateau.
"""

import numpy as np

from conftest import publish
from repro.evaluation.results import format_table
from repro.evaluation.sensitivity import summary_window_sweep


def test_fig7_summary_window(benchmark, paper_trace, labeled_crises,
                             fingerprint_method):
    start_offsets = (-4, -3, -2, -1, 0)
    end_offsets = (0, 1, 2, 3, 4, 6, 8, 10)

    def compute():
        return summary_window_sweep(
            paper_trace,
            labeled_crises,
            start_offsets=start_offsets,
            end_offsets=end_offsets,
            method=fingerprint_method,
        )

    aucs = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for t0 in start_offsets:
        row = [f"start {15 * t0:+d} min"]
        for t1 in end_offsets:
            row.append(
                round(aucs[(t0, t1)], 3) if (t0, t1) in aucs else "-"
            )
        rows.append(row)
    text = format_table(
        ["window"] + [f"end +{15 * t1}m" for t1 in end_offsets],
        rows,
        title="Figure 7 — AUC of fingerprints summarized over [t0, t1] "
        "relative to detection",
    )
    publish("fig7_summary_window", text)

    # Shape criteria: the paper's window (-2, +4) is on the plateau, and
    # long windows starting before the crisis beat the shortest ones.
    paper_auc = aucs[(-2, 4)]
    assert paper_auc > 0.9
    best = max(aucs.values())
    assert paper_auc >= best - 0.05
    short = aucs[(-4, 0)]
    assert aucs[(-4, 8)] >= short - 0.02
