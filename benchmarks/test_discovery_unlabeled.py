"""Unsupervised discovery quality on a fully unlabeled stream.

The discovery PR's acceptance floor, asserted directly: replaying the
paper-scale simulated trace through the streaming monitor with **zero
operator diagnoses**, the attached
:class:`~repro.discovery.DiscoveryEngine` must recover at least 9 of
the 10 injected ground-truth crisis types with an adjusted Rand index
of at least 0.85 against the hidden truth partition.  The supervised
ceiling — the same stream with an oracle diagnosing every crisis as it
ends — is reported alongside for context.

Set ``DISCOVERY_UNLABELED_QUICK=1`` (the CI smoke job and the perf
wall do) for the unit-test-scale simulation with relaxed floors.
"""

import os

from repro.datacenter import DatacenterSimulator
from repro.datacenter.scenarios import tiny
from repro.discovery.eval import format_report, run_unlabeled

from conftest import publish, publish_json

QUICK = os.environ.get("DISCOVERY_UNLABELED_QUICK") == "1"
MIN_RECOVERED = 8 if QUICK else 9
MIN_ADJUSTED_RAND = 0.75 if QUICK else 0.85


def test_discovery_unlabeled(request):
    if QUICK:
        trace = DatacenterSimulator(tiny(seed=1234)).run()
    else:
        trace = request.getfixturevalue("paper_trace")

    result, engine = run_unlabeled(trace)

    report = format_report(result)
    publish("discovery_unlabeled", report)
    publish_json("discovery", {
        "mode": "quick" if QUICK else "full",
        "n_detected": result.n_detected,
        "n_clustered": result.n_clustered,
        "n_clusters": result.n_clusters,
        "n_promoted": result.n_promoted,
        "n_types": result.n_types,
        "recovered_types": result.recovered_types,
        "purity": round(result.purity, 4),
        "adjusted_rand": round(result.adjusted_rand, 4),
        "nmi": round(result.nmi, 4),
        "supervised_adjusted_rand": round(
            result.supervised_adjusted_rand, 4
        ),
        "supervised_accuracy": round(result.supervised_accuracy, 4),
    })

    # Every detected crisis the clusterer saw went through the index-
    # backed assignment path; promotion actually grew the catalog.
    assert result.n_clustered > 0
    assert result.n_promoted >= 1
    assert engine.incidents is not None and len(engine.incidents) >= 1

    assert result.recovered_types >= MIN_RECOVERED, report
    assert result.adjusted_rand >= MIN_ADJUSTED_RAND, report
