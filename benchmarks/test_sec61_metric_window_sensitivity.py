"""Experiment E8 — Section 6.1: fingerprint size x threshold window.

The paper observes a steady decrease in online identification accuracy
with fewer relevant metrics (30 -> 20 -> 10 -> 5) and with shorter
threshold windows (240 -> 120 -> 30 -> 7 days); the best setting overall
is 30 metrics with a 240-day window.
"""

import numpy as np

from conftest import publish
from repro.evaluation.results import format_percent, format_table
from repro.evaluation.sensitivity import metric_window_sweep

N_METRICS = (5, 10, 20, 30)
WINDOWS = (7, 120, 240)


def test_sec61_metric_window_sensitivity(benchmark, paper_trace):
    def compute():
        return metric_window_sweep(
            paper_trace,
            n_metrics_grid=N_METRICS,
            window_days_grid=WINDOWS,
            mode="online",
            bootstrap=10,
            n_runs=11,
            seed=7,
        )

    records = benchmark.pedantic(compute, rounds=1, iterations=1)

    def balanced(rec):
        return (rec["known_accuracy"] + rec["unknown_accuracy"]) / 2

    by_key = {
        (int(r["n_metrics"]), int(r["window_days"])): r for r in records
    }
    rows = []
    for n in N_METRICS:
        row = [f"{n} metrics"]
        for w in WINDOWS:
            row.append(format_percent(balanced(by_key[(n, w)])))
        rows.append(row)
    text = format_table(
        ["fingerprint size"] + [f"{w} d window" for w in WINDOWS],
        rows,
        title="Section 6.1 — balanced online accuracy vs fingerprint size "
        "and threshold window",
    )
    publish("sec61_metric_window", text)

    best = balanced(by_key[(30, 240)])
    # Shape: the paper's choice is at (or within noise of) the best cell,
    # and a 5-metric fingerprint with a 7-day window is clearly worse.
    top = max(balanced(r) for r in records)
    assert best >= top - 0.08
    assert best >= balanced(by_key[(5, 7)]) - 0.02
    assert np.isfinite(best)
