"""Experiment E9 — Section 6.2: hot/cold threshold settings.

Two results to reproduce:

* widening the hot/cold percentiles from 2/98 to 1/99, 5/95, or 10/90
  lowers discriminative power (paper: 0.99 -> 0.96 or less);
* the two alternative threshold-setting methods the appendix tried
  (time-series prediction +/- 3 sigma, and fitting thresholds against KPI
  violations) are inferior to fixed percentiles (paper: <= 0.95 vs 0.99).
"""

from conftest import publish
from repro.evaluation.results import format_table
from repro.evaluation.sensitivity import (
    threshold_method_sweep,
    threshold_percentile_sweep,
)


def test_sec62_threshold_methods(benchmark, paper_trace, labeled_crises):
    def compute():
        percentiles = threshold_percentile_sweep(paper_trace, labeled_crises)
        methods = threshold_method_sweep(paper_trace, labeled_crises)
        return percentiles, methods

    percentiles, methods = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = [
        [f"percentiles {cold:g}/{hot:g}", round(auc, 3)]
        for (cold, hot), auc in sorted(percentiles.items())
    ] + [[name, round(auc, 3)] for name, auc in methods.items()]
    text = format_table(
        ["threshold setting", "AUC"],
        rows,
        title="Section 6.2 — discriminative power of threshold settings",
    )
    publish("sec62_threshold_methods", text)

    base = percentiles[(2.0, 98.0)]
    # Shape: 2/98 beats the widest setting and both rejected methods.
    assert base > percentiles[(10.0, 90.0)] - 0.01
    assert base >= methods["time-series +/-3 sigma"] - 0.02
    assert base >= methods["KPI-correlation fit"] - 0.02
