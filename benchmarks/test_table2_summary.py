"""Experiment E7 — Table 2: accuracy summary across all settings.

Paper's Table 2:

    setting                   known acc.   unknown acc.
    offline                   98%          93%
    quasi-online              83%          83%
    online, bootstrap w/ 10   80%          80%
    online, bootstrap w/ 2    78%          74%
"""

from conftest import publish
from repro.config import FingerprintingConfig, SelectionConfig, ThresholdConfig
from repro.evaluation.experiments import (
    OfflineIdentificationExperiment,
    OnlineIdentificationExperiment,
)
from repro.evaluation.results import format_percent, format_table
from repro.methods import FingerprintMethod

ONLINE_CONFIG = FingerprintingConfig(
    selection=SelectionConfig(n_relevant=30),
    thresholds=ThresholdConfig(window_days=240),
)
OFFLINE_CONFIG = FingerprintingConfig(
    selection=SelectionConfig(n_relevant=15),
    thresholds=ThresholdConfig(window_days=240),
)


def test_table2_summary(benchmark, paper_trace, labeled_crises):
    def compute():
        offline_method = FingerprintMethod(OFFLINE_CONFIG)
        offline_method.fit(paper_trace, labeled_crises)
        offline = OfflineIdentificationExperiment(
            offline_method, labeled_crises, n_runs=5, seed=7
        ).run()

        online_exp = OnlineIdentificationExperiment(
            paper_trace, ONLINE_CONFIG
        )
        quasi = online_exp.run(mode="quasi-online", bootstrap=2,
                               n_runs=21, seed=7)
        online10 = online_exp.run(mode="online", bootstrap=10,
                                  n_runs=41, seed=7)
        online2 = online_exp.run(mode="online", bootstrap=2,
                                 n_runs=21, seed=7)
        return {
            "offline": offline,
            "quasi-online": quasi,
            "online, bootstrap w/ 10": online10,
            "online, bootstrap w/ 2": online2,
        }

    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    paper = {
        "offline": (0.98, 0.93),
        "quasi-online": (0.83, 0.83),
        "online, bootstrap w/ 10": (0.80, 0.80),
        "online, bootstrap w/ 2": (0.78, 0.74),
    }
    rows = []
    ops = {}
    for setting, curves in results.items():
        op = curves.operating_point()
        ops[setting] = op
        rows.append(
            [
                setting,
                format_percent(op["known_accuracy"]),
                format_percent(op["unknown_accuracy"]),
                f"{100 * paper[setting][0]:.0f}% / "
                f"{100 * paper[setting][1]:.0f}%",
            ]
        )
    text = format_table(
        ["setting", "known acc.", "unknown acc.", "paper (k/u)"],
        rows,
        title="Table 2 — identification accuracy by setting",
    )
    publish("table2_summary", text)

    def balanced(setting):
        op = ops[setting]
        return (op["known_accuracy"] + op["unknown_accuracy"]) / 2

    # Shape: offline is the optimum; online estimation costs accuracy but
    # the method keeps working; bigger bootstrap does not hurt.
    assert balanced("offline") > 0.85
    assert balanced("offline") >= balanced("online, bootstrap w/ 10") - 0.02
    assert balanced("online, bootstrap w/ 10") >= \
        balanced("online, bootstrap w/ 2") - 0.05
