"""Experiment E10 — Table 1 / Figure 1: crisis catalog and fingerprints.

Regenerates Table 1 (the labeled crisis catalog with instance counts) and
renders fingerprint heatmaps like Figure 1 — rows are epochs, columns are
metric quantiles, '#' hot / '.' cold / ' ' normal.  The paper's
observation that quantiles of one metric often move in *different*
directions (important for identification) is asserted directly.
"""

from collections import Counter

import numpy as np

from conftest import publish
from repro.core.summary import summary_vectors
from repro.datacenter.crises import CRISIS_TYPES
from repro.evaluation.results import format_table
from repro.viz import render_fingerprint


def test_fig1_table1_fingerprints(benchmark, paper_trace, labeled_crises,
                                  fingerprint_method):
    method = fingerprint_method

    def compute():
        rendered = {}
        for crisis in labeled_crises:
            det = crisis.detected_epoch
            window = paper_trace.quantiles[det - 2 : det + 5]
            summaries = summary_vectors(window, method.thresholds)
            sub = summaries[:, method.relevant, :]
            rendered[crisis.index] = sub.reshape(sub.shape[0], -1)
        return rendered

    rendered = benchmark.pedantic(compute, rounds=1, iterations=1)

    counts = Counter(c.label for c in labeled_crises)
    rows = [
        [code, counts.get(code, 0), CRISIS_TYPES[code].description]
        for code in sorted(CRISIS_TYPES)
    ]
    text = format_table(
        ["ID", "# of instances", "label"],
        rows,
        title="Table 1 — list of identified performance crises",
    )

    shown = set()
    for crisis in labeled_crises:
        if crisis.label in shown or crisis.label not in "BBCD":
            continue
        shown.add(crisis.label)
        text += "\n\n" + render_fingerprint(
            rendered[crisis.index],
            title=f"Figure 1 style — crisis {crisis.index} "
            f"(type {crisis.label})",
        )
    publish("fig1_table1_fingerprints", text)

    # Table 1 shape: 19 labeled crises, type B dominant with 9 instances.
    assert sum(counts.values()) == len(labeled_crises)
    assert counts["B"] >= 7

    # Figure 1's observation: some metric has quantiles moving in
    # different directions within one crisis fingerprint.
    diverging = 0
    for flat in rendered.values():
        per_metric = flat.reshape(flat.shape[0], -1, 3)
        col_mean = per_metric.mean(axis=0)  # (n_metrics, 3)
        has_hot = (col_mean > 0.3).any(axis=1)
        has_cold = (col_mean < -0.3).any(axis=1)
        diverging += int(np.any(has_hot & has_cold))
    assert diverging >= 1
