"""Ablation benches for design choices called out in DESIGN.md.

Two implementation choices this reproduction makes explicit (the paper
leaves them unspecified) are validated here:

1. **Per-epoch identification thresholds.**  Partial-window fingerprint
   distances (identification epochs 0-1) live on a smaller scale than
   full-window distances, so the threshold is calibrated per epoch from
   same-truncation pairs.  The ablation applies one full-window threshold
   to all epochs; early comparisons then over-match, sequences go
   unstable, and accuracy drops.

2. **Variance-stabilized feature selection.**  Raw datacenter metrics are
   heavy-tailed; L1 logistic regression on raw standardized values picks
   junk metrics because crisis samples dominate each feature's variance.
   The ablation selects on raw values and measures how much junk enters
   the per-crisis selections.
"""

import numpy as np

from conftest import publish
from repro.core.selection import crisis_training_set
from repro.evaluation.experiments import OfflineIdentificationExperiment
from repro.evaluation.results import format_percent, format_table
from repro.ml.logistic import select_top_k_features
from repro.ml.preprocessing import StandardScaler


def test_ablation_per_epoch_thresholds(benchmark, fingerprint_method,
                                       labeled_crises):
    def compute():
        scaled = OfflineIdentificationExperiment(
            fingerprint_method, labeled_crises, n_runs=5, seed=7,
            per_epoch_thresholds=True,
        ).run()
        single = OfflineIdentificationExperiment(
            fingerprint_method, labeled_crises, n_runs=5, seed=7,
            per_epoch_thresholds=False,
        ).run()
        return scaled, single

    scaled, single = benchmark.pedantic(compute, rounds=1, iterations=1)
    op_scaled = scaled.operating_point()
    op_single = single.operating_point()

    rows = [
        ["per-epoch thresholds (this repo)",
         format_percent(op_scaled["known_accuracy"]),
         format_percent(op_scaled["unknown_accuracy"])],
        ["single full-window threshold (ablation)",
         format_percent(op_single["known_accuracy"]),
         format_percent(op_single["unknown_accuracy"])],
    ]
    publish(
        "ablation_per_epoch_thresholds",
        format_table(
            ["variant", "known acc.", "unknown acc."],
            rows,
            title="Ablation — identification-threshold calibration",
        ),
    )

    def balanced(op):
        return (op["known_accuracy"] + op["unknown_accuracy"]) / 2

    assert balanced(op_scaled) >= balanced(op_single) - 0.02


def test_ablation_selection_stabilization(benchmark, paper_trace,
                                          labeled_crises):
    top_k = 10

    def junk_fraction(stabilized: bool) -> float:
        junk = total = 0
        for crisis in labeled_crises:
            X, y = crisis_training_set(crisis.raw.values,
                                       crisis.raw.violations)
            if y.sum() in (0, len(y)):
                continue
            if stabilized:
                X = np.sign(X) * np.log1p(np.abs(X))
            Xs = StandardScaler().fit_transform(X)
            picked = select_top_k_features(Xs, y, k=top_k)
            names = [paper_trace.metric_names[i] for i in picked]
            junk += sum(1 for n in names if n.startswith("misc."))
            total += len(names)
        return junk / max(total, 1)

    def compute():
        return junk_fraction(True), junk_fraction(False)

    stabilized, raw = benchmark.pedantic(compute, rounds=1, iterations=1)
    publish(
        "ablation_selection_stabilization",
        format_table(
            ["variant", "junk metrics in per-crisis top-10"],
            [
                ["log1p + standardize (this repo)", f"{stabilized:.1%}"],
                ["raw standardize (ablation)", f"{raw:.1%}"],
            ],
            title="Ablation — feature-selection variance stabilization",
        ),
    )
    assert stabilized <= raw + 0.02
    assert stabilized < 0.35
