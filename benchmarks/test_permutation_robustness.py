"""Supplementary analysis: order-sensitivity of online identification.

The paper permutes the crisis sequence to show its results are not "due
to one lucky series of events".  This bench reports the distribution of
balanced accuracy across presentation orders and asserts the real
(chronological) order is typical of it.
"""

from conftest import publish
from repro.config import FingerprintingConfig, SelectionConfig, ThresholdConfig
from repro.evaluation.experiments import OnlineIdentificationExperiment
from repro.evaluation.permutations import permutation_distribution

CONFIG = FingerprintingConfig(
    selection=SelectionConfig(n_relevant=30),
    thresholds=ThresholdConfig(window_days=240),
)


def test_permutation_robustness(benchmark, paper_trace):
    exp = OnlineIdentificationExperiment(paper_trace, CONFIG)

    def compute():
        return permutation_distribution(
            exp, mode="online", bootstrap=10, n_orders=20, seed=7
        )

    dist = benchmark.pedantic(compute, rounds=1, iterations=1)

    text = (
        "Order sensitivity of online identification "
        f"(alpha={dist.alpha:.3f}, 20 presentation orders)\n"
        f"  chronological order: {dist.balanced_accuracies[0]:.1%}\n"
        f"  permutations:        mean {dist.mean:.1%}, "
        f"std {dist.std:.1%}, range "
        f"[{dist.worst:.1%}, {dist.best:.1%}]\n"
        f"  chronological within 2 std of mean: "
        f"{dist.chronological_is_typical()}"
    )
    publish("permutation_robustness", text)

    # The real-world ordering must not be an outlier, and no ordering
    # should collapse the method.
    assert dist.chronological_is_typical(z=2.5)
    assert dist.worst > 0.35
