"""Robustness experiment: identification accuracy vs fleet coverage.

The paper's quantiles are computed over the whole fleet; a real collection
tier loses machines.  This experiment replays the trace through the
streaming monitor as if only a fraction *c* of machines reported each
epoch: datacenter quantiles estimated from a subsample of ``c*n`` of ``n``
machines carry sampling noise (relative std ``0.4 * sqrt((1-c)/(c*n))``,
applied per metric so quantile ordering is preserved), and every epoch
carries an ``EpochQuality`` record with that coverage.

With ``ReliabilityConfig.coverage_floor = 0.6``, the levels at or above
the floor run on noisier estimates — measuring how gracefully accuracy
degrades — while below the floor the quality gate quarantines every epoch
and the monitor refuses to identify at all rather than guess.
"""

import numpy as np
import pytest
from conftest import publish

from repro.config import (
    FingerprintingConfig,
    ReliabilityConfig,
    SelectionConfig,
    ThresholdConfig,
)
from repro.core.streaming import (
    CrisisDetected,
    CrisisEnded,
    EpochUntrusted,
    IdentificationUpdate,
    StreamingCrisisMonitor,
)
from repro.evaluation.identification import CrisisOutcome
from repro.evaluation.results import format_percent, format_table
from repro.methods import FingerprintMethod
from repro.telemetry.collector import EpochQuality

# 30-day threshold window: this is a robustness experiment, not a
# threshold-window one, and the shorter window keeps the six full-trace
# replays fast (Figure 8 shows the method is insensitive to staleness).
CONFIG = FingerprintingConfig(
    selection=SelectionConfig(n_relevant=30),
    thresholds=ThresholdConfig(window_days=30),
)
COVERAGE_FLOOR = 0.6
LEVELS = (1.0, 0.9, 0.8, 0.7, 0.6, 0.5)


def _truth_label(trace, epoch):
    for crisis in trace.detected_crises:
        start = crisis.instance.start_epoch
        end = start + crisis.instance.duration_epochs
        if start - 2 <= epoch < end + 2:
            return crisis.label
    return None


def _replay_at_coverage(trace, relevant, coverage):
    n_machines = trace.n_machines
    n_reporting = int(round(coverage * n_machines))
    sigma = 0.4 * np.sqrt((1.0 - coverage) / (coverage * n_machines))
    rng = np.random.default_rng(29)

    monitor = StreamingCrisisMonitor(
        n_metrics=trace.n_metrics,
        relevant_metrics=relevant,
        config=CONFIG,
        reliability=ReliabilityConfig(coverage_floor=COVERAGE_FLOOR),
    )
    frac = trace.kpi_violation_fraction.max(axis=1)

    diagnosed = set()
    outcomes = []
    sequences = {}  # crisis_number -> (true_label, known, [labels])
    n_untrusted = 0
    for epoch in range(trace.n_epochs):
        q = trace.quantiles[epoch]
        if sigma > 0.0:
            noise = 1.0 + sigma * rng.standard_normal(trace.n_metrics)
            q = q * noise[:, None]
        quality = EpochQuality(epoch=epoch, n_reporting=n_reporting,
                               fleet_size=n_machines)
        for event in monitor.ingest(q, float(frac[epoch]), quality=quality):
            if isinstance(event, EpochUntrusted):
                n_untrusted += 1
            elif isinstance(event, CrisisDetected):
                truth = _truth_label(trace, event.epoch)
                if truth is not None:
                    sequences[event.crisis_number] = (
                        truth, truth in diagnosed, []
                    )
            elif isinstance(event, IdentificationUpdate):
                if event.crisis_number in sequences:
                    sequences[event.crisis_number][2].append(event.label)
            elif isinstance(event, CrisisEnded):
                entry = sequences.pop(event.crisis_number, None)
                if entry is None:
                    continue
                truth, known, labels = entry
                monitor.diagnose(event.crisis_number, truth)
                diagnosed.add(truth)
                outcomes.append(CrisisOutcome(
                    crisis_id=event.crisis_number,
                    true_label=truth,
                    known=known,
                    sequence=tuple(labels),
                ))
    return outcomes, n_untrusted


def _accuracy(outcomes, known):
    group = [o for o in outcomes if o.known == known]
    if not group:
        return None
    return sum(o.accurate for o in group) / len(group)


@pytest.fixture(scope="module")
def relevant_metrics(paper_trace):
    method = FingerprintMethod(CONFIG)
    method.fit(paper_trace, paper_trace.labeled_crises)
    return method.relevant


def test_degraded_identification(benchmark, paper_trace, relevant_metrics):
    relevant = relevant_metrics

    def compute():
        return {
            c: _replay_at_coverage(paper_trace, relevant, c) for c in LEVELS
        }

    by_level = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for c in LEVELS:
        outcomes, n_untrusted = by_level[c]
        acc_known = _accuracy(outcomes, known=True)
        acc_unknown = _accuracy(outcomes, known=False)
        rows.append([
            format_percent(c),
            str(len(outcomes)),
            str(n_untrusted),
            "-" if acc_known is None else format_percent(acc_known),
            "-" if acc_unknown is None else format_percent(acc_unknown),
        ])
    text = format_table(
        ["fleet coverage", "crises scored", "epochs gated",
         "known acc.", "unknown acc."],
        rows,
        title="Identification accuracy under degraded fleet coverage "
              f"(coverage floor {COVERAGE_FLOOR:.0%})",
    )
    publish("degraded_identification", text)

    full, _ = by_level[1.0]
    assert _accuracy(full, known=True) >= 0.5
    # At the floor the method still works, degraded.
    at_floor, gated_at_floor = by_level[0.6]
    assert gated_at_floor == 0
    assert len(at_floor) > 0
    # Below the floor every epoch is quarantined: the monitor refuses to
    # detect or identify rather than work from unusable telemetry.
    below, gated_below = by_level[0.5]
    assert below == []
    assert gated_below == paper_trace.n_epochs
