"""Experiment E11 — scaling claims (Sections 3.1-3.2).

Two properties to demonstrate:

1. the fingerprint representation's size depends on the number of metrics,
   never on the number of machines;
2. quantiles can be estimated from a stream with bounded error and
   sublinear memory (Greenwald-Khanna) or constant memory (P-square), so
   summarization keeps scaling as the fleet grows.

These are also the suite's only timed micro-benchmarks (the figure
benchmarks time one full experiment run each).
"""

import numpy as np

from conftest import publish
from repro.evaluation.results import format_table
from repro.telemetry.quantiles import empirical_quantiles, summarize_epoch
from repro.telemetry.sketches import GKQuantileSketch, P2QuantileEstimator

QUANTILES = (0.25, 0.50, 0.95)


def test_summary_size_independent_of_fleet(benchmark):
    rng = np.random.default_rng(0)
    fleets = (100, 1000, 10000)
    n_metrics = 100

    def compute():
        shapes = {}
        for n in fleets:
            samples = rng.lognormal(1.0, 0.5, (n, n_metrics))
            shapes[n] = summarize_epoch(samples, QUANTILES).shape
        return shapes

    shapes = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        [f"{n} machines", f"{n * n_metrics} raw values",
         f"{shapes[n][0] * shapes[n][1]} summary values"]
        for n in fleets
    ]
    publish(
        "scaling_summary_size",
        format_table(
            ["fleet", "raw telemetry per epoch", "fingerprint input"],
            rows,
            title="Summary size scales with metrics, not machines",
        ),
    )
    assert len(set(shapes.values())) == 1


def test_gk_sketch_accuracy_and_space(benchmark):
    rng = np.random.default_rng(1)
    stream = rng.lognormal(3.0, 0.6, 50000)
    eps = 0.01

    def compute():
        sketch = GKQuantileSketch(eps=eps)
        for x in stream:
            sketch.insert(x)
        return sketch

    sketch = benchmark.pedantic(compute, rounds=1, iterations=1)

    exact = empirical_quantiles(stream, QUANTILES)
    rows = []
    for q, truth in zip(QUANTILES, exact):
        est = sketch.query(q)
        rank_est = np.searchsorted(np.sort(stream), est, side="right")
        rank_err = abs(rank_est - int(np.ceil(q * len(stream))))
        rows.append([f"q={q}", round(truth, 2), round(est, 2),
                     f"{rank_err / len(stream):.3%}"])
    rows.append(["space", f"{len(stream)} stream",
                 f"{sketch.size} tuples",
                 f"{sketch.size / len(stream):.2%}"])
    publish(
        "scaling_gk_sketch",
        format_table(
            ["quantile", "exact", "GK estimate", "rank error / space"],
            rows,
            title=f"Greenwald-Khanna sketch (eps={eps})",
        ),
    )
    for q in QUANTILES:
        est = sketch.query(q)
        rank_est = np.searchsorted(np.sort(stream), est, side="right")
        assert abs(rank_est - np.ceil(q * len(stream))) <= \
            2 * eps * len(stream)
    assert sketch.size < len(stream) * 0.05


def test_p2_estimator_accuracy(benchmark):
    rng = np.random.default_rng(2)
    stream = rng.lognormal(3.0, 0.6, 50000)

    def compute():
        estimators = {q: P2QuantileEstimator(q) for q in QUANTILES}
        for x in stream:
            for est in estimators.values():
                est.insert(x)
        return estimators

    estimators = benchmark.pedantic(compute, rounds=1, iterations=1)
    exact = empirical_quantiles(stream, QUANTILES)
    rows = []
    for q, truth in zip(QUANTILES, exact):
        value = estimators[q].query()
        rows.append([f"q={q}", round(truth, 2), round(value, 2),
                     f"{abs(value - truth) / truth:.2%}"])
    publish(
        "scaling_p2_estimator",
        format_table(
            ["quantile", "exact", "P2 estimate", "relative error"],
            rows,
            title="P-square estimator (5 markers per quantile)",
        ),
    )
    for q, truth in zip(QUANTILES, exact):
        assert abs(estimators[q].query() - truth) / truth < 0.10
