"""Experiment E4 — Figure 6: fully online identification.

All three parameter sets (relevant metrics, hot/cold thresholds, and the
identification threshold via the Section 5.3 rules) are estimated online.
The paper reports ~80% known/unknown accuracy when bootstrapping with ten
labeled crises and ~78/74% with two, and decreasing accuracy for shorter
threshold windows (240 -> 120 -> 7 days).
"""

import pytest

from conftest import publish
from repro.config import FingerprintingConfig, SelectionConfig, ThresholdConfig
from repro.evaluation.experiments import OnlineIdentificationExperiment
from repro.evaluation.results import format_percent, format_table


def config(window_days: int) -> FingerprintingConfig:
    return FingerprintingConfig(
        selection=SelectionConfig(n_relevant=30),
        thresholds=ThresholdConfig(window_days=window_days),
    )


def run_setting(trace, window_days, bootstrap, n_runs, seed=7):
    exp = OnlineIdentificationExperiment(trace, config(window_days))
    return exp.run(
        mode="online", bootstrap=bootstrap, n_runs=n_runs, seed=seed
    )


def test_fig6_online(benchmark, paper_trace):
    settings = [
        ("30 metrics, 240 d, bootstrap 10", 240, 10, 41),
        ("30 metrics, 240 d, bootstrap 2", 240, 2, 21),
        ("30 metrics, 120 d, bootstrap 10", 120, 10, 21),
        ("30 metrics, 7 d, bootstrap 10", 7, 10, 21),
    ]

    def compute():
        return {
            name: run_setting(paper_trace, days, boot, runs)
            for name, days, boot, runs in settings
        }

    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    ops = {}
    for name, curves in results.items():
        op = curves.operating_point()
        ops[name] = op
        rows.append(
            [
                name,
                format_percent(op["known_accuracy"]),
                format_percent(op["unknown_accuracy"]),
                f"{op['mean_time_minutes']:.0f} min",
                round(op["alpha"], 3),
            ]
        )
    text = format_table(
        ["setting", "known acc.", "unknown acc.", "time to id", "alpha*"],
        rows,
        title="Figure 6 — fully online identification",
    )
    publish("fig6_online", text)

    def balanced(name):
        return (ops[name]["known_accuracy"]
                + ops[name]["unknown_accuracy"]) / 2

    b240_10 = balanced("30 metrics, 240 d, bootstrap 10")
    b240_2 = balanced("30 metrics, 240 d, bootstrap 2")
    b7_10 = balanced("30 metrics, 7 d, bootstrap 10")

    # Shape criteria: online works (~80% in the paper), more bootstrap
    # crises help (or at least do not hurt much), and a 7-day window is
    # worse than 240 days.
    assert b240_10 > 0.6
    assert b240_10 >= b240_2 - 0.05
    assert b240_10 >= b7_10 - 0.02
    # The paper's operators consider identification useful even 30-60 min
    # into a crisis; online identification typically lands by the second
    # or third 15-minute epoch.
    assert ops["30 metrics, 240 d, bootstrap 10"]["mean_time_minutes"] <= 45
