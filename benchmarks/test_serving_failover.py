"""Replicated serving: throughput under shipping, lag, promotion time.

The replication PR's headline numbers, measured against real ``repro
serve`` subprocesses (a primary and a journal-tailing hot standby) over
loopback TCP:

* replicated ingestion throughput — acked reports/second through the
  journal-before-ack path *while* the standby tails the stream (the
  cost of shipping rides the same wire);
* steady-state replication lag — wall clock for the standby to drain to
  the primary's journal cursor once the load stops;
* promotion time — SIGKILL the primary mid-epoch, let the failover
  controller promote the standby, and measure wall clock from the kill
  to the survivor acking writes at a fresh fencing epoch.

Set ``SERVING_FAILOVER_QUICK=1`` (the CI smoke job and the perf wall
do) for a reduced run with the same phases and relaxed floors.
"""

import os
import signal
import subprocess
import sys
import time

from repro.serving.failover import FailoverController
from repro.serving.loadgen import ServingClient, run_load

from conftest import publish, publish_json

QUICK = os.environ.get("SERVING_FAILOVER_QUICK") == "1"
N_TENANTS = 1 if QUICK else 2
N_MACHINES = 10 if QUICK else 30
N_EPOCHS = 8 if QUICK else 24
N_METRICS = 6
CRISIS_EPOCHS = (5, 6) if QUICK else (16, 17, 18)
THROUGHPUT_FLOOR = 80.0 if QUICK else 150.0  # acked reports/s
LAG_CEILING_S = 30.0
PROMOTION_CEILING_S = 30.0

SERVE_ARGS = [
    "--metrics", str(N_METRICS), "--relevant", "3",
    "--epoch-minutes", "144", "--window-days", "2",
    "--refresh-epochs", "5", "--min-history-epochs", "8",
    "--checkpoint-every", "1000", "--seed", "7",
    "--heartbeat-interval", "0.2", "--repl-ack-timeout", "5.0",
]
LOAD = dict(
    seed=42, n_tenants=N_TENANTS, n_machines=N_MACHINES,
    n_epochs=N_EPOCHS, n_metrics=N_METRICS, crisis_epochs=CRISIS_EPOCHS,
)
LOCAL = "127.0.0.1"


def start_node(root, standby_of=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ["src", env.get("PYTHONPATH", "")] if p
    )
    args = [
        sys.executable, "-m", "repro", "serve", "--root", str(root)
    ] + SERVE_ARGS
    if standby_of is not None:
        args += ["--standby-of", "%s:%d" % standby_of]
    proc = subprocess.Popen(
        args, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        env=env, text=True,
    )
    line = proc.stdout.readline().strip()
    tag, host, port = line.split()
    assert tag == "SERVING"
    return proc, host, int(port)


def applied_totals(host, port):
    with ServingClient(host, port) as client:
        stats = client.request({"op": "stats"})
    return {
        tenant: t.get("applied_seq") or 0
        for tenant, t in stats.get("tenants", {}).items()
    }


def test_serving_failover(tmp_path):
    # --- Phase 1: throughput with a live standby tailing the WAL. -----
    prim, host, port = start_node(tmp_path / "prim")
    stby, shost, sport = start_node(
        tmp_path / "stby", standby_of=(LOCAL, port)
    )
    t0 = time.perf_counter()
    result = run_load(host, port, **LOAD)
    ingest_wall_s = time.perf_counter() - t0
    assert result.rejected == 0
    throughput = result.acked / ingest_wall_s

    # --- Phase 2: steady-state lag — drain to the primary's cursor. ---
    t0 = time.perf_counter()
    target = applied_totals(host, port)
    deadline = time.time() + LAG_CEILING_S
    while time.time() < deadline:
        if applied_totals(shost, sport) == target:
            break
        time.sleep(0.05)
    lag_s = time.perf_counter() - t0
    converged = applied_totals(shost, sport) == target
    assert converged, "standby never drained to the primary's cursor"

    # --- Phase 3: SIGKILL the primary, promote, write again. ----------
    controller = FailoverController(
        [(host, port), (shost, sport)], grace_probes=1, probe_timeout=2.0
    )
    os.kill(prim.pid, signal.SIGKILL)
    prim.wait()
    t0 = time.perf_counter()
    outcome = controller.step()
    assert outcome["action"] == "promoted", outcome
    assert outcome["endpoint"] == (shost, sport)
    post = run_load(
        shost, sport, start_epoch=N_EPOCHS,
        **{**LOAD, "n_epochs": N_EPOCHS + 2},
    )
    promotion_s = time.perf_counter() - t0
    assert post.rejected == 0
    epoch = int(outcome["fence"])
    assert epoch >= 1

    stby.send_signal(signal.SIGTERM)
    stby.wait(timeout=30)

    lines = [
        "Replicated serving: journal shipping, lag, fenced failover",
        "(%d tenants x %d machines x %d epochs, %d metrics, "
        "hot standby tailing)" % (N_TENANTS, N_MACHINES, N_EPOCHS,
                                  N_METRICS),
        "",
        "%-44s %10.0f reports/s" % (
            "acked throughput while replicating", throughput),
        "%-44s %10.2f ms" % ("p99 request latency", result.p99_latency_ms),
        "%-44s %10d" % ("acked reports (journaled + shipped)",
                        result.acked),
        "",
        "%-44s %10.2f s" % (
            "steady-state replication lag (drain)", lag_s),
        "%-44s %10.2f s" % (
            "SIGKILL -> promoted -> writes acked", promotion_s),
        "%-44s %10d" % ("fencing epoch after promotion", epoch),
        "",
        "floors: >=%.0f reports/s, lag <= %.0f s, promotion <= %.0f s"
        % (THROUGHPUT_FLOOR, LAG_CEILING_S, PROMOTION_CEILING_S),
        "mode = %s" % ("quick (CI smoke)" if QUICK else "full"),
    ]
    publish("serving_failover", "\n".join(lines))
    publish_json("serving_replication", {
        "n_tenants": N_TENANTS,
        "n_machines": N_MACHINES,
        "n_epochs": N_EPOCHS,
        "n_metrics": N_METRICS,
        "acked_reports": result.acked,
        "replicated_reports_per_s": throughput,
        "p99_latency_ms": result.p99_latency_ms,
        "steady_state_lag_s": lag_s,
        "promotion_s": promotion_s,
        "fence_epoch": epoch,
        "throughput_floor": THROUGHPUT_FLOOR,
        "lag_ceiling_s": LAG_CEILING_S,
        "promotion_ceiling_s": PROMOTION_CEILING_S,
        "mode": "quick" if QUICK else "full",
    })

    assert throughput >= THROUGHPUT_FLOOR, (
        f"only {throughput:.0f} acked reports/s while replicating"
    )
    assert promotion_s <= PROMOTION_CEILING_S, (
        f"promotion took {promotion_s:.1f}s"
    )
