"""Durable ingestion front door: throughput, latency, and recovery time.

The serving PR's headline numbers, measured against a real ``repro
serve`` subprocess over loopback TCP:

* sustained ingestion throughput in acked reports/second through the
  full journal-before-ack path (every ack means an fsynced journal
  record);
* the same workload as ``report_batch`` frames — one journal record
  and one fsync per fleet batch instead of per machine;
* p99 request latency under the pipelined load generator;
* crash-recovery time — SIGKILL the server mid-run, restart it on the
  same state directory, and measure wall clock from process launch to
  the first successful ``state`` response (checkpoint restore + journal
  replay + socket up).

Set ``SERVING_INGEST_QUICK=1`` (the CI smoke job does) for a reduced
run with the same phases and relaxed floors.
"""

import os
import signal
import subprocess
import sys
import time

from repro.serving.loadgen import ServingClient, run_load

from conftest import publish, publish_json

QUICK = os.environ.get("SERVING_INGEST_QUICK") == "1"
N_TENANTS = 1 if QUICK else 2
N_MACHINES = 10 if QUICK else 30
N_EPOCHS = 8 if QUICK else 24
N_METRICS = 6
CRISIS_EPOCHS = (5, 6) if QUICK else (16, 17, 18)
KILL_EPOCH = 5 if QUICK else 16
THROUGHPUT_FLOOR = 100.0 if QUICK else 200.0  # acked reports/s
RECOVERY_CEILING_S = 30.0

SERVE_ARGS = [
    "--metrics", str(N_METRICS), "--relevant", "3",
    "--epoch-minutes", "144", "--window-days", "2",
    "--refresh-epochs", "5", "--min-history-epochs", "8",
    "--checkpoint-every", "4", "--seed", "7",
]
LOAD = dict(
    seed=42, n_tenants=N_TENANTS, n_machines=N_MACHINES,
    n_epochs=N_EPOCHS, n_metrics=N_METRICS, crisis_epochs=CRISIS_EPOCHS,
)


def start_server(root):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ["src", env.get("PYTHONPATH", "")] if p
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--root", str(root)]
        + SERVE_ARGS,
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        env=env, text=True,
    )
    line = proc.stdout.readline().strip()
    tag, host, port = line.split()
    assert tag == "SERVING"
    return proc, host, int(port)


def test_serving_ingest(tmp_path):
    # --- Phase 1: sustained ingestion through the durable path. -------
    proc, host, port = start_server(tmp_path)
    t0 = time.perf_counter()
    result = run_load(host, port, **LOAD)
    ingest_wall_s = time.perf_counter() - t0
    assert result.rejected == 0
    throughput = result.acked / ingest_wall_s
    p99_ms = result.p99_latency_ms
    mean_ms = result.mean_latency_ms
    n_events = len(result.events)

    # --- Phase 1b: identical workload as report_batch frames. ---------
    # Fresh state directory so both phases ingest the same epochs; the
    # batched run journals one record per fleet frame instead of one
    # per machine report.
    proc_b, host_b, port_b = start_server(tmp_path / "batched")
    t0 = time.perf_counter()
    result_b = run_load(host_b, port_b, batch_size=N_MACHINES, **LOAD)
    batched_wall_s = time.perf_counter() - t0
    assert result_b.rejected == 0
    assert result_b.acked == result.acked  # n-field covers every report
    batched_throughput = result_b.acked / batched_wall_s
    proc_b.send_signal(signal.SIGTERM)
    proc_b.wait(timeout=30)

    # --- Phase 2: SIGKILL mid-epoch, measure recovery wall clock. -----
    run_load(host, port, start_epoch=N_EPOCHS,
             **{**LOAD, "n_epochs": N_EPOCHS + KILL_EPOCH})
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait()

    t0 = time.perf_counter()
    proc2, host2, port2 = start_server(tmp_path)
    with ServingClient(host2, port2) as client:
        state = client.request({"op": "state", "tenant": "tenant-0"})
    recovery_s = time.perf_counter() - t0
    assert state["state"]["next_epoch"] == N_EPOCHS + KILL_EPOCH
    proc2.send_signal(signal.SIGTERM)
    proc2.wait(timeout=30)

    lines = [
        "Durable serving ingest: journal-before-ack over loopback TCP",
        "(%d tenants x %d machines x %d epochs, %d metrics, "
        "pipelined window)" % (N_TENANTS, N_MACHINES, N_EPOCHS, N_METRICS),
        "",
        "%-44s %10.0f reports/s" % ("sustained acked throughput",
                                    throughput),
        "%-44s %10.0f reports/s" % (
            "batched (report_batch, 1 fsync/fleet frame)",
            batched_throughput),
        "%-44s %10.1f x" % (
            "batching speedup", batched_throughput / throughput),
        "%-44s %10.2f ms" % ("p99 request latency", p99_ms),
        "%-44s %10.2f ms" % ("mean request latency", mean_ms),
        "%-44s %10d" % ("acked reports (each one fsynced)", result.acked),
        "%-44s %10d" % ("crisis events streamed back", n_events),
        "",
        "%-44s %10.2f s" % (
            "recovery after SIGKILL mid-epoch", recovery_s),
        "(launch -> checkpoint restore -> journal replay -> first state "
        "response)",
        "",
        "floors: >=%.0f reports/s, recovery <= %.0f s"
        % (THROUGHPUT_FLOOR, RECOVERY_CEILING_S),
        "mode = %s" % ("quick (CI smoke)" if QUICK else "full"),
    ]
    publish("serving_ingest", "\n".join(lines))
    publish_json("serving", {
        "n_tenants": N_TENANTS,
        "n_machines": N_MACHINES,
        "n_epochs": N_EPOCHS,
        "n_metrics": N_METRICS,
        "acked_reports": result.acked,
        "reports_per_s": throughput,
        "batched_reports_per_s": batched_throughput,
        "p99_latency_ms": p99_ms,
        "mean_latency_ms": mean_ms,
        "events_streamed": n_events,
        "recovery_s": recovery_s,
        "throughput_floor": THROUGHPUT_FLOOR,
        "recovery_ceiling_s": RECOVERY_CEILING_S,
        "mode": "quick" if QUICK else "full",
    })

    assert throughput >= THROUGHPUT_FLOOR, (
        f"only {throughput:.0f} acked reports/s through the durable path"
    )
    assert recovery_s <= RECOVERY_CEILING_S, (
        f"recovery took {recovery_s:.1f}s"
    )
