"""Supplementary analysis: which crisis types get confused.

Not a paper figure, but the diagnostic operators ask for first.  The
structurally-similar pairs in the simulated datacenter (A/D both saturate
the front end, B/E the post-processing stage, F/G the heavy stage) should
dominate whatever misidentifications remain — confusions between
*unrelated* types would indicate the representation is broken.
"""

from conftest import publish
from repro.evaluation.confusion import confusion_table, top_confusions
from repro.evaluation.experiments import OfflineIdentificationExperiment

#: Type pairs that share a saturated stage (legitimate confusions).
RELATED = {
    frozenset("AD"), frozenset("BE"), frozenset("FG"), frozenset("CG"),
    frozenset("CF"), frozenset("IJ"),
}


def test_confusion_structure(benchmark, fingerprint_method, labeled_crises):
    exp = OfflineIdentificationExperiment(
        fingerprint_method, labeled_crises, n_runs=5, seed=7
    )

    def compute():
        curves = exp.run()
        alpha = curves.operating_point()["alpha"]
        return exp.outcomes_at(alpha)

    outcomes = benchmark.pedantic(compute, rounds=1, iterations=1)

    text = "Confusion matrix at the operating point\n"
    text += confusion_table(outcomes)
    top = top_confusions(outcomes, k=6)
    if top:
        text += "\n\ntop misidentifications:\n"
        for true, emitted, n in top:
            related = frozenset(true + emitted) in RELATED
            text += (
                f"  {true} identified as {emitted}: {n}x"
                f" ({'related types' if related else 'UNRELATED'})\n"
            )
    publish("confusion_analysis", text)

    wrong_related = sum(
        n for true, emitted, n in top
        if frozenset(true + emitted) in RELATED
    )
    wrong_unrelated = sum(
        n for true, emitted, n in top
        if frozenset(true + emitted) not in RELATED
    )
    # Structurally related pairs should account for at least half of the
    # (few) misidentifications.
    if wrong_related + wrong_unrelated > 0:
        assert wrong_related >= wrong_unrelated
