"""Shared fixtures for the benchmark suite.

One paper-scale trace is generated per session and shared by every
benchmark: 40 machines (the fingerprint representation is independent of
machine count), ~105 metrics, 240 days of history before a 120-day labeled
period — enough for the paper's 240-day threshold window — with 20
undiagnosed bootstrap crises and the 19 labeled crises of Table 1.

Each benchmark prints the table/figure it regenerates and also writes it to
``benchmarks/results/`` so EXPERIMENTS.md can be checked against a run.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.datacenter import DatacenterSimulator, SimulationConfig
from repro.methods import (
    AllMetricsFingerprintMethod,
    FingerprintMethod,
    KPIMethod,
    SignaturesMethod,
)

PAPER_SIM = SimulationConfig(
    n_machines=40,
    seed=7,
    warmup_days=30,
    bootstrap_days=210,
    labeled_days=120,
    n_bootstrap_crises=20,
    chunk_days=5,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def paper_trace():
    return DatacenterSimulator(PAPER_SIM).run()


@pytest.fixture(scope="session")
def labeled_crises(paper_trace):
    crises = paper_trace.labeled_crises
    assert len(crises) >= 17, "too many labeled crises went undetected"
    return crises


@pytest.fixture(scope="session")
def fitted_methods(paper_trace, labeled_crises):
    """All four comparison methods, fitted offline (perfect knowledge)."""
    methods = [
        FingerprintMethod(),
        SignaturesMethod(),
        AllMetricsFingerprintMethod(),
        KPIMethod(),
    ]
    for m in methods:
        m.fit(paper_trace, labeled_crises)
    return methods


@pytest.fixture(scope="session")
def fingerprint_method(fitted_methods):
    return fitted_methods[0]


def publish(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def publish_json(name: str, payload: dict) -> None:
    """Persist machine-readable results as ``BENCH_<name>.json``.

    The JSON mirror of :func:`publish` — one flat-ish dict per benchmark
    so dashboards and regression tooling can diff runs without parsing
    the human tables.
    """
    import json

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
