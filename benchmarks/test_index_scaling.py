"""Scaling of the fingerprint index vs. the historical linear scan.

Builds libraries of 1k / 10k / 100k synthetic crisis fingerprints
(clustered like the simulator's crisis catalog: a small set of crisis
types blurred by per-instance noise) and measures per-query k-NN latency
for the Python-loop scan the index replaced and for each backend, plus
LSH recall@10 against exact truth.  The acceptance floor of the index
PR is asserted directly: at the largest size the exact backend must be
>= 10x faster than the loop scan, and LSH recall must stay >= 0.9.

Set ``INDEX_SCALING_QUICK=1`` (the CI smoke job does) to run a reduced
1k/5k sweep with the same assertions.
"""

import os
import time

import numpy as np
import pytest

from repro.index import BruteForceIndex, KDTreeIndex, LSHIndex

from conftest import publish, publish_json

QUICK = os.environ.get("INDEX_SCALING_QUICK") == "1"
SIZES = [1000, 5000] if QUICK else [1000, 10_000, 100_000]
DIM = 90  # 30 relevant metrics x 3 quantiles
K = 10
N_QUERIES = 20 if QUICK else 50
N_SCAN_QUERIES = 5  # the loop scan is too slow to time on all queries
N_TYPES = 19  # crisis types in the paper's Table 1
SPEEDUP_FLOOR = 10.0
RECALL_FLOOR = 0.9


def make_cloud(n, rng):
    centers = rng.uniform(-1.0, 1.0, size=(N_TYPES, DIM))
    points = centers[rng.integers(0, N_TYPES, size=n)] + rng.normal(
        scale=0.05, size=(n, DIM)
    )
    queries = centers[rng.integers(0, N_TYPES, size=N_QUERIES)] + rng.normal(
        scale=0.05, size=(N_QUERIES, DIM)
    )
    return points, queries


def loop_scan(query, points, k):
    """The pre-index identification scan: one Python-level norm per vector."""
    return sorted(
        (float(np.linalg.norm(query - p)), i) for i, p in enumerate(points)
    )[:k]


def per_query_ms(fn, queries):
    start = time.perf_counter()
    for q in queries:
        fn(q)
    return (time.perf_counter() - start) / len(queries) * 1e3


def test_index_scaling():
    rng = np.random.default_rng(11)
    lines = [
        "Fingerprint index scaling: per-query k-NN latency (k=%d, dim=%d)"
        % (K, DIM),
        "",
        "%8s %12s %10s %10s %10s %9s %9s"
        % ("n", "scan ms/q", "brute", "kdtree", "lsh", "speedup", "recall@10"),
    ]
    largest_speedup = None
    largest_recall = None
    rows = []
    for n in SIZES:
        points, queries = make_cloud(n, rng)

        scan_ms = per_query_ms(
            lambda q: loop_scan(q, points, K), queries[:N_SCAN_QUERIES]
        )

        brute = BruteForceIndex(DIM)
        brute.add_batch(points)
        brute.query(queries[0], k=K)  # warm
        brute_ms = per_query_ms(lambda q: brute.query(q, k=K), queries)

        kdtree = KDTreeIndex(DIM)
        kdtree.add_batch(points)
        kdtree.query(queries[0], k=K)  # triggers the build
        kd_ms = per_query_ms(lambda q: kdtree.query(q, k=K), queries)

        lsh = LSHIndex(DIM, seed=0)
        lsh.add_batch(points)
        lsh.query(queries[0], k=K)  # freezes width, hashes
        lsh_ms = per_query_ms(lambda q: lsh.query(q, k=K), queries)

        truth = [{h.id for h in brute.query(q, k=K)} for q in queries]
        got = [{h.id for h in lsh.query(q, k=K)} for q in queries]
        recall = float(
            np.mean([len(t & g) / K for t, g in zip(truth, got)])
        )
        best_ms = min(brute_ms, kd_ms, lsh_ms)
        speedup = scan_ms / best_ms
        largest_speedup, largest_recall = speedup, recall
        lines.append(
            "%8d %12.3f %10.3f %10.3f %10.3f %8.1fx %9.3f"
            % (n, scan_ms, brute_ms, kd_ms, lsh_ms, speedup, recall)
        )
        rows.append({
            "n": n, "scan_ms_per_q": scan_ms, "brute_ms_per_q": brute_ms,
            "kdtree_ms_per_q": kd_ms, "lsh_ms_per_q": lsh_ms,
            "speedup": speedup, "recall_at_10": recall,
        })

    lines += [
        "",
        "scan = per-vector Python-loop norm (the replaced identification "
        "path); ms/q columns are per-query.",
        "speedup = scan vs. fastest backend at that size; floors asserted "
        "at the largest size: >=%.0fx speedup, >=%.2f LSH recall@10."
        % (SPEEDUP_FLOOR, RECALL_FLOOR),
        "mode = %s" % ("quick (CI smoke)" if QUICK else "full"),
    ]
    publish("index_scaling", "\n".join(lines))
    publish_json("index_scaling", {
        "k": K, "dim": DIM, "sizes": rows,
        "speedup_floor": SPEEDUP_FLOOR, "recall_floor": RECALL_FLOOR,
        "mode": "quick" if QUICK else "full",
    })

    assert largest_speedup >= SPEEDUP_FLOOR, (
        f"only {largest_speedup:.1f}x over the loop scan at n={SIZES[-1]}"
    )
    assert largest_recall >= RECALL_FLOOR, (
        f"LSH recall@10 {largest_recall:.3f} at n={SIZES[-1]}"
    )
