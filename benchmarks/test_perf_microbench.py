"""Performance micro-benchmarks of the hot paths.

The figure benchmarks above each time one full experiment; these measure
the per-operation costs that matter for a live deployment: summarizing an
epoch, discretizing, building a crisis fingerprint, and matching it
against a library.  All are far below the 15-minute epoch budget.
"""

import numpy as np
import pytest

from repro.core.identification import Identifier
from repro.core.summary import summary_vectors
from repro.core.thresholds import QuantileThresholds
from repro.telemetry.quantiles import summarize_epoch
from repro.telemetry.sketches import GKQuantileSketch

N_MACHINES = 500
N_METRICS = 120
QUANTILES = (0.25, 0.50, 0.95)


@pytest.fixture(scope="module")
def epoch_samples():
    rng = np.random.default_rng(0)
    return rng.lognormal(1.0, 0.5, (N_MACHINES, N_METRICS))


@pytest.fixture(scope="module")
def thresholds():
    rng = np.random.default_rng(1)
    base = rng.lognormal(1.0, 0.5, (N_METRICS, len(QUANTILES)))
    return QuantileThresholds(cold=base * 0.5, hot=base * 2.0)


def test_perf_summarize_epoch(benchmark, epoch_samples):
    """Datacenter-wide quantiles for one epoch (500 machines x 120 metrics)."""
    result = benchmark(summarize_epoch, epoch_samples, QUANTILES)
    assert result.shape == (N_METRICS, len(QUANTILES))


def test_perf_summary_vectors(benchmark, epoch_samples, thresholds):
    """Hot/cold discretization of one epoch's quantile matrix."""
    q = summarize_epoch(epoch_samples, QUANTILES)
    result = benchmark(summary_vectors, q, thresholds)
    assert result.shape == (N_METRICS, len(QUANTILES))


def test_perf_crisis_fingerprint_window(benchmark, epoch_samples,
                                        thresholds):
    """Averaging a 7-epoch summary window into a crisis fingerprint."""
    rng = np.random.default_rng(2)
    window = rng.lognormal(1.0, 0.5, (7, N_METRICS, len(QUANTILES)))
    relevant = np.arange(30)

    def build():
        summaries = summary_vectors(window, thresholds)
        sub = summaries[:, relevant, :].astype(float)
        return sub.reshape(sub.shape[0], -1).mean(axis=0)

    vector = benchmark(build)
    assert vector.shape == (30 * len(QUANTILES),)


def test_perf_identification(benchmark):
    """Nearest-neighbor match against a 100-crisis library."""
    rng = np.random.default_rng(3)
    library = [(rng.uniform(-1, 1, 90), "B") for _ in range(100)]
    vector = rng.uniform(-1, 1, 90)
    identifier = Identifier(threshold=2.0)
    result = benchmark(identifier.identify, vector, library)
    assert result.nearest_label == "B"


def test_perf_gk_insert_throughput(benchmark):
    """Greenwald-Khanna insertion rate (per 10k-sample batch)."""
    rng = np.random.default_rng(4)
    values = rng.lognormal(0.0, 1.0, 10_000)

    def run():
        sketch = GKQuantileSketch(eps=0.01)
        for v in values:
            sketch.insert(v)
        return sketch

    sketch = benchmark(run)
    assert len(sketch) == len(values)
