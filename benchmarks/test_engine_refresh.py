"""Steady-state threshold-refresh cost: incremental engine vs full recompute.

The engine PR's acceptance floor, asserted directly: at the paper's
240-day window, the :class:`~repro.core.engine.RollingThresholdTracker`'s
daily refresh (one day of appends plus a percentile query) must be at
least 5x faster than the full trailing-window percentile recompute it
replaced — while returning bit-identical thresholds, which is also
asserted per refresh.  The end-to-end
:class:`~repro.evaluation.experiments.OnlineIdentificationExperiment`
wall-clock is reported alongside; its threshold cache rides the same
engine.

Set ``ENGINE_REFRESH_QUICK=1`` (the CI smoke job does) for a reduced
30-day/40-metric sweep with the same parity assertions and a relaxed
speedup floor.
"""

import os
import time

import numpy as np

from repro.config import (
    FingerprintingConfig,
    SelectionConfig,
    ThresholdConfig,
)
from repro.core.engine import RollingThresholdTracker
from repro.core.thresholds import percentile_thresholds
from repro.datacenter import DatacenterSimulator
from repro.datacenter.scenarios import tiny
from repro.evaluation.experiments import OnlineIdentificationExperiment

from conftest import publish, publish_json

QUICK = os.environ.get("ENGINE_REFRESH_QUICK") == "1"
WINDOW_DAYS = 120 if QUICK else 240
N_METRICS = 40 if QUICK else 100
N_QUANTILES = 3
EPOCHS_PER_DAY = 96
N_REFRESH = 4 if QUICK else 10
ANOMALOUS_RATE = 0.05
SPEEDUP_FLOOR = 3.0 if QUICK else 5.0


def test_engine_refresh(request):
    rng = np.random.default_rng(5)
    W = WINDOW_DAYS * EPOCHS_PER_DAY
    n_epochs = W + N_REFRESH * EPOCHS_PER_DAY
    values = rng.lognormal(0.0, 0.25, (n_epochs, N_METRICS, N_QUANTILES))
    anomalous = rng.random(n_epochs) < ANOMALOUS_RATE

    tracker = RollingThresholdTracker(N_METRICS, N_QUANTILES, W)
    t0 = time.perf_counter()
    tracker.prime(values[:W], anomalous[:W])
    prime_s = time.perf_counter() - t0

    inc_times, full_times = [], []
    for r in range(N_REFRESH):
        lo = W + r * EPOCHS_PER_DAY
        hi = lo + EPOCHS_PER_DAY
        t0 = time.perf_counter()
        for e in range(lo, hi):
            tracker.append(values[e], bool(anomalous[e]))
        inc_thr = tracker.thresholds()
        inc_times.append(time.perf_counter() - t0)

        # The replaced path: slice the trailing crisis-free window out of
        # the store and recompute both percentiles from scratch.
        t0 = time.perf_counter()
        start = hi - W
        window = values[start:hi][~anomalous[start:hi]]
        full_thr = percentile_thresholds(window)
        full_times.append(time.perf_counter() - t0)

        np.testing.assert_array_equal(inc_thr.cold, full_thr.cold)
        np.testing.assert_array_equal(inc_thr.hot, full_thr.hot)

    inc_ms = float(np.mean(inc_times)) * 1e3
    full_ms = float(np.mean(full_times)) * 1e3
    speedup = full_ms / inc_ms

    # End-to-end harness wall-clock, cold caches: parameter precompute
    # (selections + thresholds + fingerprints) and one online run.
    if QUICK:
        trace = DatacenterSimulator(tiny(seed=1234)).run()
        config = FingerprintingConfig(
            selection=SelectionConfig(n_relevant=20),
            thresholds=ThresholdConfig(window_days=30),
        )
        n_runs = 2
    else:
        trace = request.getfixturevalue("paper_trace")
        config = FingerprintingConfig(
            selection=SelectionConfig(n_relevant=30),
            thresholds=ThresholdConfig(window_days=240),
        )
        n_runs = 3
    for key in ("_selection_cache", "_threshold_cache", "_threshold_engines"):
        trace.__dict__.pop(key, None)
    exp = OnlineIdentificationExperiment(trace, config)
    t0 = time.perf_counter()
    exp.precompute()
    precompute_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    exp.run(mode="online", bootstrap=2, n_runs=n_runs, seed=0)
    run_s = time.perf_counter() - t0

    lines = [
        "Epoch-state engine: steady-state threshold refresh at the "
        "%d-day window" % WINDOW_DAYS,
        "(%d metrics x %d quantiles, %d epochs/day, %.0f%% anomalous)"
        % (N_METRICS, N_QUANTILES, EPOCHS_PER_DAY, ANOMALOUS_RATE * 100),
        "",
        "%-44s %10.2f ms" % (
            "incremental refresh (1 day appends + query)", inc_ms),
        "%-44s %10.2f ms" % ("full window recompute (replaced path)",
                             full_ms),
        "%-44s %9.1fx" % ("speedup (floor %.0fx)" % SPEEDUP_FLOOR, speedup),
        "%-44s %10.2f s" % ("tracker prime (bulk load of %d epochs)" % W,
                            prime_s),
        "",
        "Thresholds asserted bit-identical between the two paths at "
        "every refresh.",
        "",
        "End-to-end OnlineIdentificationExperiment (cold caches, "
        "%d crises):" % len(trace.labeled_crises),
        "%-44s %10.2f s" % ("parameter precompute", precompute_s),
        "%-44s %10.2f s" % ("online run (%d permutations)" % n_runs, run_s),
        "",
        "mode = %s" % ("quick (CI smoke)" if QUICK else "full"),
    ]
    publish("engine_refresh", "\n".join(lines))
    publish_json("engine_refresh", {
        "window_days": WINDOW_DAYS,
        "n_metrics": N_METRICS,
        "epochs_per_day": EPOCHS_PER_DAY,
        "incremental_refresh_ms": inc_ms,
        "full_recompute_ms": full_ms,
        "speedup": speedup,
        "speedup_floor": SPEEDUP_FLOOR,
        "prime_s": prime_s,
        "precompute_s": precompute_s,
        "online_run_s": run_s,
        "mode": "quick" if QUICK else "full",
    })

    assert speedup >= SPEEDUP_FLOOR, (
        f"incremental refresh only {speedup:.1f}x faster than the full "
        f"recompute at the {WINDOW_DAYS}-day window"
    )
