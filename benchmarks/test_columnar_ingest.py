"""Columnar epoch-block ingestion vs. the per-machine list path.

The columnar PR's headline: one preallocated ``EpochBlock`` per
aggregator, batch folds, and a single NaN-masked numpy pass at close —
against the legacy path (``columnar=False``) that appends one row per
report and loops per quantile at close.  Both paths produce bit-identical
summaries (asserted here and property-tested in
``tests/test_columnar_parity.py``); the benchmark measures what the
refactor buys:

* sustained ingestion throughput (reports/s through submit + close);
* epoch-close latency, the number that gates how fast a crisis shows
  up after the epoch boundary.

Sweep: 10k and 100k machines x 16 metrics, 2% of samples missing
(NaN), reports arriving in 1000-machine batches on the columnar path
(the ``report_batch`` wire shape) and one-by-one on the legacy path
(its API).  The acceptance floor from the PR is asserted directly:
>= 5x faster epoch close at 100k machines.

Set ``COLUMNAR_INGEST_QUICK=1`` (the CI smoke job does) for a reduced
10k-machine sweep with a 2x floor.
"""

import os
import time

import numpy as np
from numpy.testing import assert_array_equal

from repro.telemetry.collector import EpochAggregator

from conftest import publish, publish_json

QUICK = os.environ.get("COLUMNAR_INGEST_QUICK") == "1"
SIZES = (10_000,) if QUICK else (10_000, 100_000)
N_METRICS = 16
N_EPOCHS = 2 if QUICK else 3
BATCH = 1000  # report_batch frame size on the columnar path
GAP_P = 0.02
CLOSE_SPEEDUP_FLOOR = 2.0 if QUICK else 5.0
QUANTILES = (0.25, 0.50, 0.95)


def make_epoch(n_machines, seed):
    rng = np.random.default_rng(seed)
    matrix = rng.normal(10.0, 2.0, size=(n_machines, N_METRICS))
    matrix[rng.random(matrix.shape) < GAP_P] = np.nan
    return matrix


def build(n_machines, columnar):
    return EpochAggregator(
        [f"metric-{j}" for j in range(N_METRICS)],
        quantiles=QUANTILES,
        fleet_size=n_machines,
        columnar=columnar,
    )


def run_epochs(agg, matrices, batched):
    """Feed + close each epoch; returns (submit_s, close_s, summaries)."""
    submit_s = close_s = 0.0
    summaries = []
    for matrix in matrices:
        t0 = time.perf_counter()
        if batched:
            for lo in range(0, matrix.shape[0], BATCH):
                agg.submit_batch(matrix[lo : lo + BATCH])
        else:
            for row in matrix:
                agg.submit(row)
        t1 = time.perf_counter()
        summaries.append(agg.close_epoch())
        close_s += time.perf_counter() - t1
        submit_s += t1 - t0
    return submit_s, close_s, summaries


def test_columnar_ingest():
    rows = []
    for n_machines in SIZES:
        matrices = [
            make_epoch(n_machines, seed=(17, n_machines, e))
            for e in range(N_EPOCHS)
        ]
        legacy_submit, legacy_close, legacy = run_epochs(
            build(n_machines, columnar=False), matrices, batched=False
        )
        block_submit, block_close, block = run_epochs(
            build(n_machines, columnar=True), matrices, batched=True
        )
        # The speedup is only claimable because the answers are the
        # same bits.
        for a, b in zip(legacy, block):
            assert_array_equal(b.quantiles, a.quantiles)
            assert b.quality == a.quality
        n_reports = n_machines * N_EPOCHS
        rows.append({
            "n_machines": n_machines,
            "legacy_reports_per_s": n_reports / (legacy_submit + legacy_close),
            "block_reports_per_s": n_reports / (block_submit + block_close),
            "legacy_close_ms": 1000.0 * legacy_close / N_EPOCHS,
            "block_close_ms": 1000.0 * block_close / N_EPOCHS,
            "close_speedup": legacy_close / block_close,
            "ingest_speedup": (
                (legacy_submit + legacy_close)
                / (block_submit + block_close)
            ),
        })

    header = (
        "%10s %14s %14s %12s %12s %9s %9s"
        % ("machines", "legacy rep/s", "block rep/s",
           "legacy close", "block close", "close x", "ingest x")
    )
    lines = [
        "Columnar epoch-block ingestion vs. per-machine lists "
        f"({N_METRICS} metrics, {N_EPOCHS} epochs, "
        f"{GAP_P:.0%} samples missing)",
        "",
        header,
        "-" * len(header),
    ]
    for r in rows:
        lines.append(
            "%10d %14.0f %14.0f %10.1fms %10.1fms %8.1fx %8.1fx"
            % (r["n_machines"], r["legacy_reports_per_s"],
               r["block_reports_per_s"], r["legacy_close_ms"],
               r["block_close_ms"], r["close_speedup"],
               r["ingest_speedup"])
        )
    lines += [
        "",
        "close = one epoch's summary (NaN-masked quantiles over the "
        "machine x metric matrix).",
        "block path folds 1000-machine batches (the report_batch wire "
        "shape); legacy submits row-by-row (its API).",
        "summaries asserted bit-identical between the paths before any "
        "timing is reported.",
        f"floor asserted: >={CLOSE_SPEEDUP_FLOOR:.0f}x faster close at "
        f"{SIZES[-1]} machines.",
        "mode = %s" % ("quick (CI smoke)" if QUICK else "full"),
    ]
    publish("columnar_ingest", "\n".join(lines))
    publish_json("columnar", {
        "n_metrics": N_METRICS,
        "n_epochs": N_EPOCHS,
        "batch": BATCH,
        "gap_p": GAP_P,
        "close_speedup_floor": CLOSE_SPEEDUP_FLOOR,
        "mode": "quick" if QUICK else "full",
        "sizes": rows,
    })

    top = rows[-1]
    assert top["close_speedup"] >= CLOSE_SPEEDUP_FLOOR, (
        f"epoch close only {top['close_speedup']:.2f}x faster at "
        f"{top['n_machines']} machines"
    )
