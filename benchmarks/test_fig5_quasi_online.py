"""Experiment E3 — Figure 5: quasi-online identification.

Relevant metrics and hot/cold thresholds are estimated online over a
moving window (30 metrics, 240 days); only the identification threshold
still uses the full-knowledge ROC.  The paper reports ~85% known and
unknown accuracy — roughly 15 points below offline, the price of online
parameter estimation.  Crises are presented chronologically plus in 20
random permutations.
"""

from conftest import publish
from repro.config import FingerprintingConfig, SelectionConfig, ThresholdConfig
from repro.evaluation.experiments import OnlineIdentificationExperiment
from repro.evaluation.results import format_percent, format_table
from repro.viz import render_series

QUASI_CONFIG = FingerprintingConfig(
    selection=SelectionConfig(n_relevant=30),
    thresholds=ThresholdConfig(window_days=240),
)


def test_fig5_quasi_online(benchmark, paper_trace):
    def compute():
        exp = OnlineIdentificationExperiment(paper_trace, QUASI_CONFIG)
        return exp.run(mode="quasi-online", bootstrap=2, n_runs=21, seed=7)

    curves = benchmark.pedantic(compute, rounds=1, iterations=1)
    op = curves.operating_point()

    text = format_table(
        ["setting", "known acc.", "unknown acc.", "time to id", "alpha*"],
        [
            [
                "quasi-online (30 metrics, 240 d)",
                format_percent(op["known_accuracy"]),
                format_percent(op["unknown_accuracy"]),
                f"{op['mean_time_minutes']:.0f} min",
                round(op["alpha"], 3),
            ]
        ],
        title="Figure 5 — quasi-online identification "
        "(chronological + 20 permutations)",
    )
    text += "\n\n" + render_series(
        curves.alphas,
        [curves.known_accuracy, curves.unknown_accuracy],
        ["known accuracy", "unknown accuracy"],
        title="quasi-online: accuracy vs alpha",
    )
    publish("fig5_quasi_online", text)

    balanced = (op["known_accuracy"] + op["unknown_accuracy"]) / 2
    # Shape: clearly better than chance, below the offline optimum.
    assert balanced > 0.6
