"""Run the complete evaluation battery on a fresh (or saved) trace.

    python scripts/run_full_evaluation.py [seed | trace.npz]

Prints one consolidated report; for the canonical per-figure artifacts use
``pytest benchmarks/ --benchmark-only`` instead.
"""

import pathlib
import sys
import time

from repro.datacenter import DatacenterSimulator, SimulationConfig
from repro.evaluation.reports import full_report
from repro.persistence import load_trace


def main() -> None:
    arg = sys.argv[1] if len(sys.argv) > 1 else "7"
    if arg.endswith(".npz") and pathlib.Path(arg).exists():
        print(f"loading {arg}...")
        trace = load_trace(arg)
    else:
        seed = int(arg)
        config = SimulationConfig(
            n_machines=40,
            seed=seed,
            warmup_days=30,
            bootstrap_days=210,
            labeled_days=120,
            n_bootstrap_crises=20,
        )
        print(f"simulating (seed {seed})...")
        trace = DatacenterSimulator(config).run()

    t0 = time.time()
    report = full_report(trace)
    print(report.text)
    print(f"\n[evaluation took {time.time() - t0:.0f}s]")


if __name__ == "__main__":
    main()
