"""CI perf wall: re-run quick-mode benchmarks, diff against baselines.

Thin wrapper around :mod:`repro.benchwall` — all policy (headline
metrics, direction-aware tolerance, mode matching) lives there.  Run
from the repo root:

    PYTHONPATH=src python scripts/perf_wall.py [--tolerance 0.30]
        [--only serving serving_replication] [--compare-only]

Exit status 0 means no headline metric regressed more than the
tolerance; 1 means at least one did (the rendered table says which).
``--compare-only`` skips the re-run and diffs the JSON files already in
``benchmarks/results/`` against themselves — useful to sanity-check the
wall's coverage wiring without paying for a benchmark run.
"""

import argparse
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import benchwall  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tolerance", type=float, default=benchwall.DEFAULT_TOLERANCE,
        help="allowed fractional drift in the bad direction",
    )
    parser.add_argument(
        "--only", nargs="+", choices=sorted(benchwall.HEADLINES),
        default=None, help="wall only these benchmarks",
    )
    parser.add_argument(
        "--compare-only", action="store_true",
        help="skip the quick re-run; diff committed baselines "
        "against themselves (wiring check)",
    )
    args = parser.parse_args(argv)

    if args.compare_only:
        baselines = benchwall.collect_baselines(
            REPO_ROOT / "benchmarks" / "results", args.only
        )
        report = benchwall.evaluate(
            baselines, baselines, args.tolerance, names=args.only
        )
    else:
        report = benchwall.run_wall(
            REPO_ROOT, names=args.only, tolerance=args.tolerance
        )
    print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
