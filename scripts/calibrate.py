"""Calibration dashboard: Figure 3 + Figure 4 numbers for one trace seed.

Development tool used while tuning the simulator so the reproduction's
result *shape* matches the paper (see DESIGN.md section 7).  Run:

    python scripts/calibrate.py [seed]
"""

import sys
import time

import numpy as np

from repro.datacenter import DatacenterSimulator, SimulationConfig
from repro.evaluation.discrimination import discrimination_roc
from repro.evaluation.experiments import OfflineIdentificationExperiment
from repro.evaluation.results import format_percent, format_table
from repro.methods import (
    AllMetricsFingerprintMethod,
    FingerprintMethod,
    KPIMethod,
    SignaturesMethod,
)

SEED = int(sys.argv[1]) if len(sys.argv) > 1 else 7


def main() -> None:
    cfg = SimulationConfig(
        n_machines=40,
        seed=SEED,
        warmup_days=35,
        bootstrap_days=60,
        labeled_days=90,
        n_bootstrap_crises=10,
        chunk_days=4,
    )
    t0 = time.time()
    trace = DatacenterSimulator(cfg).run()
    crises = trace.labeled_crises
    print(f"trace: seed={SEED} gen={time.time()-t0:.1f}s "
          f"labeled={len(crises)}")

    rows = []
    for method in (
        FingerprintMethod(),
        SignaturesMethod(),
        AllMetricsFingerprintMethod(),
        KPIMethod(),
    ):
        t0 = time.time()
        method.fit(trace, crises)
        roc = discrimination_roc(method, crises)
        exp = OfflineIdentificationExperiment(method, crises, seed=SEED)
        op = exp.run().operating_point()
        rows.append(
            [
                method.name,
                round(roc.auc, 3),
                format_percent(op["known_accuracy"]),
                format_percent(op["unknown_accuracy"]),
                round(op["alpha"], 3),
                f"{op['mean_time_minutes']:.0f}m"
                if not np.isnan(op["mean_time_minutes"])
                else "-",
                f"{time.time()-t0:.0f}s",
            ]
        )
    print(
        format_table(
            ["method", "AUC", "known", "unknown", "alpha*", "time", "cost"],
            rows,
            title="\nFigure 3 + Figure 4 (offline)",
        )
    )


if __name__ == "__main__":
    main()
