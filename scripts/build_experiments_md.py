"""Assemble EXPERIMENTS.md from benchmark results.

Run after ``pytest benchmarks/ --benchmark-only``:

    python scripts/build_experiments_md.py

Each experiment section pairs the paper's reported numbers with the
measured table written by the corresponding benchmark into
``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "benchmarks" / "results"

HEADER = """\
# EXPERIMENTS — paper vs. measured

Every table and figure in the paper's evaluation, reproduced on the
synthetic datacenter (see DESIGN.md section 2 for the substitution
rationale).  Absolute numbers are not expected to match — the substrate is
a simulator, not the authors' production installation — but the *shape*
(who wins, by roughly what factor, where the trade-offs fall) is the
acceptance criterion.  Regenerate the measured tables with:

    pytest benchmarks/ --benchmark-only
    python scripts/build_experiments_md.py

## Headline comparison (benchmark seed 7; regenerate for exact values)

| quantity | paper | this reproduction |
|---|---|---|
| offline known / unknown accuracy (fingerprints) | 97.5% / 93.3% | 89% / 86% (E2/E7) |
| quasi-online accuracy | 83% / 83% | 89% / 75% (E3/E7) |
| online accuracy, bootstrap 10 | 80% / 80% | 68% / 70% (E4/E7) |
| time to identification (offline) | < 10 min | ~20 min (E2) |
| discrimination AUC (fingerprints) | ~0.99 | ~0.95 (E1; deviation 3) |
| ranking of methods (identification) | fingerprints first, baselines ~50-80% | fingerprints first: 87.5% balanced vs 80/77/55.5% (E2) |
| type-B forecastability (§7) | "encouraging" | 100% of held-out B's, 1.7% false alarms (E12) |

## Known deviations from the paper

1. **Baselines are stronger here.**  The paper's KPI and all-metrics
   baselines reach only ~50-55% identification accuracy; ours land higher
   (~65-80%).  Our simulated crisis types are cleaner than four months of
   production reality, which helps *every* representation; fingerprints
   still lead everywhere, and each structural claim (feature selection
   matters; KPIs alone cannot discriminate types sharing a stage) holds.
2. **Signatures' discrimination AUC is competitive; its identification is
   not.**  The appendix grants the signatures adaptation perfect
   per-crisis models (train = test), which inflates its threshold-free
   AUC.  Its weakness — one identification threshold over per-model
   distance spaces that are not mutually comparable — binds exactly when
   a threshold must be committed, so its *identification* accuracy falls
   well below fingerprints, which is the ordering the paper emphasizes.
3. **Fig. 3 AUCs cluster around ~0.95 rather than 0.99, and online
   accuracy lands around ~70% rather than 80%.**  Type B (9 of 19
   crises) is modeled with a gradual backlog onset so that the Section 7
   forecasting result reproduces; the onset-phase variation it introduces
   costs a few points for every representation and setting.  A step-onset
   B recovers AUC ≈ 0.99 and online accuracy ≈ 80% but removes the crisis
   precursors the forecasting experiment needs.  The orderings the paper
   emphasizes (offline > quasi-online > online; fingerprints above every
   baseline; 240-day window above 7-day) hold either way.
4. **Section 6.2's rejected threshold methods are not clearly inferior
   here** — all three settings land within ~0.01 AUC.  The percentile
   ordering (2/98 above 5/95 above 10/90) does reproduce.
5. **Identification epochs are 15 minutes.**  Time-to-identification is
   quantized to multiples of 15 minutes; "0 min" means the correct label
   was already emitted at the detection epoch, matching the paper's
   "below 10 minutes" claim.  Online identification typically lands one
   to two epochs later (the operators' stated tolerance is 30-60 min).
"""

SECTIONS = [
    (
        "E1 — Figure 3: discriminative power",
        "fig3_discrimination",
        "Paper: fingerprints AUC ≈ 0.99, clearly dominating signatures, "
        "all-metrics, and KPI baselines.",
    ),
    (
        "E2 — Figure 4: offline identification",
        "fig4_offline_identification",
        "Paper: fingerprints 97.5%/93.3% (known/unknown); signatures "
        "75%/80%; all-metrics ≈50%; KPIs ≈55%.",
    ),
    (
        "E3 — Figure 5: quasi-online identification",
        "fig5_quasi_online",
        "Paper: ≈85%/85% — about 15 points below offline, the price of "
        "estimating relevant metrics and thresholds online.",
    ),
    (
        "E4 — Figure 6: fully online identification",
        "fig6_online",
        "Paper: 80%/80% bootstrapping with ten labeled crises; 78%/74% "
        "with two; shorter threshold windows degrade accuracy.",
    ),
    (
        "E5 — Figure 7: summary-window sensitivity",
        "fig7_summary_window",
        "Paper: windows starting ≥30 min before the crisis quickly reach "
        "high AUC; the production choice (-30 min, +60 min) sits on the "
        "plateau (AUC ≈ 0.98-0.99).",
    ),
    (
        "E6 — Figure 8: stale fingerprints",
        "fig8_stale_thresholds",
        "Paper: freezing each crisis's discretization at the thresholds "
        "in force when it occurred costs ~5 accuracy points.",
    ),
    (
        "E7 — Table 2: summary of settings",
        "table2_summary",
        "Paper: offline 98%/93%; quasi-online 83%/83%; online w/10 "
        "80%/80%; online w/2 78%/74%.",
    ),
    (
        "E8 — Section 6.1: fingerprint size x threshold window",
        "sec61_metric_window",
        "Paper: accuracy decreases with fewer metrics (30→5) and shorter "
        "windows (240→7 days); for small windows, fewer metrics do "
        "relatively better.",
    ),
    (
        "E9 — Section 6.2: threshold settings",
        "sec62_threshold_methods",
        "Paper: 2/98 percentiles give AUC 0.99; 1/99, 5/95, 10/90 give "
        "≤0.96; the time-series and KPI-correlation alternatives give "
        "≤0.95.",
    ),
    (
        "E10 — Table 1 / Figure 1: crisis catalog and fingerprints",
        "fig1_table1_fingerprints",
        "Paper: 19 labeled crises of 10 types (B recurs 9 times); rendered "
        "fingerprints show quantiles of one metric moving in different "
        "directions.",
    ),
    (
        "E11 — scaling: summary size and streaming quantiles",
        None,
        "Paper (Sections 3.1-3.2): representation scales with metrics, not "
        "machines; quantiles can be estimated from streams with bounded "
        "error.",
    ),
    (
        "E12 — Section 7: crisis forecasting",
        "sec7_forecasting",
        "Paper: encouraging early results forecasting crises, especially "
        "type B.",
    ),
    (
        "E13/E14 — design-choice ablations",
        None,
        "This reproduction's two explicit design choices, validated by "
        "ablation.",
    ),
]

MULTI_FILE_SECTIONS = {
    "E11 — scaling: summary size and streaming quantiles": [
        "scaling_summary_size",
        "scaling_gk_sketch",
        "scaling_p2_estimator",
    ],
    "E13/E14 — design-choice ablations": [
        "ablation_per_epoch_thresholds",
        "ablation_selection_stabilization",
    ],
}


def load(name: str) -> str:
    path = RESULTS / f"{name}.txt"
    if not path.exists():
        return f"(no measured result yet — run pytest benchmarks/ "\
               f"--benchmark-only to produce {path.name})"
    return path.read_text().rstrip()


def main() -> None:
    parts = [HEADER]
    for title, result_name, paper_note in SECTIONS:
        parts.append(f"\n## {title}\n")
        parts.append(f"*{paper_note}*\n")
        names = MULTI_FILE_SECTIONS.get(title)
        if names is None:
            names = [result_name] if result_name else []
        for name in names:
            parts.append("```")
            parts.append(load(name))
            parts.append("```\n")
        extra = {
            "confusion_analysis": "Supplementary: confusion structure",
        }
        del extra
    parts.append("\n## Supplementary: confusion structure\n")
    parts.append(
        "*Which types are mistaken for which; structurally related pairs "
        "(A/D, B/E, F/G, ...) should dominate.*\n"
    )
    parts.append("```")
    parts.append(load("confusion_analysis"))
    parts.append("```\n")
    parts.append("\n## Supplementary: order sensitivity\n")
    parts.append(
        "*The paper permutes the crisis sequence to rule out luck; the "
        "chronological order must be typical of the permutation "
        "distribution.*\n"
    )
    parts.append("```")
    parts.append(load("permutation_robustness"))
    parts.append("```\n")
    out = ROOT / "EXPERIMENTS.md"
    out.write_text("\n".join(parts))
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
