"""Satellite acceptance: shard-level chaos degrades the close, never hangs.

The coordinator is handed a seeded :class:`ShardChaosConfig`; the faults
execute *inside* the worker processes (a killed worker really dies via
``os._exit``), and every assertion below reconstructs the expected fault
schedule from the same pure ``fate(epoch, shard)`` function the workers
use.
"""

import time

import numpy as np
import pytest

from repro.config import FleetConfig
from repro.fleet import FleetAggregator
from repro.telemetry.chaos import (
    SHARD_KILL,
    SHARD_OK,
    SHARD_STRAGGLE,
    ShardChaosConfig,
    ShardChaosInjector,
)

METRICS = ["cpu", "disk", "net"]


def run_epochs(fleet, n_epochs, n_machines=24, seed=0):
    rng = np.random.default_rng(seed)
    summaries = []
    for _ in range(n_epochs):
        fleet.submit_matrix(rng.normal(size=(n_machines, len(METRICS))))
        summaries.append(fleet.close_epoch())
    return summaries


class TestInjectorSchedule:
    def test_fate_is_pure_and_deterministic(self):
        config = ShardChaosConfig(kill=0.3, straggle=0.3, seed=11)
        a = ShardChaosInjector(config, n_shards=4)
        b = ShardChaosInjector(config, n_shards=4)
        for epoch in range(20):
            for shard in range(4):
                assert a.fate(epoch, shard) == b.fate(epoch, shard)

    def test_schedule_matches_fate(self):
        config = ShardChaosConfig(kill=0.5, seed=3)
        injector = ShardChaosInjector(config, n_shards=3)
        events = injector.schedule(10)
        listed = {(e.epoch, e.machine) for e in events}
        for epoch in range(10):
            for shard in range(3):
                expected = injector.fate(epoch, shard) != SHARD_OK
                assert ((epoch, shard) in listed) == expected

    def test_zero_probability_is_all_ok(self):
        injector = ShardChaosInjector(ShardChaosConfig(), n_shards=2)
        assert injector.schedule(50) == []

    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            ShardChaosConfig(kill=1.5)
        with pytest.raises(ValueError):
            ShardChaosConfig(kill=0.7, straggle=0.7)


class TestKilledShards:
    def test_certain_kill_closes_degraded_and_respawns(self):
        chaos = ShardChaosConfig(kill=1.0, seed=0)
        config = FleetConfig(n_shards=2, close_deadline_s=5.0)
        with FleetAggregator(
            METRICS, config=config, fleet_size=24, chaos=chaos
        ) as fleet:
            start = time.monotonic()
            summaries = run_epochs(fleet, 3)
            elapsed = time.monotonic() - start
            # Every shard dies at every close: all epochs fully degraded,
            # and both workers were respawned each time.
            for summary in summaries:
                assert summary.quality.n_shards_reporting == 0
                assert summary.quality.missing_shards == (0, 1)
                assert summary.quality.n_reporting == 0
                assert np.all(np.isnan(summary.quantiles))
            assert fleet.n_respawns == 6
            # Dead shards are detected by liveness, not by burning the
            # 5 s deadline each of the 3 epochs.
            assert elapsed < 10.0

    def test_single_shard_kill_is_attributed(self):
        # Find a seed whose epoch-0 schedule kills exactly shard 1, using
        # the same pure fate function the worker evaluates.
        seed = next(
            s for s in range(200)
            if [
                ShardChaosInjector(
                    ShardChaosConfig(kill=0.5, seed=s), 2
                ).fate(0, shard)
                for shard in range(2)
            ] == [SHARD_OK, SHARD_KILL]
        )
        chaos = ShardChaosConfig(kill=0.5, seed=seed)
        config = FleetConfig(n_shards=2, close_deadline_s=5.0)
        with FleetAggregator(
            METRICS, config=config, fleet_size=24, chaos=chaos
        ) as fleet:
            summary = run_epochs(fleet, 1)[0]
        quality = summary.quality
        assert quality.missing_shards == (1,)
        assert quality.n_shards_reporting == 1
        # Shard 0's machines still contributed a usable (partial) epoch.
        assert 0 < quality.n_reporting < 24
        assert np.all(np.isfinite(summary.quantiles))


class TestStragglers:
    def test_straggler_past_deadline_misses_epoch(self):
        chaos = ShardChaosConfig(straggle=1.0, straggle_seconds=30.0, seed=0)
        config = FleetConfig(n_shards=2, close_deadline_s=0.5)
        with FleetAggregator(
            METRICS, config=config, fleet_size=24, chaos=chaos
        ) as fleet:
            start = time.monotonic()
            summary = run_epochs(fleet, 1)[0]
            elapsed = time.monotonic() - start
        assert elapsed < 5.0  # degraded close, not a 30 s hang
        assert summary.quality.n_shards_reporting == 0
        assert summary.quality.missing_shards == (0, 1)
        assert not summary.quality.quorum_met

    def test_straggler_within_deadline_still_counts(self):
        chaos = ShardChaosConfig(straggle=1.0, straggle_seconds=0.2, seed=0)
        config = FleetConfig(n_shards=2, close_deadline_s=10.0)
        with FleetAggregator(
            METRICS, config=config, fleet_size=24, chaos=chaos
        ) as fleet:
            summary = run_epochs(fleet, 1)[0]
        assert summary.quality.n_shards_reporting == 2
        assert summary.quality.missing_shards == ()
        assert summary.quality.n_reporting == 24

    def test_fates_cover_both_kinds(self):
        # Sanity check on the mixed schedule the two tests above rely on:
        # with kill + straggle both positive every fate value occurs.
        injector = ShardChaosInjector(
            ShardChaosConfig(kill=0.3, straggle=0.3, seed=1), n_shards=4
        )
        fates = {
            injector.fate(epoch, shard)
            for epoch in range(30) for shard in range(4)
        }
        assert fates == {SHARD_OK, SHARD_KILL, SHARD_STRAGGLE}
