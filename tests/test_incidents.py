"""Tests for the incident knowledge base and advisory workflow."""

import numpy as np
import pytest

from repro.config import (
    FingerprintingConfig,
    SelectionConfig,
    ThresholdConfig,
)
from repro.core.pipeline import FingerprintPipeline
from repro.incidents import CrisisAdvisor, IncidentDatabase
from repro.incidents.database import SCHEMA_VERSION, IncidentRecord


class TestIncidentRecord:
    def test_roundtrip_dict(self):
        rec = IncidentRecord(
            incident_id=3,
            label="B",
            detected_epoch=100,
            fingerprint=np.array([0.5, -0.5]),
            diagnosis="backlog",
            remedy="drain queue",
            metric_indices=np.array([1, 2]),
        )
        back = IncidentRecord.from_dict(rec.to_dict())
        assert back.incident_id == 3
        assert back.remedy == "drain queue"
        np.testing.assert_array_equal(back.fingerprint, rec.fingerprint)
        np.testing.assert_array_equal(back.metric_indices, [1, 2])

    def test_validation(self):
        with pytest.raises(ValueError):
            IncidentRecord(0, "", 0, np.zeros(2))
        with pytest.raises(ValueError):
            IncidentRecord(0, "B", -1, np.zeros(2))


class TestIncidentDatabase:
    def make_db(self):
        db = IncidentDatabase()
        db.add("B", 100, np.array([1.0, 0.0]), remedy="restart archiver")
        db.add("A", 200, np.array([0.0, 1.0]), remedy="add capacity")
        db.add("B", 300, np.array([0.9, 0.1]), remedy="drain backlog")
        return db

    def test_ids_monotone(self):
        db = self.make_db()
        assert [r.incident_id for r in db] == [0, 1, 2]

    def test_get_and_by_label(self):
        db = self.make_db()
        assert db.get(1).label == "A"
        assert len(db.by_label("B")) == 2
        with pytest.raises(KeyError):
            db.get(99)

    def test_nearest(self):
        db = self.make_db()
        hits = db.nearest(np.array([0.95, 0.05]), k=2)
        assert [h[0].label for h in hits] == ["B", "B"]
        assert hits[0][1] <= hits[1][1]

    def test_nearest_skips_mismatched_dims(self):
        db = self.make_db()
        db.add("C", 400, np.array([1.0, 2.0, 3.0]))
        hits = db.nearest(np.array([1.0, 0.0]), k=10)
        assert all(h[0].label != "C" for h in hits)

    def test_nearest_validation(self):
        with pytest.raises(ValueError):
            self.make_db().nearest(np.zeros(2), k=0)

    def test_update_fingerprints(self):
        db = self.make_db()
        new_fps = [np.full(4, 0.1 * i) for i in range(3)]
        db.update_fingerprints(new_fps, metric_indices=np.array([7, 8]))
        np.testing.assert_array_equal(db.get(2).fingerprint, new_fps[2])
        with pytest.raises(ValueError):
            db.update_fingerprints([np.zeros(2)])

    def test_save_load_roundtrip(self, tmp_path):
        db = self.make_db()
        path = tmp_path / "incidents.json"
        db.save(path)
        back = IncidentDatabase.load(path)
        assert len(back) == 3
        assert back.get(0).remedy == "restart archiver"
        np.testing.assert_allclose(back.get(2).fingerprint,
                                   db.get(2).fingerprint)

    def test_load_rejects_bad_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema_version": 999, "records": []}')
        with pytest.raises(ValueError):
            IncidentDatabase.load(path)
        assert SCHEMA_VERSION == 1


@pytest.fixture(scope="module")
def advisor_setup(small_trace):
    config = FingerprintingConfig(
        selection=SelectionConfig(n_relevant=20),
        thresholds=ThresholdConfig(window_days=30),
    )
    pipeline = FingerprintPipeline(small_trace, config)
    advisor = CrisisAdvisor(pipeline)
    crises = small_trace.detected_crises
    remedies = {}
    for crisis in crises[:6]:
        pipeline.observe(crisis)
        pipeline.refresh(crisis.detected_epoch)
        remedy = f"remedy for {crisis.label}"
        advisor.record_diagnosis(crisis, crisis.label, remedy=remedy)
        remedies[crisis.label] = remedy
    pipeline.update_identification_threshold()
    advisor.refingerprint_database()
    return advisor, crises, remedies


class TestCrisisAdvisor:
    def test_database_populated(self, advisor_setup):
        advisor, crises, _ = advisor_setup
        assert len(advisor.database) == 6

    def test_match_retrieves_remedy(self, advisor_setup):
        advisor, crises, remedies = advisor_setup
        known_labels = {r.label for r in advisor.database}
        matched = 0
        correct_remedy = 0
        for crisis in crises[6:14]:
            advisor.pipeline.observe(crisis)
            advisor.pipeline.refresh(crisis.detected_epoch)
            advisor.refingerprint_database()
            advice = advisor.advise(crisis)
            if crisis.label in known_labels and advice.matched:
                matched += 1
                if advice.remedy == remedies.get(advice.label):
                    correct_remedy += 1
            advisor.record_diagnosis(
                crisis, crisis.label,
                remedy=remedies.setdefault(
                    crisis.label, f"remedy for {crisis.label}"
                ),
            )
            known_labels.add(crisis.label)
        assert matched >= 1
        assert correct_remedy == matched or matched == 0

    def test_advice_fields(self, advisor_setup):
        advisor, crises, _ = advisor_setup
        advice = advisor.advise(crises[14])
        assert advice.crisis_id == crises[14].index
        assert len(advice.sequence) == 5
        assert len(advice.candidates) <= 3

    def test_out_of_sync_refingerprint_rejected(self, small_trace):
        config = FingerprintingConfig(
            selection=SelectionConfig(n_relevant=20),
            thresholds=ThresholdConfig(window_days=30),
        )
        pipeline = FingerprintPipeline(small_trace, config)
        advisor = CrisisAdvisor(pipeline, IncidentDatabase())
        advisor.database.add("B", 1, np.zeros(3))
        with pytest.raises(ValueError):
            advisor.refingerprint_database()
