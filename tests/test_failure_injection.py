"""Failure injection: the pipeline under degraded telemetry.

Real deployments see reporting gaps, dead collectors, and stuck agents.
These tests corrupt a copy of the small trace and assert the method
degrades gracefully instead of crashing or emitting garbage.
"""

import copy

import numpy as np
import pytest

from repro.config import (
    FingerprintingConfig,
    SelectionConfig,
    ThresholdConfig,
)
from repro.core.pipeline import FingerprintPipeline
from repro.core.summary import summary_vectors
from repro.core.thresholds import percentile_thresholds

CONFIG = FingerprintingConfig(
    selection=SelectionConfig(n_relevant=20),
    thresholds=ThresholdConfig(window_days=30),
)


def corrupted_trace(small_trace, corruption):
    trace = copy.copy(small_trace)
    trace.quantiles = small_trace.quantiles.copy()
    # Experiment-level caches belong to the pristine trace.
    trace.__dict__.pop("_selection_cache", None)
    trace.__dict__.pop("_threshold_cache", None)
    corruption(trace)
    return trace


class TestNaNGaps:
    def test_thresholds_skip_nan_epochs(self, small_trace):
        rng = np.random.default_rng(0)

        def corrupt(trace):
            # 2% of epochs lose one metric's quantiles entirely.
            epochs = rng.choice(trace.n_epochs, trace.n_epochs // 50,
                                replace=False)
            trace.quantiles[epochs, 3, :] = np.nan

        trace = corrupted_trace(small_trace, corrupt)
        hist = trace.quantiles[trace.crisis_free_mask()]
        thresholds = percentile_thresholds(hist)
        assert np.all(np.isfinite(thresholds.cold))
        assert np.all(np.isfinite(thresholds.hot))

    def test_all_nan_metric_rejected(self, small_trace):
        def corrupt(trace):
            trace.quantiles[:, 5, :] = np.nan

        trace = corrupted_trace(small_trace, corrupt)
        hist = trace.quantiles[trace.crisis_free_mask()]
        with pytest.raises(ValueError):
            percentile_thresholds(hist)

    def test_nan_epoch_reads_normal(self, small_trace):
        hist = small_trace.quantiles[small_trace.crisis_free_mask()]
        thresholds = percentile_thresholds(hist)
        epoch = small_trace.quantiles[100].copy()
        epoch[7, :] = np.nan
        summary = summary_vectors(epoch, thresholds)
        np.testing.assert_array_equal(summary[7], 0)


class TestPipelineUnderGaps:
    def test_identification_survives_metric_outage(self, small_trace):
        """A metric going dark mid-trace must not break identification."""
        rng = np.random.default_rng(1)

        def corrupt(trace):
            start = trace.n_epochs // 2
            dark = rng.choice(trace.n_metrics, 2, replace=False)
            for m in dark:
                epochs = rng.choice(
                    np.arange(start, trace.n_epochs),
                    (trace.n_epochs - start) // 10,
                    replace=False,
                )
                trace.quantiles[epochs, m, :] = np.nan

        trace = corrupted_trace(small_trace, corrupt)
        pipe = FingerprintPipeline(trace, CONFIG)
        crises = trace.detected_crises
        for crisis in crises[:4]:
            pipe.observe(crisis)
            pipe.refresh(crisis.detected_epoch)
            pipe.confirm(crisis)
        pipe.update_identification_threshold()
        outcome = pipe.identify(crises[4])
        assert len(outcome.sequence) == 5

    def test_fingerprints_stay_bounded_under_gaps(self, small_trace):
        def corrupt(trace):
            trace.quantiles[::17, 2, :] = np.nan

        trace = corrupted_trace(small_trace, corrupt)
        pipe = FingerprintPipeline(trace, CONFIG)
        crisis = trace.detected_crises[0]
        pipe.observe(crisis)
        pipe.refresh(crisis.detected_epoch)
        known = pipe.confirm(crisis)
        assert np.all(np.abs(known.fingerprint) <= 1.0)
        assert np.all(np.isfinite(known.fingerprint))
